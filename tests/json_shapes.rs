//! The CLI's machine-readable outputs are a contract: `gpuflow obs
//! summary --json` and `gpuflow diff --json` are validated here against
//! checked-in example-shaped schemas (`tests/schemas/*.json`) using the
//! lint crate's dependency-free JSON parser. A key added, removed, or
//! retyped in either emitter fails this suite before it breaks a
//! downstream consumer.

use std::path::Path;
use std::process::Command;

use gpuflow_lint::json;

fn schema(name: &str) -> json::Value {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/schemas")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    json::parse(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"))
}

fn gpuflow(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_gpuflow"))
        .args(args)
        .output()
        .expect("run gpuflow binary");
    assert!(
        out.status.success(),
        "gpuflow {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

const RUN: [&str; 8] = [
    "--workload",
    "matmul",
    "--rows",
    "2000",
    "--cols",
    "2000",
    "--grid",
    "2",
];

#[test]
fn obs_summary_json_matches_schema() {
    let mut args = vec!["obs", "summary"];
    args.extend(RUN);
    args.push("--json");
    let out = gpuflow(&args);
    let value = json::parse(&out).expect("obs summary --json output parses");
    json::check_shape(&schema("obs_summary.json"), &value)
        .unwrap_or_else(|e| panic!("obs summary --json shape drifted: {e}\noutput: {out}"));
}

#[test]
fn daemon_queue_json_matches_schema() {
    use gpuflow::daemon::{DaemonConfig, DaemonCore};
    use gpuflow::runtime::JobShape;

    let mut core = DaemonCore::new(DaemonConfig::default()).expect("default config is valid");
    core.submit("acme", JobShape::Wide, 12, 1).unwrap();
    core.submit("beta", JobShape::Tree, 9, 0).unwrap();
    core.submit("nobody", JobShape::Wide, 4, 0).unwrap_err();
    core.drain().unwrap();
    core.submit("gamma", JobShape::Stencil, 16, 0).unwrap();
    core.cancel(3).unwrap();

    let out = core.queue_json();
    let value = json::parse(&out).expect("queue json parses");
    json::check_shape(&schema("queue.json"), &value)
        .unwrap_or_else(|e| panic!("queue json shape drifted: {e}\noutput: {out}"));
    assert_eq!(
        value.get("schema").and_then(|v| v.as_str()),
        Some("gpuflow.daemon.queue.v1"),
        "schema tag drifted: {out}"
    );
    // Every lifecycle state appears, proving the example exercises the
    // whole surface the schema pins.
    for state in ["done", "cancelled"] {
        assert!(out.contains(&format!("\"state\": \"{state}\"")), "{out}");
    }
}

#[test]
fn diff_json_matches_schema() {
    let dir = std::env::temp_dir().join(format!("gpuflow_json_shapes_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let a = dir.join("a.profile");
    let b = dir.join("b.profile");
    for (path, grid) in [(&a, "2"), (&b, "4")] {
        let path = path.to_str().unwrap();
        gpuflow(&[
            "obs",
            "profile",
            "--workload",
            "matmul",
            "--rows",
            "2000",
            "--cols",
            "2000",
            "--grid",
            grid,
            "--out",
            path,
        ]);
    }
    let out = gpuflow(&["diff", a.to_str().unwrap(), b.to_str().unwrap(), "--json"]);
    std::fs::remove_dir_all(&dir).ok();
    let value = json::parse(&out).expect("diff --json output parses");
    json::check_shape(&schema("diff.json"), &value)
        .unwrap_or_else(|e| panic!("diff --json shape drifted: {e}\noutput: {out}"));
    // The grid change must surface in factor_changes, proving the diff
    // actually compared two distinct runs.
    let factors = value
        .get("factor_changes")
        .and_then(|v| v.as_array())
        .expect("factor_changes array");
    assert!(
        factors
            .iter()
            .any(|f| { f.get("factor").and_then(|v| v.as_str()) == Some("grid") }),
        "grid change missing from factor_changes: {out}"
    );
}

#[test]
fn lint_report_json_matches_schema() {
    // The live tree is lint-clean, so its findings array is empty —
    // parse the real CLI output for the envelope, then validate a
    // constructed report carrying a chain-bearing D5 finding so the
    // per-finding shape (including "chain") is actually exercised.
    let out = gpuflow(&["lint", "--json"]);
    let value = json::parse(&out).expect("lint --json output parses");
    json::check_shape(&schema("lint_report.json"), &value)
        .unwrap_or_else(|e| panic!("lint --json shape drifted: {e}\noutput: {out}"));

    use gpuflow_lint::{ChainHop, Finding, Report, RuleCode};
    let report = Report {
        findings: vec![
            Finding::new(
                RuleCode::D2,
                "src/a.rs",
                3,
                7,
                "host clock on a result path",
            ),
            Finding::new(
                RuleCode::D5,
                "src/render.rs",
                10,
                5,
                "wall clock reaches sink",
            )
            .with_chain(vec![
                ChainHop {
                    func: "render_report".into(),
                    file: "src/render.rs".into(),
                    line: 8,
                },
                ChainHop {
                    func: "host_nanos".into(),
                    file: "src/time.rs".into(),
                    line: 3,
                },
            ]),
        ],
        files_scanned: 2,
    };
    let synthetic = report.to_json();
    let value = json::parse(&synthetic).expect("synthetic report parses");
    json::check_shape(&schema("lint_report.json"), &value)
        .unwrap_or_else(|e| panic!("synthetic lint report shape drifted: {e}\n{synthetic}"));
}

#[test]
fn lint_sarif_is_valid_and_carries_the_rule_catalog() {
    let out = gpuflow(&["lint", "--sarif"]);
    let value = json::parse(&out).expect("lint --sarif output parses");
    assert_eq!(
        value.get("version").and_then(|v| v.as_str()),
        Some("2.1.0"),
        "SARIF version pinned: {out}"
    );
    let rules = value
        .get("runs")
        .and_then(|r| r.as_array())
        .and_then(|r| r.first())
        .and_then(|run| run.get("tool"))
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("rules"))
        .and_then(|r| r.as_array())
        .expect("runs[0].tool.driver.rules");
    assert_eq!(
        rules.len(),
        gpuflow_lint::RuleCode::ALL.len(),
        "every rule code is declared in the SARIF catalog"
    );
}
