//! Collapsed-stack flame-graph export of a [`SpanForest`].
//!
//! The output follows the `flamegraph.pl` collapsed format — one
//! `frame;frame;frame count` line per stack — with virtual-time
//! nanoseconds as the weight, aggregated per task type and lifecycle
//! phase:
//!
//! ```text
//! gpuflow;matmul;compute 1200000000
//! gpuflow;matmul;queue-wait 40000000
//! ```
//!
//! Stacks are emitted in `BTreeMap` order (task type ascending, then
//! canonical phase order), zero-weight phases are omitted, and every
//! weight is an integer virtual ns, so the text is byte-identical at
//! any thread count.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use super::span::{SpanForest, SpanPhase};

/// Renders the forest as `flamegraph.pl`-compatible collapsed stacks,
/// virtual-time-weighted and aggregated per task type.
pub fn to_collapsed(forest: &SpanForest) -> String {
    let mut weights: BTreeMap<String, [u64; SpanPhase::ALL.len()]> = BTreeMap::new();
    for t in &forest.tasks {
        let slot = weights
            .entry(t.task_type.clone())
            .or_insert([0; SpanPhase::ALL.len()]);
        for p in &t.phases {
            slot[p.phase.index()] += p.duration_ns();
        }
    }
    let mut o = String::new();
    for (ty, by_phase) in &weights {
        for phase in SpanPhase::ALL {
            let w = by_phase[phase.index()];
            if w == 0 {
                continue;
            }
            let _ = writeln!(o, "gpuflow;{ty};{} {w}", phase.label());
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::super::span::{PhaseSpan, TaskSpans};
    use super::*;
    use crate::task::TaskId;

    fn spans(ty: &str, phase: SpanPhase, ns: u64) -> TaskSpans {
        TaskSpans {
            task: TaskId(0),
            task_type: ty.to_string(),
            node: 0,
            phases: vec![PhaseSpan {
                phase,
                t0_ns: 0,
                t1_ns: ns,
                attempt: 0,
            }],
            start_ns: 0,
            end_ns: ns,
            causal_parent: None,
            on_critical_path: false,
        }
    }

    #[test]
    fn aggregates_by_type_in_sorted_order() {
        let forest = SpanForest {
            tasks: vec![
                spans("zeta", SpanPhase::Compute, 5),
                spans("alpha", SpanPhase::Compute, 7),
                spans("alpha", SpanPhase::Compute, 3),
            ],
        };
        let out = to_collapsed(&forest);
        assert_eq!(out, "gpuflow;alpha;compute 10\ngpuflow;zeta;compute 5\n");
    }

    #[test]
    fn zero_weight_phases_are_omitted() {
        let forest = SpanForest {
            tasks: vec![spans("t", SpanPhase::Resubmit, 0)],
        };
        assert_eq!(to_collapsed(&forest), "");
    }

    #[test]
    fn lines_match_the_collapsed_grammar() {
        let forest = SpanForest {
            tasks: vec![
                spans("map", SpanPhase::QueueWait, 11),
                spans("map", SpanPhase::Compute, 22),
            ],
        };
        for line in to_collapsed(&forest).lines() {
            let (stack, count) = line.rsplit_once(' ').expect("space-separated");
            assert!(count.chars().all(|c| c.is_ascii_digit()), "{line}");
            assert!(stack.split(';').count() >= 2, "{line}");
        }
    }
}
