//! Storage architecture models: node-local disks vs. a shared parallel
//! file system (GPFS in the paper, §3.4).
//!
//! * **Local disk**: each node owns an independent disk; reads/writes
//!   contend only with the node's own I/O.
//! * **Shared disk**: every access crosses the node NIC and then the GPFS
//!   backend, whose aggregate bandwidth is shared cluster-wide — the
//!   two-level contention that makes fine-grained task storms so expensive
//!   in the paper's end-to-end results (§5.1.2).

use gpuflow_sim::SimDuration;

/// Which storage architecture a run uses (a factor in Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageArchitecture {
    /// Data on per-node local disks.
    LocalDisk,
    /// Data on a shared parallel file system reached over the network.
    SharedDisk,
}

impl StorageArchitecture {
    /// All architectures, in the paper's presentation order.
    pub const ALL: [StorageArchitecture; 2] = [
        StorageArchitecture::LocalDisk,
        StorageArchitecture::SharedDisk,
    ];

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            StorageArchitecture::LocalDisk => "local disk",
            StorageArchitecture::SharedDisk => "shared disk",
        }
    }
}

/// A single disk (or disk array) endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskSpec {
    /// Sustained sequential bandwidth, bytes/s.
    pub bandwidth_bps: f64,
    /// Per-operation seek/queue latency.
    pub latency: SimDuration,
}

impl DiskSpec {
    /// A node-local disk of the Minotauro era. The effective rate is
    /// page-cache-assisted local I/O, not raw platter speed — which is
    /// why the paper finds local-disk runs uniformly faster than GPFS
    /// ones (§5.3) despite GPFS's larger aggregate bandwidth.
    pub fn node_local() -> Self {
        DiskSpec {
            bandwidth_bps: 2.0e9,
            latency: SimDuration::from_millis(1),
        }
    }

    /// The GPFS backend: high aggregate bandwidth, shared by everyone.
    pub fn gpfs_backend() -> Self {
        DiskSpec {
            bandwidth_bps: 8.0e9,
            latency: SimDuration::from_millis(1),
        }
    }
}

/// Serialization/deserialization CPU cost model (§4.2 "data movement").
///
/// Moving a Python object between storage and memory costs CPU time
/// proportional to its size: pickling NumPy arrays runs at roughly memcpy
/// speed minus interpreter overhead. This per-core cost cannot be
/// parallelized beyond one core per task, which is the root of the paper's
/// Observation O2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerdeCost {
    /// Decode (deserialize) rate on one core, bytes/s.
    pub deserialize_bps: f64,
    /// Encode (serialize) rate on one core, bytes/s.
    pub serialize_bps: f64,
    /// Fixed per-object overhead (interpreter, header parsing).
    pub per_object: SimDuration,
}

impl SerdeCost {
    /// Pickle-protocol-5-ish rates measured for large float64 arrays.
    pub fn pickle() -> Self {
        SerdeCost {
            deserialize_bps: 1.6e9,
            serialize_bps: 1.2e9,
            per_object: SimDuration::from_micros(200),
        }
    }

    /// CPU time to deserialize `bytes`.
    pub fn deserialize_time(&self, bytes: f64) -> SimDuration {
        self.per_object + SimDuration::from_secs_f64(bytes / self.deserialize_bps)
    }

    /// CPU time to serialize `bytes`.
    pub fn serialize_time(&self, bytes: f64) -> SimDuration {
        self.per_object + SimDuration::from_secs_f64(bytes / self.serialize_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(StorageArchitecture::LocalDisk.label(), "local disk");
        assert_eq!(StorageArchitecture::SharedDisk.label(), "shared disk");
    }

    #[test]
    fn serde_cost_scales_linearly() {
        let c = SerdeCost::pickle();
        let t1 = c.deserialize_time(1e9).as_secs_f64();
        let t2 = c.deserialize_time(2e9).as_secs_f64();
        let fixed = c.per_object.as_secs_f64();
        assert!(((t2 - fixed) - 2.0 * (t1 - fixed)).abs() < 1e-9);
    }

    #[test]
    fn serialize_slower_than_deserialize() {
        let c = SerdeCost::pickle();
        assert!(c.serialize_time(1e9) > c.deserialize_time(1e9));
    }

    #[test]
    fn gpfs_faster_aggregate_than_local() {
        assert!(DiskSpec::gpfs_backend().bandwidth_bps > DiskSpec::node_local().bandwidth_bps);
    }
}
