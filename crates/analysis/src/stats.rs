//! Basic summary statistics used across the experiment reports.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (averaging the middle pair for even lengths); 0 when empty.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Geometric mean; 0 when empty or any sample is non-positive.
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Speedup of `baseline` over `candidate`, following the paper's Fig. 1
/// convention: positive ratios > 1 mean the candidate wins; a candidate
/// *slower* than baseline is reported as a negative factor (e.g. -1.20x).
pub fn signed_speedup(baseline: f64, candidate: f64) -> f64 {
    if candidate <= 0.0 || baseline <= 0.0 {
        return 0.0;
    }
    let ratio = baseline / candidate;
    if ratio >= 1.0 {
        ratio
    } else {
        -1.0 / ratio
    }
}

/// Two-sided 95 % confidence half-width of the mean for small samples,
/// using the Student t quantiles the paper's six-run protocol needs
/// (n-1 degrees of freedom, n in 2..=30; falls back to the normal 1.96
/// beyond the table).
pub fn confidence_half_width_95(xs: &[f64]) -> f64 {
    const T_95: [f64; 30] = [
        0.0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060,
        2.056, 2.052, 2.048, 2.045,
    ];
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let t = if n - 1 < T_95.len() {
        T_95[n - 1]
    } else {
        1.96
    };
    // Sample (n-1) standard deviation.
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1) as f64;
    t * var.sqrt() / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn std_dev_known_value() {
        // Population sigma of {2, 4, 4, 4, 5, 5, 7, 9} is 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[1.0, -1.0]), 0.0);
    }

    #[test]
    fn confidence_interval_basics() {
        // Constant samples: zero width.
        assert_eq!(confidence_half_width_95(&[5.0; 5]), 0.0);
        // Known case: n=5, sd=1 -> 2.776 / sqrt(5).
        let xs = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let m = mean(&xs);
        let sd = (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / 4.0).sqrt();
        let expected = 2.776 * sd / 5f64.sqrt();
        assert!((confidence_half_width_95(&xs) - expected).abs() < 1e-9);
        // Degenerate inputs.
        assert_eq!(confidence_half_width_95(&[1.0]), 0.0);
        assert_eq!(confidence_half_width_95(&[]), 0.0);
    }

    #[test]
    fn signed_speedup_matches_fig1_convention() {
        assert!((signed_speedup(5.69, 1.0) - 5.69).abs() < 1e-12);
        // Candidate 1.2x slower than baseline -> -1.20x.
        assert!((signed_speedup(1.0, 1.2) + 1.2).abs() < 1e-12);
        assert_eq!(signed_speedup(1.0, 0.0), 0.0);
    }
}
