//! Structured runtime telemetry — the observability substrate of the
//! reproduction.
//!
//! The paper's whole methodology is trace-driven (§4.2, §4.4.3): it
//! derives (de)serialization costs, user-code fractions, and resource
//! wastage from Paraver traces of the PyCOMPSs runtime. This module
//! gives our runtime the equivalent first-class instrumentation:
//!
//! * a zero-cost-when-disabled **event bus** ([`EventBus`]) threaded
//!   through the executor, scheduler, and worker caches, emitting typed
//!   [`TelemetryEvent`]s for task lifecycle, scheduler decisions (with
//!   scored candidate sets and per-decision master overhead), cache
//!   hit/miss/evict, link transfers, and per-node resource gauges;
//! * pluggable **sinks** ([`TelemetrySink`]): a Chrome
//!   `trace_event`/Perfetto exporter ([`to_chrome_trace`]), a
//!   deterministic JSONL serializer ([`JsonlSink`]), and an in-memory
//!   buffer ([`MemorySink`]);
//! * an [`OverheadReport`] decomposing the makespan into master /
//!   compute / data-movement / idle buckets, after the Dask-overheads
//!   analysis style.
//!
//! The Paraver export ([`crate::to_paraver_prv`]) and the trace
//! analytics ([`crate::trace_analysis`]) consume the same stream via
//! [`crate::Trace::from_telemetry`], so there is exactly one source of
//! truth for what happened during a run.
//!
//! Enable collection with [`crate::RunConfig::with_telemetry`]; the
//! resulting [`crate::RunReport::telemetry`] log replays into any sink.

mod alert;
mod chrome;
mod diff;
mod event;
mod flame;
mod histogram;
mod metrics;
mod overhead;
mod sampler;
mod sink;
mod span;

use std::fmt::Write as _;

pub use alert::{AlertEngine, AlertRule, AlertSeverity, AlertState, AlertTransition, RuleKind};
pub use chrome::{to_chrome_trace, ChromeTraceSink};
pub use diff::{
    BucketDelta, CriticalSegment, PathChange, PathDelta, ResourceProfile, RunDiff, RunProfile,
    TaskTypeProfile, TypeDelta,
};
pub use event::{CandidateScore, LinkKind, SchedulerDecision, TelemetryEvent};
pub use flame::to_collapsed;
pub use histogram::{Histogram, HistogramDigest};
pub use metrics::{
    fmt_seconds, BucketHistogram, MetricsHub, MetricsRegistry, SampleRow, DEFAULT_SAMPLE_INTERVAL,
};
pub use overhead::OverheadReport;
pub use sampler::{SampleStats, SpanSampler};
pub use sink::{JsonlSink, MemorySink, TelemetrySink};
pub use span::{PhaseSpan, SpanForest, SpanPhase, TaskSpans};

/// The executor-side collector: a no-op unless activated, so disabled
/// runs pay a single branch per emission site.
///
/// Two independent consumers can be attached: the in-memory record
/// (trace/telemetry collection) and a live [`MetricsHub`] that folds
/// each event as it is emitted, so an HTTP scrape sees the run's
/// current state without buffering the stream.
#[derive(Debug, Clone, Default)]
pub struct EventBus {
    record: bool,
    live: Option<MetricsHub>,
    events: Vec<TelemetryEvent>,
}

impl EventBus {
    /// A bus that records events iff `record`.
    pub fn new(record: bool) -> Self {
        EventBus {
            record,
            live: None,
            events: Vec::new(),
        }
    }

    /// Attaches a live metrics hub; every emitted event is folded into
    /// it immediately.
    pub fn with_live(mut self, hub: MetricsHub) -> Self {
        self.live = Some(hub);
        self
    }

    /// Whether emissions are consumed by anything. Emission sites guard
    /// event construction on this, so a bus with no consumer allocates
    /// nothing.
    #[inline]
    pub fn active(&self) -> bool {
        self.record || self.live.is_some()
    }

    /// Emits one event: forwards to the live hub if attached, then
    /// records it (dropped when no consumer is attached).
    #[inline]
    pub fn push(&mut self, ev: TelemetryEvent) {
        if let Some(hub) = &self.live {
            hub.observe(&ev);
        }
        if self.record {
            self.events.push(ev);
        }
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Seals the live hub's series, if one is attached (call at end of
    /// run, before the bus is consumed).
    pub fn finish_live(&self) {
        if let Some(hub) = &self.live {
            hub.finish();
        }
    }

    /// Consumes the bus into an immutable log.
    pub fn into_log(self) -> TelemetryLog {
        TelemetryLog {
            events: self.events,
        }
    }
}

/// An immutable, replayable event stream from one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryLog {
    events: Vec<TelemetryEvent>,
}

impl TelemetryLog {
    /// Wraps a pre-built event sequence.
    pub fn from_events(events: Vec<TelemetryEvent>) -> Self {
        TelemetryLog { events }
    }

    /// The events, in emission order.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays the stream into `sink`, calling
    /// [`TelemetrySink::finish`] at the end.
    pub fn replay(&self, sink: &mut dyn TelemetrySink) {
        for ev in &self.events {
            sink.on_event(ev);
        }
        sink.finish();
    }

    /// The deterministic JSONL serialization of the stream.
    pub fn to_jsonl(&self) -> String {
        let mut sink = JsonlSink::new();
        self.replay(&mut sink);
        sink.into_string()
    }

    /// The scheduler decisions, in dispatch order.
    pub fn decisions(&self) -> impl Iterator<Item = &SchedulerDecision> {
        self.events.iter().filter_map(|e| match e {
            TelemetryEvent::Decision(d) => Some(d),
            _ => None,
        })
    }

    /// Renders the scheduler decision log as a text table: one line per
    /// decision with the scored candidate set and the chosen node.
    pub fn render_decisions(&self) -> String {
        let mut out = String::from(
            "time_s       task   node  queue  overhead_us  host_us  candidates (node:slots/cached)\n",
        );
        for d in self.decisions() {
            let mut cands = String::new();
            for (i, c) in d.candidates.iter().enumerate() {
                if i > 0 {
                    cands.push(' ');
                }
                let _ = write!(cands, "{}:{}/{}", c.node, c.free_slots, c.cached_bytes);
            }
            let _ = writeln!(
                out,
                "{:<12.6} {:<6} {:<5} {:<6} {:<12.1} {:<8.1} {}",
                d.at.as_secs_f64(),
                d.task.0,
                d.chosen,
                d.queue_depth,
                d.sim_overhead.as_nanos() as f64 / 1e3,
                d.host_nanos as f64 / 1e3,
                cands
            );
        }
        out
    }

    /// Event counts per kind, `(kind, count)` in a fixed report order.
    pub fn summary_counts(&self) -> Vec<(&'static str, usize)> {
        const KINDS: [&str; 16] = [
            "ready",
            "decision",
            "dispatch",
            "stage",
            "transfer",
            "cache",
            "evict",
            "gauge",
            "complete",
            "fault",
            "failed",
            "retry",
            "resubmit",
            "node-down",
            "node-up",
            "invalidate",
        ];
        KINDS
            .iter()
            .map(|kind| {
                (
                    *kind,
                    self.events.iter().filter(|e| e.kind() == *kind).count(),
                )
            })
            .collect()
    }

    /// Event counts per kind, in a fixed report order.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "telemetry events: {}", self.len());
        for (kind, n) in self.summary_counts() {
            let _ = writeln!(out, "  {kind:<10} {n}");
        }
        out
    }

    /// Machine-readable counterpart of [`TelemetryLog::summary`]: a
    /// single deterministic JSON object, `{"events": N, "kinds":
    /// {"ready": N, ...}}` with kinds in the fixed report order.
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{\"events\":");
        let _ = write!(out, "{}", self.len());
        out.push_str(",\"kinds\":{");
        for (i, (kind, n)) in self.summary_counts().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{kind}\":{n}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;
    use gpuflow_sim::SimTime;

    fn ready(task: u32) -> TelemetryEvent {
        TelemetryEvent::TaskReady {
            at: SimTime::ZERO,
            task: TaskId(task),
        }
    }

    #[test]
    fn inactive_bus_drops_events() {
        let mut bus = EventBus::new(false);
        assert!(!bus.active());
        bus.push(ready(0));
        assert!(bus.into_log().is_empty());
    }

    #[test]
    fn active_bus_preserves_order() {
        let mut bus = EventBus::new(true);
        bus.push(ready(2));
        bus.push(ready(1));
        let log = bus.into_log();
        assert_eq!(log.len(), 2);
        assert!(matches!(
            log.events()[0],
            TelemetryEvent::TaskReady {
                task: TaskId(2),
                ..
            }
        ));
    }

    #[test]
    fn jsonl_replay_round_trips_counts() {
        let mut bus = EventBus::new(true);
        bus.push(ready(0));
        bus.push(ready(1));
        let log = bus.into_log();
        assert_eq!(log.to_jsonl().lines().count(), log.len());
    }

    #[test]
    fn summary_counts_kinds() {
        let log = TelemetryLog::from_events(vec![ready(0), ready(1)]);
        let s = log.summary();
        assert!(s.contains("telemetry events: 2"));
        assert!(s.contains("ready      2"));
        assert!(s.contains("failed     0"), "fault kinds listed: {s}");
    }

    #[test]
    fn summary_json_matches_text_counts() {
        let log = TelemetryLog::from_events(vec![ready(0), ready(1)]);
        let json = log.summary_json();
        assert!(json.starts_with("{\"events\":2,\"kinds\":{"));
        assert!(json.contains("\"ready\":2"));
        assert!(json.contains("\"invalidate\":0"));
        assert!(json.ends_with("}}"));
        // Every kind in the text summary appears in the JSON.
        for (kind, _) in log.summary_counts() {
            assert!(json.contains(&format!("\"{kind}\":")));
        }
    }

    #[test]
    fn decision_log_renders_header_even_when_empty() {
        let log = TelemetryLog::default();
        assert!(log.render_decisions().starts_with("time_s"));
        assert_eq!(log.decisions().count(), 0);
    }
}
