//! Golden-file pin of the Paraver export (`.prv` + `.pcf`).
//!
//! The paper's data-movement analysis (§4.4.3) consumes runtime traces in
//! Paraver; downstream tooling parses the exact record syntax, so the
//! format is pinned byte-for-byte against committed golden files. The
//! trace itself is fully deterministic (zero jitter, fixed seed), so any
//! diff means either the exporter's syntax or the simulated schedule
//! changed — both of which must be deliberate.
//!
//! Regenerate after an intentional change with:
//! `GOLDEN_REGEN=1 cargo test -p gpuflow-runtime --test paraver_golden`

use gpuflow_cluster::{ClusterSpec, KernelWork, ProcessorKind};
use gpuflow_runtime::{
    paraver_pcf, run, to_paraver_prv, CostProfile, Direction, RunConfig, Workflow, WorkflowBuilder,
};

const MB: u64 = 1 << 20;

/// A diamond: source → (left, right) → join. Exercises dependency
/// serialisation, two parallel branches, and every trace state on GPU.
fn diamond_workflow() -> Workflow {
    let cost = |flops: f64| {
        CostProfile::fully_parallel(KernelWork {
            flops,
            bytes: flops / 10.0,
            parallelism: 1e9,
        })
    };
    let mut b = WorkflowBuilder::new();
    let x = b.input("x", 4 * MB);
    let l = b.intermediate("l", 2 * MB);
    let r = b.intermediate("r", 2 * MB);
    let z = b.intermediate("z", MB);
    b.submit(
        "source",
        cost(2e9),
        &[(x, Direction::In), (l, Direction::Out)],
        false,
    )
    .expect("source");
    b.submit(
        "left",
        cost(1e9),
        &[(l, Direction::In), (r, Direction::Out)],
        false,
    )
    .expect("left");
    b.submit(
        "right",
        cost(1e9),
        &[(x, Direction::In), (z, Direction::Out)],
        false,
    )
    .expect("right");
    b.submit(
        "join",
        cost(3e9),
        &[(r, Direction::In), (z, Direction::InOut)],
        false,
    )
    .expect("join");
    b.build()
}

fn golden_compare(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; if the change is deliberate, \
         regenerate with GOLDEN_REGEN=1"
    );
}

#[test]
fn prv_export_matches_golden() {
    let cluster = ClusterSpec::tiny();
    let nodes = cluster.nodes;
    let mut cfg = RunConfig::new(cluster, ProcessorKind::Gpu).with_trace();
    cfg.jitter_sigma = 0.0;
    let report = run(&diamond_workflow(), &cfg).expect("diamond runs");
    assert!(!report.trace.is_empty(), "trace must have records");
    golden_compare("diamond.prv", &to_paraver_prv(&report.trace, nodes));
}

#[test]
fn pcf_legend_matches_golden() {
    golden_compare("states.pcf", &paraver_pcf());
}
