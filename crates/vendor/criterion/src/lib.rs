//! Offline drop-in replacement for the subset of `criterion` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this vendored
//! stand-in provides the same API surface (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!`) with a simple wall-clock sampler: per benchmark it
//! estimates the cost of one iteration, sizes samples to roughly 5 ms,
//! runs up to `sample_size` samples bounded by a ~2 s per-bench budget,
//! and prints `min / median / max` per-iteration times. No statistics
//! beyond that, no plots, no saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock per sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);
/// Soft cap on total measured time per benchmark.
const BENCH_BUDGET: Duration = Duration::from_secs(2);

/// Benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} \u{00b5}s", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_bench(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up run doubling as a per-iteration cost estimate.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let per_sample = per_iter * iters as u32;
    let budget_samples = (BENCH_BUDGET.as_nanos() / per_sample.as_nanos().max(1)).max(3) as usize;
    let samples = sample_size.min(budget_samples).max(1);

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed / iters as u32);
    }
    times.sort_unstable();
    let (min, med, max) = (times[0], times[times.len() / 2], times[times.len() - 1]);
    println!(
        "{id:<50} time: [{} {} {}]  ({samples} samples x {iters} iters)",
        human(min),
        human(med),
        human(max),
    );
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` plus any user args; the last
        // non-flag argument acts as a substring filter, as in criterion.
        let filter = std::env::args().skip(1).rfind(|a| !a.starts_with('-'));
        Criterion {
            filter,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Applies CLI configuration (no-op shim; kept for API parity).
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.matches(id) {
            run_bench(id, self.sample_size, &mut f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.criterion.matches(&full) {
            run_bench(&full, self.effective_samples(), &mut f);
        }
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            run_bench(&full, self.effective_samples(), &mut |b| f(b, input));
        }
        self
    }

    /// Closes the group (no-op shim; kept for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_all_iterations() {
        let mut hits = 0u64;
        let mut b = Bencher {
            iters: 7,
            elapsed: Duration::ZERO,
        };
        b.iter(|| hits += 1);
        assert_eq!(hits, 7);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("kmeans", 42).id, "kmeans/42");
    }

    #[test]
    fn human_units() {
        assert_eq!(human(Duration::from_nanos(12)), "12 ns");
        assert_eq!(human(Duration::from_micros(3)), "3.00 \u{00b5}s");
        assert_eq!(human(Duration::from_millis(250)), "250.00 ms");
        assert_eq!(human(Duration::from_secs(2)), "2.000 s");
    }
}
