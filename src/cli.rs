//! Argument parsing for the `gpuflow` CLI binary — kept in the library
//! so the flag grammar is unit-testable.

use std::collections::HashMap;

use gpuflow_advisor::Workload;
use gpuflow_cluster::{ProcessorKind, StorageArchitecture};
use gpuflow_data::DatasetSpec;
use gpuflow_runtime::{FaultPlan, RecoveryPolicy, SchedulingPolicy};

/// Parsed `--key value` flags.
#[derive(Debug, Clone)]
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses a flat `--key value` argument list.
    ///
    /// # Errors
    /// Rejects positional arguments and dangling flags.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        Args::parse_with(argv, &[])
    }

    /// Parses a `--key value` argument list in which the flags named in
    /// `bool_flags` take no value (e.g. `--json`).
    ///
    /// # Errors
    /// Rejects positional arguments and dangling value flags.
    pub fn parse_with(argv: &[String], bool_flags: &[&str]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}' (flags are --key value)"));
            };
            if bool_flags.contains(&key) {
                flags.insert(key.to_string(), String::from("true"));
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            flags.insert(key.to_string(), value.clone());
        }
        Ok(Args { flags })
    }

    /// Raw value of a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Whether a boolean flag (declared via [`Args::parse_with`]) was
    /// present.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Numeric flag with a default.
    ///
    /// # Errors
    /// Reports unparsable values.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    /// Mandatory numeric flag.
    ///
    /// # Errors
    /// Reports missing or unparsable values.
    pub fn required_num<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let v = self
            .get(key)
            .ok_or_else(|| format!("--{key} is required"))?;
        v.parse()
            .map_err(|_| format!("--{key}: cannot parse '{v}'"))
    }
}

/// Builds the workload described by `--workload` and its parameters.
///
/// # Errors
/// Reports unknown workloads and missing dimensions.
pub fn workload_from(args: &Args) -> Result<Workload, String> {
    let rows: u64 = args.required_num("rows")?;
    let cols: u64 = args.required_num("cols")?;
    let seed: u64 = args.num("seed", 0xD151B)?;
    let dataset = DatasetSpec::uniform("cli", rows, cols, seed);
    match args.get("workload").unwrap_or("kmeans") {
        "matmul" => Ok(Workload::Matmul { dataset }),
        "fma" => Ok(Workload::MatmulFma { dataset }),
        "cholesky" => Ok(Workload::Cholesky { dataset }),
        "kmeans" => Ok(Workload::Kmeans {
            dataset,
            clusters: args.num("clusters", 10)?,
            iterations: args.num("iterations", 3)?,
        }),
        "knn" => Ok(Workload::Knn {
            dataset,
            queries: args.num("queries", 256)?,
            k: args.num("k", 10)?,
        }),
        other => Err(format!(
            "unknown workload '{other}' (matmul, fma, kmeans, knn, cholesky)"
        )),
    }
}

/// Parses `--processor`.
///
/// # Errors
/// Reports unknown values.
pub fn processor_from(args: &Args) -> Result<ProcessorKind, String> {
    match args.get("processor").unwrap_or("cpu") {
        "cpu" => Ok(ProcessorKind::Cpu),
        "gpu" => Ok(ProcessorKind::Gpu),
        other => Err(format!("unknown processor '{other}' (cpu, gpu)")),
    }
}

/// Parses `--storage`.
///
/// # Errors
/// Reports unknown values.
pub fn storage_from(args: &Args) -> Result<StorageArchitecture, String> {
    match args.get("storage").unwrap_or("shared") {
        "shared" => Ok(StorageArchitecture::SharedDisk),
        "local" => Ok(StorageArchitecture::LocalDisk),
        other => Err(format!("unknown storage '{other}' (shared, local)")),
    }
}

/// Parses `--policy`.
///
/// # Errors
/// Reports unknown values.
pub fn policy_from(args: &Args) -> Result<SchedulingPolicy, String> {
    match args.get("policy").unwrap_or("fifo") {
        "fifo" | "generation-order" => Ok(SchedulingPolicy::GenerationOrder),
        "locality" | "data-locality" => Ok(SchedulingPolicy::DataLocality),
        "critical-path" | "cp" => Ok(SchedulingPolicy::CriticalPath),
        other => Err(format!(
            "unknown policy '{other}' (fifo, locality, critical-path)"
        )),
    }
}

/// Parses `--faults SPEC` into a fault plan (see
/// [`FaultPlan::parse`] for the clause grammar, e.g.
/// `seed:42;crash:node=1,at=0.2,rejoin=0.1;taskfail:p=0.05`).
///
/// # Errors
/// Reports malformed specifications.
pub fn faults_from(args: &Args) -> Result<Option<FaultPlan>, String> {
    match args.get("faults") {
        None => Ok(None),
        Some(spec) => FaultPlan::parse(spec)
            .map(Some)
            .map_err(|e| format!("--faults: {e}")),
    }
}

/// Parses the recovery-policy flags `--max-retries N`,
/// `--backoff SECS`, `--resubmit alt|same`, `--fallback on|off`.
///
/// # Errors
/// Reports unparsable values.
pub fn recovery_from(args: &Args) -> Result<RecoveryPolicy, String> {
    let default = RecoveryPolicy::default();
    let resubmit_alternate = match args.get("resubmit") {
        None => default.resubmit_alternate,
        Some("alt") => true,
        Some("same") => false,
        Some(other) => return Err(format!("--resubmit: '{other}' (alt, same)")),
    };
    let gpu_to_cpu_fallback = match args.get("fallback") {
        None => default.gpu_to_cpu_fallback,
        Some("on") => true,
        Some("off") => false,
        Some(other) => return Err(format!("--fallback: '{other}' (on, off)")),
    };
    Ok(RecoveryPolicy {
        max_retries: args.num("max-retries", default.max_retries)?,
        backoff_base_secs: args.num("backoff", default.backoff_base_secs)?,
        resubmit_alternate,
        gpu_to_cpu_fallback,
    })
}

/// Control verbs `gpuflow ctl ACTION` forwards to a running `gpuflowd`
/// unchanged.
pub const CTL_ACTIONS: [&str; 7] = [
    "drain", "health", "report", "metrics", "alerts", "log", "shutdown",
];

/// Builds the one-line daemon request for the client verbs
/// (`gpuflow submit` / `queue` / `cancel` / `ctl ACTION`) — kept in the
/// library so the request grammar is unit-testable. `verb` is the CLI
/// subcommand; for `ctl`, the action is the verb itself.
///
/// # Errors
/// Reports missing flags and unknown control actions.
pub fn daemon_request_from(verb: &str, args: &Args) -> Result<String, String> {
    match verb {
        "submit" => {
            let tenant = args
                .get("tenant")
                .ok_or("--tenant is required (a tenant name the daemon was started with)")?;
            let shape = args.get("shape").unwrap_or("wide");
            let tasks: u64 = args.required_num("tasks")?;
            let prio: u32 = args.num("prio", 0)?;
            let mut line = format!("submit tenant={tenant} shape={shape} tasks={tasks}");
            if prio != 0 {
                line.push_str(&format!(" prio={prio}"));
            }
            Ok(line)
        }
        "queue" => Ok(if args.flag("json") {
            "queue json".to_string()
        } else {
            "queue".to_string()
        }),
        "cancel" => {
            let job: u64 = args.required_num("job")?;
            Ok(format!("cancel job={job}"))
        }
        action if CTL_ACTIONS.contains(&action) => Ok(action.to_string()),
        other => Err(format!(
            "unknown daemon action '{other}' ({})",
            CTL_ACTIONS.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        let v: Vec<String> = list.iter().map(|s| s.to_string()).collect();
        Args::parse(&v).unwrap()
    }

    #[test]
    fn parses_flag_pairs() {
        let a = args(&["--rows", "100", "--cols", "8"]);
        assert_eq!(a.get("rows"), Some("100"));
        assert_eq!(a.required_num::<u64>("cols").unwrap(), 8);
        assert_eq!(a.num::<u64>("grid", 4).unwrap(), 4);
    }

    #[test]
    fn bool_flags_need_no_value() {
        let v: Vec<String> = ["--json", "--out", "x.txt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let a = Args::parse_with(&v, &["json"]).unwrap();
        assert!(a.flag("json"));
        assert!(!a.flag("update"));
        assert_eq!(a.get("out"), Some("x.txt"));
        // Without the declaration, --json swallows `--out` as its value
        // and the orphaned `x.txt` is rejected as positional.
        assert!(Args::parse(&v).is_err());
    }

    #[test]
    fn rejects_positional_and_dangling() {
        let bad = vec!["positional".to_string()];
        assert!(Args::parse(&bad).is_err());
        let dangling = vec!["--rows".to_string()];
        assert!(Args::parse(&dangling).is_err());
    }

    #[test]
    fn reports_unparsable_numbers() {
        let a = args(&["--rows", "many"]);
        let err = a.required_num::<u64>("rows").unwrap_err();
        assert!(err.contains("cannot parse"));
    }

    #[test]
    fn builds_every_workload() {
        for (name, expect) in [
            ("matmul", "Matmul"),
            ("fma", "MatmulFMA"),
            ("kmeans", "Kmeans"),
            ("knn", "Knn"),
            ("cholesky", "Cholesky"),
        ] {
            let a = args(&["--workload", name, "--rows", "64", "--cols", "64"]);
            let w = workload_from(&a).unwrap();
            assert!(w.label().contains(expect), "{name} -> {}", w.label());
        }
    }

    #[test]
    fn kmeans_parameters_flow_through() {
        let a = args(&[
            "--workload",
            "kmeans",
            "--rows",
            "64",
            "--cols",
            "8",
            "--clusters",
            "7",
            "--iterations",
            "2",
        ]);
        let w = workload_from(&a).unwrap();
        assert!(w.label().contains("k=7"));
        assert!(w.label().contains("iters=2"));
    }

    #[test]
    fn enum_flags_parse_with_aliases() {
        let a = args(&["--processor", "gpu", "--storage", "local", "--policy", "cp"]);
        assert_eq!(processor_from(&a).unwrap(), ProcessorKind::Gpu);
        assert_eq!(storage_from(&a).unwrap(), StorageArchitecture::LocalDisk);
        assert_eq!(policy_from(&a).unwrap(), SchedulingPolicy::CriticalPath);
    }

    #[test]
    fn defaults_are_the_paper_settings() {
        let a = args(&[]);
        assert_eq!(processor_from(&a).unwrap(), ProcessorKind::Cpu);
        assert_eq!(storage_from(&a).unwrap(), StorageArchitecture::SharedDisk);
        assert_eq!(policy_from(&a).unwrap(), SchedulingPolicy::GenerationOrder);
    }

    #[test]
    fn fault_flags_parse_and_round_trip() {
        let a = args(&[]);
        assert_eq!(faults_from(&a).unwrap(), None);
        assert_eq!(recovery_from(&a).unwrap(), RecoveryPolicy::default());

        let a = args(&["--faults", "seed:7;crash:node=1,at=0.2,rejoin=0.1"]);
        let plan = faults_from(&a).unwrap().unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.node_crashes.len(), 1);

        let a = args(&[
            "--max-retries",
            "5",
            "--backoff",
            "0.5",
            "--resubmit",
            "same",
            "--fallback",
            "on",
        ]);
        let p = recovery_from(&a).unwrap();
        assert_eq!(p.max_retries, 5);
        assert_eq!(p.backoff_base_secs, 0.5);
        assert!(!p.resubmit_alternate);
        assert!(p.gpu_to_cpu_fallback);
    }

    #[test]
    fn bad_fault_flags_error_clearly() {
        let a = args(&["--faults", "crash:node=x"]);
        assert!(faults_from(&a).unwrap_err().starts_with("--faults:"));
        let a = args(&["--resubmit", "elsewhere"]);
        assert!(recovery_from(&a).unwrap_err().contains("alt, same"));
        let a = args(&["--fallback", "maybe"]);
        assert!(recovery_from(&a).unwrap_err().contains("on, off"));
    }

    #[test]
    fn daemon_requests_render_the_protocol_lines() {
        let a = args(&["--tenant", "acme", "--shape", "tree", "--tasks", "24"]);
        assert_eq!(
            daemon_request_from("submit", &a).unwrap(),
            "submit tenant=acme shape=tree tasks=24"
        );
        let a = args(&["--tenant", "acme", "--tasks", "8", "--prio", "5"]);
        assert_eq!(
            daemon_request_from("submit", &a).unwrap(),
            "submit tenant=acme shape=wide tasks=8 prio=5"
        );
        let a = args(&["--job", "3"]);
        assert_eq!(daemon_request_from("cancel", &a).unwrap(), "cancel job=3");
        let v: Vec<String> = vec!["--json".into()];
        let a = Args::parse_with(&v, &["json"]).unwrap();
        assert_eq!(daemon_request_from("queue", &a).unwrap(), "queue json");
        assert_eq!(daemon_request_from("queue", &args(&[])).unwrap(), "queue");
        for action in CTL_ACTIONS {
            assert_eq!(daemon_request_from(action, &args(&[])).unwrap(), action);
        }
        assert!(daemon_request_from("submit", &args(&[])).is_err());
        assert!(daemon_request_from("cancel", &args(&[])).is_err());
        assert!(daemon_request_from("florp", &args(&[])).is_err());
    }

    #[test]
    fn unknown_values_error_clearly() {
        let a = args(&["--workload", "sorting", "--rows", "8", "--cols", "8"]);
        assert!(workload_from(&a).unwrap_err().contains("unknown workload"));
        let a = args(&["--processor", "tpu"]);
        assert!(processor_from(&a)
            .unwrap_err()
            .contains("unknown processor"));
    }
}
