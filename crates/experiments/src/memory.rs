//! Memory-robustness study (extension).
//!
//! The paper credits distributed chunking with providing "memory
//! robustness to GPUs by breaking the input dataset into chunks" (§1).
//! This experiment quantifies that: for the 100 GB K-means dataset it
//! sweeps the grid dimension and reports the peak per-node working set
//! and the GPU feasibility of each point — the host-side complement of
//! the device OOM walls in Figs. 7/9.

use gpuflow_algorithms::KmeansConfig;
use gpuflow_cluster::ProcessorKind;

use crate::measure::{Context, Outcome};
use crate::table::TextTable;

/// One grid point of the memory sweep.
#[derive(Debug, Clone)]
pub struct MemoryRow {
    /// Grid rows.
    pub grid: u64,
    /// Block size, decimal MB.
    pub block_mb: f64,
    /// Peak per-node working set of the CPU run, bytes (`None` on OOM).
    pub cpu_peak_ram: Option<u64>,
    /// Whether the GPU run fits device memory.
    pub gpu_feasible: bool,
}

/// The memory-robustness result.
#[derive(Debug, Clone)]
pub struct MemoryStudy {
    /// Rows in decreasing task-parallelism order.
    pub rows: Vec<MemoryRow>,
}

/// Runs the sweep on the 100 GB K-means dataset.
pub fn run(ctx: &Context) -> MemoryStudy {
    run_with(ctx, &[256, 64, 16, 4, 1])
}

/// Runs the sweep over the given grids.
pub fn run_with(ctx: &Context, grids: &[u64]) -> MemoryStudy {
    let ds = gpuflow_data::paper::kmeans_100gb();
    let rows = grids
        .iter()
        .map(|&g| {
            let cfg = KmeansConfig::new(ds.clone(), g, 10, 1).expect("valid grid");
            let block_mb = cfg.spec.block_mb();
            let wf = cfg.build_workflow();
            let cpu = ctx.run_default(&wf, ProcessorKind::Cpu);
            let gpu = ctx.run_default(&wf, ProcessorKind::Gpu);
            MemoryRow {
                grid: g,
                block_mb,
                cpu_peak_ram: cpu.map(|r| r.metrics.peak_node_ram),
                gpu_feasible: !matches!(gpu, Outcome::GpuOom),
            }
        })
        .collect();
    MemoryStudy { rows }
}

impl MemoryStudy {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Memory robustness: K-means 100GB, peak node working set vs grid",
            ["grid", "block MB", "peak node RAM GB", "GPU feasible"],
        );
        for r in &self.rows {
            t.push([
                format!("{}x1", r.grid),
                format!("{:.0}", r.block_mb),
                r.cpu_peak_ram
                    .map_or("OOM".into(), |b| format!("{:.1}", b as f64 / 1e9)),
                if r.gpu_feasible { "yes" } else { "no (OOM)" }.to_string(),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finer_chunking_caps_the_working_set() {
        let study = run_with(&Context::default(), &[256, 16, 1]);
        let peaks: Vec<u64> = study.rows.iter().filter_map(|r| r.cpu_peak_ram).collect();
        assert_eq!(peaks.len(), 3, "100 GB fits the 128 GB nodes at all grids");
        // Peak working set shrinks as chunks get finer... but not below
        // what concurrent tasks hold together.
        assert!(
            peaks[0] < peaks[2] / 4,
            "fine chunking must cap memory: {peaks:?}"
        );
        // GPU feasibility flips once blocks outgrow the 12 GB device.
        assert!(study.rows[0].gpu_feasible, "391 MB blocks fit");
        assert!(!study.rows[2].gpu_feasible, "100 GB block cannot fit");
        assert!(study.render().contains("Memory robustness"));
    }
}
