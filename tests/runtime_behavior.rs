//! Behavioural integration tests for executor mechanisms that the paper's
//! analysis depends on: scheduling overhead, barriers, storage paths,
//! heterogeneity + threads combined, pipeline execution, and trace export
//! formats.

use gpuflow::algorithms::{KmeansConfig, Session};
use gpuflow::cluster::{
    ClusterSpec, KernelWork, NodeResources, ProcessorKind, StorageArchitecture,
};
use gpuflow::data::{DatasetSpec, GridDim};
use gpuflow::runtime::{
    run, to_paraver_prv, CostProfile, Direction, RunConfig, SchedulingPolicy, WorkflowBuilder,
};

fn compute_cost(flops: f64) -> CostProfile {
    CostProfile::fully_parallel(KernelWork {
        flops,
        bytes: flops / 10.0,
        parallelism: 1e9,
    })
}

#[test]
fn scheduling_overhead_delays_the_first_dispatch() {
    let mut b = WorkflowBuilder::new();
    let x = b.input("x", 1 << 20);
    b.submit("t", compute_cost(1e9), &[(x, Direction::In)], false)
        .unwrap();
    let wf = b.build();
    let cluster = ClusterSpec::tiny();
    let fifo_overhead = cluster.sched_overhead_fifo.as_secs_f64();
    let report = run(&wf, &RunConfig::new(cluster, ProcessorKind::Cpu)).unwrap();
    let first_start = report.records[0].start.as_secs_f64();
    assert!(
        (first_start - fifo_overhead).abs() < 1e-9,
        "dispatch happens after exactly one master decision: {first_start}"
    );
    // The locality policy pays its higher decision cost.
    let cluster = ClusterSpec::tiny();
    let loc_overhead = cluster.sched_overhead_locality.as_secs_f64();
    let report = run(
        &wf,
        &RunConfig::new(cluster, ProcessorKind::Cpu).with_policy(SchedulingPolicy::DataLocality),
    )
    .unwrap();
    assert!((report.records[0].start.as_secs_f64() - loc_overhead).abs() < 1e-9);
}

#[test]
fn barriers_serialise_phases_in_simulated_time() {
    let mut b = WorkflowBuilder::new();
    let outs: Vec<_> = (0..4)
        .map(|i| b.intermediate(format!("o{i}"), 1 << 20))
        .collect();
    for o in &outs {
        b.submit("phase1", compute_cost(1e9), &[(*o, Direction::Out)], false)
            .unwrap();
    }
    b.barrier().unwrap();
    for o in &outs {
        b.submit(
            "phase2",
            compute_cost(1e9),
            &[(*o, Direction::InOut)],
            false,
        )
        .unwrap();
    }
    let wf = b.build();
    let cluster = ClusterSpec::tiny();
    let report = run(&wf, &RunConfig::new(cluster.clone(), ProcessorKind::Cpu)).unwrap();
    report.check_invariants(&wf, &cluster).unwrap();
    let phase_end = |ty: &str| {
        report
            .records
            .iter()
            .filter(|r| r.task_type == ty)
            .map(|r| r.end)
            .max()
            .unwrap()
    };
    let phase_start = |ty: &str| {
        report
            .records
            .iter()
            .filter(|r| r.task_type == ty)
            .map(|r| r.start)
            .min()
            .unwrap()
    };
    assert!(
        phase_start("phase2") >= phase_end("phase1"),
        "no phase-2 task may start before every phase-1 task finished"
    );
}

#[test]
fn local_storage_round_trips_written_data_cheaply() {
    // An iterative workflow re-reading its own outputs: with local disks
    // the re-read hits the writer's node (home tracking); with the shared
    // file system every round trip crosses the NIC+GPFS path. Use a
    // single node so placement cannot hide the difference, and blocks
    // large enough that bandwidth dominates latency.
    let mut b = WorkflowBuilder::new();
    let big = 512 << 20;
    let x = b.input("x", big);
    let y = b.intermediate("y", big);
    let z = b.intermediate("z", big);
    b.submit(
        "w1",
        compute_cost(1e8),
        &[(x, Direction::In), (y, Direction::Out)],
        false,
    )
    .unwrap();
    b.submit(
        "w2",
        compute_cost(1e8),
        &[(y, Direction::In), (z, Direction::Out)],
        false,
    )
    .unwrap();
    let wf = b.build();
    let mut cluster = ClusterSpec::tiny();
    cluster.nodes = 1;
    // Disable the object cache so the storage path is actually exercised.
    let mut cfg = RunConfig::new(cluster, ProcessorKind::Cpu);
    cfg.cache_fraction = 1e-9;
    let local = run(
        &wf,
        &cfg.clone().with_storage(StorageArchitecture::LocalDisk),
    )
    .unwrap()
    .makespan();
    let shared = run(&wf, &cfg.with_storage(StorageArchitecture::SharedDisk))
        .unwrap()
        .makespan();
    assert!(local < shared, "local {local} vs shared {shared}");
}

#[test]
fn threads_and_heterogeneity_compose() {
    let cluster = ClusterSpec::tiny().with_overrides(vec![
        NodeResources {
            cpu_cores: 8,
            gpus: 0,
        },
        NodeResources {
            cpu_cores: 2,
            gpus: 1,
        },
    ]);
    let wf = KmeansConfig::new(DatasetSpec::uniform("t", 40_000, 100, 1), 5, 10, 2)
        .unwrap()
        .build_workflow();
    let cfg = RunConfig::new(cluster.clone(), ProcessorKind::Cpu).with_cpu_threads(2);
    let report = run(&wf, &cfg).unwrap();
    report.check_invariants(&wf, &cluster).unwrap();
    assert_eq!(report.records.len(), wf.tasks().len());
}

#[test]
fn pipeline_workflows_pass_the_executor_audit() {
    let mut s = Session::new();
    let a = s
        .load(
            DatasetSpec::uniform("a", 8_192, 8_192, 1),
            GridDim::square(4),
        )
        .unwrap();
    let b = s
        .load(
            DatasetSpec::uniform("b", 8_192, 8_192, 2),
            GridDim::square(4),
        )
        .unwrap();
    let c = s.matmul(&a, &b).unwrap();
    s.cholesky(&c).unwrap();
    s.kmeans_fit(&c, 16, 2).unwrap();
    let wf = s.build();
    let cluster = ClusterSpec::minotauro();
    for proc in ProcessorKind::ALL {
        let report = run(&wf, &RunConfig::new(cluster.clone(), proc)).unwrap();
        report.check_invariants(&wf, &cluster).unwrap();
    }
}

#[test]
fn paraver_export_is_well_formed_for_real_runs() {
    let wf = KmeansConfig::new(DatasetSpec::uniform("t", 32_000, 100, 1), 8, 10, 1)
        .unwrap()
        .build_workflow();
    let cluster = ClusterSpec::minotauro();
    let report = run(
        &wf,
        &RunConfig::new(cluster.clone(), ProcessorKind::Gpu).with_trace(),
    )
    .unwrap();
    let prv = to_paraver_prv(&report.trace, cluster.nodes);
    let mut lines = prv.lines();
    assert!(lines.next().unwrap().starts_with("#Paraver"));
    for line in lines {
        let fields: Vec<&str> = line.split(':').collect();
        assert_eq!(fields.len(), 8, "bad record: {line}");
        assert_eq!(fields[0], "1", "state records start with type 1");
        let state: u32 = fields[7].parse().unwrap();
        assert!((1..=5).contains(&state));
        let begin: u64 = fields[5].parse().unwrap();
        let end: u64 = fields[6].parse().unwrap();
        assert!(end > begin);
    }
    // Every traced interval appears.
    assert_eq!(prv.lines().count(), report.trace.len() + 1);
}

#[test]
fn gpu_utilization_reflects_kernel_occupancy() {
    // Compute-heavy coarse tasks keep devices busy; the utilization
    // metric must move accordingly.
    let heavy = KmeansConfig::new(gpuflow::data::paper::kmeans_10gb(), 32, 1000, 1)
        .unwrap()
        .build_workflow();
    let light = KmeansConfig::new(gpuflow::data::paper::kmeans_10gb(), 32, 10, 1)
        .unwrap()
        .build_workflow();
    let cfg = RunConfig::new(ClusterSpec::minotauro(), ProcessorKind::Gpu);
    let u_heavy = run(&heavy, &cfg).unwrap().metrics.gpu_utilization;
    let u_light = run(&light, &cfg).unwrap().metrics.gpu_utilization;
    assert!(u_heavy > u_light, "heavy {u_heavy} vs light {u_light}");
    assert!((0.0..=1.0).contains(&u_heavy));
}
