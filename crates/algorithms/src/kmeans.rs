//! Distributed K-means (the dislib implementation studied in the paper).
//!
//! The dataset is chunked row-wise into a `k × 1` grid (§4.4.4); every
//! iteration runs one `partial_sum` task per block against the current
//! centers, merges the partial tallies in a small reduction tree, and
//! updates the centers — producing the narrow and deep DAG of Fig. 6a
//! (low task parallelism, high task dependency).

use gpuflow_data::{
    kmeans_partial_sum, kmeans_update_centers, BlockCoord, DatasetSpec, DsArray, DsArraySpec,
    GridDim, Matrix, PartitionError,
};
use gpuflow_runtime::{DataId, Direction, Workflow, WorkflowBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::calibration::{kmeans_merge_cost, kmeans_update_cost, partial_sum_cost};

/// Configuration of one distributed K-means workflow.
#[derive(Debug, Clone)]
pub struct KmeansConfig {
    /// The row-wise partitioned dataset.
    pub spec: DsArraySpec,
    /// Number of clusters (the algorithm-specific parameter of Table 1).
    pub clusters: u64,
    /// Lloyd iterations to run.
    pub iterations: u32,
    /// Fan-in of the partial-result merge tree.
    pub merge_arity: usize,
}

impl KmeansConfig {
    /// Partitions `dataset` into `grid_rows × 1` row-wise blocks.
    ///
    /// # Errors
    /// Propagates partitioning violations.
    pub fn new(
        dataset: DatasetSpec,
        grid_rows: u64,
        clusters: u64,
        iterations: u32,
    ) -> Result<Self, PartitionError> {
        let spec = DsArraySpec::partition(dataset, GridDim::row_wise(grid_rows))?;
        Ok(KmeansConfig {
            spec,
            clusters,
            iterations,
            merge_arity: 4,
        })
    }

    /// Features per sample.
    pub fn features(&self) -> u64 {
        self.spec.dataset.dim.cols
    }

    /// Bytes of one partial tally (k centers × (features + count)).
    fn partial_bytes(&self) -> u64 {
        self.clusters * (self.features() + 1) * 8
    }

    /// Bytes of the centers object.
    fn centers_bytes(&self) -> u64 {
        self.clusters * self.features() * 8
    }

    /// Builds the dependency DAG.
    pub fn build_workflow(&self) -> Workflow {
        let mut b = WorkflowBuilder::new();
        let n = self.features();
        let blocks: Vec<(DataId, u64)> = self
            .spec
            .coords()
            .map(|c| {
                let dim = self.spec.block_dim_at(c);
                let bytes = dim.bytes(self.spec.dataset.elem_bytes);
                (b.input(format!("X[{}]", c.row), bytes), dim.rows)
            })
            .collect();
        let centers = b.input("centers", self.centers_bytes());

        for iter in 0..self.iterations {
            // One partial_sum per block (Fig. 6a's numbered nodes).
            let mut partials: Vec<DataId> = blocks
                .iter()
                .enumerate()
                .map(|(i, &(block, rows))| {
                    let p = b.intermediate(format!("psum[{iter},{i}]"), self.partial_bytes());
                    b.submit(
                        "partial_sum",
                        partial_sum_cost(rows, n, self.clusters),
                        &[
                            (block, Direction::In),
                            (centers, Direction::In),
                            (p, Direction::Out),
                        ],
                        false,
                    )
                    .expect("valid partial_sum task");
                    p
                })
                .collect();
            // Merge tree (dislib's _merge, CPU-side bookkeeping).
            let mut round = 0;
            while partials.len() > 1 {
                let mut next = Vec::with_capacity(partials.len().div_ceil(self.merge_arity));
                for group in partials.chunks(self.merge_arity) {
                    if group.len() == 1 {
                        next.push(group[0]);
                        continue;
                    }
                    let merged = b.intermediate(
                        format!("merge[{iter},{round},{}]", next.len()),
                        self.partial_bytes(),
                    );
                    let mut accesses: Vec<(DataId, Direction)> =
                        group.iter().map(|&p| (p, Direction::In)).collect();
                    accesses.push((merged, Direction::Out));
                    b.submit(
                        "merge",
                        kmeans_merge_cost(self.clusters, n, group.len()),
                        &accesses,
                        true,
                    )
                    .expect("valid merge task");
                    next.push(merged);
                }
                partials = next;
                round += 1;
            }
            // Update the centers from the merged tally (the sync point of
            // Fig. 6a; the InOut access serialises iterations).
            b.submit(
                "update_centers",
                kmeans_update_cost(self.clusters, n),
                &[(partials[0], Direction::In), (centers, Direction::InOut)],
                true,
            )
            .expect("valid update task");
        }
        b.build()
    }
}

/// Deterministic initial centers: `k` points uniform in the unit cube.
pub fn initial_centers(clusters: usize, features: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(clusters, features, |_, _| rng.gen::<f64>())
}

/// Functional reference: runs `iterations` of blocked K-means over real
/// data, mirroring the workflow's partial-sum/merge/update structure.
pub fn reference_kmeans(data: &DsArray, centers0: &Matrix, iterations: u32) -> Matrix {
    let mut centers = centers0.clone();
    let grid = data.spec().grid;
    for _ in 0..iterations {
        let partials: Vec<_> = (0..grid.rows)
            .map(|row| kmeans_partial_sum(data.block(BlockCoord { row, col: 0 }), &centers))
            .collect();
        centers = kmeans_update_centers(&partials, &centers);
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(rows: u64, grid: u64, k: u64, iters: u32) -> KmeansConfig {
        KmeansConfig::new(DatasetSpec::uniform("km", rows, 4, 1), grid, k, iters).unwrap()
    }

    #[test]
    fn task_counts_per_iteration() {
        // 8 blocks, arity 4: 8 partial_sum + 2 merge + 1 merge + 1 update.
        let wf = config(64, 8, 3, 1).build_workflow();
        let by_type = |t: &str| wf.tasks().iter().filter(|x| x.task_type == t).count();
        assert_eq!(by_type("partial_sum"), 8);
        assert_eq!(by_type("merge"), 3);
        assert_eq!(by_type("update_centers"), 1);
    }

    #[test]
    fn dag_is_narrow_and_deep() {
        let three_iters = config(64, 4, 3, 3).build_workflow();
        let shape = three_iters.shape();
        assert_eq!(shape.max_width, 4, "width = #blocks (low task parallelism)");
        // Per iteration: partial_sum -> merge -> update = 3 levels.
        assert_eq!(shape.height, 9, "iterations stack levels (deep DAG)");
        three_iters.check_invariants().unwrap();
    }

    #[test]
    fn iterations_serialise_through_centers() {
        let wf = config(64, 4, 3, 2).build_workflow();
        // The second iteration's partial_sums depend on the first update.
        let update1 = wf
            .tasks()
            .iter()
            .find(|t| t.task_type == "update_centers")
            .unwrap()
            .id;
        let second_ps = wf
            .tasks()
            .iter()
            .filter(|t| t.task_type == "partial_sum")
            .nth(4)
            .unwrap();
        assert!(wf.predecessors(second_ps.id).contains(&update1));
    }

    #[test]
    fn merge_and_update_are_cpu_only() {
        let wf = config(64, 4, 3, 1).build_workflow();
        for t in wf.tasks() {
            match t.task_type.as_str() {
                "partial_sum" => assert!(!t.cpu_only),
                _ => assert!(t.cpu_only, "{} must stay on the CPU", t.task_type),
            }
        }
    }

    #[test]
    fn reference_kmeans_converges_on_separated_clusters() {
        // Two well-separated blobs in 1-D; centers must land on them.
        let rows = 64;
        let m = Matrix::from_fn(rows, 1, |i, _| if i % 2 == 0 { 0.1 } else { 10.0 });
        let ds = DatasetSpec::uniform("sep", rows as u64, 1, 1);
        let arr = DsArray::from_matrix(ds, &m, GridDim::row_wise(4)).unwrap();
        let init = Matrix::from_vec(2, 1, vec![1.0, 8.0]);
        let centers = reference_kmeans(&arr, &init, 5);
        assert!((centers[(0, 0)] - 0.1).abs() < 1e-9);
        assert!((centers[(1, 0)] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn blocked_kmeans_matches_single_block() {
        let ds = DatasetSpec::uniform("km", 96, 5, 42);
        let m = ds.materialize().unwrap();
        let init = initial_centers(4, 5, 7);
        let single = DsArray::from_matrix(ds.clone(), &m, GridDim::row_wise(1)).unwrap();
        let blocked = DsArray::from_matrix(ds, &m, GridDim::row_wise(8)).unwrap();
        let a = reference_kmeans(&single, &init, 4);
        let b = reference_kmeans(&blocked, &init, 4);
        assert!(
            a.max_abs_diff(&b) < 1e-9,
            "chunking must not change results"
        );
    }

    #[test]
    fn initial_centers_are_deterministic() {
        assert_eq!(initial_centers(3, 4, 9), initial_centers(3, 4, 9));
        assert_ne!(initial_centers(3, 4, 9), initial_centers(3, 4, 10));
    }

    #[test]
    fn ragged_paper_grid_builds() {
        // 10 GB K-means at 256x1 (12.5M rows do not divide by 256).
        let c = KmeansConfig::new(gpuflow_data::paper::kmeans_10gb(), 256, 10, 1).unwrap();
        let wf = c.build_workflow();
        let ps = wf
            .tasks()
            .iter()
            .filter(|t| t.task_type == "partial_sum")
            .count();
        assert_eq!(ps, 256);
    }
}
