//! D5 fixture: a nondeterministic value escaping through a helper
//! chain into a render sink, plus a sink-side suppression.

fn jitter_seed() -> u64 {
    let mut v = vec![3u64, 1, 2];
    v.sort_unstable_by(|a, b| b.cmp(a));
    v[0]
}

fn widen(x: u64) -> u64 {
    jitter_seed() + x
}

fn render_summary(out: &mut String) {
    let x = widen(1);
    out.push_str(&x.to_string());
}

fn render_scratch(out: &mut String) {
    // lint: allow(D5, scratch output is never part of an artifact)
    let x = widen(2);
    out.push_str(&x.to_string());
}

fn unrelated(out: &mut String) {
    // Calls the tainted helper but is not a sink by name: no finding.
    let x = widen(3);
    out.push_str(&x.to_string());
}
