//! Prometheus-format metrics over the telemetry stream.
//!
//! The EventBus gives one linear, deterministic event stream per run;
//! this module folds that stream into a **metrics registry** — the
//! pull-based observability surface production schedulers expose — and
//! renders it in the Prometheus *text exposition format* with zero
//! external dependencies:
//!
//! * **counters** — tasks ready/dispatched/completed (per type),
//!   failures, retries, resubmissions, faults, cache hits/misses/
//!   evictions, per-link transfer counts and bytes, scheduler
//!   decisions and modelled overhead;
//! * **gauges** — ready-set depth, running tasks, per-node busy
//!   cores/GPUs/RAM/liveness, the virtual clock;
//! * **fixed-bucket histograms** — per-type task latency (dispatch to
//!   completion), with Prometheus cumulative `le` buckets.
//!
//! Between snapshots the registry also *samples itself* into a
//! virtual-time series at a configurable interval, so a finished run
//! yields metrics-over-time without any wall-clock involvement.
//!
//! Determinism contract: every number is derived from integer-ns event
//! times and integer counts, families render in fixed (BTreeMap or
//! declaration) order, and seconds are formatted as exact `ns/1e9`
//! fixed-point strings — so the exposition text is byte-identical for
//! identical runs at any `--threads` count, whether folded live
//! ([`MetricsHub`] attached to the bus) or replayed from a log
//! ([`MetricsRegistry::from_log`]).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use fxhash::FxHashMap;
use gpuflow_sim::SimDuration;

use super::alert::{AlertEngine, AlertRule, AlertSnapshot};
use super::event::{LinkKind, TelemetryEvent};
use super::sink::TelemetrySink;
use super::TelemetryLog;

/// Default self-sampling interval of the virtual-time series: 10 ms of
/// simulated time.
pub const DEFAULT_SAMPLE_INTERVAL: SimDuration = SimDuration::from_nanos(10_000_000);

/// Upper bounds (nanoseconds) of the finite task-latency buckets; the
/// `+Inf` bucket is implicit. Spans 1 ms to 10 s — the range simulated
/// task durations occupy across the paper's workloads and the stress
/// shapes.
const LATENCY_BOUNDS_NS: [u64; 13] = [
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    2_500_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// `le` label of each finite bucket, pre-rendered so the exposition
/// never formats a float.
const LATENCY_LE_LABELS: [&str; 13] = [
    "0.001", "0.0025", "0.005", "0.01", "0.025", "0.05", "0.1", "0.25", "0.5", "1", "2.5", "5",
    "10",
];

/// A fixed-bucket histogram in the Prometheus style: per-bucket counts
/// (non-cumulative internally; rendered cumulatively), an exact
/// integer-ns sum, and the observation count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BucketHistogram {
    /// One slot per finite bound plus the overflow (`+Inf`) slot.
    counts: [u64; LATENCY_BOUNDS_NS.len() + 1],
    /// Sum of observed values, integer nanoseconds.
    sum_ns: u64,
    /// Total observations.
    count: u64,
}

impl BucketHistogram {
    /// Records one observation of `ns` nanoseconds.
    pub fn observe_ns(&mut self, ns: u64) {
        let slot = LATENCY_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(LATENCY_BOUNDS_NS.len());
        self.counts[slot] += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations, integer nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Per-bucket (non-cumulative) counts, overflow slot last.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bound (integer ns) of the smallest bucket whose cumulative
    /// count reaches `ceil(count·num/den)` — the bucketed quantile
    /// estimate alert rules use. Returns `None` on an empty histogram
    /// and `Some(u64::MAX)` when only the `+Inf` slot reaches the rank.
    pub fn quantile_bound_ns(&self, num: u64, den: u64) -> Option<u64> {
        if self.count == 0 || den == 0 {
            return None;
        }
        let rank = (self.count.saturating_mul(num)).div_ceil(den).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(LATENCY_BOUNDS_NS.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }
}

/// Per-link transfer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct LinkCounters {
    transfers: u64,
    bytes: u64,
}

/// Per-tenant accounting of the multi-tenant daemon path: admission
/// counters fed by the daemon's journal and task counters attributed by
/// task-id range (see [`MetricsRegistry::begin_epoch`]). Families
/// render in declaration (daemon-config) order, so the exposition
/// stays byte-identical for identical runs.
#[derive(Debug, Clone, Default, PartialEq)]
struct TenantMetrics {
    name: String,
    weight: u32,
    /// Jobs admitted but not yet finished (gauge, set by the daemon).
    queued: u64,
    admitted: u64,
    cancelled: u64,
    /// Typed rejects, keyed by reason label.
    rejected: BTreeMap<String, u64>,
    completed_tasks: u64,
    latency: BucketHistogram,
}

/// Sampled per-node occupancy, tracked from `NodeGauge` and
/// `NodeDown`/`NodeUp` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeState {
    busy_cores: u64,
    busy_gpus: u64,
    ram_used: u64,
    up: bool,
}

impl Default for NodeState {
    fn default() -> Self {
        NodeState {
            busy_cores: 0,
            busy_gpus: 0,
            ram_used: 0,
            up: true,
        }
    }
}

/// One row of the virtual-time series: the registry's cluster-wide
/// state at a sampling instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleRow {
    /// Sampling instant, integer nanoseconds of virtual time.
    pub t_ns: u64,
    /// Ready-set depth.
    pub ready: u64,
    /// Running tasks.
    pub running: u64,
    /// Busy host cores, summed over nodes.
    pub busy_cores: u64,
    /// Busy GPU devices, summed over nodes.
    pub busy_gpus: u64,
    /// Resident working-set bytes, summed over nodes.
    pub ram_used: u64,
    /// Cumulative completed tasks.
    pub completed: u64,
    /// Cumulative cache hits.
    pub cache_hits: u64,
    /// Cumulative cache misses.
    pub cache_misses: u64,
    /// Cumulative transfer bytes over every modelled link.
    pub transfer_bytes: u64,
}

/// The metrics registry: counters, gauges, and fixed-bucket histograms
/// folded incrementally from [`TelemetryEvent`]s, plus the self-sampled
/// virtual-time series. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    interval_ns: u64,
    /// Monotonic virtual clock: the maximum primary event time seen.
    /// Fault-plan announcements carry *future* timestamps at stream
    /// start and deliberately do not advance it.
    clock_ns: u64,
    next_sample_ns: u64,
    sealed: bool,
    // Gauges.
    ready_tasks: u64,
    running_tasks: u64,
    nodes: Vec<NodeState>,
    // High-water marks (for the summary).
    max_queue_depth: u64,
    peak_running: u64,
    // Counters.
    ready_total: u64,
    decisions_total: u64,
    dispatched_total: u64,
    failed_total: u64,
    retries_total: u64,
    resubmissions_total: u64,
    faults_total: u64,
    node_downs_total: u64,
    node_ups_total: u64,
    invalidated_blocks_total: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    /// Indexed by [`link_index`]: read, write, h2d, d2h.
    links: [LinkCounters; 4],
    sched_overhead_ns: u64,
    completed_by_type: BTreeMap<String, u64>,
    latency_by_type: BTreeMap<String, BucketHistogram>,
    /// Dispatch instant and task type of each running attempt; entries
    /// are only inserted and removed by key, never iterated, so the
    /// hash order cannot reach any output.
    inflight: FxHashMap<u32, (u64, String)>,
    samples: Vec<SampleRow>,
    // Multi-tenant daemon state (empty outside the daemon path, which
    // keeps the exposition byte-identical to the single-run format).
    /// Virtual-time offset added to every event time, so one registry
    /// can concatenate the epochs of a daemon's successive drains onto
    /// one monotonic clock (see [`MetricsRegistry::begin_epoch`]).
    offset_ns: u64,
    /// Per-tenant accounting, in declaration order.
    tenants: Vec<TenantMetrics>,
    /// `(task_lo, task_hi, tenant)` of the current epoch, sorted —
    /// completion events are attributed to tenants by binary search.
    tenant_ranges: Vec<(u32, u32, usize)>,
    /// Ready→dispatch queue residency per attempt; folded always (it is
    /// cheap), exposed only while the alert engine is enabled so the
    /// pre-alerting exposition stays byte-identical.
    queue_wait: BucketHistogram,
    /// Ready instants of tasks not yet dispatched; insert/remove by key
    /// only, never iterated, so hash order cannot reach any output.
    pending_ready: FxHashMap<u32, u64>,
    /// SLO rule evaluator, stepped at every sealed sample boundary.
    alerts: Option<AlertEngine>,
}

/// Declaration-order index of a link label in [`MetricsRegistry::links`].
fn link_index(link: LinkKind) -> usize {
    match link {
        LinkKind::StorageRead => 0,
        LinkKind::StorageWrite => 1,
        LinkKind::HostToDevice => 2,
        LinkKind::DeviceToHost => 3,
    }
}

/// Label of each [`MetricsRegistry::links`] slot, in slot order.
const LINK_LABELS: [&str; 4] = ["read", "write", "h2d", "d2h"];

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new(DEFAULT_SAMPLE_INTERVAL)
    }
}

impl MetricsRegistry {
    /// An empty registry self-sampling every `interval` of virtual
    /// time. A zero interval disables the series (snapshot-only).
    pub fn new(interval: SimDuration) -> Self {
        let interval_ns = interval.as_nanos();
        MetricsRegistry {
            interval_ns,
            clock_ns: 0,
            next_sample_ns: interval_ns.max(1),
            sealed: false,
            ready_tasks: 0,
            running_tasks: 0,
            nodes: Vec::new(),
            max_queue_depth: 0,
            peak_running: 0,
            ready_total: 0,
            decisions_total: 0,
            dispatched_total: 0,
            failed_total: 0,
            retries_total: 0,
            resubmissions_total: 0,
            faults_total: 0,
            node_downs_total: 0,
            node_ups_total: 0,
            invalidated_blocks_total: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            links: [LinkCounters::default(); 4],
            sched_overhead_ns: 0,
            completed_by_type: BTreeMap::new(),
            latency_by_type: BTreeMap::new(),
            inflight: FxHashMap::default(),
            samples: Vec::new(),
            offset_ns: 0,
            tenants: Vec::new(),
            tenant_ranges: Vec::new(),
            queue_wait: BucketHistogram::default(),
            pending_ready: FxHashMap::default(),
            alerts: None,
        }
    }

    /// Folds a complete telemetry log into a sealed registry.
    pub fn from_log(log: &TelemetryLog, interval: SimDuration) -> Self {
        let mut reg = MetricsRegistry::new(interval);
        log.replay(&mut reg);
        reg
    }

    /// The sampling interval, integer nanoseconds (0 = disabled).
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// The virtual-time series sampled so far.
    pub fn samples(&self) -> &[SampleRow] {
        &self.samples
    }

    /// The per-type latency histograms.
    pub fn latency_histograms(&self) -> &BTreeMap<String, BucketHistogram> {
        &self.latency_by_type
    }

    /// Total completed tasks across types.
    pub fn completed_total(&self) -> u64 {
        self.completed_by_type.values().sum()
    }

    fn ensure_node(&mut self, node: usize) -> &mut NodeState {
        if node >= self.nodes.len() {
            self.nodes.resize(node + 1, NodeState::default());
        }
        &mut self.nodes[node]
    }

    fn push_sample(&mut self, t_ns: u64) {
        self.samples.push(SampleRow {
            t_ns,
            ready: self.ready_tasks,
            running: self.running_tasks,
            busy_cores: self.nodes.iter().map(|n| n.busy_cores).sum(),
            busy_gpus: self.nodes.iter().map(|n| n.busy_gpus).sum(),
            ram_used: self.nodes.iter().map(|n| n.ram_used).sum(),
            completed: self.completed_total(),
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            transfer_bytes: self.links.iter().map(|l| l.bytes).sum(),
        });
    }

    /// Advances the sampling clock to `t_ns`, sealing every sample
    /// boundary the stream has moved past. A boundary's row reflects
    /// every event with time `<= boundary`, because it is only sealed
    /// once a strictly later event arrives.
    ///
    /// The epoch offset is applied here — and only here — so every
    /// other computation (latencies, overheads) works on raw event
    /// times where the offset cancels out of the differences.
    fn advance_clock(&mut self, t_ns: u64) {
        let t_ns = t_ns.saturating_add(self.offset_ns);
        if t_ns <= self.clock_ns {
            return;
        }
        if self.interval_ns > 0 {
            while self.next_sample_ns < t_ns {
                let at = self.next_sample_ns;
                self.push_sample(at);
                self.eval_alerts(at);
                self.next_sample_ns += self.interval_ns;
            }
        }
        self.clock_ns = t_ns;
    }

    /// Seals the series: flushes every boundary up to the clock and
    /// appends the end-state row. Idempotent.
    pub fn seal(&mut self) {
        if self.sealed {
            return;
        }
        self.sealed = true;
        if self.interval_ns > 0 {
            while self.next_sample_ns <= self.clock_ns {
                let at = self.next_sample_ns;
                self.push_sample(at);
                self.eval_alerts(at);
                self.next_sample_ns += self.interval_ns;
            }
        }
        if self.samples.last().map(|s| s.t_ns) != Some(self.clock_ns) {
            self.push_sample(self.clock_ns);
        }
        self.eval_alerts(self.clock_ns);
    }

    /// Enables SLO alerting: `rules` are evaluated at every sealed
    /// sample boundary from here on, and the exposition grows the
    /// queue-wait, recording-rule, and `gpuflow_alert_state` families.
    pub fn enable_alerts(&mut self, rules: Vec<AlertRule>) {
        self.alerts = Some(AlertEngine::new(rules));
    }

    /// The alert engine, when [`enable_alerts`](Self::enable_alerts)
    /// has been called.
    pub fn alerts(&self) -> Option<&AlertEngine> {
        self.alerts.as_ref()
    }

    /// The ready→dispatch queue-wait histogram.
    pub fn queue_wait_histogram(&self) -> &BucketHistogram {
        &self.queue_wait
    }

    /// Steps the alert engine at boundary `at_ns` (absolute virtual
    /// ns). The engine is taken out for the call so it can read the
    /// registry without aliasing; per-boundary idempotence lives in
    /// [`AlertEngine::step`].
    fn eval_alerts(&mut self, at_ns: u64) {
        let Some(mut eng) = self.alerts.take() else {
            return;
        };
        let mut rejects: BTreeMap<String, u64> = BTreeMap::new();
        for t in &self.tenants {
            for (reason, n) in &t.rejected {
                *rejects.entry(reason.clone()).or_insert(0) += n;
            }
        }
        let tenants: Vec<(&str, u64, u64)> = self
            .tenants
            .iter()
            .map(|t| (t.name.as_str(), t.queued, t.completed_tasks))
            .collect();
        eng.step(&AlertSnapshot {
            at_ns,
            queue_wait: &self.queue_wait,
            rejects,
            tenants,
        });
        self.alerts = Some(eng);
    }

    /// Declares the tenant set (daemon config order). Resets any prior
    /// per-tenant accounting; the exposition grows the per-tenant
    /// families from here on.
    pub fn set_tenants(&mut self, tenants: &[(String, u32)]) {
        self.tenants = tenants
            .iter()
            .map(|(name, weight)| TenantMetrics {
                name: name.clone(),
                weight: *weight,
                ..TenantMetrics::default()
            })
            .collect();
    }

    /// Starts a drain epoch: every event observed from here on runs on
    /// an executor clock restarting at zero, and is shifted onto this
    /// registry's monotonic clock by the current offset. `ranges` are
    /// the epoch's `(task_lo, task_hi, tenant)` spans (sorted), used to
    /// attribute completions to tenants.
    pub fn begin_epoch(&mut self, ranges: Vec<(u32, u32, usize)>) {
        self.offset_ns = self.clock_ns;
        self.sealed = false;
        self.tenant_ranges = ranges;
        // Task ids restart from zero each epoch; stale in-flight
        // entries must not leak across.
        self.inflight.clear();
        self.pending_ready.clear();
        // An epoch starts with nothing ready or running; the gauges may
        // hold a stale residue when the previous epoch's final Decision
        // resync preceded late ready insertions. High-water marks
        // (`max_queue_depth`, `peak_running`) deliberately persist —
        // they summarise the whole session, not one epoch.
        self.ready_tasks = 0;
        self.running_tasks = 0;
    }

    /// Counts a job admission for `tenant`.
    pub fn record_job_admitted(&mut self, tenant: usize) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.admitted += 1;
        }
    }

    /// Counts a typed job reject for `tenant`.
    pub fn record_job_rejected(&mut self, tenant: usize, reason: &str) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            *t.rejected.entry(reason.to_string()).or_insert(0) += 1;
        }
    }

    /// Counts a job cancellation for `tenant`.
    pub fn record_job_cancelled(&mut self, tenant: usize) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.cancelled += 1;
        }
    }

    /// Sets the queued-jobs gauge for `tenant`.
    pub fn set_tenant_queued(&mut self, tenant: usize, queued: u64) {
        if let Some(t) = self.tenants.get_mut(tenant) {
            t.queued = queued;
        }
    }

    /// The tenant owning raw task id `tid` in the current epoch.
    fn tenant_of_task(&self, tid: u32) -> Option<usize> {
        self.tenant_ranges
            .binary_search_by(|&(lo, hi, _)| {
                if hi < tid {
                    std::cmp::Ordering::Less
                } else if lo > tid {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .ok()
            .map(|i| self.tenant_ranges[i].2)
    }

    /// Folds one event into every affected counter, gauge, and
    /// histogram.
    pub fn observe(&mut self, ev: &TelemetryEvent) {
        match ev {
            TelemetryEvent::TaskReady { at, task } => {
                self.advance_clock(at.as_nanos());
                self.ready_total += 1;
                self.ready_tasks += 1;
                self.max_queue_depth = self.max_queue_depth.max(self.ready_tasks);
                self.pending_ready.insert(task.0, at.as_nanos());
            }
            TelemetryEvent::Decision(d) => {
                self.advance_clock(d.at.as_nanos());
                self.decisions_total += 1;
                // The scheduler removes the chosen task from the ready
                // set at decision time; `queue_depth` was sampled just
                // before the removal, so it resynchronises the gauge
                // even when recovery re-inserted tasks silently.
                self.max_queue_depth = self.max_queue_depth.max(d.queue_depth as u64);
                self.ready_tasks = (d.queue_depth as u64).saturating_sub(1);
                self.sched_overhead_ns = self
                    .sched_overhead_ns
                    .saturating_add(d.sim_overhead.as_nanos());
            }
            TelemetryEvent::TaskDispatched {
                at,
                task,
                task_type,
                ..
            } => {
                self.advance_clock(at.as_nanos());
                self.dispatched_total += 1;
                self.running_tasks += 1;
                self.peak_running = self.peak_running.max(self.running_tasks);
                if let Some(ready_ns) = self.pending_ready.remove(&task.0) {
                    self.queue_wait
                        .observe_ns(at.as_nanos().saturating_sub(ready_ns));
                }
                self.inflight
                    .insert(task.0, (at.as_nanos(), task_type.to_string()));
            }
            TelemetryEvent::Stage { t1, .. } => {
                self.advance_clock(t1.as_nanos());
            }
            TelemetryEvent::Transfer {
                link, bytes, t1, ..
            } => {
                self.advance_clock(t1.as_nanos());
                let slot = &mut self.links[link_index(*link)];
                slot.transfers += 1;
                slot.bytes = slot.bytes.saturating_add(*bytes);
            }
            TelemetryEvent::CacheAccess { at, hit, .. } => {
                self.advance_clock(at.as_nanos());
                if *hit {
                    self.cache_hits += 1;
                } else {
                    self.cache_misses += 1;
                }
            }
            TelemetryEvent::CacheEvicted { at, count, .. } => {
                self.advance_clock(at.as_nanos());
                self.cache_evictions += count;
            }
            TelemetryEvent::NodeGauge {
                at,
                node,
                ram_used,
                busy_cores,
                busy_gpus,
            } => {
                self.advance_clock(at.as_nanos());
                let slot = self.ensure_node(*node);
                slot.busy_cores = *busy_cores as u64;
                slot.busy_gpus = *busy_gpus as u64;
                slot.ram_used = *ram_used;
            }
            TelemetryEvent::TaskCompleted { at, task, .. } => {
                self.advance_clock(at.as_nanos());
                self.running_tasks = self.running_tasks.saturating_sub(1);
                let (start_ns, task_type) = self
                    .inflight
                    .remove(&task.0)
                    .unwrap_or((at.as_nanos(), String::from("unknown")));
                let latency = at.as_nanos().saturating_sub(start_ns);
                *self.completed_by_type.entry(task_type.clone()).or_insert(0) += 1;
                self.latency_by_type
                    .entry(task_type)
                    .or_default()
                    .observe_ns(latency);
                if let Some(tix) = self.tenant_of_task(task.0) {
                    if let Some(t) = self.tenants.get_mut(tix) {
                        t.completed_tasks += 1;
                        t.latency.observe_ns(latency);
                    }
                }
            }
            TelemetryEvent::FaultInjected { .. } => {
                // Plan entries are announced up front with their future
                // firing times; counting them must not advance the
                // sampling clock past the real frontier.
                self.faults_total += 1;
            }
            TelemetryEvent::TaskFailed { at, task, .. } => {
                self.advance_clock(at.as_nanos());
                self.failed_total += 1;
                self.running_tasks = self.running_tasks.saturating_sub(1);
                self.inflight.remove(&task.0);
            }
            TelemetryEvent::TaskRetry { at, .. } => {
                self.advance_clock(at.as_nanos());
                self.retries_total += 1;
            }
            TelemetryEvent::TaskResubmitted { at, .. } => {
                self.advance_clock(at.as_nanos());
                self.resubmissions_total += 1;
            }
            TelemetryEvent::NodeDown { at, node } => {
                self.advance_clock(at.as_nanos());
                self.node_downs_total += 1;
                self.ensure_node(*node).up = false;
            }
            TelemetryEvent::NodeUp { at, node } => {
                self.advance_clock(at.as_nanos());
                self.node_ups_total += 1;
                self.ensure_node(*node).up = true;
            }
            TelemetryEvent::BlocksInvalidated {
                at,
                count,
                lost_versions,
                ..
            } => {
                self.advance_clock(at.as_nanos());
                self.invalidated_blocks_total += count + lost_versions;
            }
        }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4). Byte-identical for identical runs.
    pub fn expose(&self) -> String {
        let mut o = String::with_capacity(4096);
        gauge(
            &mut o,
            "gpuflow_sim_time_seconds",
            "Virtual time of this snapshot.",
            &fmt_seconds(self.clock_ns),
        );
        gauge(
            &mut o,
            "gpuflow_ready_tasks",
            "Tasks in the ready set.",
            &self.ready_tasks.to_string(),
        );
        gauge(
            &mut o,
            "gpuflow_running_tasks",
            "Tasks holding resources.",
            &self.running_tasks.to_string(),
        );
        self.expose_node_gauges(&mut o);
        counter(
            &mut o,
            "gpuflow_tasks_ready_total",
            "Ready-queue insertions.",
            self.ready_total,
        );
        counter(
            &mut o,
            "gpuflow_scheduler_decisions_total",
            "Master scheduling decisions.",
            self.decisions_total,
        );
        counter(
            &mut o,
            "gpuflow_tasks_dispatched_total",
            "Task attempts dispatched.",
            self.dispatched_total,
        );
        family(
            &mut o,
            "gpuflow_tasks_completed_total",
            "Tasks completed, by task type.",
            "counter",
        );
        for (ty, n) in &self.completed_by_type {
            let _ = writeln!(
                o,
                "gpuflow_tasks_completed_total{{type=\"{}\"}} {n}",
                label_escape(ty)
            );
        }
        counter(
            &mut o,
            "gpuflow_tasks_failed_total",
            "Task attempts lost to faults.",
            self.failed_total,
        );
        counter(
            &mut o,
            "gpuflow_task_retries_total",
            "Retry backoffs scheduled.",
            self.retries_total,
        );
        counter(
            &mut o,
            "gpuflow_task_resubmissions_total",
            "Attempts resubmitted after losing their node or device.",
            self.resubmissions_total,
        );
        counter(
            &mut o,
            "gpuflow_faults_injected_total",
            "Fault-plan entries announced.",
            self.faults_total,
        );
        counter(
            &mut o,
            "gpuflow_node_transitions_down_total",
            "Node quarantine transitions.",
            self.node_downs_total,
        );
        counter(
            &mut o,
            "gpuflow_node_transitions_up_total",
            "Node rejoin transitions.",
            self.node_ups_total,
        );
        counter(
            &mut o,
            "gpuflow_blocks_invalidated_total",
            "Cache entries and block versions destroyed by crashes.",
            self.invalidated_blocks_total,
        );
        counter(
            &mut o,
            "gpuflow_cache_hits_total",
            "Worker cache hits.",
            self.cache_hits,
        );
        counter(
            &mut o,
            "gpuflow_cache_misses_total",
            "Worker cache misses.",
            self.cache_misses,
        );
        counter(
            &mut o,
            "gpuflow_cache_evictions_total",
            "LRU evictions.",
            self.cache_evictions,
        );
        family(
            &mut o,
            "gpuflow_transfers_total",
            "Link flows completed, by link.",
            "counter",
        );
        for (i, slot) in self.links.iter().enumerate() {
            let _ = writeln!(
                o,
                "gpuflow_transfers_total{{link=\"{}\"}} {}",
                LINK_LABELS[i], slot.transfers
            );
        }
        family(
            &mut o,
            "gpuflow_transfer_bytes_total",
            "Payload bytes moved, by link.",
            "counter",
        );
        for (i, slot) in self.links.iter().enumerate() {
            let _ = writeln!(
                o,
                "gpuflow_transfer_bytes_total{{link=\"{}\"}} {}",
                LINK_LABELS[i], slot.bytes
            );
        }
        family(
            &mut o,
            "gpuflow_scheduler_overhead_seconds_total",
            "Modelled master-side decision overhead.",
            "counter",
        );
        let _ = writeln!(
            o,
            "gpuflow_scheduler_overhead_seconds_total {}",
            fmt_seconds(self.sched_overhead_ns)
        );
        counter(
            &mut o,
            "gpuflow_metrics_samples_total",
            "Virtual-time series rows sampled.",
            self.samples.len() as u64,
        );
        family(
            &mut o,
            "gpuflow_task_duration_seconds",
            "Dispatch-to-completion latency, by task type.",
            "histogram",
        );
        for (ty, h) in &self.latency_by_type {
            let ty = label_escape(ty);
            let mut cum = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                cum += c;
                let le = LATENCY_LE_LABELS.get(i).copied().unwrap_or("+Inf");
                let _ = writeln!(
                    o,
                    "gpuflow_task_duration_seconds_bucket{{type=\"{ty}\",le=\"{le}\"}} {cum}"
                );
            }
            let _ = writeln!(
                o,
                "gpuflow_task_duration_seconds_sum{{type=\"{ty}\"}} {}",
                fmt_seconds(h.sum_ns)
            );
            let _ = writeln!(
                o,
                "gpuflow_task_duration_seconds_count{{type=\"{ty}\"}} {}",
                h.count
            );
        }
        self.expose_tenants(&mut o);
        self.expose_alerts(&mut o);
        o
    }

    /// The alerting families, appended last and emitted only while an
    /// [`AlertEngine`] is enabled — every pre-alerting exposition (and
    /// its goldens) stays byte-identical.
    fn expose_alerts(&self, o: &mut String) {
        let Some(eng) = &self.alerts else {
            return;
        };
        family(
            o,
            "gpuflow_queue_wait_seconds",
            "Ready-to-dispatch queue residency per task attempt.",
            "histogram",
        );
        let h = &self.queue_wait;
        let mut cum = 0u64;
        for (i, &c) in h.counts.iter().enumerate() {
            cum += c;
            let le = LATENCY_LE_LABELS.get(i).copied().unwrap_or("+Inf");
            let _ = writeln!(o, "gpuflow_queue_wait_seconds_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(
            o,
            "gpuflow_queue_wait_seconds_sum {}",
            fmt_seconds(h.sum_ns)
        );
        let _ = writeln!(o, "gpuflow_queue_wait_seconds_count {}", h.count);
        family(
            o,
            "gpuflow:queue_wait_seconds:p99",
            "Recording rule: bucketed p99 of the queue-wait histogram.",
            "gauge",
        );
        let p99 = match h.quantile_bound_ns(99, 100) {
            None => fmt_seconds(0),
            Some(u64::MAX) => "+Inf".to_string(),
            Some(bound) => fmt_seconds(bound),
        };
        let _ = writeln!(o, "gpuflow:queue_wait_seconds:p99 {p99}");
        eng.expose_state(o);
    }

    /// The per-tenant families of the daemon path, appended after the
    /// single-run families. Emitted only when a tenant set has been
    /// declared, so every pre-daemon exposition (and its goldens) is
    /// byte-identical to before.
    fn expose_tenants(&self, o: &mut String) {
        if self.tenants.is_empty() {
            return;
        }
        family(
            o,
            "gpuflow_tenant_weight",
            "Fair-share weight, per tenant.",
            "gauge",
        );
        for t in &self.tenants {
            let _ = writeln!(
                o,
                "gpuflow_tenant_weight{{tenant=\"{}\"}} {}",
                label_escape(&t.name),
                t.weight
            );
        }
        family(
            o,
            "gpuflow_tenant_queued_jobs",
            "Jobs admitted and not yet finished, per tenant.",
            "gauge",
        );
        for t in &self.tenants {
            let _ = writeln!(
                o,
                "gpuflow_tenant_queued_jobs{{tenant=\"{}\"}} {}",
                label_escape(&t.name),
                t.queued
            );
        }
        family(
            o,
            "gpuflow_tenant_jobs_admitted_total",
            "Jobs accepted into the queue, per tenant.",
            "counter",
        );
        for t in &self.tenants {
            let _ = writeln!(
                o,
                "gpuflow_tenant_jobs_admitted_total{{tenant=\"{}\"}} {}",
                label_escape(&t.name),
                t.admitted
            );
        }
        family(
            o,
            "gpuflow_tenant_jobs_cancelled_total",
            "Queued jobs cancelled before running, per tenant.",
            "counter",
        );
        for t in &self.tenants {
            let _ = writeln!(
                o,
                "gpuflow_tenant_jobs_cancelled_total{{tenant=\"{}\"}} {}",
                label_escape(&t.name),
                t.cancelled
            );
        }
        family(
            o,
            "gpuflow_tenant_jobs_rejected_total",
            "Submissions rejected by admission control, per tenant and reason.",
            "counter",
        );
        for t in &self.tenants {
            for (reason, n) in &t.rejected {
                let _ = writeln!(
                    o,
                    "gpuflow_tenant_jobs_rejected_total{{tenant=\"{}\",reason=\"{}\"}} {n}",
                    label_escape(&t.name),
                    label_escape(reason)
                );
            }
        }
        family(
            o,
            "gpuflow_tenant_tasks_completed_total",
            "Tasks completed, per tenant.",
            "counter",
        );
        for t in &self.tenants {
            let _ = writeln!(
                o,
                "gpuflow_tenant_tasks_completed_total{{tenant=\"{}\"}} {}",
                label_escape(&t.name),
                t.completed_tasks
            );
        }
        family(
            o,
            "gpuflow_tenant_task_duration_seconds",
            "Dispatch-to-completion latency, by tenant.",
            "histogram",
        );
        for t in &self.tenants {
            let name = label_escape(&t.name);
            let h = &t.latency;
            let mut cum = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                cum += c;
                let le = LATENCY_LE_LABELS.get(i).copied().unwrap_or("+Inf");
                let _ = writeln!(
                    o,
                    "gpuflow_tenant_task_duration_seconds_bucket{{tenant=\"{name}\",le=\"{le}\"}} {cum}"
                );
            }
            let _ = writeln!(
                o,
                "gpuflow_tenant_task_duration_seconds_sum{{tenant=\"{name}\"}} {}",
                fmt_seconds(h.sum_ns)
            );
            let _ = writeln!(
                o,
                "gpuflow_tenant_task_duration_seconds_count{{tenant=\"{name}\"}} {}",
                h.count
            );
        }
    }

    fn expose_node_gauges(&self, o: &mut String) {
        family(
            o,
            "gpuflow_node_busy_cores",
            "Host cores held by tasks, per node.",
            "gauge",
        );
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                o,
                "gpuflow_node_busy_cores{{node=\"{i}\"}} {}",
                n.busy_cores
            );
        }
        family(
            o,
            "gpuflow_node_busy_gpus",
            "GPU devices held by tasks, per node.",
            "gauge",
        );
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(o, "gpuflow_node_busy_gpus{{node=\"{i}\"}} {}", n.busy_gpus);
        }
        family(
            o,
            "gpuflow_node_ram_bytes",
            "Working-set bytes resident, per node.",
            "gauge",
        );
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(o, "gpuflow_node_ram_bytes{{node=\"{i}\"}} {}", n.ram_used);
        }
        family(o, "gpuflow_node_up", "Node liveness (1 = up).", "gauge");
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                o,
                "gpuflow_node_up{{node=\"{i}\"}} {}",
                if n.up { 1 } else { 0 }
            );
        }
    }

    /// Renders the virtual-time series as a text table (integer-derived
    /// columns only).
    pub fn render_series(&self) -> String {
        let mut o = String::from(
            "time_s        ready  running  busy_cores  busy_gpus  ram_mib  completed  cache_hits  cache_misses  xfer_mib\n",
        );
        for s in &self.samples {
            let _ = writeln!(
                o,
                "{:<13} {:<6} {:<8} {:<11} {:<10} {:<8} {:<10} {:<11} {:<13} {}",
                fmt_seconds(s.t_ns),
                s.ready,
                s.running,
                s.busy_cores,
                s.busy_gpus,
                s.ram_used >> 20,
                s.completed,
                s.cache_hits,
                s.cache_misses,
                s.transfer_bytes >> 20
            );
        }
        o
    }

    /// The `metrics` section of `gpuflow obs summary --json`: a fixed
    /// integer-only object (schema in `tests/schemas/obs_summary.json`).
    pub fn summary_json(&self) -> String {
        let mut o = String::from("{");
        let _ = write!(o, "\"interval_ns\":{}", self.interval_ns);
        let _ = write!(o, ",\"samples\":{}", self.samples.len());
        let _ = write!(o, ",\"max_queue_depth\":{}", self.max_queue_depth);
        let _ = write!(o, ",\"peak_running\":{}", self.peak_running);
        let _ = write!(o, ",\"completed\":{}", self.completed_total());
        let _ = write!(o, ",\"failed\":{}", self.failed_total);
        let _ = write!(o, ",\"retries\":{}", self.retries_total);
        let _ = write!(o, ",\"cache_hits\":{}", self.cache_hits);
        let _ = write!(o, ",\"cache_misses\":{}", self.cache_misses);
        let _ = write!(o, ",\"cache_evictions\":{}", self.cache_evictions);
        let _ = write!(
            o,
            ",\"transfer_bytes\":{}",
            self.links.iter().map(|l| l.bytes).sum::<u64>()
        );
        o.push('}');
        o
    }
}

impl TelemetrySink for MetricsRegistry {
    fn on_event(&mut self, ev: &TelemetryEvent) {
        self.observe(ev);
    }

    fn finish(&mut self) {
        self.seal();
    }
}

/// A thread-safe shared handle over a [`MetricsRegistry`] — the live
/// endpoint `gpuflow serve` scrapes while the executor (on another
/// thread) feeds the bus. Cloning shares the underlying registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    inner: Arc<Mutex<MetricsRegistry>>,
}

impl MetricsHub {
    /// A hub sampling every `interval` of virtual time.
    pub fn new(interval: SimDuration) -> Self {
        MetricsHub {
            inner: Arc::new(Mutex::new(MetricsRegistry::new(interval))),
        }
    }

    /// Locks the registry, recovering from a poisoned lock (a panicking
    /// simulation thread must not take the metrics endpoint down).
    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Folds one event (called by the bus on the simulation thread).
    pub fn observe(&self, ev: &TelemetryEvent) {
        self.lock().observe(ev);
    }

    /// Seals the series at the end of the run.
    pub fn finish(&self) {
        self.lock().seal();
    }

    /// The current Prometheus exposition snapshot.
    pub fn expose(&self) -> String {
        self.lock().expose()
    }

    /// The current virtual-time series rendering.
    pub fn render_series(&self) -> String {
        self.lock().render_series()
    }

    /// A deep copy of the registry at this instant.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.lock().clone()
    }

    /// Runs `f` under the registry lock — the daemon's hook for tenant
    /// declarations, admission counters, and epoch boundaries.
    pub fn update<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        f(&mut self.lock())
    }
}

/// Writes the `# HELP` / `# TYPE` preamble of one metric family.
fn family(o: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(o, "# HELP {name} {help}");
    let _ = writeln!(o, "# TYPE {name} {kind}");
}

/// Writes a single-sample gauge family.
fn gauge(o: &mut String, name: &str, help: &str, value: &str) {
    family(o, name, help, "gauge");
    let _ = writeln!(o, "{name} {value}");
}

/// Writes a single-sample counter family.
fn counter(o: &mut String, name: &str, help: &str, value: u64) {
    family(o, name, help, "counter");
    let _ = writeln!(o, "{name} {value}");
}

/// Formats integer nanoseconds as exact decimal seconds (fixed-point,
/// trailing zeros trimmed to at least one fractional digit) — float-free
/// so the exposition is byte-stable.
pub fn fmt_seconds(ns: u64) -> String {
    let secs = ns / 1_000_000_000;
    let frac = ns % 1_000_000_000;
    let mut s = format!("{secs}.{frac:09}");
    while s.ends_with('0') && !s.ends_with(".0") {
        s.pop();
    }
    s
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskId, TaskType};
    use gpuflow_sim::SimTime;

    fn ready(t_ns: u64, task: u32) -> TelemetryEvent {
        TelemetryEvent::TaskReady {
            at: SimTime::from_nanos(t_ns),
            task: TaskId(task),
        }
    }

    fn dispatch(t_ns: u64, task: u32, ty: &str) -> TelemetryEvent {
        TelemetryEvent::TaskDispatched {
            at: SimTime::from_nanos(t_ns),
            task: TaskId(task),
            task_type: TaskType::from(ty),
            node: 0,
            core: 0,
            cores: 1,
            gpu: None,
        }
    }

    fn complete(t_ns: u64, task: u32) -> TelemetryEvent {
        TelemetryEvent::TaskCompleted {
            at: SimTime::from_nanos(t_ns),
            task: TaskId(task),
            node: 0,
        }
    }

    #[test]
    fn fixed_point_seconds_are_exact() {
        assert_eq!(fmt_seconds(0), "0.0");
        assert_eq!(fmt_seconds(440_342_880), "0.44034288");
        assert_eq!(fmt_seconds(1_000_000_000), "1.0");
        assert_eq!(fmt_seconds(1_000_000_001), "1.000000001");
    }

    #[test]
    fn histogram_buckets_sum_to_count() {
        let mut h = BucketHistogram::default();
        for ns in [0, 1_000_000, 1_000_001, 9_999_999_999, u64::MAX] {
            h.observe_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
        // <= is the bucket rule: exactly 1 ms lands in the 0.001 bucket.
        assert_eq!(h.bucket_counts()[0], 2);
        assert_eq!(h.bucket_counts()[LATENCY_BOUNDS_NS.len()], 1);
    }

    #[test]
    fn latency_is_measured_dispatch_to_completion_per_type() {
        let mut reg = MetricsRegistry::new(SimDuration::ZERO);
        reg.observe(&dispatch(1_000, 0, "map"));
        reg.observe(&dispatch(2_000, 1, "reduce"));
        reg.observe(&complete(2_001_000, 0));
        reg.observe(&complete(5_002_000, 1));
        assert_eq!(reg.completed_total(), 2);
        let map = &reg.latency_histograms()["map"];
        assert_eq!(map.count(), 1);
        assert_eq!(map.sum_ns(), 2_000_000);
        let red = &reg.latency_histograms()["reduce"];
        assert_eq!(red.sum_ns(), 5_000_000);
        assert_eq!(reg.running_tasks, 0);
    }

    #[test]
    fn sampling_seals_interval_boundaries() {
        let mut reg = MetricsRegistry::new(SimDuration::from_nanos(100));
        reg.observe(&ready(0, 0));
        reg.observe(&dispatch(50, 0, "t"));
        // Crossing t=350 seals boundaries 100, 200, 300.
        reg.observe(&complete(350, 0));
        assert_eq!(
            reg.samples().iter().map(|s| s.t_ns).collect::<Vec<_>>(),
            vec![100, 200, 300]
        );
        let s100 = reg.samples()[0];
        assert_eq!(s100.running, 1, "dispatch at 50 visible at t=100");
        assert_eq!(s100.completed, 0);
        reg.seal();
        // Seal appends the end-state row at the clock.
        assert_eq!(reg.samples().last().map(|s| s.t_ns), Some(350));
        assert_eq!(reg.samples().last().map(|s| s.completed), Some(1));
        // Sealing twice changes nothing.
        let n = reg.samples().len();
        reg.seal();
        assert_eq!(reg.samples().len(), n);
    }

    #[test]
    fn fault_announcements_do_not_advance_the_clock() {
        let mut reg = MetricsRegistry::new(SimDuration::from_nanos(100));
        reg.observe(&TelemetryEvent::FaultInjected {
            at: SimTime::from_nanos(10_000),
            node: Some(0),
            what: "straggler",
        });
        assert_eq!(reg.clock_ns, 0);
        assert!(reg.samples().is_empty());
        assert_eq!(reg.faults_total, 1);
    }

    #[test]
    fn exposition_renders_histograms_cumulatively() {
        let mut reg = MetricsRegistry::new(SimDuration::ZERO);
        reg.observe(&dispatch(0, 0, "map"));
        reg.observe(&complete(2_000_000, 0)); // 2 ms -> le 0.0025 bucket
        reg.seal();
        let text = reg.expose();
        assert!(text.contains("gpuflow_task_duration_seconds_bucket{type=\"map\",le=\"0.001\"} 0"));
        assert!(text.contains("gpuflow_task_duration_seconds_bucket{type=\"map\",le=\"0.0025\"} 1"));
        assert!(text.contains("gpuflow_task_duration_seconds_bucket{type=\"map\",le=\"+Inf\"} 1"));
        assert!(text.contains("gpuflow_task_duration_seconds_sum{type=\"map\"} 0.002"));
        assert!(text.contains("gpuflow_task_duration_seconds_count{type=\"map\"} 1"));
        assert!(text.contains("gpuflow_sim_time_seconds 0.002"));
    }

    #[test]
    fn decision_resynchronises_the_ready_gauge() {
        let mut reg = MetricsRegistry::new(SimDuration::ZERO);
        reg.observe(&ready(0, 0));
        reg.observe(&ready(0, 1));
        assert_eq!(reg.ready_tasks, 2);
        reg.observe(&TelemetryEvent::Decision(
            crate::telemetry::SchedulerDecision {
                at: SimTime::from_nanos(10),
                task: TaskId(0),
                chosen: 0,
                queue_depth: 2,
                sim_overhead: SimDuration::from_nanos(500),
                host_nanos: 0,
                candidates: Vec::new(),
            },
        ));
        assert_eq!(reg.ready_tasks, 1);
        assert_eq!(reg.max_queue_depth, 2);
        assert_eq!(reg.sched_overhead_ns, 500);
    }

    #[test]
    fn hub_is_shared_and_seals_once() {
        let hub = MetricsHub::new(SimDuration::from_nanos(100));
        let clone = hub.clone();
        clone.observe(&ready(0, 0));
        hub.finish();
        assert!(hub.expose().contains("gpuflow_tasks_ready_total 1"));
        assert_eq!(hub.snapshot().samples().len(), 1);
    }

    #[test]
    fn label_escape_handles_specials() {
        assert_eq!(label_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(label_escape("plain"), "plain");
    }

    #[test]
    fn tenant_families_appear_only_with_tenants() {
        let mut reg = MetricsRegistry::new(SimDuration::ZERO);
        reg.observe(&dispatch(0, 0, "map"));
        reg.observe(&complete(2_000_000, 0));
        assert!(!reg.expose().contains("gpuflow_tenant_"));
        reg.set_tenants(&[("acme".into(), 3), ("beta".into(), 1)]);
        reg.record_job_admitted(0);
        reg.record_job_rejected(1, "quota");
        reg.record_job_cancelled(0);
        reg.set_tenant_queued(0, 2);
        let text = reg.expose();
        assert!(text.contains("gpuflow_tenant_weight{tenant=\"acme\"} 3"));
        assert!(text.contains("gpuflow_tenant_queued_jobs{tenant=\"acme\"} 2"));
        assert!(text.contains("gpuflow_tenant_jobs_admitted_total{tenant=\"acme\"} 1"));
        assert!(text.contains("gpuflow_tenant_jobs_cancelled_total{tenant=\"acme\"} 1"));
        assert!(
            text.contains("gpuflow_tenant_jobs_rejected_total{tenant=\"beta\",reason=\"quota\"} 1")
        );
        // No tenant ranges declared: the completion stays unattributed.
        assert!(text.contains("gpuflow_tenant_tasks_completed_total{tenant=\"acme\"} 0"));
    }

    #[test]
    fn epoch_offset_concatenates_runs_onto_one_clock() {
        let mut reg = MetricsRegistry::new(SimDuration::from_nanos(1_000_000));
        reg.set_tenants(&[("acme".into(), 1), ("beta".into(), 2)]);
        // Epoch 1: tasks 0..=1 belong to acme.
        reg.begin_epoch(vec![(0, 1, 0)]);
        reg.observe(&dispatch(0, 0, "map"));
        reg.observe(&complete(2_000_000, 0));
        reg.seal();
        let end1 = reg.clock_ns;
        assert_eq!(end1, 2_000_000);
        // Epoch 2 restarts the executor clock at zero; task 0 now
        // belongs to beta.
        reg.begin_epoch(vec![(0, 3, 1)]);
        reg.observe(&dispatch(1_000_000, 0, "map"));
        reg.observe(&complete(4_000_000, 0));
        reg.seal();
        assert_eq!(
            reg.clock_ns,
            end1 + 4_000_000,
            "epoch 2 shifted by epoch 1's end"
        );
        // Latency math uses raw times, so the offset cancels.
        let text = reg.expose();
        assert!(text.contains("gpuflow_tenant_tasks_completed_total{tenant=\"acme\"} 1"));
        assert!(text.contains("gpuflow_tenant_tasks_completed_total{tenant=\"beta\"} 1"));
        assert!(text.contains("gpuflow_tenant_task_duration_seconds_sum{tenant=\"beta\"} 0.003"));
        // Series rows are strictly monotonic across epochs.
        assert!(reg.samples().windows(2).all(|w| w[0].t_ns < w[1].t_ns));
    }

    #[test]
    fn gauges_reset_but_high_water_marks_persist_across_epochs() {
        let mut reg = MetricsRegistry::new(SimDuration::from_nanos(1_000_000));
        reg.set_tenants(&[("acme".into(), 1)]);
        // Epoch 1 ends with a stale residue: two tasks became ready but
        // only one was dispatched and completed (no Decision events, so
        // nothing resynchronised the ready gauge downward).
        reg.begin_epoch(vec![(0, 9, 0)]);
        reg.observe(&ready(0, 0));
        reg.observe(&ready(0, 1));
        reg.observe(&dispatch(10, 0, "map"));
        reg.observe(&complete(2_000_000, 0));
        reg.seal();
        assert_eq!(reg.ready_tasks, 2, "stale residue by construction");
        assert_eq!(reg.max_queue_depth, 2);
        assert_eq!(reg.peak_running, 1);
        // Epoch 2 must start from zero — no carry-over into its samples.
        reg.begin_epoch(vec![(0, 9, 0)]);
        assert_eq!(reg.ready_tasks, 0, "queued gauge carried stale value");
        assert_eq!(reg.running_tasks, 0, "running gauge carried stale value");
        reg.observe(&ready(0, 0));
        reg.observe(&dispatch(10, 0, "map"));
        reg.observe(&complete(3_000_000, 0));
        reg.seal();
        let epoch2: Vec<_> = reg
            .samples()
            .iter()
            .filter(|s| s.t_ns > 2_000_000)
            .collect();
        assert!(!epoch2.is_empty());
        assert!(
            epoch2.iter().all(|s| s.ready <= 1),
            "epoch 2 samples must not double-count epoch 1 residue"
        );
        // Session-level high-water marks survive the epoch boundary
        // (no double-reset): the session max is still 2.
        assert_eq!(reg.max_queue_depth, 2);
        assert_eq!(reg.peak_running, 1);
    }

    #[test]
    fn queue_wait_histogram_folds_ready_to_dispatch() {
        let mut reg = MetricsRegistry::new(SimDuration::ZERO);
        reg.observe(&ready(0, 0));
        reg.observe(&dispatch(2_000_000, 0, "map"));
        reg.observe(&ready(1_000_000, 1));
        reg.observe(&dispatch(1_500_000, 1, "map"));
        let h = reg.queue_wait_histogram();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_ns(), 2_500_000);
    }

    #[test]
    fn alert_families_appear_only_when_enabled() {
        let mut reg = MetricsRegistry::new(SimDuration::from_nanos(1_000_000));
        reg.observe(&ready(0, 0));
        reg.observe(&dispatch(10, 0, "map"));
        reg.observe(&complete(2_000_000, 0));
        reg.seal();
        let plain = reg.expose();
        assert!(!plain.contains("gpuflow_alert_state"));
        assert!(!plain.contains("gpuflow_queue_wait_seconds"));
        assert!(!plain.contains("gpuflow:queue_wait_seconds:p99"));

        let mut reg = MetricsRegistry::new(SimDuration::from_nanos(1_000_000));
        reg.enable_alerts(AlertRule::standard());
        reg.observe(&ready(0, 0));
        reg.observe(&dispatch(10, 0, "map"));
        reg.observe(&complete(2_000_000, 0));
        reg.seal();
        let text = reg.expose();
        assert!(text.contains("# TYPE gpuflow_queue_wait_seconds histogram"));
        assert!(text.contains("# TYPE gpuflow:queue_wait_seconds:p99 gauge"));
        assert!(text.contains(
            "gpuflow_alert_state{alert=\"queue_wait_p99\",severity=\"warning\",subject=\"global\"} 0"
        ));
    }

    #[test]
    fn alert_timeline_fires_deterministically_on_queue_pressure() {
        let run = || {
            let mut reg = MetricsRegistry::new(SimDuration::from_nanos(10_000_000));
            reg.enable_alerts(AlertRule::standard());
            // 60 ms queue wait > the 50 ms threshold; boundaries every
            // 10 ms step the engine into pending then firing.
            reg.observe(&ready(0, 0));
            reg.observe(&dispatch(60_000_000, 0, "map"));
            reg.observe(&complete(200_000_000, 0));
            reg.seal();
            reg.alerts().unwrap().render_timeline()
        };
        let a = run();
        assert_eq!(a, run(), "timeline must be deterministic");
        assert!(
            a.contains("alert=queue_wait_p99 subject=global state=pending"),
            "{a}"
        );
        assert!(
            a.contains("alert=queue_wait_p99 subject=global state=firing"),
            "{a}"
        );
    }
}
