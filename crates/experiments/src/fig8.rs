//! Figure 8: task computational complexity in Matmul.
//!
//! Per-task-type profiling of `matmul_func` (O(N³)) against `add_func`
//! (O(N)) over block sizes: the cubic task's GPU speedup scales with the
//! block up to ~21×, while the low-complexity `add_func` is dominated by
//! CPU-GPU communication and degrades on the GPU at every size.

use gpuflow_algorithms::MatmulConfig;
use gpuflow_analysis::signed_speedup;
use gpuflow_cluster::ProcessorKind;
use gpuflow_data::DatasetSpec;
use gpuflow_runtime::UserCodeStats;

use crate::measure::Context;
use crate::table::TextTable;

/// Grids used in Fig. 8 (8192 MiB is skipped: a 1×1 grid has no
/// `add_func`, and its `matmul_func` overflows the device anyway).
pub const GRIDS: [u64; 4] = [16, 8, 4, 2];

/// Per-task-type numbers at one block size.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Block size label (MiB).
    pub block_mib: f64,
    /// Grid extent.
    pub grid: u64,
    /// `matmul_func` stats: (CPU, GPU).
    pub matmul: (UserCodeStats, UserCodeStats),
    /// `add_func` stats: (CPU, GPU).
    pub add: (UserCodeStats, UserCodeStats),
}

impl Fig8Row {
    /// User-code GPU speedup of `matmul_func`.
    pub fn matmul_speedup(&self) -> f64 {
        signed_speedup(self.matmul.0.user_code, self.matmul.1.user_code)
    }

    /// User-code GPU speedup of `add_func`.
    pub fn add_speedup(&self) -> f64 {
        signed_speedup(self.add.0.user_code, self.add.1.user_code)
    }
}

/// The Figure 8 reproduction result.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// One row per block size.
    pub rows: Vec<Fig8Row>,
}

/// Runs the Figure 8 experiment on `dataset` over `grids`.
pub fn run_with(ctx: &Context, dataset: &DatasetSpec, grids: &[u64]) -> Fig8 {
    let rows = grids
        .iter()
        .map(|&g| {
            let cfg = MatmulConfig::new(dataset.clone(), g).expect("valid grid");
            let wf = cfg.build_workflow();
            let cpu = ctx
                .run_default(&wf, ProcessorKind::Cpu)
                .report()
                .expect("CPU fits")
                .clone();
            let gpu = ctx
                .run_default(&wf, ProcessorKind::Gpu)
                .report()
                .expect("grids in Fig. 8 fit the device")
                .clone();
            let stats = |r: &gpuflow_runtime::RunReport, t: &str| {
                *r.metrics.task_type(t).expect("task type ran")
            };
            Fig8Row {
                block_mib: cfg.spec.block_mib(),
                grid: g,
                matmul: (stats(&cpu, "matmul_func"), stats(&gpu, "matmul_func")),
                add: (stats(&cpu, "add_func"), stats(&gpu, "add_func")),
            }
        })
        .collect();
    Fig8 { rows }
}

/// Runs with the paper's dataset (Matmul 8 GB) and grids.
pub fn run(ctx: &Context) -> Fig8 {
    run_with(ctx, &gpuflow_data::paper::matmul_8gb(), &GRIDS)
}

impl Fig8 {
    /// Renders the two per-task-type chart panes as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Figure 8: task computational complexity in Matmul (8 GB)",
            [
                "block MiB",
                "matmul x",
                "add x",
                "mm pfrac CPU s",
                "mm pfrac GPU s",
                "mm comm s",
                "add pfrac GPU s",
                "add comm s",
            ],
        );
        for r in &self.rows {
            t.push([
                format!("{:.0}", r.block_mib),
                format!("{:+.2}", r.matmul_speedup()),
                format!("{:+.2}", r.add_speedup()),
                format!("{:.3}", r.matmul.0.parallel),
                format!("{:.3}", r.matmul.1.parallel),
                format!("{:.4}", r.matmul.1.comm),
                format!("{:.4}", r.add.1.parallel),
                format!("{:.4}", r.add.1.comm),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_split_reproduces() {
        // Quick subset of the sweep.
        let fig = run_with(
            &Context::default(),
            &gpuflow_data::paper::matmul_8gb(),
            &[16, 4],
        );
        let fine = &fig.rows[0];
        let coarse = &fig.rows[1];
        // matmul_func scales with block size; add_func never wins.
        assert!(coarse.matmul_speedup() > fine.matmul_speedup() * 1.5);
        assert!(fine.add_speedup() < 0.0, "signed speedup: GPU slower");
        assert!(coarse.add_speedup() < 0.0);
        // Communication dominates add_func's GPU time (the §5.2.1 cause).
        assert!(coarse.add.1.comm > coarse.add.1.parallel);
        // But computation dominates communication for coarse matmul_func.
        assert!(coarse.matmul.1.parallel > coarse.matmul.1.comm);
        assert!(fig.render().contains("Figure 8"));
    }
}
