//! Causal span-trace artifact (`repro spans`).
//!
//! The chaos replay scenario of [`crate::replay`] exercised through the
//! span-tracing subsystem: the run's telemetry is folded into a
//! [`SpanForest`] (per-task queue-wait → input-fetch → compute →
//! writeback phase trees with causal parent edges and critical-path
//! marking), aggregated into a collapsed-stack flame graph, filtered by
//! the deterministic [`SpanSampler`], and evaluated against the
//! standard SLO alert rules — all in integer virtual time, so every
//! section of the artifact is byte-identical at any `--threads` count.
//!
//! `--stress` swaps the scenario for a [`crate::stress`] DAG
//! (10⁶ tasks by default) and asserts the sampler's documented size
//! bound plus 100% critical-path retention — the property that makes
//! head sampling safe at fleet scale.

use std::fmt::Write as _;

use gpuflow_cluster::{ClusterSpec, ProcessorKind, StorageArchitecture};
use gpuflow_runtime::jobs::build_jobs;
use gpuflow_runtime::{
    to_collapsed, AlertRule, MetricsRegistry, RunConfig, SampleStats, SchedulingPolicy, SpanForest,
    SpanSampler,
};
use gpuflow_sim::SimDuration;

use crate::replay::{self, ReplaySpec};
use crate::stress;

/// Head-sampling rate (ppm) of the pinned artifact: keep ~25% of task
/// trees by the head rule, on top of the two always-keep rules.
pub const DEFAULT_RATE_PPM: u64 = 250_000;

/// Sampler seed of the pinned artifact.
pub const DEFAULT_SAMPLER_SEED: u64 = 0x5EED;

/// Everything one span-trace run produces.
#[derive(Debug, Clone)]
pub struct SpansReport {
    /// The replay scenario parameters.
    pub spec: ReplaySpec,
    /// Head-sampling rate, parts per million.
    pub rate_ppm: u64,
    /// Sampler seed.
    pub sampler_seed: u64,
    /// The full (unsampled) span forest.
    pub forest: SpanForest,
    /// The sampled sub-forest.
    pub sampled: SpanForest,
    /// Per-rule sampler statistics.
    pub stats: SampleStats,
    /// The documented worst-case kept-size bound for this forest.
    pub bound: usize,
    /// The folded metrics registry with the standard alert rules.
    pub metrics: MetricsRegistry,
    /// Virtual makespan, seconds.
    pub makespan: f64,
    /// Output fingerprint of the run (lineage hash).
    pub fingerprint: u64,
}

/// Runs the chaos replay scenario and folds its telemetry into spans,
/// flame weights, sampler statistics, and the alert timeline.
pub fn run(spec: &ReplaySpec, rate_ppm: u64, sampler_seed: u64) -> SpansReport {
    let jobs = replay::generate(spec);
    let (workflow, built) = build_jobs(&jobs);
    let mut arrivals = Vec::new();
    let mut ranges: Vec<(u32, u32, usize)> = Vec::with_capacity(built.len());
    for (job, b) in jobs.iter().zip(&built) {
        for &t in &b.roots {
            arrivals.push((t, job.arrival_secs));
        }
        ranges.push((b.task_lo, b.task_hi, job.tenant));
    }
    ranges.sort_unstable();
    let mut cfg = RunConfig::new(ClusterSpec::minotauro(), ProcessorKind::Gpu)
        .with_storage(StorageArchitecture::SharedDisk)
        .with_policy(SchedulingPolicy::GenerationOrder)
        .with_seed(spec.seed)
        .with_arrivals(arrivals)
        .with_telemetry();
    cfg.jitter_sigma = 0.0;
    if spec.chaos {
        cfg = cfg.with_faults(replay::fault_plan(spec));
    }
    let report = gpuflow_runtime::run(&workflow, &cfg).expect("spans scenario must complete");

    let forest = SpanForest::from_telemetry(&workflow, &report.telemetry);
    let sampler = SpanSampler::new(sampler_seed, rate_ppm);
    let (sampled, stats) = sampler.sample(&forest);
    let mut type_sizes: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for t in &forest.tasks {
        *type_sizes.entry(t.task_type.as_str()).or_insert(0) += 1;
    }
    let sizes: Vec<usize> = type_sizes.values().copied().collect();
    let critical = forest.tasks.iter().filter(|t| t.on_critical_path).count();
    let bound = sampler.hard_bound(forest.len(), critical, &sizes);

    // Fold the same log into a registry with the standard SLO rules so
    // the alert timeline rides the identical virtual clock.
    let tenants: Vec<(String, u32)> = (0..spec.tenants.max(1))
        .map(|t| (format!("tenant-{t}"), (spec.tenants.max(1) - t) as u32))
        .collect();
    let mut metrics = MetricsRegistry::new(SimDuration::from_secs_f64(spec.interval_secs));
    metrics.set_tenants(&tenants);
    metrics.begin_epoch(ranges);
    metrics.enable_alerts(AlertRule::standard());
    report.telemetry.replay(&mut metrics);

    SpansReport {
        spec: spec.clone(),
        rate_ppm,
        sampler_seed,
        forest,
        sampled,
        stats,
        bound,
        metrics,
        makespan: report.makespan(),
        fingerprint: report.output_fingerprint,
    }
}

impl SpansReport {
    /// The collapsed-stack flame rendering of the full forest (the
    /// text `gpuflow_lint::collapsed::check` validates).
    pub fn collapsed(&self) -> String {
        to_collapsed(&self.forest)
    }

    /// The golden-pinned artifact: scenario header, collapsed flame
    /// graph, span summary JSON, sampler coverage, and the alert
    /// timeline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "spans scenario: seed {:#x}, {} jobs, {} tenants, horizon {:.2} s, chaos {}",
            self.spec.seed,
            self.spec.jobs,
            self.spec.tenants,
            self.spec.horizon_secs,
            if self.spec.chaos { "on" } else { "off" },
        );
        let _ = writeln!(
            out,
            "trace: {} tasks   {} spans   makespan: {:.9} s   fingerprint: {:#018x}",
            self.forest.len(),
            self.forest.span_count(),
            self.makespan,
            self.fingerprint
        );
        out.push_str("\n-- flame (collapsed stacks, virtual-ns weights) --\n");
        out.push_str(&to_collapsed(&self.forest));
        out.push_str("\n-- span summary --\n");
        out.push_str(&self.forest.summary_json());
        out.push_str("\n\n-- sampler --\n");
        let _ = writeln!(
            out,
            "rate_ppm={} seed={:#x} total={} kept={} head={} critical={} outliers={} bound={}",
            self.rate_ppm,
            self.sampler_seed,
            self.stats.total,
            self.stats.kept,
            self.stats.head,
            self.stats.critical,
            self.stats.outliers,
            self.bound
        );
        let _ = writeln!(
            out,
            "sampled: {} tasks   {} spans",
            self.sampled.len(),
            self.sampled.span_count()
        );
        out.push_str("\n-- alert timeline --\n");
        match self.metrics.alerts() {
            Some(eng) if !eng.timeline().is_empty() => out.push_str(&eng.render_timeline()),
            _ => out.push_str("(no transitions)\n"),
        }
        out
    }
}

/// Result of the `--stress` bound check on one shape.
#[derive(Debug, Clone)]
pub struct StressVerdict {
    /// DAG shape label.
    pub shape: &'static str,
    /// Tasks in the unsampled forest.
    pub total: usize,
    /// Tasks surviving sampling.
    pub kept: usize,
    /// The documented worst-case bound.
    pub bound: usize,
    /// Critical-path tasks in the full forest.
    pub critical: usize,
    /// Critical-path tasks surviving in the sampled forest.
    pub critical_kept: usize,
}

impl StressVerdict {
    /// True when the sampled trace honours both guarantees.
    pub fn passed(&self) -> bool {
        self.kept <= self.bound && self.critical_kept == self.critical
    }
}

/// Builds a stress DAG of `tasks` tasks, runs it with telemetry, and
/// checks the sampled trace against the documented size bound and the
/// 100% critical-path retention guarantee.
pub fn run_stress(shape: stress::Shape, tasks: usize, rate_ppm: u64, seed: u64) -> StressVerdict {
    let wf = stress::build(shape, tasks);
    let cfg = stress::stress_config().with_telemetry();
    let report = gpuflow_runtime::run(&wf, &cfg).expect("stress DAG must complete");
    let forest = SpanForest::from_telemetry(&wf, &report.telemetry);
    let sampler = SpanSampler::new(seed, rate_ppm);
    let (sampled, stats) = sampler.sample(&forest);
    let mut type_sizes: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for t in &forest.tasks {
        *type_sizes.entry(t.task_type.as_str()).or_insert(0) += 1;
    }
    let sizes: Vec<usize> = type_sizes.values().copied().collect();
    let critical = stats.critical;
    let critical_kept = sampled.tasks.iter().filter(|t| t.on_critical_path).count();
    StressVerdict {
        shape: shape.label(),
        total: stats.total,
        kept: stats.kept,
        bound: sampler.hard_bound(forest.len(), critical, &sizes),
        critical,
        critical_kept,
    }
}

/// Renders one stress verdict line.
pub fn render_stress(v: &StressVerdict) -> String {
    format!(
        "shape={} total={} kept={} bound={} critical={} critical_kept={} -> {}",
        v.shape,
        v.total,
        v.kept,
        v.bound,
        v.critical,
        v.critical_kept,
        if v.passed() { "PASS" } else { "FAIL" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ReplaySpec {
        ReplaySpec {
            jobs: 6,
            chaos: true,
            ..ReplaySpec::default()
        }
    }

    #[test]
    fn spans_run_is_bit_reproducible() {
        let spec = small_spec();
        let a = run(&spec, DEFAULT_RATE_PPM, DEFAULT_SAMPLER_SEED);
        let b = run(&spec, DEFAULT_RATE_PPM, DEFAULT_SAMPLER_SEED);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.forest.to_otlp_json(), b.forest.to_otlp_json());
    }

    #[test]
    fn artifact_contains_every_section() {
        let text = run(&small_spec(), DEFAULT_RATE_PPM, DEFAULT_SAMPLER_SEED).render();
        for section in [
            "-- flame (collapsed stacks, virtual-ns weights) --",
            "-- span summary --",
            "-- sampler --",
            "-- alert timeline --",
        ] {
            assert!(text.contains(section), "missing {section}:\n{text}");
        }
        assert!(text.contains("gpuflow;"), "flame lines missing");
        assert!(text.contains("\"phase_ns\""), "summary JSON missing");
    }

    #[test]
    fn sampled_trace_respects_bound_and_keeps_critical_path() {
        let r = run(&small_spec(), 50_000, DEFAULT_SAMPLER_SEED);
        assert!(r.stats.kept <= r.bound, "{} > {}", r.stats.kept, r.bound);
        let critical_kept = r
            .sampled
            .tasks
            .iter()
            .filter(|t| t.on_critical_path)
            .count();
        assert_eq!(critical_kept, r.stats.critical, "critical span dropped");
    }

    #[test]
    fn stress_check_passes_at_small_scale() {
        let v = run_stress(stress::Shape::Wide, 2_000, 10_000, DEFAULT_SAMPLER_SEED);
        assert!(v.passed(), "{}", render_stress(&v));
        assert!(v.total >= 2_000);
    }
}
