//! Figure 1: performance of distributed K-means at different processing
//! stages on CPUs and GPUs.
//!
//! The motivating experiment: 10 GB dataset, 256 tasks, 128 CPU cores /
//! 32 GPU devices. Three stages are compared: (i) the parallel fraction
//! of a single task, (ii) a single task's whole user code, and (iii) the
//! fully distributed parallel-tasks execution. The paper measures 5.69×,
//! 1.24× and -1.20× respectively.

use gpuflow_algorithms::KmeansConfig;
use gpuflow_analysis::signed_speedup;
use gpuflow_cluster::ProcessorKind;

use crate::measure::Context;
use crate::table::TextTable;

/// One stage's CPU/GPU times and speedup.
#[derive(Debug, Clone, Copy)]
pub struct StageRow {
    /// Stage name.
    pub stage: &'static str,
    /// CPU time, seconds.
    pub cpu: f64,
    /// GPU time, seconds.
    pub gpu: f64,
    /// Signed speedup (the Fig. 1 convention: negative = GPU slower).
    pub speedup: f64,
}

/// The Figure 1 reproduction result.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Rows for the three stages.
    pub stages: Vec<StageRow>,
}

/// Paper reference values for the three stages.
pub const PAPER_SPEEDUPS: [(&str, f64); 3] = [
    ("parallel fraction", 5.69),
    ("task user code", 1.24),
    ("parallel tasks", -1.20),
];

/// Runs the Figure 1 experiment.
pub fn run(ctx: &Context) -> Fig1 {
    let wf = KmeansConfig::new(gpuflow_data::paper::kmeans_10gb(), 256, 10, 1)
        .expect("paper configuration is valid")
        .build_workflow();
    let cpu = ctx
        .run_default(&wf, ProcessorKind::Cpu)
        .report()
        .expect("CPU run fits")
        .clone();
    let gpu = ctx
        .run_default(&wf, ProcessorKind::Gpu)
        .report()
        .expect("GPU run fits")
        .clone();

    let cpu_ps = *cpu
        .metrics
        .task_type("partial_sum")
        .expect("partial_sum ran");
    let gpu_ps = *gpu
        .metrics
        .task_type("partial_sum")
        .expect("partial_sum ran");

    let stages = vec![
        StageRow {
            stage: "parallel fraction",
            cpu: cpu_ps.parallel,
            gpu: gpu_ps.parallel,
            speedup: signed_speedup(cpu_ps.parallel, gpu_ps.parallel),
        },
        StageRow {
            stage: "task user code",
            cpu: cpu_ps.user_code,
            gpu: gpu_ps.user_code,
            speedup: signed_speedup(cpu_ps.user_code, gpu_ps.user_code),
        },
        StageRow {
            stage: "parallel tasks",
            cpu: cpu.makespan(),
            gpu: gpu.makespan(),
            speedup: signed_speedup(cpu.makespan(), gpu.makespan()),
        },
    ];
    Fig1 { stages }
}

impl Fig1 {
    /// Renders the comparison with the paper's reference numbers.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Figure 1: K-means processing stages, CPU vs GPU",
            ["stage", "CPU (s)", "GPU (s)", "speedup", "paper"],
        );
        for (row, (_, paper)) in self.stages.iter().zip(PAPER_SPEEDUPS) {
            t.push([
                row.stage.to_string(),
                format!("{:.3}", row.cpu),
                format!("{:.3}", row.gpu),
                format!("{:+.2}x", row.speedup),
                format!("{paper:+.2}x"),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_three_stage_shape() {
        let fig = run(&Context::default());
        assert_eq!(fig.stages.len(), 3);
        let [pfrac, user, ptasks] = [&fig.stages[0], &fig.stages[1], &fig.stages[2]];
        // Stage (i): clear GPU win on the parallel fraction.
        assert!(pfrac.speedup > 3.0, "got {}", pfrac.speedup);
        // Stage (ii): marginal win once serial + comm are counted.
        assert!(user.speedup > 1.0 && user.speedup < pfrac.speedup);
        // Stage (iii): GPUs lose end-to-end (negative signed speedup).
        assert!(ptasks.speedup < -1.0, "got {}", ptasks.speedup);
        let rendered = fig.render();
        assert!(rendered.contains("parallel tasks"));
    }
}
