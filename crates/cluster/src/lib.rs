//! # gpuflow-cluster — heterogeneous CPU-GPU cluster hardware models
//!
//! Parameterised models of the hardware the paper's experiments ran on
//! (the BSC Minotauro system, §4.4.1): per-core CPU and per-device GPU
//! roofline cost models, the PCIe host↔device bus, node-local disks, the
//! shared GPFS backend behind per-node NICs, and (de)serialization costs.
//!
//! These are *specifications*; the dynamic contention state (who is queued
//! on which core, which transfers share which link) lives in the executor
//! of `gpuflow-runtime`, built from these specs using `gpuflow-sim`
//! resources.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod interconnect;
mod processor;
mod storage;
mod topology;

pub use interconnect::{NetworkSpec, PcieSpec};
pub use processor::{CpuModel, GpuModel, KernelWork};
pub use storage::{DiskSpec, SerdeCost, StorageArchitecture};
pub use topology::{ClusterSpec, NodeResources, NodeSpec, ProcessorKind};
