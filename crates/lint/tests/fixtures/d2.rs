// D2 fixture: wall-clock reads outside the allowlist.

fn probe() -> std::time::Instant {
    std::time::Instant::now()
}

fn stamp() -> u64 {
    let _t = std::time::SystemTime::now();
    0
}

fn host_only() {
    // lint: allow(D2, fixture demonstrates a reasoned suppression)
    let _t = std::time::Instant::now();
}
