//! Factor correlation study (Fig. 11, reduced sample set).
//!
//! Sweeps algorithm × grid × processor × storage × policy combinations,
//! collects the Table 1 features for every completed run, and prints the
//! Spearman correlation matrix plus the factors most correlated with
//! parallel task execution time.
//!
//! ```sh
//! cargo run --release --example correlation_study
//! ```

use gpuflow::experiments::{fig11, Context};

fn main() {
    let ctx = Context::default();
    let fig = fig11::run_quick(&ctx);
    println!("{}", fig.render());

    println!("\nFactors most correlated with parallel task execution time:");
    for (name, rho) in fig
        .matrix
        .strongest_with("parallel task exec. time")
        .into_iter()
        .take(8)
    {
        println!("  {rho:+.3}  {name}");
    }
    println!(
        "\n({} samples; run `cargo run --release -p gpuflow-experiments --bin repro fig11`\n\
         for the full {}-plus-sample study of the paper.)",
        fig.table.rows(),
        192
    );
}
