//! Offline drop-in replacement for the subset of `rand 0.8` this
//! workspace uses, **bit-compatible** with the upstream crate.
//!
//! The build environment has no access to crates.io, but the committed
//! experiment artifacts were produced with the real `rand 0.8` stack, so
//! this vendored stand-in must reproduce upstream's value streams
//! *exactly*:
//!
//! * `StdRng` is ChaCha12 with rand_chacha's block layout (4 blocks per
//!   refill, 64-bit counter in words 12-13, 64-bit stream in words 14-15)
//!   and rand_core's `BlockRng` word-consumption rules;
//! * `SeedableRng::seed_from_u64` fills the seed with rand_core's PCG32
//!   sequence;
//! * `Rng::gen::<f64>()` and `gen_range` over integer/float ranges use
//!   rand 0.8.5's `Standard` / `UniformInt` / `UniformFloat` sampling
//!   algorithms (widening-multiply rejection, `[1, 2)` mantissa trick);
//! * `SliceRandom::shuffle` is upstream's reverse Fisher-Yates over
//!   `gen_range(0..=i)`.
//!
//! Every algorithm is checked in the test module at the bottom; the
//! repository's artifact-regeneration check provides the end-to-end
//! equivalence proof.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::uniform::{SampleRange, SampleUniform};
pub use distributions::{Distribution, Standard};

/// Core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable RNG interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanding it with rand_core's
    /// PCG32 sequence (bit-identical to upstream).
    fn seed_from_u64(mut state: u64) -> Self {
        // rand_core 0.6: PCG32 with fixed increment, one u32 per chunk.
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let x = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(&x[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing RNG extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn standard_f64_is_53_bit() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            // 53-bit values scaled by 2^-53 are exact multiples of 2^-53.
            assert_eq!(x, (x * 9007199254740992.0).round() / 9007199254740992.0);
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let g = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&g));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.gen_range(5usize..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // Deterministic under the same seed.
        let mut w: Vec<u32> = (0..100).collect();
        w.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(v, w);
    }
}
