//! Blocked Cholesky factorization — an extension workload with the
//! *staircase* DAG shape between the paper's wide-shallow Matmul and
//! narrow-deep K-means.
//!
//! The right-looking blocked algorithm (the classic COMPSs/StarPU demo)
//! factors an SPD matrix `A = L·Lᵀ` in place over a `G × G` grid:
//!
//! ```text
//! for k in 0..G:
//!     potrf(A[k,k])                       # panel factor, limited parallelism
//!     for i in k+1..G:  trsm(A[k,k] -> A[i,k])
//!     for i in k+1..G:
//!         syrk(A[i,k] -> A[i,i])
//!         for j in k+1..i:  gemm(A[i,k], A[j,k] -> A[i,j])
//! ```
//!
//! The `InOut` accesses on the trailing blocks let the data-versioning
//! DAG builder derive the full dependency staircase automatically — the
//! same mechanism PyCOMPSs uses (§3.1).

use gpuflow_cluster::KernelWork;
use gpuflow_data::{
    BlockCoord, DatasetSpec, DsArray, DsArraySpec, GridDim, Matrix, PartitionError,
};
use gpuflow_runtime::{CostProfile, DataId, Direction, Workflow, WorkflowBuilder};

/// Cost of `potrf` on a `b × b` block: cubic work but with the limited
/// panel parallelism that keeps it CPU-friendly.
pub fn potrf_cost(b: u64) -> CostProfile {
    let bf = b as f64;
    let serial = KernelWork {
        flops: 30.0 * bf * bf.log2().max(1.0),
        bytes: bf * 8.0,
        parallelism: 1.0,
    };
    let parallel = KernelWork {
        flops: bf * bf * bf / 3.0,
        bytes: bf * bf * 8.0,
        parallelism: bf * bf / 8.0,
    };
    CostProfile::partially_parallel(serial, parallel)
}

/// Cost of `trsm` (triangular solve of one off-diagonal block).
pub fn trsm_cost(b: u64) -> CostProfile {
    let bf = b as f64;
    CostProfile::fully_parallel(KernelWork {
        flops: bf * bf * bf,
        bytes: 2.0 * bf * bf * 8.0,
        parallelism: bf * bf,
    })
}

/// Cost of `syrk` (symmetric rank-k update of a diagonal block).
pub fn syrk_cost(b: u64) -> CostProfile {
    let bf = b as f64;
    CostProfile::fully_parallel(KernelWork {
        flops: bf * bf * bf,
        bytes: 2.0 * bf * bf * 8.0,
        parallelism: bf * bf,
    })
}

/// Cost of `gemm` (general update of a trailing block).
pub fn gemm_cost(b: u64) -> CostProfile {
    let bf = b as f64;
    CostProfile::fully_parallel(KernelWork {
        flops: 2.0 * bf * bf * bf,
        bytes: 3.0 * bf * bf * 8.0,
        parallelism: bf * bf,
    })
}

/// Configuration of one blocked Cholesky workflow.
#[derive(Debug, Clone)]
pub struct CholeskyConfig {
    /// The (square, SPD) matrix descriptor.
    pub spec: DsArraySpec,
}

impl CholeskyConfig {
    /// Partitions `dataset` (must be square) into a `grid × grid` layout.
    ///
    /// # Errors
    /// Propagates partitioning violations; rejects non-square datasets.
    pub fn new(dataset: DatasetSpec, grid: u64) -> Result<Self, PartitionError> {
        if dataset.dim.rows != dataset.dim.cols {
            return Err(PartitionError::GridExceedsDataset {
                grid: dataset.dim.rows.max(dataset.dim.cols),
                dataset: dataset.dim.rows.min(dataset.dim.cols),
            });
        }
        let spec = DsArraySpec::partition(dataset, GridDim::square(grid))?;
        Ok(CholeskyConfig { spec })
    }

    /// Grid extent `G`.
    pub fn grid(&self) -> u64 {
        self.spec.grid.rows
    }

    /// Expected task counts: `(potrf, trsm, syrk, gemm)`.
    pub fn task_counts(&self) -> (u64, u64, u64, u64) {
        let g = self.grid();
        let tri = g * (g - 1) / 2; // off-diagonal blocks of the lower triangle
        let gemm: u64 = (0..g)
            .map(|k| {
                let r = g - 1 - k; // trailing rows below the panel
                r.saturating_sub(1) * r / 2
            })
            .sum();
        (g, tri, tri, gemm)
    }

    /// Builds the dependency DAG over the lower-triangular blocks.
    pub fn build_workflow(&self) -> Workflow {
        let g = self.grid() as usize;
        let mut b = WorkflowBuilder::new();
        let block_bytes = self.spec.block_bytes();
        let order = self.spec.block.rows;
        // Lower-triangle blocks A[i][j], j <= i, as on-storage inputs.
        let mut blocks: Vec<Vec<Option<DataId>>> = vec![vec![None; g]; g];
        for (i, row) in blocks.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate().take(i + 1) {
                *cell = Some(b.input(format!("A[{i},{j}]"), block_bytes));
            }
        }
        let at = |blocks: &Vec<Vec<Option<DataId>>>, i: usize, j: usize| {
            blocks[i][j].expect("lower-triangle block")
        };
        for k in 0..g {
            b.submit(
                "potrf",
                potrf_cost(order),
                &[(at(&blocks, k, k), Direction::InOut)],
                false,
            )
            .expect("valid potrf");
            for i in (k + 1)..g {
                b.submit(
                    "trsm",
                    trsm_cost(order),
                    &[
                        (at(&blocks, k, k), Direction::In),
                        (at(&blocks, i, k), Direction::InOut),
                    ],
                    false,
                )
                .expect("valid trsm");
            }
            for i in (k + 1)..g {
                b.submit(
                    "syrk",
                    syrk_cost(order),
                    &[
                        (at(&blocks, i, k), Direction::In),
                        (at(&blocks, i, i), Direction::InOut),
                    ],
                    false,
                )
                .expect("valid syrk");
                for j in (k + 1)..i {
                    b.submit(
                        "gemm",
                        gemm_cost(order),
                        &[
                            (at(&blocks, i, k), Direction::In),
                            (at(&blocks, j, k), Direction::In),
                            (at(&blocks, i, j), Direction::InOut),
                        ],
                        false,
                    )
                    .expect("valid gemm");
                }
            }
        }
        b.build()
    }
}

// ---------------------------------------------------------------------
// Functional reference (dense kernels on real matrices).
// ---------------------------------------------------------------------

/// Dense Cholesky of an SPD matrix: returns lower-triangular `L` with
/// `L·Lᵀ = a`.
///
/// # Panics
/// Panics if the matrix is not square or not positive definite.
pub fn dense_cholesky(a: &Matrix) -> Matrix {
    assert_eq!(a.rows(), a.cols(), "square matrices only");
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                assert!(sum > 0.0, "matrix is not positive definite");
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    l
}

/// In-place dense `trsm`: given the factored diagonal block `l_kk`,
/// replaces `a_ik` with `a_ik · l_kkᵀ⁻¹` (forward substitution by rows).
fn trsm_block(l_kk: &Matrix, a_ik: &mut Matrix) {
    let b = l_kk.rows();
    for r in 0..a_ik.rows() {
        for c in 0..b {
            let mut sum = a_ik[(r, c)];
            for k in 0..c {
                sum -= a_ik[(r, k)] * l_kk[(c, k)];
            }
            a_ik[(r, c)] = sum / l_kk[(c, c)];
        }
    }
}

/// Generates a well-conditioned SPD matrix from a seeded dataset:
/// `B·Bᵀ + n·I`.
pub fn spd_matrix(n: u64, seed: u64) -> Matrix {
    let b = DatasetSpec::uniform("spd-base", n, n, seed)
        .materialize()
        .expect("test-scale matrix");
    let mut m = Matrix::zeros(n as usize, n as usize);
    for i in 0..n as usize {
        for j in 0..n as usize {
            let mut dot = 0.0;
            for k in 0..n as usize {
                dot += b[(i, k)] * b[(j, k)];
            }
            m[(i, j)] = dot + if i == j { n as f64 } else { 0.0 };
        }
    }
    m
}

/// Blocked Cholesky over a [`DsArray`], mirroring the workflow's task
/// structure; returns the dense `L`.
///
/// # Panics
/// Panics on non-square grids or non-SPD inputs.
pub fn reference_blocked_cholesky(a: &DsArray) -> Matrix {
    let g = a.spec().grid.rows;
    assert_eq!(a.spec().grid.cols, g, "square grids only");
    let bsz = a.spec().block.rows as usize;
    // Work on a mutable grid of blocks.
    let mut blocks: Vec<Vec<Matrix>> = (0..g)
        .map(|i| {
            (0..g)
                .map(|j| a.block(BlockCoord { row: i, col: j }).clone())
                .collect()
        })
        .collect();
    for k in 0..g as usize {
        let lkk = dense_cholesky(&blocks[k][k]);
        blocks[k][k] = lkk;
        for i in (k + 1)..g as usize {
            let lkk = blocks[k][k].clone();
            trsm_block(&lkk, &mut blocks[i][k]);
        }
        for i in (k + 1)..g as usize {
            for j in (k + 1)..=i {
                // A[i][j] -= L[i][k] · L[j][k]ᵀ  (syrk when i == j).
                let lik = blocks[i][k].clone();
                let ljk = blocks[j][k].clone();
                let target = &mut blocks[i][j];
                for r in 0..bsz {
                    for c in 0..bsz {
                        let mut dot = 0.0;
                        for t in 0..bsz {
                            dot += lik[(r, t)] * ljk[(c, t)];
                        }
                        target[(r, c)] -= dot;
                    }
                }
            }
        }
    }
    // Assemble dense lower-triangular L.
    let n = a.spec().dataset.dim.rows as usize;
    let mut out = Matrix::zeros(n, n);
    #[allow(clippy::needless_range_loop)] // triangular indexing reads clearer
    for i in 0..g as usize {
        for j in 0..=i {
            let blk = &blocks[i][j];
            for r in 0..bsz {
                for c in 0..bsz {
                    let (gr, gc) = (i * bsz + r, j * bsz + c);
                    if gc <= gr {
                        out[(gr, gc)] = blk[(r, c)];
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_cholesky_reconstructs_spd_matrix() {
        let a = spd_matrix(12, 3);
        let l = dense_cholesky(&a);
        // L·Lᵀ == A.
        let lt = Matrix::from_fn(12, 12, |i, j| l[(j, i)]);
        assert!(l.matmul(&lt).max_abs_diff(&a) < 1e-8);
        // L is lower triangular.
        for i in 0..12 {
            for j in (i + 1)..12 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn blocked_cholesky_matches_dense() {
        let n = 24;
        let a = spd_matrix(n, 5);
        let ds = DatasetSpec::uniform("spd", n, n, 0);
        for g in [1u64, 2, 3, 4] {
            let arr = DsArray::from_matrix(ds.clone(), &a, GridDim::square(g)).unwrap();
            let blocked = reference_blocked_cholesky(&arr);
            let dense = dense_cholesky(&a);
            assert!(
                blocked.max_abs_diff(&dense) < 1e-8,
                "grid {g}: blocked factor diverges"
            );
        }
    }

    #[test]
    fn task_counts_follow_the_staircase() {
        let cfg = CholeskyConfig::new(DatasetSpec::uniform("c", 64, 64, 1), 4).unwrap();
        let (potrf, trsm, syrk, gemm) = cfg.task_counts();
        assert_eq!((potrf, trsm, syrk, gemm), (4, 6, 6, 4));
        let wf = cfg.build_workflow();
        let count = |t: &str| wf.tasks().iter().filter(|x| x.task_type == t).count() as u64;
        assert_eq!(count("potrf"), potrf);
        assert_eq!(count("trsm"), trsm);
        assert_eq!(count("syrk"), syrk);
        assert_eq!(count("gemm"), gemm);
        wf.check_invariants().unwrap();
    }

    #[test]
    fn dag_shape_sits_between_matmul_and_kmeans() {
        // Staircase: deeper than Matmul's 3 levels, wider than K-means'
        // per-iteration width at equal block counts.
        let wf = CholeskyConfig::new(DatasetSpec::uniform("c", 64, 64, 1), 4)
            .unwrap()
            .build_workflow();
        let shape = wf.shape();
        assert!(shape.height > 4, "staircase depth, got {}", shape.height);
        assert!(
            shape.max_width >= 3,
            "trailing updates fan out, got {}",
            shape.max_width
        );
    }

    #[test]
    fn dependencies_serialise_panels() {
        let cfg = CholeskyConfig::new(DatasetSpec::uniform("c", 64, 64, 1), 2).unwrap();
        let wf = cfg.build_workflow();
        // Tasks: potrf(0) trsm(1) syrk(2) potrf(3); the second potrf must
        // transitively depend on the first.
        let potrfs: Vec<_> = wf
            .tasks()
            .iter()
            .filter(|t| t.task_type == "potrf")
            .map(|t| t.id)
            .collect();
        assert_eq!(potrfs.len(), 2);
        assert!(wf.level(potrfs[1]) > wf.level(potrfs[0]) + 1);
    }

    #[test]
    fn workflow_runs_on_the_simulated_cluster() {
        use gpuflow_cluster::{ClusterSpec, ProcessorKind};
        use gpuflow_runtime::RunConfig;
        let wf = CholeskyConfig::new(DatasetSpec::uniform("c", 16_384, 16_384, 1), 4)
            .unwrap()
            .build_workflow();
        for p in ProcessorKind::ALL {
            let report =
                gpuflow_runtime::run(&wf, &RunConfig::new(ClusterSpec::minotauro(), p)).unwrap();
            assert_eq!(report.records.len(), wf.tasks().len());
        }
    }

    #[test]
    fn potrf_is_partially_parallel() {
        let cpu = gpuflow_cluster::ClusterSpec::minotauro().node.cpu;
        let pf = potrf_cost(2048).parallel_fraction(&cpu);
        assert!(pf > 0.5 && pf < 1.0, "potrf fraction {pf}");
        assert_eq!(trsm_cost(2048).parallel_fraction(&cpu), 1.0);
    }
}
