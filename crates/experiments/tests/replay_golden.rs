//! Golden pin for the production-trace replay artifact.
//!
//! `repro replay` (default spec) must regenerate `artifacts/replay.txt`
//! byte for byte: the submission log, the metrics-over-time series, and
//! the final Prometheus exposition are all deterministic functions of
//! the spec seed. Any executor, scheduler, or metrics change that moves
//! a single sample shows up here as a byte diff.
//!
//! Regenerate after a deliberate change with
//! `GOLDEN_REGEN=1 cargo test -p gpuflow-experiments --test replay_golden`.

use gpuflow_experiments::replay;

fn golden_compare(rel: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{rel} drifted from its golden file; if the change is deliberate, \
         regenerate with GOLDEN_REGEN=1"
    );
}

/// The default scenario regenerates the committed artifact exactly.
#[test]
fn default_replay_artifact_matches_golden() {
    let report = replay::run(&replay::ReplaySpec::default());
    golden_compare("artifacts/replay.txt", &report.render());
}

/// The artifact's exposition section is valid Prometheus text format —
/// the same check `repro replay --check` and the CI metrics-smoke job
/// apply to freshly generated output.
#[test]
fn replay_exposition_passes_the_format_checker() {
    let report = replay::run(&replay::ReplaySpec::default());
    let stats = gpuflow_lint::promtext::check(&report.metrics.expose())
        .expect("exposition must be well-formed");
    assert!(stats.families >= 20, "expected the full family set");
    assert!(stats.samples > 50);
}

/// Chaos replays are themselves deterministic: same seed, same plan,
/// same artifact.
#[test]
fn chaos_replay_is_deterministic() {
    let spec = replay::ReplaySpec {
        jobs: 8,
        chaos: true,
        ..replay::ReplaySpec::default()
    };
    let a = replay::run(&spec).render();
    let b = replay::run(&spec).render();
    assert_eq!(a, b);
    assert!(a.contains("-- fault plan --"));
    assert!(a.contains("crash:node="), "plan must render its faults");
}
