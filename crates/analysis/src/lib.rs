//! # gpuflow-analysis — the paper's statistical toolkit
//!
//! Implements the analysis machinery of §5.4: tie-aware Spearman rank
//! correlation, one-hot encoding of categorical factors, correlation
//! matrices over experiment feature tables (Fig. 11), the speedup /
//! summary statistics used throughout the evaluation, a CART
//! regression tree for the §5.4.3 "learning models" direction, and the
//! Jain-style bottleneck doctor ([`DoctorReport`]) that turns a run
//! profile into ranked findings.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod doctor;
mod features;
mod predictor;
mod spearman;
mod stats;

pub use doctor::{DoctorReport, Finding, Severity, WhatIf};
pub use features::{one_hot, CorrMatrix, CorrMethod, FeatureTable};
pub use predictor::{r2_score, train_test_split, Forest, RegressionTree, TreeParams};
pub use spearman::{pearson, ranks, spearman, spearman_pairwise};
pub use stats::{confidence_half_width_95, geo_mean, mean, median, signed_speedup, std_dev};
