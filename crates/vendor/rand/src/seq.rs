//! Slice extensions (subset of `rand::seq`), bit-compatible with
//! rand 0.8.5.

use crate::{Rng, RngCore};

/// Uniform index in `[0, ubound)`, as rand 0.8.5's private
/// `seq::gen_index`: 32-bit sampling whenever the bound fits, so 32- and
/// 64-bit platforms produce the same stream.
#[inline]
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

/// Extension trait on slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place: upstream's reverse Fisher-Yates over
    /// `gen_index(rng, i + 1)`.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns one random element, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(gen_index(rng, self.len()))
        }
    }
}
