//! Execution metrics (§4.2 of the paper).
//!
//! Three metric families, mirroring the paper exactly:
//!
//! * **task user code** — serial fraction, parallel fraction, CPU-GPU
//!   communication, and their sum, aggregated per task type;
//! * **data movement** — (de)serialization time per CPU core;
//! * **task level** — parallel task execution time per DAG level.

use std::collections::BTreeMap;

use gpuflow_cluster::ProcessorKind;
use gpuflow_sim::{SimDuration, SimTime};

use crate::task::{TaskId, TaskType};

/// Everything measured about one executed task.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// Task identifier.
    pub task: TaskId,
    /// Task type (aggregation key for user-code metrics).
    pub task_type: TaskType,
    /// Node that executed the task.
    pub node: usize,
    /// First host core index (within the node) the task occupied.
    pub core: u16,
    /// Number of host cores the task held for its whole lifetime (1 for
    /// GPU and serial tasks, `cpu_threads_per_task` for multi-threaded
    /// CPU tasks). Utilization and concurrency accounting must weight
    /// by this, not count records.
    pub cores: u16,
    /// Processor that executed the parallel fraction.
    pub processor: ProcessorKind,
    /// DAG level.
    pub level: u32,
    /// Dispatch instant (core acquired).
    pub start: SimTime,
    /// Completion instant (outputs on storage, resources released).
    pub end: SimTime,
    /// Deserialization time (storage read + decode) on the host core.
    pub deser: SimDuration,
    /// Serialization time (encode + storage write).
    pub ser: SimDuration,
    /// Serial fraction execution time.
    pub serial: SimDuration,
    /// Parallel fraction execution time (CPU compute or GPU kernel).
    pub parallel: SimDuration,
    /// CPU-GPU communication time (H2D + D2H, incl. bus latency).
    pub comm: SimDuration,
    /// Inputs served from the node cache.
    pub cache_hits: u32,
    /// Inputs read from storage.
    pub cache_misses: u32,
}

impl TaskRecord {
    /// User-code execution time: serial + parallel + CPU-GPU comm (§4.2).
    pub fn user_code(&self) -> SimDuration {
        self.serial + self.parallel + self.comm
    }
}

/// Mean durations for one task type.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UserCodeStats {
    /// Tasks aggregated.
    pub count: usize,
    /// Mean serial fraction time, seconds.
    pub serial: f64,
    /// Mean parallel fraction time, seconds.
    pub parallel: f64,
    /// Mean CPU-GPU communication time, seconds.
    pub comm: f64,
    /// Mean user-code time, seconds.
    pub user_code: f64,
}

/// Span statistics of one DAG level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelStats {
    /// The level.
    pub level: u32,
    /// Tasks on the level.
    pub tasks: usize,
    /// Wall-clock span from the first dispatch to the last completion of
    /// the level, seconds.
    pub span: f64,
}

/// Aggregated metrics of one run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Wall-clock makespan of the whole workflow, seconds.
    pub makespan: f64,
    /// Per-task-type user-code statistics.
    pub per_type: BTreeMap<TaskType, UserCodeStats>,
    /// Mean deserialization time per used CPU core, seconds.
    pub deser_per_core: f64,
    /// Mean serialization time per used CPU core, seconds.
    pub ser_per_core: f64,
    /// Per-level spans.
    pub levels: Vec<LevelStats>,
    /// Mean level span — the paper's "parallel task execution time"
    /// (§4.2: average per algorithm iteration over same-level tasks).
    pub parallel_task_time: f64,
    /// Total master-side scheduling overhead, seconds.
    pub sched_overhead: f64,
    /// CPU-core utilization in `[0, 1]` over the makespan.
    pub cpu_utilization: f64,
    /// GPU-device utilization in `[0, 1]` over the makespan (0 for CPU
    /// runs).
    pub gpu_utilization: f64,
    /// Cache hits across all tasks.
    pub cache_hits: u64,
    /// Cache misses across all tasks.
    pub cache_misses: u64,
    /// Highest working-set bytes held on any node at any instant — the
    /// "memory robustness" the paper credits chunking with (§1).
    pub peak_node_ram: u64,
}

impl RunMetrics {
    /// Computes aggregates from raw task records.
    ///
    /// `cores_used` is the number of distinct CPU cores that hosted work;
    /// `sched_overhead`, `cpu_utilization`, `gpu_utilization` come from
    /// the executor's resource accounting.
    #[allow(clippy::too_many_arguments)] // executor-internal constructor
    pub fn aggregate(
        records: &[TaskRecord],
        makespan: f64,
        cores_used: usize,
        sched_overhead: f64,
        cpu_utilization: f64,
        gpu_utilization: f64,
        peak_node_ram: u64,
    ) -> Self {
        let mut per_type: BTreeMap<TaskType, UserCodeStats> = BTreeMap::new();
        for r in records {
            let s = per_type.entry(r.task_type.clone()).or_default();
            s.count += 1;
            s.serial += r.serial.as_secs_f64();
            s.parallel += r.parallel.as_secs_f64();
            s.comm += r.comm.as_secs_f64();
            s.user_code += r.user_code().as_secs_f64();
        }
        for s in per_type.values_mut() {
            let n = s.count as f64;
            s.serial /= n;
            s.parallel /= n;
            s.comm /= n;
            s.user_code /= n;
        }

        let total_deser: f64 = records.iter().map(|r| r.deser.as_secs_f64()).sum();
        let total_ser: f64 = records.iter().map(|r| r.ser.as_secs_f64()).sum();
        let cores = cores_used.max(1) as f64;

        let mut level_bounds: BTreeMap<u32, (SimTime, SimTime, usize)> = BTreeMap::new();
        for r in records {
            let e = level_bounds.entry(r.level).or_insert((r.start, r.end, 0));
            e.0 = e.0.min(r.start);
            e.1 = e.1.max(r.end);
            e.2 += 1;
        }
        let levels: Vec<LevelStats> = level_bounds
            .into_iter()
            .map(|(level, (start, end, tasks))| LevelStats {
                level,
                tasks,
                span: (end - start).as_secs_f64(),
            })
            .collect();
        let parallel_task_time = if levels.is_empty() {
            0.0
        } else {
            levels.iter().map(|l| l.span).sum::<f64>() / levels.len() as f64
        };

        RunMetrics {
            makespan,
            per_type,
            deser_per_core: total_deser / cores,
            ser_per_core: total_ser / cores,
            levels,
            parallel_task_time,
            sched_overhead,
            cpu_utilization,
            gpu_utilization,
            cache_hits: records.iter().map(|r| r.cache_hits as u64).sum(),
            cache_misses: records.iter().map(|r| r.cache_misses as u64).sum(),
            peak_node_ram,
        }
    }

    /// Stats for one task type.
    pub fn task_type(&self, name: &str) -> Option<&UserCodeStats> {
        self.per_type.get(name)
    }

    /// Mean user-code time across all task types weighted by count.
    pub fn mean_user_code(&self) -> f64 {
        let (sum, n) = self.per_type.values().fold((0.0, 0usize), |(s, n), t| {
            (s + t.user_code * t.count as f64, n + t.count)
        });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mean parallel fraction time weighted by count.
    pub fn mean_parallel(&self) -> f64 {
        let (sum, n) = self.per_type.values().fold((0.0, 0usize), |(s, n), t| {
            (s + t.parallel * t.count as f64, n + t.count)
        });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(task_type: &str, level: u32, start_s: f64, end_s: f64) -> TaskRecord {
        TaskRecord {
            task: TaskId(0),
            task_type: task_type.into(),
            node: 0,
            core: 0,
            cores: 1,
            processor: ProcessorKind::Cpu,
            level,
            start: SimTime::from_nanos((start_s * 1e9) as u64),
            end: SimTime::from_nanos((end_s * 1e9) as u64),
            deser: SimDuration::from_millis(100),
            ser: SimDuration::from_millis(50),
            serial: SimDuration::from_millis(200),
            parallel: SimDuration::from_millis(300),
            comm: SimDuration::from_millis(10),
            cache_hits: 1,
            cache_misses: 2,
        }
    }

    #[test]
    fn per_type_means_are_correct() {
        let mut a = rec("f", 0, 0.0, 1.0);
        a.parallel = SimDuration::from_millis(100);
        let b = rec("f", 0, 0.0, 1.0); // parallel = 300 ms
        let m = RunMetrics::aggregate(&[a, b], 1.0, 4, 0.0, 0.5, 0.0, 0);
        let f = m.task_type("f").unwrap();
        assert_eq!(f.count, 2);
        assert!((f.parallel - 0.2).abs() < 1e-9);
        assert!((f.serial - 0.2).abs() < 1e-9);
        assert!((f.user_code - (0.2 + 0.2 + 0.01)).abs() < 1e-9);
    }

    #[test]
    fn user_code_is_sum_of_fractions() {
        let r = rec("f", 0, 0.0, 1.0);
        assert_eq!(r.user_code(), SimDuration::from_millis(510));
    }

    #[test]
    fn level_spans_cover_first_start_to_last_end() {
        let recs = vec![
            rec("f", 0, 0.0, 1.0),
            rec("f", 0, 0.5, 2.0),
            rec("g", 1, 2.0, 3.0),
        ];
        let m = RunMetrics::aggregate(&recs, 3.0, 4, 0.0, 0.5, 0.0, 0);
        assert_eq!(m.levels.len(), 2);
        assert!((m.levels[0].span - 2.0).abs() < 1e-9);
        assert_eq!(m.levels[0].tasks, 2);
        assert!((m.levels[1].span - 1.0).abs() < 1e-9);
        assert!((m.parallel_task_time - 1.5).abs() < 1e-9);
    }

    #[test]
    fn per_core_movement_divides_by_cores() {
        let recs = vec![rec("f", 0, 0.0, 1.0), rec("f", 0, 0.0, 1.0)];
        let m = RunMetrics::aggregate(&recs, 1.0, 2, 0.0, 0.5, 0.0, 0);
        assert!((m.deser_per_core - 0.1).abs() < 1e-9);
        assert!((m.ser_per_core - 0.05).abs() < 1e-9);
    }

    #[test]
    fn cache_totals_sum_over_tasks() {
        let recs = vec![rec("f", 0, 0.0, 1.0), rec("f", 0, 0.0, 1.0)];
        let m = RunMetrics::aggregate(&recs, 1.0, 2, 0.0, 0.5, 0.0, 0);
        assert_eq!((m.cache_hits, m.cache_misses), (2, 4));
    }

    #[test]
    fn empty_run_aggregates_to_zeros() {
        let m = RunMetrics::aggregate(&[], 0.0, 0, 0.0, 0.0, 0.0, 0);
        assert_eq!(m.per_type.len(), 0);
        assert_eq!(m.parallel_task_time, 0.0);
        assert_eq!(m.mean_user_code(), 0.0);
    }
}
