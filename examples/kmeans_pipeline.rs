//! The paper's motivating experiment (Fig. 1): distributed K-means on a
//! 10 GB dataset, 256 tasks, 128 CPU cores vs 32 GPU devices — showing
//! why per-stage analysis flips the CPU/GPU verdict.
//!
//! ```sh
//! cargo run --release --example kmeans_pipeline
//! ```

use gpuflow::experiments::{fig1, Context};

fn main() {
    let ctx = Context::default();
    let fig = fig1::run(&ctx);
    println!("{}", fig.render());

    let [pfrac, user, ptasks] = [&fig.stages[0], &fig.stages[1], &fig.stages[2]];
    println!("Reading the three stages (paper §1):");
    println!(
        "  (i)   Looking only at the GPU-parallelizable part of a task, the\n\
         \u{20}       GPU wins clearly ({:+.2}x; paper saw 5.69x).",
        pfrac.speedup
    );
    println!(
        "  (ii)  Adding the serial fraction and the PCIe transfers shrinks\n\
         \u{20}       the win to {:+.2}x (paper: 1.24x).",
        user.speedup
    );
    println!(
        "  (iii) Distributed across the cluster — where only 32 GPU tasks can\n\
         \u{20}       run in parallel against 128 CPU tasks, and every task pays\n\
         \u{20}       (de)serialization — the GPUs *lose* ({:+.2}x; paper: -1.20x).",
        ptasks.speedup
    );
    println!(
        "\nConclusion: a partial analysis of GPU vs CPU performance in\n\
         task-based workflows produces misleading results; every stage and\n\
         overhead has to be considered together."
    );
}
