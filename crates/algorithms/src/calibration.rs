//! Calibrated cost models for the studied task types (§4.4.4).
//!
//! Each function maps a task's geometry onto a [`CostProfile`] whose
//! constants were fitted so that the simulator reproduces the paper's
//! headline measurements on the Minotauro cluster model:
//!
//! * `matmul_func` speedup scaling to ~21× with block size (Fig. 8),
//! * `add_func` losing on the GPU at every block size (Fig. 8),
//! * K-means single-task speedups of ~5.7× (parallel fraction) and
//!   ~1.2× (user code) for the 10 GB / 256-task default (Fig. 1),
//! * cluster-count scaling and the OOM walls of Fig. 9a.
//!
//! Complexity notes: the paper states `partial_sum` as O(M·N·K²); its own
//! measurements (Fig. 9a: time grows ~100× for 100× clusters) behave
//! linearly in K, so the *cost* model uses `2·M·N·K` flops (exactly the
//! distance computation) while [`kmeans_nominal_complexity`] reports the
//! paper's nominal O(M·N·K²) figure used as a correlation feature.

use gpuflow_cluster::KernelWork;
use gpuflow_runtime::CostProfile;

/// Bytes per `f64` element.
const ELEM: f64 = 8.0;

/// Serial-fraction work coefficient of K-means `partial_sum`
/// (Python-level bookkeeping per sample, in equivalent flops).
pub const KMEANS_SERIAL_COEFF: f64 = 300.0;

/// Weight of the cluster count in the serial fraction (label handling
/// grows much slower than distance computation).
pub const KMEANS_SERIAL_K_WEIGHT: f64 = 0.3;

/// Host-side working-copy multiplier on the distance matrix (NumPy
/// temporaries), used for the host OOM check.
pub const HOST_WORKING_MULTIPLIER: f64 = 1.5;

/// Cost of `matmul_func`: one block product `C_partial = A_ik × B_kj`
/// with blocks of `rows × mid` and `mid × cols` elements. O(N³) and
/// fully parallel (Fig. 4c).
pub fn matmul_func_cost(rows: u64, mid: u64, cols: u64) -> CostProfile {
    let (r, m, c) = (rows as f64, mid as f64, cols as f64);
    CostProfile::fully_parallel(KernelWork {
        flops: 2.0 * r * m * c,
        bytes: (r * m + m * c + r * c) * ELEM,
        parallelism: r * c,
    })
}

/// Cost of `add_func`: element-wise block sum, O(N) per element and
/// memory-bound (its arithmetic intensity is 1/24 flop per byte), which
/// is why it degrades on GPUs once PCIe transfers are paid (§5.2.1).
pub fn add_func_cost(rows: u64, cols: u64) -> CostProfile {
    let n = (rows * cols) as f64;
    CostProfile::fully_parallel(KernelWork {
        flops: n,
        bytes: 3.0 * n * ELEM,
        parallelism: n,
    })
}

/// Cost of the Matmul-FMA task (Fig. 12): `C += A_ik × B_kj` — same
/// cubic compute as `matmul_func` plus the extra read of the accumulator.
pub fn fma_func_cost(rows: u64, mid: u64, cols: u64) -> CostProfile {
    let (r, m, c) = (rows as f64, mid as f64, cols as f64);
    CostProfile::fully_parallel(KernelWork {
        flops: 2.0 * r * m * c,
        bytes: (r * m + m * c + 2.0 * r * c) * ELEM,
        parallelism: r * c,
    })
}

/// Cost of K-means `partial_sum` over a block of `m` samples × `n`
/// features against `k` centers: partially parallel (Fig. 4b).
///
/// * parallel fraction — the distance computation: `2·m·n·k` flops over
///   `k/2` effective passes of the block, parallelism `m·k`;
/// * serial fraction — per-sample bookkeeping on the host;
/// * device/host intermediates — the `m × k` distance matrix, which is
///   what drives the OOM walls of Fig. 9a.
pub fn partial_sum_cost(m: u64, n: u64, k: u64) -> CostProfile {
    let (mf, nf, kf) = (m as f64, n as f64, k as f64);
    let serial = KernelWork {
        flops: KMEANS_SERIAL_COEFF * mf * (nf + KMEANS_SERIAL_K_WEIGHT * kf),
        bytes: mf * nf * ELEM,
        parallelism: 1.0,
    };
    let parallel = KernelWork {
        flops: 2.0 * mf * nf * kf,
        bytes: 4.0 * mf * nf * kf,
        parallelism: mf * kf,
    };
    let dist_matrix = (mf * kf * ELEM) as u64;
    CostProfile::partially_parallel(serial, parallel)
        .with_gpu_extra(dist_matrix)
        .with_host_extra((dist_matrix as f64 * HOST_WORKING_MULTIPLIER) as u64)
}

/// Cost of merging `arity` K-means partial results (k × (n+1) tallies):
/// cheap serial bookkeeping kept on the CPU, like dislib's `_merge`.
pub fn kmeans_merge_cost(k: u64, n: u64, arity: usize) -> CostProfile {
    let work = (k * (n + 1)) as f64 * arity as f64;
    CostProfile::serial_only(KernelWork {
        flops: 20.0 * work,
        bytes: work * ELEM,
        parallelism: 1.0,
    })
}

/// Cost of recomputing centers from the merged tallies.
pub fn kmeans_update_cost(k: u64, n: u64) -> CostProfile {
    let work = (k * (n + 1)) as f64;
    CostProfile::serial_only(KernelWork {
        flops: 30.0 * work,
        bytes: work * ELEM,
        parallelism: 1.0,
    })
}

/// The paper's nominal complexity figure for `partial_sum`, O(M·N·K²),
/// used as the "computational complexity" correlation feature (Fig. 11).
pub fn kmeans_nominal_complexity(m: u64, n: u64, k: u64) -> f64 {
    m as f64 * n as f64 * (k as f64).powi(2)
}

/// Nominal complexity of `matmul_func`, O(N³) in the block order.
pub fn matmul_nominal_complexity(order: u64) -> f64 {
    (order as f64).powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpuflow_cluster::ClusterSpec;

    #[test]
    fn matmul_flops_are_cubic() {
        let c = matmul_func_cost(4, 4, 4);
        assert_eq!(c.parallel.flops, 128.0);
        assert_eq!(c.serial.flops, 0.0);
    }

    #[test]
    fn add_is_two_orders_cheaper_than_matmul_at_paper_blocks() {
        // §5.2.1: add_func's complexity is orders of magnitude below
        // matmul_func's for the studied block sizes.
        let b = 2048;
        let mm = matmul_func_cost(b, b, b).parallel.flops;
        let add = add_func_cost(b, b).parallel.flops;
        assert!(mm / add >= 100.0);
    }

    #[test]
    fn partial_sum_parallel_fraction_grows_with_clusters() {
        let cpu = ClusterSpec::minotauro().node.cpu;
        let f10 = partial_sum_cost(48_828, 100, 10).parallel_fraction(&cpu);
        let f100 = partial_sum_cost(48_828, 100, 100).parallel_fraction(&cpu);
        let f1000 = partial_sum_cost(48_828, 100, 1000).parallel_fraction(&cpu);
        assert!(f10 < f100 && f100 < f1000, "{f10} {f100} {f1000}");
        assert!(f10 < 0.5, "at 10 clusters serial dominates: {f10}");
        assert!(f1000 > 0.85, "at 1000 clusters parallel dominates: {f1000}");
    }

    #[test]
    fn distance_matrix_drives_gpu_oom_walls() {
        // Fig. 9a: with 1000 clusters the GPU OOMs around the 1250 MB
        // block (grid 8x1 of the 10 GB dataset), not at 625 MB (16x1).
        let gpu_mem = ClusterSpec::minotauro().node.gpu.memory_bytes;
        let block_625mb = partial_sum_cost(781_250, 100, 1000);
        let block_1250mb = partial_sum_cost(1_562_500, 100, 1000);
        let fits = |c: &gpuflow_runtime::CostProfile, block: u64| {
            block + 8_080 + c.gpu_extra_bytes <= gpu_mem
        };
        assert!(fits(&block_625mb, 625_000_000));
        assert!(!fits(&block_1250mb, 1_250_000_000));
    }

    #[test]
    fn nominal_complexity_is_quadratic_in_clusters() {
        let a = kmeans_nominal_complexity(1000, 100, 10);
        let b = kmeans_nominal_complexity(1000, 100, 100);
        assert_eq!(b / a, 100.0);
    }

    #[test]
    fn fma_streams_more_bytes_than_matmul() {
        let mm = matmul_func_cost(64, 64, 64);
        let fma = fma_func_cost(64, 64, 64);
        assert_eq!(fma.parallel.flops, mm.parallel.flops);
        assert!(fma.parallel.bytes > mm.parallel.bytes);
    }
}
