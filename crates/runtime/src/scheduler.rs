//! Task scheduling policies (§3.2, §4.4.2).
//!
//! PyCOMPSs offers several schedulers; the paper compares two:
//!
//! * **task generation order** — dispatch ready tasks FIFO to whichever
//!   node has the most free slots; cheap decisions;
//! * **data locality** — dispatch ready tasks FIFO, but place each on the
//!   node caching the most input bytes; each decision costs more because
//!   candidate nodes are scored.
//!
//! The decision *cost* (master-side overhead per task) comes from
//! [`ClusterSpec`](gpuflow_cluster::ClusterSpec); the policy here decides
//! placement.

use std::cmp::{Ordering, Reverse};
use std::collections::BTreeSet;

use gpuflow_sim::SimDuration;

use crate::task::TaskId;

/// The scheduling policy factor of Table 1, plus an extension policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulingPolicy {
    /// Dispatch in task generation order; placement ignores data.
    GenerationOrder,
    /// Placement prefers nodes already caching the task's inputs.
    DataLocality,
    /// Extension: HEFT-style dispatch by upward rank (critical-path
    /// length to the sink), with locality-aware placement. Not part of
    /// the paper's comparison; used by the scheduler-ablation study.
    CriticalPath,
}

impl SchedulingPolicy {
    /// The paper's two policies, in its presentation order (the
    /// extension policy is deliberately excluded: Figs. 10-11 compare
    /// exactly these two).
    pub const ALL: [SchedulingPolicy; 2] = [
        SchedulingPolicy::GenerationOrder,
        SchedulingPolicy::DataLocality,
    ];

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            SchedulingPolicy::GenerationOrder => "task gen. order",
            SchedulingPolicy::DataLocality => "data locality",
            SchedulingPolicy::CriticalPath => "critical path",
        }
    }
}

/// A total-order key over an upward rank (a non-NaN `f64`).
///
/// Ordering agrees with `partial_cmp` on every non-NaN value: `-0.0` is
/// normalised to `+0.0` at construction, so `total_cmp`'s artificial
/// `-0.0 < +0.0` distinction never surfaces, and ties fall through to
/// whatever secondary key the container pairs it with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankKey(f64);

impl RankKey {
    /// Wraps `rank`; `-0.0` collapses to `+0.0`.
    pub fn new(rank: f64) -> Self {
        debug_assert!(!rank.is_nan(), "task ranks must be comparable");
        RankKey(if rank == 0.0 { 0.0 } else { rank })
    }
}

impl Eq for RankKey {}

impl PartialOrd for RankKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RankKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The executor's ready set, kept in dispatch order so every scheduling
/// decision starts from the front instead of re-sorting the whole set.
///
/// Iteration order is the order the seed executor produced by sorting on
/// each decision:
///
/// * [`SchedulingPolicy::CriticalPath`] — descending upward rank, ties
///   on ascending task id (HEFT dispatch order);
/// * the other policies ignore ranks (every task is keyed with rank 0),
///   so iteration is plain ascending task id — generation order.
#[derive(Debug, Clone)]
pub struct ReadyQueue {
    use_rank: bool,
    set: BTreeSet<(Reverse<RankKey>, TaskId)>,
}

impl ReadyQueue {
    /// An empty queue ordered for `policy`.
    pub fn new(policy: SchedulingPolicy) -> Self {
        ReadyQueue {
            use_rank: policy == SchedulingPolicy::CriticalPath,
            set: BTreeSet::new(),
        }
    }

    fn key(&self, rank: f64, task: TaskId) -> (Reverse<RankKey>, TaskId) {
        let rank = if self.use_rank { rank } else { 0.0 };
        (Reverse(RankKey::new(rank)), task)
    }

    /// Inserts `task` with its upward rank. Re-inserting is a no-op as
    /// long as the rank is unchanged (ranks are fixed per run).
    pub fn insert(&mut self, rank: f64, task: TaskId) {
        let key = self.key(rank, task);
        self.set.insert(key);
    }

    /// Removes `task`, which must have been inserted with `rank`.
    /// Returns whether it was present.
    pub fn remove(&mut self, rank: f64, task: TaskId) -> bool {
        let key = self.key(rank, task);
        self.set.remove(&key)
    }

    /// Tasks in dispatch order.
    pub fn iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.set.iter().map(|&(_, task)| task)
    }

    /// Removes and returns the first task (in dispatch order) matching
    /// `pred` — the find and the removal fused into one walk, instead of
    /// the find-then-keyed-remove pair that re-derived the ordering key
    /// and searched the tree a second time.
    pub fn take_first(&mut self, mut pred: impl FnMut(TaskId) -> bool) -> Option<TaskId> {
        let key = self.set.iter().find(|&&(_, task)| pred(task)).copied()?;
        self.set.remove(&key);
        Some(key.1)
    }

    /// Number of ready tasks.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no task is ready.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// A candidate node as seen by the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct NodeAvail {
    /// Node index.
    pub node: usize,
    /// Free execution slots (cores, or GPU+core pairs in a GPU run).
    pub free_slots: usize,
    /// Bytes of the candidate task's inputs cached on this node.
    pub cached_bytes: u64,
}

/// Chooses the node for one task from an availability snapshot, or
/// `None` when no node has a free slot.
///
/// `rotation` is the caller's running decision counter. The
/// generation-order policy is location-oblivious: it hands the task to
/// the next free node in round-robin order, so the block-to-node mapping
/// drifts between algorithm iterations (and cached inputs are *not*
/// deliberately revisited — exactly the behaviour the data-locality
/// policy exists to fix).
pub fn place(policy: SchedulingPolicy, nodes: &[NodeAvail], rotation: usize) -> Option<usize> {
    match policy {
        SchedulingPolicy::GenerationOrder => {
            let n = nodes.len();
            (0..n)
                .map(|i| &nodes[(i + rotation) % n.max(1)])
                .find(|nd| nd.free_slots > 0)
                .map(|nd| nd.node)
        }
        SchedulingPolicy::DataLocality | SchedulingPolicy::CriticalPath => nodes
            .iter()
            .filter(|n| n.free_slots > 0)
            .max_by(|a, b| {
                a.cached_bytes
                    .cmp(&b.cached_bytes)
                    .then(a.free_slots.cmp(&b.free_slots))
                    .then(b.node.cmp(&a.node))
            })
            .map(|n| n.node),
    }
}

/// Picks a `(task, node)` assignment, or `None` when nothing can run.
///
/// `ready` is in generation order — both PyCOMPSs policies honour it for
/// *which* task runs next and differ only in *where* — but a head task
/// with no placeable node does not block later ready tasks whose resource
/// kind is available.
pub fn pick(
    policy: SchedulingPolicy,
    ready: &[TaskId],
    nodes_for: impl Fn(TaskId) -> Vec<NodeAvail>,
) -> Option<(TaskId, usize)> {
    ready
        .iter()
        .find_map(|&task| place(policy, &nodes_for(task), 0).map(|node| (task, node)))
}

/// Master-side cost of one scheduling decision for `policy`.
pub fn decision_overhead(
    policy: SchedulingPolicy,
    fifo: SimDuration,
    locality: SimDuration,
) -> SimDuration {
    match policy {
        SchedulingPolicy::GenerationOrder => fifo,
        // Both informed policies score candidate nodes per decision.
        SchedulingPolicy::DataLocality | SchedulingPolicy::CriticalPath => locality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avail(specs: &[(usize, usize, u64)]) -> Vec<NodeAvail> {
        specs
            .iter()
            .map(|&(node, free_slots, cached_bytes)| NodeAvail {
                node,
                free_slots,
                cached_bytes,
            })
            .collect()
    }

    #[test]
    fn returns_none_when_no_ready_tasks() {
        assert_eq!(
            pick(SchedulingPolicy::GenerationOrder, &[], |_| avail(&[(
                0, 4, 0
            )])),
            None
        );
    }

    #[test]
    fn returns_none_when_no_free_slots() {
        let got = pick(SchedulingPolicy::GenerationOrder, &[TaskId(0)], |_| {
            avail(&[(0, 0, 0), (1, 0, 0)])
        });
        assert_eq!(got, None);
    }

    #[test]
    fn generation_order_picks_first_ready_task() {
        let got = pick(
            SchedulingPolicy::GenerationOrder,
            &[TaskId(3), TaskId(7)],
            |_| avail(&[(0, 1, 0)]),
        );
        assert_eq!(got, Some((TaskId(3), 0)));
    }

    #[test]
    fn generation_order_round_robins_over_free_nodes() {
        let nodes = avail(&[(0, 1, 999), (1, 3, 0), (2, 2, 0)]);
        assert_eq!(place(SchedulingPolicy::GenerationOrder, &nodes, 0), Some(0));
        assert_eq!(place(SchedulingPolicy::GenerationOrder, &nodes, 1), Some(1));
        assert_eq!(place(SchedulingPolicy::GenerationOrder, &nodes, 2), Some(2));
        assert_eq!(place(SchedulingPolicy::GenerationOrder, &nodes, 3), Some(0));
    }

    #[test]
    fn generation_order_skips_full_nodes_in_rotation() {
        let nodes = avail(&[(0, 0, 0), (1, 1, 0), (2, 0, 0)]);
        for rot in 0..6 {
            assert_eq!(
                place(SchedulingPolicy::GenerationOrder, &nodes, rot),
                Some(1)
            );
        }
    }

    #[test]
    fn locality_prefers_cached_bytes() {
        let got = pick(SchedulingPolicy::DataLocality, &[TaskId(0)], |_| {
            avail(&[(0, 3, 10), (1, 1, 500), (2, 2, 10)])
        });
        assert_eq!(got, Some((TaskId(0), 1)));
    }

    #[test]
    fn locality_falls_back_to_free_slots_on_tie() {
        let got = pick(SchedulingPolicy::DataLocality, &[TaskId(0)], |_| {
            avail(&[(0, 1, 0), (1, 4, 0)])
        });
        assert_eq!(got, Some((TaskId(0), 1)));
    }

    #[test]
    fn locality_skips_full_nodes_even_if_cached() {
        let got = pick(SchedulingPolicy::DataLocality, &[TaskId(0)], |_| {
            avail(&[(0, 0, 10_000), (1, 1, 0)])
        });
        assert_eq!(got, Some((TaskId(0), 1)));
    }

    #[test]
    fn pick_uses_rotation_zero() {
        let got = pick(SchedulingPolicy::GenerationOrder, &[TaskId(0)], |_| {
            avail(&[(2, 2, 0), (0, 2, 0), (1, 2, 0)])
        });
        assert_eq!(got, Some((TaskId(0), 2)), "first slice entry at rotation 0");
    }

    #[test]
    fn overheads_follow_policy() {
        let f = SimDuration::from_micros(800);
        let l = SimDuration::from_micros(3500);
        assert_eq!(
            decision_overhead(SchedulingPolicy::GenerationOrder, f, l),
            f
        );
        assert_eq!(decision_overhead(SchedulingPolicy::DataLocality, f, l), l);
        assert_eq!(decision_overhead(SchedulingPolicy::CriticalPath, f, l), l);
    }

    #[test]
    fn critical_path_places_like_locality() {
        let nodes = avail(&[(0, 3, 10), (1, 1, 500), (2, 2, 10)]);
        assert_eq!(place(SchedulingPolicy::CriticalPath, &nodes, 0), Some(1));
    }

    #[test]
    fn rank_key_orders_like_partial_cmp() {
        assert!(RankKey::new(1.0) < RankKey::new(2.0));
        assert!(RankKey::new(0.0) < RankKey::new(f64::INFINITY));
        assert_eq!(RankKey::new(-0.0), RankKey::new(0.0));
        assert_eq!(
            RankKey::new(-0.0).cmp(&RankKey::new(0.0)),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn ready_queue_critical_path_orders_by_rank_then_id() {
        let mut q = ReadyQueue::new(SchedulingPolicy::CriticalPath);
        q.insert(1.0, TaskId(5));
        q.insert(3.0, TaskId(9));
        q.insert(3.0, TaskId(2));
        q.insert(0.5, TaskId(0));
        let order: Vec<TaskId> = q.iter().collect();
        assert_eq!(order, vec![TaskId(2), TaskId(9), TaskId(5), TaskId(0)]);
    }

    #[test]
    fn ready_queue_other_policies_order_by_id() {
        for policy in [
            SchedulingPolicy::GenerationOrder,
            SchedulingPolicy::DataLocality,
        ] {
            let mut q = ReadyQueue::new(policy);
            q.insert(1.0, TaskId(5));
            q.insert(9.0, TaskId(7));
            q.insert(4.0, TaskId(1));
            let order: Vec<TaskId> = q.iter().collect();
            assert_eq!(order, vec![TaskId(1), TaskId(5), TaskId(7)], "{policy:?}");
        }
    }

    #[test]
    fn take_first_removes_the_first_match_in_dispatch_order() {
        let mut q = ReadyQueue::new(SchedulingPolicy::GenerationOrder);
        q.insert(0.0, TaskId(2));
        q.insert(0.0, TaskId(5));
        q.insert(0.0, TaskId(8));
        assert_eq!(q.take_first(|t| t.0 > 3), Some(TaskId(5)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.take_first(|_| true), Some(TaskId(2)));
        assert_eq!(q.take_first(|t| t.0 == 1), None);
        assert_eq!(q.len(), 1, "no match leaves the queue untouched");
    }

    #[test]
    fn ready_queue_remove_uses_the_insertion_rank() {
        let mut q = ReadyQueue::new(SchedulingPolicy::CriticalPath);
        q.insert(2.5, TaskId(3));
        q.insert(1.0, TaskId(4));
        assert!(q.remove(2.5, TaskId(3)));
        assert!(!q.remove(2.5, TaskId(3)), "already gone");
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.iter().next(), Some(TaskId(4)));
    }
}
