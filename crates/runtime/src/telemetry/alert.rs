//! Declarative SLO recording + alert rules over the metrics registry.
//!
//! An [`AlertEngine`] is embedded in a
//! [`MetricsRegistry`](super::MetricsRegistry) (see
//! [`enable_alerts`](super::MetricsRegistry::enable_alerts)) and
//! evaluated at every virtual-time sample boundary the registry seals —
//! the same integer-ns cadence as the self-sampled series, so the
//! firing timeline is deterministic and byte-identical between a live
//! fold and a journal replay.
//!
//! Three rule kinds cover the daemon's SLO surface:
//!
//! * [`RuleKind::QueueWaitP99`] — the p99 of the ready→dispatch
//!   queue-wait histogram exceeds a threshold (subject `global`);
//! * [`RuleKind::RejectRate`] — admission rejects observed since the
//!   previous evaluation, one subject per reject reason;
//! * [`RuleKind::TenantStarvation`] — a tenant has queued jobs but
//!   completed no tasks since the previous evaluation, one subject per
//!   tenant.
//!
//! Each `(rule, subject)` pair runs the Prometheus-style state machine
//! *inactive → pending → firing*: the condition must hold continuously
//! for the rule's `for_ns` before the alert fires, and any evaluation
//! with the condition false resolves it. Every transition is appended
//! to a timeline; current states surface as
//! `gpuflow_alert_state{alert,severity,subject}` gauge samples
//! (0 inactive, 1 pending, 2 firing) next to the recording-rule family
//! `gpuflow:queue_wait_seconds:p99` — emitted only while an engine is
//! enabled, so every pre-alerting exposition stays byte-identical.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use super::metrics::{fmt_seconds, BucketHistogram};

/// Alert severity, a static label on the state family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertSeverity {
    /// Page-later: budget erosion.
    Warning,
    /// Page-now: user-visible denial of service.
    Critical,
}

impl AlertSeverity {
    /// Stable label value.
    pub fn label(self) -> &'static str {
        match self {
            AlertSeverity::Warning => "warning",
            AlertSeverity::Critical => "critical",
        }
    }
}

/// The Prometheus-style alert lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition false.
    Inactive,
    /// Condition true, `for_ns` hold not yet satisfied.
    Pending,
    /// Condition held for at least `for_ns`.
    Firing,
}

impl AlertState {
    /// Gauge value on `gpuflow_alert_state`.
    pub fn gauge_value(self) -> u64 {
        match self {
            AlertState::Inactive => 0,
            AlertState::Pending => 1,
            AlertState::Firing => 2,
        }
    }

    /// Label used in timeline lines; entering `Inactive` is rendered as
    /// `resolved` because the timeline records transitions, not states.
    pub fn transition_label(self) -> &'static str {
        match self {
            AlertState::Inactive => "resolved",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }
}

/// What a rule evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// p99 of the queue-wait histogram above `threshold_ns`.
    QueueWaitP99 {
        /// Firing threshold on the p99 bucket bound, integer ns.
        threshold_ns: u64,
    },
    /// At least `min_delta` rejects (any tenant) of one reason since
    /// the previous evaluation.
    RejectRate {
        /// Minimum rejects per evaluation interval to trigger.
        min_delta: u64,
    },
    /// A tenant with queued jobs completed zero tasks since the
    /// previous evaluation.
    TenantStarvation,
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertRule {
    /// Rule name (the `alert` label value).
    pub name: String,
    /// Static severity label.
    pub severity: AlertSeverity,
    /// Continuous hold required before pending becomes firing; zero
    /// fires on the first true evaluation.
    pub for_ns: u64,
    /// The evaluated condition.
    pub kind: RuleKind,
}

impl AlertRule {
    /// The standard daemon SLO rule set: queue-wait p99 over 50 ms held
    /// for 20 ms, any admission reject, and tenant starvation held for
    /// 500 ms of virtual time.
    pub fn standard() -> Vec<AlertRule> {
        vec![
            AlertRule {
                name: "queue_wait_p99".into(),
                severity: AlertSeverity::Warning,
                for_ns: 20_000_000,
                kind: RuleKind::QueueWaitP99 {
                    threshold_ns: 50_000_000,
                },
            },
            AlertRule {
                name: "reject_rate".into(),
                severity: AlertSeverity::Critical,
                for_ns: 0,
                kind: RuleKind::RejectRate { min_delta: 1 },
            },
            AlertRule {
                name: "tenant_starvation".into(),
                severity: AlertSeverity::Warning,
                for_ns: 500_000_000,
                kind: RuleKind::TenantStarvation,
            },
        ]
    }
}

/// One recorded state transition on the firing timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertTransition {
    /// Evaluation boundary, absolute virtual ns.
    pub at_ns: u64,
    /// Rule name.
    pub alert: String,
    /// Rule subject (`global`, a reject reason, or a tenant name).
    pub subject: String,
    /// State entered.
    pub state: AlertState,
    /// Rule value at the transition (ns bound, delta, or queue depth;
    /// `u64::MAX` encodes an unbounded p99 and renders as `inf`).
    pub value: u64,
}

/// The registry state one evaluation reads — assembled by
/// [`MetricsRegistry`](super::MetricsRegistry) so the engine never
/// borrows the registry it is stored in.
pub(crate) struct AlertSnapshot<'a> {
    /// Evaluation boundary, absolute virtual ns.
    pub at_ns: u64,
    /// The ready→dispatch queue-wait histogram.
    pub queue_wait: &'a BucketHistogram,
    /// Cumulative rejects summed over tenants, keyed by reason.
    pub rejects: BTreeMap<String, u64>,
    /// `(name, queued jobs, cumulative completed tasks)` per tenant.
    pub tenants: Vec<(&'a str, u64, u64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SubjectState {
    state: AlertState,
    pending_since_ns: u64,
    value: u64,
}

/// The rule evaluator: per-`(rule, subject)` state machines plus the
/// transition timeline. See the module docs for semantics.
#[derive(Debug, Clone, Default)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    /// Keyed by `(rule index, subject)` — BTreeMap so exposition and
    /// iteration order are deterministic.
    states: BTreeMap<(usize, String), SubjectState>,
    timeline: Vec<AlertTransition>,
    last_rejects: BTreeMap<String, u64>,
    last_completed: BTreeMap<String, u64>,
    last_eval_ns: Option<u64>,
}

impl AlertEngine {
    /// An engine over `rules`. The queue-wait rule's `global` subject
    /// is seeded immediately so the state family is non-empty from the
    /// first scrape.
    pub fn new(rules: Vec<AlertRule>) -> AlertEngine {
        let mut eng = AlertEngine {
            rules,
            ..AlertEngine::default()
        };
        for (i, rule) in eng.rules.iter().enumerate() {
            if matches!(rule.kind, RuleKind::QueueWaitP99 { .. }) {
                eng.states.insert(
                    (i, "global".to_string()),
                    SubjectState {
                        state: AlertState::Inactive,
                        pending_since_ns: 0,
                        value: 0,
                    },
                );
            }
        }
        eng
    }

    /// The configured rules, declaration order.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// The transition timeline so far.
    pub fn timeline(&self) -> &[AlertTransition] {
        &self.timeline
    }

    /// Current `(rule, subject, state, value)` rows, deterministic
    /// `(rule index, subject)` order.
    pub fn current(&self) -> Vec<(&AlertRule, &str, AlertState, u64)> {
        self.states
            .iter()
            .map(|((i, subject), s)| (&self.rules[*i], subject.as_str(), s.state, s.value))
            .collect()
    }

    /// Evaluates every rule at boundary `at_ns`. Idempotent per
    /// boundary: repeated calls with a non-increasing timestamp are
    /// no-ops, so seal-time flushes never double-fire.
    pub(crate) fn step(&mut self, snap: &AlertSnapshot<'_>) {
        if self.last_eval_ns.is_some_and(|t| snap.at_ns <= t) {
            return;
        }
        for i in 0..self.rules.len() {
            match self.rules[i].kind {
                RuleKind::QueueWaitP99 { threshold_ns } => {
                    let value = snap
                        .queue_wait
                        .quantile_bound_ns(99, 100)
                        .unwrap_or_default();
                    let cond = snap.queue_wait.count() > 0 && value > threshold_ns;
                    self.apply(i, "global", cond, value, snap.at_ns);
                }
                RuleKind::RejectRate { min_delta } => {
                    let reasons: Vec<String> = snap.rejects.keys().cloned().collect();
                    for reason in reasons {
                        let cur = snap.rejects[&reason];
                        let prev = self.last_rejects.get(&reason).copied().unwrap_or(0);
                        let delta = cur.saturating_sub(prev);
                        self.apply(i, &reason, delta >= min_delta, delta, snap.at_ns);
                    }
                }
                RuleKind::TenantStarvation => {
                    for (name, queued, completed) in &snap.tenants {
                        let prev = self.last_completed.get(*name).copied().unwrap_or(0);
                        let cond = *queued > 0 && completed.saturating_sub(prev) == 0;
                        self.apply(i, name, cond, *queued, snap.at_ns);
                    }
                }
            }
        }
        self.last_rejects = snap.rejects.clone();
        self.last_completed = snap
            .tenants
            .iter()
            .map(|(name, _, completed)| (name.to_string(), *completed))
            .collect();
        self.last_eval_ns = Some(snap.at_ns);
    }

    fn apply(&mut self, rule: usize, subject: &str, cond: bool, value: u64, at_ns: u64) {
        let for_ns = self.rules[rule].for_ns;
        let key = (rule, subject.to_string());
        let s = self.states.entry(key).or_insert(SubjectState {
            state: AlertState::Inactive,
            pending_since_ns: 0,
            value: 0,
        });
        s.value = value;
        let next = match (s.state, cond) {
            (AlertState::Inactive, true) => {
                s.pending_since_ns = at_ns;
                if for_ns == 0 {
                    Some(AlertState::Firing)
                } else {
                    Some(AlertState::Pending)
                }
            }
            (AlertState::Pending, true) => {
                if at_ns.saturating_sub(s.pending_since_ns) >= for_ns {
                    Some(AlertState::Firing)
                } else {
                    None
                }
            }
            (AlertState::Firing, true) | (AlertState::Inactive, false) => None,
            (AlertState::Pending, false) | (AlertState::Firing, false) => {
                Some(AlertState::Inactive)
            }
        };
        if let Some(state) = next {
            s.state = state;
            self.timeline.push(AlertTransition {
                at_ns,
                alert: self.rules[rule].name.clone(),
                subject: subject.to_string(),
                state,
                value,
            });
        }
    }

    /// Renders the firing timeline, one transition per line in
    /// evaluation order.
    pub fn render_timeline(&self) -> String {
        let mut o = String::new();
        for t in &self.timeline {
            let _ = writeln!(
                o,
                "t={} alert={} subject={} state={} value={}",
                fmt_seconds(t.at_ns),
                t.alert,
                t.subject,
                t.state.transition_label(),
                render_value(t.value)
            );
        }
        o
    }

    /// Renders the current state table (the `gpuflow ctl alerts` body).
    pub fn render_table(&self) -> String {
        let mut o =
            String::from("alert                subject         severity  state     value\n");
        for (rule, subject, state, value) in self.current() {
            let _ = writeln!(
                o,
                "{:<20} {:<15} {:<9} {:<9} {}",
                rule.name,
                subject,
                rule.severity.label(),
                state.transition_label(),
                render_value(value)
            );
        }
        o
    }

    /// Appends the `gpuflow_alert_state` family to an exposition.
    pub(crate) fn expose_state(&self, o: &mut String) {
        let _ = writeln!(
            o,
            "# HELP gpuflow_alert_state Alert rule state (0 inactive, 1 pending, 2 firing)."
        );
        let _ = writeln!(o, "# TYPE gpuflow_alert_state gauge");
        for (rule, subject, state, _) in self.current() {
            let _ = writeln!(
                o,
                "gpuflow_alert_state{{alert=\"{}\",severity=\"{}\",subject=\"{}\"}} {}",
                rule.name,
                rule.severity.label(),
                subject,
                state.gauge_value()
            );
        }
    }
}

/// `u64::MAX` marks an unbounded (+Inf-bucket) p99.
fn render_value(v: u64) -> String {
    if v == u64::MAX {
        "inf".to_string()
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values_ns: &[u64]) -> BucketHistogram {
        let mut h = BucketHistogram::default();
        for &v in values_ns {
            h.observe_ns(v);
        }
        h
    }

    #[test]
    fn queue_wait_rule_walks_pending_then_firing() {
        let mut eng = AlertEngine::new(vec![AlertRule {
            name: "qw".into(),
            severity: AlertSeverity::Warning,
            for_ns: 20,
            kind: RuleKind::QueueWaitP99 { threshold_ns: 1 },
        }]);
        let slow = hist(&[1_000_000_000]);
        for at in [10u64, 20, 30] {
            eng.step(&AlertSnapshot {
                at_ns: at,
                queue_wait: &slow,
                rejects: BTreeMap::new(),
                tenants: Vec::new(),
            });
        }
        let states: Vec<&str> = eng
            .timeline()
            .iter()
            .map(|t| t.state.transition_label())
            .collect();
        assert_eq!(states, vec!["pending", "firing"]);
        let calm = BucketHistogram::default();
        eng.step(&AlertSnapshot {
            at_ns: 40,
            queue_wait: &calm,
            rejects: BTreeMap::new(),
            tenants: Vec::new(),
        });
        assert_eq!(eng.timeline().last().unwrap().state, AlertState::Inactive);
    }

    #[test]
    fn reject_rule_fires_on_delta_and_resolves() {
        let mut eng = AlertEngine::new(vec![AlertRule {
            name: "rej".into(),
            severity: AlertSeverity::Critical,
            for_ns: 0,
            kind: RuleKind::RejectRate { min_delta: 1 },
        }]);
        let h = BucketHistogram::default();
        let mut rejects = BTreeMap::new();
        rejects.insert("quota".to_string(), 2u64);
        eng.step(&AlertSnapshot {
            at_ns: 10,
            queue_wait: &h,
            rejects: rejects.clone(),
            tenants: Vec::new(),
        });
        // Cumulative count unchanged → delta 0 → resolved.
        eng.step(&AlertSnapshot {
            at_ns: 20,
            queue_wait: &h,
            rejects,
            tenants: Vec::new(),
        });
        let states: Vec<(&str, &str)> = eng
            .timeline()
            .iter()
            .map(|t| (t.subject.as_str(), t.state.transition_label()))
            .collect();
        assert_eq!(states, vec![("quota", "firing"), ("quota", "resolved")]);
    }

    #[test]
    fn starvation_needs_the_continuous_hold() {
        let mut eng = AlertEngine::new(vec![AlertRule {
            name: "starve".into(),
            severity: AlertSeverity::Warning,
            for_ns: 100,
            kind: RuleKind::TenantStarvation,
        }]);
        let h = BucketHistogram::default();
        // Queued but idle from t=10; completes a task at t=60; idle again.
        eng.step(&AlertSnapshot {
            at_ns: 10,
            queue_wait: &h,
            rejects: BTreeMap::new(),
            tenants: vec![("acme", 1, 0)],
        });
        eng.step(&AlertSnapshot {
            at_ns: 60,
            queue_wait: &h,
            rejects: BTreeMap::new(),
            tenants: vec![("acme", 1, 1)],
        });
        eng.step(&AlertSnapshot {
            at_ns: 70,
            queue_wait: &h,
            rejects: BTreeMap::new(),
            tenants: vec![("acme", 1, 1)],
        });
        eng.step(&AlertSnapshot {
            at_ns: 200,
            queue_wait: &h,
            rejects: BTreeMap::new(),
            tenants: vec![("acme", 1, 1)],
        });
        let states: Vec<&str> = eng
            .timeline()
            .iter()
            .map(|t| t.state.transition_label())
            .collect();
        // pending(10) → resolved(60, progress) → pending(70) → firing(200).
        assert_eq!(states, vec!["pending", "resolved", "pending", "firing"]);
    }

    #[test]
    fn step_is_idempotent_per_boundary() {
        let mut eng = AlertEngine::new(AlertRule::standard());
        let slow = hist(&[9_000_000_000]);
        for _ in 0..3 {
            eng.step(&AlertSnapshot {
                at_ns: 50,
                queue_wait: &slow,
                rejects: BTreeMap::new(),
                tenants: Vec::new(),
            });
        }
        assert_eq!(eng.timeline().len(), 1);
    }

    #[test]
    fn exposition_rows_are_deterministic() {
        let mut eng = AlertEngine::new(AlertRule::standard());
        let h = BucketHistogram::default();
        let mut rejects = BTreeMap::new();
        rejects.insert("queue-full".to_string(), 1u64);
        eng.step(&AlertSnapshot {
            at_ns: 10,
            queue_wait: &h,
            rejects,
            tenants: vec![("acme", 1, 0), ("beta", 0, 0)],
        });
        let mut a = String::new();
        eng.expose_state(&mut a);
        let mut b = String::new();
        eng.expose_state(&mut b);
        assert_eq!(a, b);
        assert!(a.contains("gpuflow_alert_state{alert=\"queue_wait_p99\",severity=\"warning\",subject=\"global\"} 0"));
        assert!(a.contains("alert=\"reject_rate\",severity=\"critical\",subject=\"queue-full\"} 2"));
    }
}
