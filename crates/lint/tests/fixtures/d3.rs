// D3 fixture: raw threading primitives outside the par_map harness.

fn fan_out() {
    let h = std::thread::spawn(|| 1u32);
    let _ = h.join();
}

fn channels() {
    let (_tx, _rx) = std::sync::mpsc::channel::<u32>();
}
