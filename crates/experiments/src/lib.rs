//! # gpuflow-experiments — the paper's evaluation, regenerated
//!
//! One module per table/figure of the evaluation section:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — K-means three-stage CPU/GPU comparison |
//! | [`fig6`] | Fig. 6 — DAG shapes (DOT export) |
//! | [`fig7`] | Fig. 7 — end-to-end analysis (Matmul & K-means) |
//! | [`fig8`] | Fig. 8 — task computational complexity in Matmul |
//! | [`fig9`] | Fig. 9 — #clusters and data skew |
//! | [`fig10`] | Fig. 10 — storage × scheduling |
//! | [`fig11`] | Fig. 11 — Spearman correlation matrix |
//! | [`fig12`] | Fig. 12 — Matmul FMA generalizability |
//! | [`factors`] | Table 1 — factor/parameter taxonomy |
//! | [`sensitivity`] | extension: the resource parameters Table 1 defers to future work |
//! | [`generalizability`] | extension: the §5.5.1 parallel-fraction spectrum (KNN between the extremes) |
//! | [`prediction`] | extension: the §5.4.3 learning-model direction (regression-tree time predictor) |
//! | [`ablation`] | extension: scheduler ablation (incl. critical-path policy) and run-variance study |
//! | [`memory`] | extension: the §1 "memory robustness" claim, quantified |
//! | [`obs`] | extension: telemetry artifact bundle (JSONL, Chrome trace, decision log, overhead) |
//! | [`fault_sensitivity`] | extension: makespan and output convergence under injected faults |
//! | [`gate`] | extension: perf-regression gate over committed baseline profiles |
//! | [`replay`] | extension: production-trace replay (diurnal arrivals × heavy-tailed jobs × tenant mix) with metrics-over-time artifact |
//! | [`spans`] | extension: causal span traces, critical-path flame graphs, deterministic sampling, and the SLO alert timeline over the chaos replay scenario |
//!
//! Each module exposes `run(&Context)` returning structured results with
//! a `render()` text table, so the `repro` binary, the Criterion benches,
//! and the integration tests all share one implementation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod factors;
pub mod fault_sensitivity;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod gate;
pub mod generalizability;
pub mod measure;
pub mod memory;
pub mod obs;
pub mod prediction;
pub mod replay;
pub mod sensitivity;
pub mod spans;
pub mod stress;
mod table;

pub use measure::{Context, Outcome};
pub use table::TextTable;
