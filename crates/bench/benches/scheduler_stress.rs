//! Scheduler-stress benchmark: thousands of simultaneously ready tasks
//! on a wide cluster, under the two policies whose placement decisions
//! scan the ready set and the nodes (CriticalPath, DataLocality). This
//! is the proof harness for the incremental try_start fast path: the
//! seed implementation re-collected and re-sorted the ready set on every
//! decision, which is quadratic in the ready width.
//!
//! The `hot_loop` group drives the `repro perf` DAG shapes (wide /
//! stencil / tree) through the arena executor at 100k tasks — the
//! calendar-queue + O(1)-LRU hot path. Set `GPUFLOW_BENCH_FULL=1` to
//! also run the million-task variants (several seconds per iteration;
//! not part of the CI smoke).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpuflow_cluster::{ClusterSpec, KernelWork, ProcessorKind, StorageArchitecture};
use gpuflow_experiments::stress;
use gpuflow_runtime::{
    run, CostProfile, Direction, RunConfig, SchedulingPolicy, Workflow, WorkflowBuilder,
};
use std::hint::black_box;

/// A two-level DAG with `width` independent middle tasks: one seed task
/// fans out to `width` workers that are all ready the moment the seed
/// finishes, each reading the shared seed output plus a private input
/// block (so DataLocality has per-node cache state to score), then a
/// sink joins them.
fn fan_out_workflow(width: usize) -> Workflow {
    let mut b = WorkflowBuilder::new();
    let shared = b.intermediate("shared", 64 << 20);
    let work = CostProfile::fully_parallel(KernelWork::data_parallel(5e8, 1e7));
    let seed = CostProfile::fully_parallel(KernelWork::data_parallel(1e7, 1e6));
    b.submit("seed", seed, &[(shared, Direction::Out)], false)
        .expect("valid");
    let mut outs = Vec::with_capacity(width);
    for i in 0..width {
        let block = b.input(format!("block{i}"), 8 << 20);
        let out = b.intermediate(format!("out{i}"), 1 << 20);
        outs.push(out);
        b.submit(
            "worker",
            work,
            &[
                (shared, Direction::In),
                (block, Direction::In),
                (out, Direction::Out),
            ],
            false,
        )
        .expect("valid");
    }
    let mut sink_params: Vec<(gpuflow_runtime::DataId, Direction)> =
        outs.into_iter().map(|o| (o, Direction::In)).collect();
    let sink_out = b.intermediate("sink", 1 << 10);
    sink_params.push((sink_out, Direction::Out));
    b.submit("sink", seed, &sink_params, true).expect("valid");
    b.build()
}

fn wide_cluster(nodes: usize) -> ClusterSpec {
    let mut spec = ClusterSpec::minotauro();
    spec.nodes = nodes;
    spec
}

fn bench_ready_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_stress");
    g.sample_size(10);
    for &width in &[500usize, 2000, 4000] {
        let wf = fan_out_workflow(width);
        for policy in [
            SchedulingPolicy::CriticalPath,
            SchedulingPolicy::DataLocality,
        ] {
            g.bench_with_input(BenchmarkId::new(policy.label(), width), &wf, |b, wf| {
                let cfg = RunConfig::new(wide_cluster(32), ProcessorKind::Cpu)
                    .with_policy(policy)
                    .with_storage(StorageArchitecture::SharedDisk);
                b.iter(|| black_box(run(wf, &cfg).expect("fits")))
            });
        }
    }
    g.finish();
}

fn bench_hot_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("hot_loop");
    g.sample_size(10);
    let mut sizes = vec![100_000usize];
    if std::env::var("GPUFLOW_BENCH_FULL").is_ok_and(|v| v == "1") {
        sizes.push(1_000_000);
    }
    for &tasks in &sizes {
        for shape in stress::Shape::ALL {
            let wf = stress::build(shape, tasks);
            let cfg = stress::stress_config();
            g.bench_with_input(BenchmarkId::new(shape.label(), tasks), &wf, |b, wf| {
                b.iter(|| black_box(run(wf, &cfg).expect("completes")))
            });
        }
    }
    g.finish();
}

criterion_group!(scheduler_stress, bench_ready_width, bench_hot_loop);
criterion_main!(scheduler_stress);
