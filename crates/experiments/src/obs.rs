//! Telemetry artifact bundle — the observability companion to the
//! figure reproductions.
//!
//! Runs the canonical Matmul configuration (the paper's 8 GB dataset on
//! an 8×8 grid, GPU + shared disk + generation order — the Fig. 7a
//! anchor point) with full telemetry enabled, then materializes every
//! view of the event stream: the deterministic JSONL log, the
//! Perfetto/Chrome trace, the scheduler decision log, and the makespan
//! overhead decomposition.

use std::io;
use std::path::Path;

use gpuflow_algorithms::MatmulConfig;
use gpuflow_cluster::{ProcessorKind, StorageArchitecture};
use gpuflow_runtime::{to_chrome_trace, OverheadReport, RunConfig, SchedulingPolicy};

use crate::measure::Context;

/// Every telemetry view of one canonical run.
#[derive(Debug, Clone)]
pub struct ObsBundle {
    /// Makespan of the telemetry run, seconds.
    pub makespan: f64,
    /// Telemetry events recorded.
    pub events: usize,
    /// Deterministic JSONL event stream.
    pub jsonl: String,
    /// Chrome `trace_event` JSON (Perfetto / `chrome://tracing`).
    pub chrome: String,
    /// Scheduler decision log (text table).
    pub decisions: String,
    /// Makespan decomposition.
    pub overhead: OverheadReport,
    /// Event counts per kind.
    pub summary: String,
}

/// Runs the canonical Matmul with telemetry and collects every view.
pub fn run(ctx: &Context) -> ObsBundle {
    let workflow = MatmulConfig::new(gpuflow_data::paper::matmul_8gb(), 8)
        .expect("valid grid")
        .build_workflow();
    let cfg = RunConfig::new(ctx.cluster.clone(), ProcessorKind::Gpu)
        .with_storage(StorageArchitecture::SharedDisk)
        .with_policy(SchedulingPolicy::GenerationOrder)
        .with_seed(ctx.base_seed)
        .with_telemetry();
    let report = gpuflow_runtime::run(&workflow, &cfg).expect("canonical Matmul must run");
    let log = &report.telemetry;
    ObsBundle {
        makespan: report.makespan(),
        events: log.len(),
        jsonl: log.to_jsonl(),
        chrome: to_chrome_trace(log),
        decisions: log.render_decisions(),
        overhead: OverheadReport::from_log(log, report.makespan()),
        summary: log.summary(),
    }
}

impl ObsBundle {
    /// Text artifact: the run summary plus the overhead decomposition.
    pub fn render(&self) -> String {
        format!(
            "telemetry run: Matmul 8 GB, grid 8x8, GPU, shared disk, \
             generation order\nmakespan: {:.6} s\n\n{}\n{}",
            self.makespan,
            self.summary,
            self.overhead.render()
        )
    }

    /// Writes the bundle into `dir` as `telemetry.jsonl`,
    /// `trace.chrome.json`, `decisions.log`, and `overhead.txt`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("telemetry.jsonl"), &self.jsonl)?;
        std::fs::write(dir.join("trace.chrome.json"), &self.chrome)?;
        std::fs::write(dir.join("decisions.log"), &self.decisions)?;
        std::fs::write(dir.join("overhead.txt"), self.overhead.render())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle() -> ObsBundle {
        run(&Context::default())
    }

    #[test]
    fn bundle_views_are_consistent() {
        let b = bundle();
        assert!(b.events > 0);
        assert_eq!(b.jsonl.lines().count(), b.events);
        assert!(b.chrome.contains("traceEvents"));
        assert!(b.decisions.lines().count() > 1, "decision rows expected");
        // Buckets partition the makespan (acceptance: within 1 %).
        let gap = (b.overhead.total() - b.makespan).abs();
        assert!(gap <= 0.01 * b.makespan, "gap {gap} vs {}", b.makespan);
    }

    #[test]
    fn every_dispatched_task_has_a_decision() {
        let b = bundle();
        let dispatches = b
            .jsonl
            .lines()
            .filter(|l| l.starts_with("{\"ev\":\"dispatch\""))
            .count();
        let decisions = b
            .jsonl
            .lines()
            .filter(|l| l.starts_with("{\"ev\":\"decision\""))
            .count();
        assert_eq!(dispatches, decisions);
        assert_eq!(b.overhead.decisions, decisions);
        // Each decision carries the full scored candidate set.
        assert!(b
            .jsonl
            .lines()
            .filter(|l| l.starts_with("{\"ev\":\"decision\""))
            .all(|l| l.contains("\"candidates\":[{")));
    }
}
