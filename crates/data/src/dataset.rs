//! Dataset specifications and synthetic generators (§4.4.5).
//!
//! At paper scale (8–100 GB) datasets exist only as descriptors: the
//! simulator needs shapes and byte counts, never values (the paper's own
//! skew experiment, §5.2.3, confirms value-independence). At test scale
//! the generators materialise real matrices — uniform or skewed float64,
//! from a fixed random state — to validate algorithm correctness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::grid::DatasetDim;
use crate::matrix::Matrix;

/// Size of one `f64` element in bytes.
pub const F64_BYTES: u64 = 8;

/// Safety valve: the largest dataset [`DatasetSpec::materialize`] will
/// build for real (64 M elements ≈ 512 MB).
pub const MAX_MATERIALIZE_ELEMENTS: u64 = 1 << 26;

/// A synthetic dataset: shape, element width, skew, and seed.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable name used in reports (e.g. `"matmul-8gb"`).
    pub name: String,
    /// Logical shape in elements.
    pub dim: DatasetDim,
    /// Bytes per element (8 for the paper's float64 data).
    pub elem_bytes: u64,
    /// Fraction of elements moved into clustered regions of the value
    /// distribution (0.0 = uniform; the paper's skewed sets use 0.5).
    pub skew: f64,
    /// Random state for reproducibility across executions.
    pub seed: u64,
}

impl DatasetSpec {
    /// A uniform float64 dataset.
    pub fn uniform(name: &str, rows: u64, cols: u64, seed: u64) -> Self {
        DatasetSpec {
            name: name.to_owned(),
            dim: DatasetDim { rows, cols },
            elem_bytes: F64_BYTES,
            skew: 0.0,
            seed,
        }
    }

    /// Same shape, but with `skew` fraction of elements forced into
    /// clustered value regions (§5.2.3's adapted NumPy routine).
    pub fn with_skew(mut self, skew: f64) -> Self {
        assert!((0.0..=1.0).contains(&skew), "skew must be in [0, 1]");
        self.skew = skew;
        self
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        self.dim.elements() * self.elem_bytes
    }

    /// Total elements.
    pub fn elements(&self) -> u64 {
        self.dim.elements()
    }

    /// Builds the actual matrix. Intended for test scale; refuses to
    /// allocate monsters.
    ///
    /// # Errors
    /// Returns the element count when it exceeds
    /// [`MAX_MATERIALIZE_ELEMENTS`].
    pub fn materialize(&self) -> Result<Matrix, u64> {
        let n = self.elements();
        if n > MAX_MATERIALIZE_ELEMENTS {
            return Err(n);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Skew model: with probability `skew`, the value is drawn from one
        // of a few narrow bands (clustered regions); otherwise uniform in
        // [0, 1). Mirrors the paper's "move 50% of the elements to certain
        // regions of the distribution".
        const BANDS: [(f64, f64); 4] = [(0.05, 0.08), (0.35, 0.38), (0.6, 0.63), (0.9, 0.93)];
        let data: Vec<f64> = (0..n)
            .map(|_| {
                if self.skew > 0.0 && rng.gen::<f64>() < self.skew {
                    let (lo, hi) = BANDS[rng.gen_range(0..BANDS.len())];
                    rng.gen_range(lo..hi)
                } else {
                    rng.gen::<f64>()
                }
            })
            .collect();
        Ok(Matrix::from_vec(
            self.dim.rows as usize,
            self.dim.cols as usize,
            data,
        ))
    }
}

/// The paper's dataset inventory (§4.4.5 and §5.4).
pub mod paper {
    use super::DatasetSpec;

    /// Matmul 8 GB: 32K × 32K (1024 M elements).
    pub fn matmul_8gb() -> DatasetSpec {
        DatasetSpec::uniform("matmul-8gb", 32_768, 32_768, 0xD151B)
    }

    /// Matmul 32 GB: 64K × 64K (4 B elements).
    pub fn matmul_32gb() -> DatasetSpec {
        DatasetSpec::uniform("matmul-32gb", 65_536, 65_536, 0xD151B)
    }

    /// Matmul 2 GB skew experiment: 16K × 16K (256 M elements).
    pub fn matmul_2gb_skewed(skew: f64) -> DatasetSpec {
        DatasetSpec::uniform("matmul-2gb-skew", 16_384, 16_384, 0xD151B).with_skew(skew)
    }

    /// Matmul 128 MB supplement for the correlation study: 4000 × 4000.
    pub fn matmul_128mb() -> DatasetSpec {
        DatasetSpec::uniform("matmul-128mb", 4_000, 4_000, 0xD151B)
    }

    /// K-means 10 GB: 12.5 M samples × 100 features (1250 M elements).
    pub fn kmeans_10gb() -> DatasetSpec {
        DatasetSpec::uniform("kmeans-10gb", 12_500_000, 100, 0xD151B)
    }

    /// K-means 100 GB: 125 M samples × 100 features (12.5 B elements).
    pub fn kmeans_100gb() -> DatasetSpec {
        DatasetSpec::uniform("kmeans-100gb", 125_000_000, 100, 0xD151B)
    }

    /// K-means 1 GB skew experiment: 1.25 M samples × 100 features.
    pub fn kmeans_1gb_skewed(skew: f64) -> DatasetSpec {
        DatasetSpec::uniform("kmeans-1gb-skew", 1_250_000, 100, 0xD151B).with_skew(skew)
    }

    /// K-means 100 MB supplement for the correlation study: 125000 × 100.
    pub fn kmeans_100mb() -> DatasetSpec {
        DatasetSpec::uniform("kmeans-100mb", 125_000, 100, 0xD151B)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_section_4_4_5() {
        assert_eq!(paper::matmul_8gb().elements(), 1_073_741_824); // 1024M
        assert_eq!(paper::matmul_8gb().bytes(), 8 << 30);
        assert_eq!(paper::matmul_32gb().elements(), 4_294_967_296); // 4B
        assert_eq!(paper::kmeans_10gb().bytes(), 10_000_000_000);
        assert_eq!(paper::kmeans_100gb().elements(), 12_500_000_000); // 12.5B
        assert_eq!(paper::kmeans_100mb().bytes(), 100_000_000);
    }

    #[test]
    fn materialize_is_reproducible() {
        let spec = DatasetSpec::uniform("t", 64, 32, 7);
        let a = spec.materialize().unwrap();
        let b = spec.materialize().unwrap();
        assert_eq!(a, b, "same seed must generate identical data");
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetSpec::uniform("t", 16, 16, 1).materialize().unwrap();
        let b = DatasetSpec::uniform("t", 16, 16, 2).materialize().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn materialize_refuses_paper_scale() {
        let err = paper::matmul_8gb().materialize().unwrap_err();
        assert_eq!(err, 1_073_741_824);
    }

    #[test]
    fn skewed_data_clusters_values() {
        let uniform = DatasetSpec::uniform("u", 256, 256, 3)
            .materialize()
            .unwrap();
        let skewed = DatasetSpec::uniform("s", 256, 256, 3)
            .with_skew(0.5)
            .materialize()
            .unwrap();
        // Count values in the first band [0.05, 0.08): the skewed dataset
        // must have far more of them than 3% of elements.
        let in_band = |m: &Matrix| {
            m.as_slice()
                .iter()
                .filter(|v| (0.05..0.08).contains(*v))
                .count()
        };
        let n = 256 * 256;
        assert!(in_band(&uniform) < n / 20);
        assert!(in_band(&skewed) > n / 16, "band should hold ~12.5%");
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let m = DatasetSpec::uniform("t", 128, 8, 11)
            .with_skew(0.5)
            .materialize()
            .unwrap();
        assert!(m.as_slice().iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    #[should_panic(expected = "skew must be in")]
    fn rejects_bad_skew() {
        DatasetSpec::uniform("t", 2, 2, 0).with_skew(1.5);
    }
}
