//! Deterministic execution-time jitter.
//!
//! Real clusters exhibit small run-to-run variation (OS noise, cache state,
//! clock drift). The paper's runs show it too — completion order of equal
//! tasks varies, which is what makes scheduler placement drift between
//! policies. We model it as seeded multiplicative noise so every experiment
//! remains exactly reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// Seeded multiplicative noise source: durations are scaled by a factor
/// drawn uniformly from `[1 - sigma, 1 + sigma]`.
#[derive(Debug, Clone)]
pub struct Jitter {
    rng: StdRng,
    sigma: f64,
}

impl Jitter {
    /// Creates a jitter source with relative amplitude `sigma` (e.g. 0.02
    /// for ±2 %).
    ///
    /// # Panics
    /// Panics unless `0 <= sigma < 1`.
    pub fn new(seed: u64, sigma: f64) -> Self {
        assert!((0.0..1.0).contains(&sigma), "sigma must be in [0, 1)");
        Jitter {
            rng: StdRng::seed_from_u64(seed),
            sigma,
        }
    }

    /// A jitter source that never perturbs anything (sigma = 0).
    pub fn disabled(seed: u64) -> Self {
        Self::new(seed, 0.0)
    }

    /// Relative amplitude.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws the next noise factor in `[1 - sigma, 1 + sigma]`.
    pub fn factor(&mut self) -> f64 {
        if self.sigma == 0.0 {
            1.0
        } else {
            1.0 + self.rng.gen_range(-self.sigma..=self.sigma)
        }
    }

    /// Applies the next noise factor to `d`.
    pub fn apply(&mut self, d: SimDuration) -> SimDuration {
        d.mul_f64(self.factor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_identity() {
        let mut j = Jitter::disabled(42);
        let d = SimDuration::from_millis(10);
        for _ in 0..8 {
            assert_eq!(j.apply(d), d);
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Jitter::new(7, 0.05);
        let mut b = Jitter::new(7, 0.05);
        for _ in 0..32 {
            assert_eq!(a.factor().to_bits(), b.factor().to_bits());
        }
    }

    #[test]
    fn different_seed_different_sequence() {
        let mut a = Jitter::new(1, 0.05);
        let mut b = Jitter::new(2, 0.05);
        let same = (0..16).all(|_| a.factor().to_bits() == b.factor().to_bits());
        assert!(!same);
    }

    #[test]
    fn factors_stay_in_band() {
        let mut j = Jitter::new(99, 0.02);
        for _ in 0..1000 {
            let f = j.factor();
            assert!((0.98..=1.02).contains(&f), "factor {f} out of band");
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be in")]
    fn rejects_bad_sigma() {
        Jitter::new(0, 1.5);
    }
}
