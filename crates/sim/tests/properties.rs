//! Property suites for the simulation primitives under random operation
//! sequences.

use gpuflow_sim::{Acquire, Engine, FairShareLink, FcfsPool, GroupedLink, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// A pool never exceeds its capacity and serves waiters strictly
    /// FIFO, under any interleaving of acquires and releases.
    #[test]
    fn pool_respects_capacity_and_fifo(
        capacity in 1usize..8,
        ops in prop::collection::vec(prop::bool::ANY, 1..200),
    ) {
        let mut pool: FcfsPool<u32> = FcfsPool::new(capacity);
        let mut t = SimTime::ZERO;
        let mut next_ticket = 0u32;
        let mut queued: std::collections::VecDeque<u32> = Default::default();
        let mut held = 0usize;
        for op in ops {
            t += SimDuration::from_micros(1);
            if op {
                match pool.try_acquire(t, next_ticket) {
                    Acquire::Granted => {
                        prop_assert!(queued.is_empty(), "grants only when nobody waits");
                        held += 1;
                    }
                    Acquire::Queued => queued.push_back(next_ticket),
                }
                next_ticket += 1;
            } else if held > 0 {
                match pool.release(t) {
                    Some(ticket) => {
                        // FIFO handover to the oldest waiter.
                        prop_assert_eq!(Some(ticket), queued.pop_front());
                    }
                    None => {
                        prop_assert!(queued.is_empty());
                        held -= 1;
                    }
                }
            }
            prop_assert!(pool.in_use() <= capacity);
            prop_assert_eq!(pool.in_use(), held);
            prop_assert_eq!(pool.queue_len(), queued.len());
        }
    }

    /// Utilization accounting integrates to at most capacity x elapsed.
    #[test]
    fn pool_utilization_bounded(
        capacity in 1usize..6,
        holds in prop::collection::vec(1u64..1000, 1..50),
    ) {
        let mut pool: FcfsPool<usize> = FcfsPool::new(capacity);
        let mut t = SimTime::ZERO;
        for (i, h) in holds.iter().enumerate() {
            if pool.available() > 0 {
                pool.try_acquire(t, i);
            } else {
                pool.release(t);
            }
            t += SimDuration::from_micros(*h);
        }
        let u = pool.utilization(t);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
    }

    /// Two links fed the same flows complete them in the same order
    /// (determinism), and a faster link never finishes later.
    #[test]
    fn link_is_deterministic_and_monotone_in_capacity(
        sizes in prop::collection::vec(10.0f64..1e6, 1..30),
    ) {
        let drain = |capacity: f64| {
            let mut link = FairShareLink::new(capacity);
            for (i, &s) in sizes.iter().enumerate() {
                link.start(SimTime::from_nanos(i as u64 * 1000), s);
            }
            let mut now = SimTime::from_nanos(sizes.len() as u64 * 1000);
            let mut done = Vec::new();
            while let Some(tc) = link.next_completion(now) {
                now = tc.max(now);
                done.extend(link.harvest(now));
            }
            (done, now)
        };
        let (order_a, end_a) = drain(1e6);
        let (order_b, end_b) = drain(1e6);
        prop_assert_eq!(&order_a, &order_b);
        prop_assert_eq!(end_a, end_b);
        let (_, end_fast) = drain(4e6);
        prop_assert!(end_fast <= end_a, "4x capacity cannot finish later");
    }

    /// The grouped link drains exactly its flows whatever the group mix,
    /// and total completion time is bounded below by bytes/capacity.
    #[test]
    fn grouped_link_completion_bounds(
        flows in prop::collection::vec((0usize..4, 1e3f64..1e6), 1..40),
    ) {
        let global = 1e6;
        let mut link = GroupedLink::new(global, 4, 5e5);
        let total: f64 = flows.iter().map(|f| f.1).sum();
        for &(g, bytes) in &flows {
            link.start(SimTime::ZERO, g, bytes);
        }
        let mut now = SimTime::ZERO;
        let mut done = 0usize;
        while let Some(tc) = link.next_completion(now) {
            now = tc.max(now);
            done += link.harvest(now).len();
        }
        prop_assert_eq!(done, flows.len());
        // Work conservation lower bound (generous epsilon for ns ticks).
        prop_assert!(now.as_secs_f64() + 1e-6 >= total / global);
    }

    /// Engine sequence numbers keep same-instant events FIFO even when
    /// interleaved with earlier/later ones.
    #[test]
    fn engine_is_work_conserving(times in prop::collection::vec(0u64..100, 1..300)) {
        let mut e: Engine<u64> = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            e.schedule_at(SimTime::from_nanos(t), i as u64);
        }
        let mut per_time: std::collections::HashMap<u64, u64> = Default::default();
        let mut popped = 0;
        while let Some(ev) = e.pop() {
            let last = per_time.entry(ev.time.as_nanos()).or_insert(0);
            // Within one instant, payload (insertion index) ascends.
            prop_assert!(ev.payload >= *last);
            *last = ev.payload;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
        prop_assert_eq!(e.pending(), 0);
    }
}
