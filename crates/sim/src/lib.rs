//! # gpuflow-sim — deterministic discrete-event simulation kernel
//!
//! The substrate under every performance number in this repository: a
//! minimal, deterministic discrete-event core with three reusable resource
//! models:
//!
//! * [`Engine`] — a timestamped event queue with stable FIFO tie-breaking;
//! * [`FcfsPool`] — counted resources (CPU cores, GPU devices) with FIFO
//!   wait queues and utilization accounting;
//! * [`FairShareLink`] — progressive-filling bandwidth sharing (PCIe,
//!   disks, NICs, the GPFS backend);
//! * [`Jitter`] — seeded multiplicative noise modelling OS-level run-to-run
//!   variation.
//!
//! The engine is passive: the caller (the workflow executor in
//! `gpuflow-runtime`) drives the loop and owns all model state, which keeps
//! the simulation logic free of callbacks and `RefCell` webs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
mod grouped_link;
mod jitter;
mod link;
mod pool;
mod time;

pub use engine::{Engine, Scheduled};
pub use grouped_link::GroupedLink;
pub use jitter::Jitter;
pub use link::{FairShareLink, FlowId};
pub use pool::{Acquire, FcfsPool};
pub use time::{SimDuration, SimTime};
