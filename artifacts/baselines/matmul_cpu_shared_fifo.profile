gpuflow-profile v1
label matmul_cpu_shared_fifo
makespan_ns 440342880
tasks 112
decisions 112
wastage_ns 439542880
cache_hits 46
cache_misses 178
factor grid 4
factor policy task gen. order
factor processor CPU
factor storage shared disk
factor workload matmul
bucket compute 286966971
bucket data_movement 152575909
bucket recovery 0
bucket master 800000
bucket idle 0
type count 48 sum 3426744916 min 39688795 p25 53704892 p50 72832340 p75 85164597 p90 94506265 p99 113443826 max 113443826 deser 2125818356 ser 1071039824 serial 0 parallel 229886736 comm 0 xfer_bytes 1032000000 xfer_ns 2307586950 name add_func
type count 64 sum 15763397583 min 202725607 p25 236244912 p50 244903959 p75 267797328 p90 274995277 p99 278015726 max 278015726 deser 4279236820 ser 2953285106 serial 0 parallel 8530875657 comm 0 xfer_bytes 1288000000 xfer_ns 6114551667 name matmul_func
resource 0 busy 427810394 intervals 1
resource 1 busy 427619259 intervals 1
resource 2 busy 424514972 intervals 1
resource 3 busy 429502583 intervals 1
resource 4 busy 426882809 intervals 2
resource 5 busy 424441111 intervals 1
resource 6 busy 428059097 intervals 1
resource 7 busy 433942880 intervals 1
path hops 1 span 291797328 type matmul_func
path hops 2 span 148545552 type add_func
