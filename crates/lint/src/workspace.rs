//! Workspace discovery: find the repo root and enumerate the `.rs`
//! files the rules apply to.
//!
//! Skipped subtrees: build output (`target`), vendored third-party
//! code (`vendor` — not ours to lint), version control (`.git`), and
//! test-only trees (`tests`, `benches`, `fixtures`, `examples`) —
//! integration tests may use wall clocks and unwraps freely, and the
//! lint crate's own rule fixtures *must* contain violations. Unit
//! tests inside `src/` are handled separately by the scanner's
//! `#[cfg(test)]` skip.

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 7] = [
    "target", "vendor", ".git", "tests", "benches", "fixtures", "examples",
];

/// Walks up from `start` to the workspace root: the nearest ancestor
/// whose `Cargo.toml` contains a `[workspace]` section.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = if start.is_dir() {
        start
    } else {
        start.parent()?
    };
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        dir = dir.parent()?;
    }
}

/// All lintable `.rs` files under `root`, as (repo-relative display
/// path, absolute path), sorted by display path for deterministic
/// report order.
pub fn discover(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, path));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").exists());
    }

    #[test]
    fn discovery_skips_vendor_and_tests() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).unwrap();
        let files = discover(&root).unwrap();
        assert!(!files.is_empty());
        for (rel, _) in &files {
            assert!(!rel.contains("vendor/"), "vendored file linted: {rel}");
            assert!(!rel.contains("/tests/"), "test file linted: {rel}");
            assert!(!rel.contains("/fixtures/"), "fixture linted: {rel}");
            assert!(!rel.starts_with("target/"), "build output linted: {rel}");
        }
        assert!(
            files
                .iter()
                .any(|(rel, _)| rel == "crates/lint/src/scan.rs"),
            "expected own sources in scan set"
        );
    }
}
