//! Time-unit dimensional analysis (rule `T2`).
//!
//! The workspace keeps four integer time grids — nanoseconds (the
//! simulation core), microseconds (the daemon journal), milliseconds
//! (tolerance floors), whole seconds — plus float seconds for display.
//! Every one of them is "a u64", so the type system is blind to a
//! mixed-unit `+` or `<`: the classic silent 1000x. This pass assigns
//! each value a unit from three evidence kinds and flags cross-unit
//! arithmetic, comparison, and assignment that shows no conversion:
//!
//! * **suffixes and field names** — `*_ns`/`*_nanos` is ns, `*_us` /
//!   `*_micros` is us, `*_ms`/`*_millis` is ms, `*_secs`/`*_sec` is
//!   seconds;
//! * **the conversion-call table** ([`CONVERSIONS`]) — `as_nanos()`
//!   yields ns, `as_secs_f64()` yields float seconds, and so on. The
//!   classifier round-trips through this table (proptest-pinned);
//! * **call boundaries** (via the [`SymbolGraph`]) — passing `x_ns`
//!   into a parameter named `delay_ms` is a unit error even though both
//!   are bare `u64`s, and a call of `elapsed_us()` assigned to `t_ns`
//!   is one too (return units come from the callee's name).
//!
//! A statement that multiplies or divides — by anything — is treated as
//! converting and never flagged; dimensional analysis cannot tell a
//! scale factor from arithmetic, so the rule stays conservative
//! (an honest false-negative, documented in docs/static_analysis.md).

use crate::lexer::{Tok, TokKind};
use crate::report::Finding;
use crate::rules::RuleCode;
use crate::symbols::SymbolGraph;

/// A time unit in the lattice. `FloatSecs` is kept distinct from
/// `Secs`: comparing `as_secs()` against `as_secs_f64()` silently
/// truncates sub-second precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Integer nanoseconds.
    Ns,
    /// Integer microseconds.
    Us,
    /// Integer milliseconds.
    Ms,
    /// Integer whole seconds.
    Secs,
    /// Float seconds.
    FloatSecs,
}

impl Unit {
    /// Stable display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Ns => "ns",
            Unit::Us => "us",
            Unit::Ms => "ms",
            Unit::Secs => "secs",
            Unit::FloatSecs => "float-secs",
        }
    }

    /// Parses a display name back (round-trips with [`Unit::as_str`]).
    pub fn parse(s: &str) -> Option<Unit> {
        [Unit::Ns, Unit::Us, Unit::Ms, Unit::Secs, Unit::FloatSecs]
            .into_iter()
            .find(|u| u.as_str() == s)
    }
}

/// The conversion-call table: calling one of these yields a value of
/// the paired unit. The unit classifier round-trips through this table
/// (pinned by the proptest suite).
pub const CONVERSIONS: [(&str, Unit); 10] = [
    ("as_nanos", Unit::Ns),
    ("subsec_nanos", Unit::Ns),
    ("as_micros", Unit::Us),
    ("subsec_micros", Unit::Us),
    ("as_millis", Unit::Ms),
    ("subsec_millis", Unit::Ms),
    ("as_secs", Unit::Secs),
    ("as_secs_f64", Unit::FloatSecs),
    ("as_secs_f32", Unit::FloatSecs),
    ("from_secs_f64", Unit::FloatSecs),
];

/// Unit of an identifier, from its suffix or full name.
pub fn classify_ident(name: &str) -> Option<Unit> {
    // Conversion-call names classify identically whether seen as calls
    // or as bare idents (method-reference positions).
    if let Some(u) = classify_call(name) {
        return Some(u);
    }
    if name.ends_with("_ns") || name == "nanos" || name.ends_with("_nanos") {
        Some(Unit::Ns)
    } else if name.ends_with("_us") || name == "micros" || name.ends_with("_micros") {
        Some(Unit::Us)
    } else if name.ends_with("_ms") || name == "millis" || name.ends_with("_millis") {
        Some(Unit::Ms)
    } else if name.ends_with("_secs") || name.ends_with("_sec") {
        Some(Unit::Secs)
    } else {
        None
    }
}

/// Unit produced by a call, from the conversion table or the callee
/// name's own suffix (`elapsed_us()` yields us).
pub fn classify_call(name: &str) -> Option<Unit> {
    CONVERSIONS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, u)| *u)
}

/// Binary operators that demand unit agreement. `*` and `/` are
/// conversions, not mixtures, so they are absent.
const UNIT_STRICT_OPS: [&str; 9] = ["+", "-", "<", ">", "<=", ">=", "==", "!=", "+="];

/// A value with a known unit at a token position.
struct UnitAt {
    unit: Unit,
    /// Name shown in the diagnostic.
    name: String,
}

/// The unit of the value *ending* at token `i` (an identifier, or the
/// `)` of a conversion/unit-suffixed call).
fn unit_ending_at(toks: &[Tok], i: usize) -> Option<UnitAt> {
    let t = toks.get(i)?;
    if t.kind == TokKind::Ident {
        // Exclude the callee name position itself (`name (`): that
        // value ends at the close paren, not here.
        if matches!(toks.get(i + 1), Some(n) if n.is_punct("(")) {
            return None;
        }
        return classify_ident(&t.text).map(|unit| UnitAt {
            unit,
            name: t.text.clone(),
        });
    }
    if t.is_punct(")") {
        let name = crate::scan::call_name_before(toks, i)?;
        let unit = classify_call(&name).or_else(|| classify_ident(&name))?;
        return Some(UnitAt {
            unit,
            name: format!("{name}()"),
        });
    }
    None
}

/// The unit of the value *starting* at token `i` (an identifier or a
/// call; leading `&` is transparent).
fn unit_starting_at(toks: &[Tok], mut i: usize) -> Option<UnitAt> {
    while matches!(toks.get(i), Some(t) if t.is_punct("&") || t.is_ident("mut")) {
        i += 1;
    }
    let t = toks.get(i)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    // A call: unit from the conversion table or the callee suffix.
    if matches!(toks.get(i + 1), Some(n) if n.is_punct("(")) {
        let unit = classify_call(&t.text).or_else(|| classify_ident(&t.text))?;
        return Some(UnitAt {
            unit,
            name: format!("{}()", t.text),
        });
    }
    // A (possibly dotted) path: the unit of its last suffixed segment.
    let mut j = i;
    let mut best: Option<UnitAt> = None;
    loop {
        let t = &toks[j];
        if t.kind == TokKind::Ident {
            if let Some(unit) = classify_ident(&t.text) {
                best = Some(UnitAt {
                    unit,
                    name: t.text.clone(),
                });
            }
        }
        match toks.get(j + 1) {
            Some(n) if n.is_punct(".") => {
                if matches!(toks.get(j + 2), Some(m) if m.kind == TokKind::Ident) {
                    // A method call ends the simple path; its name is
                    // the decisive unit evidence (`d.as_nanos()`).
                    if matches!(toks.get(j + 3), Some(m) if m.is_punct("(")) {
                        let m = &toks[j + 2];
                        if let Some(unit) =
                            classify_call(&m.text).or_else(|| classify_ident(&m.text))
                        {
                            best = Some(UnitAt {
                                unit,
                                name: format!("{}()", m.text),
                            });
                        }
                        break;
                    }
                    j += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    best
}

/// Whether the statement containing token `i` shows an explicit
/// conversion: any `*` or `/` (scale factors), or a `from_*`/`as_*`
/// conversion call. Statements are delimited by `;`, `{`, `}`.
fn statement_converts(toks: &[Tok], i: usize) -> bool {
    let stmt_start = (0..i)
        .rev()
        .find(|&j| toks[j].is_punct(";") || toks[j].is_punct("{") || toks[j].is_punct("}"))
        .map_or(0, |j| j + 1);
    let stmt_end = (i..toks.len())
        .find(|&j| toks[j].is_punct(";") || toks[j].is_punct("{") || toks[j].is_punct("}"))
        .unwrap_or(toks.len());
    toks[stmt_start..stmt_end].iter().any(|t| {
        t.is_punct("*")
            || t.is_punct("/")
            || t.is_punct("*=")
            || t.is_punct("/=")
            || (t.kind == TokKind::Ident
                && (t.text.starts_with("from_") || t.text.starts_with("checked_")))
    })
}

/// Runs the T2 pass over one file's live tokens, using the symbol
/// graph for call-boundary inference. `live` masks out `#[cfg(test)]`
/// tokens.
pub fn check_file(
    path: &str,
    toks: &[Tok],
    live: &dyn Fn(usize) -> bool,
    graph: &SymbolGraph,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !live(i) {
            continue;
        }
        let t = &toks[i];
        // (a) cross-unit binary op / comparison: `LHS op RHS`.
        if t.kind == TokKind::Punct && UNIT_STRICT_OPS.contains(&t.text.as_str()) && i > 0 {
            if let (Some(lhs), Some(rhs)) =
                (unit_ending_at(toks, i - 1), unit_starting_at(toks, i + 1))
            {
                if lhs.unit != rhs.unit && !statement_converts(toks, i) {
                    out.push(Finding::new(
                        RuleCode::T2,
                        path,
                        t.line,
                        t.col,
                        format!(
                            "`{}` ({}) {} `{}` ({}) mixes time units without a conversion",
                            lhs.name,
                            lhs.unit.as_str(),
                            t.text,
                            rhs.name,
                            rhs.unit.as_str(),
                        ),
                    ));
                }
            }
        }
        // (b) cross-unit assignment: `let [mut] X = RHS;` / `X = RHS;`
        // where X and the first unitful value of RHS disagree.
        if t.is_punct("=") && i > 0 && toks[i - 1].kind == TokKind::Ident {
            let lhs_tok = &toks[i - 1];
            if let Some(lhs_unit) = classify_ident(&lhs_tok.text) {
                if let Some(rhs) = unit_starting_at(toks, i + 1) {
                    if lhs_unit != rhs.unit && !statement_converts(toks, i) {
                        out.push(Finding::new(
                            RuleCode::T2,
                            path,
                            t.line,
                            t.col,
                            format!(
                                "`{}` ({}) assigned from `{}` ({}) without a conversion",
                                lhs_tok.text,
                                lhs_unit.as_str(),
                                rhs.name,
                                rhs.unit.as_str(),
                            ),
                        ));
                    }
                }
            }
        }
    }
    // (c) call boundaries: unitful argument into a differently-unitful
    // parameter. Flag only when every candidate definition conflicts —
    // name-based resolution can be ambiguous, and one agreeing
    // candidate is the benefit of the doubt.
    for c in &graph.calls {
        if graph.files[graph.fns[c.caller].file] != path {
            continue;
        }
        for (pos, arg) in c.args.iter().enumerate() {
            let Some(arg_name) = arg else { continue };
            let Some(arg_unit) = classify_ident(arg_name) else {
                continue;
            };
            let param_units: Vec<(String, Unit)> = c
                .callees
                .iter()
                .filter_map(|&k| {
                    let p = graph.fns[k].params.get(pos)?;
                    classify_ident(p).map(|u| (p.clone(), u))
                })
                .collect();
            if !param_units.is_empty() && param_units.iter().all(|(_, u)| *u != arg_unit) {
                let (pname, punit) = &param_units[0];
                out.push(Finding::new(
                    RuleCode::T2,
                    path,
                    c.line,
                    c.col,
                    format!(
                        "`{arg_name}` ({}) passed to parameter `{pname}` ({}) of `{}`",
                        arg_unit.as_str(),
                        punit.as_str(),
                        graph.label(c.callees[0]),
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::symbols::SymbolGraph;

    fn t2(src: &str) -> Vec<(u32, String)> {
        let lexed = lex(src);
        let n = lexed.tokens.len();
        let g = SymbolGraph::build(&[("t.rs".to_string(), lexed.clone(), vec![false; n])]);
        check_file("t.rs", &lexed.tokens, &|_| true, &g)
            .into_iter()
            .map(|f| (f.line, f.message))
            .collect()
    }

    #[test]
    fn cross_unit_addition_and_comparison_flagged() {
        let got = t2("fn f(a_ns: u64, b_ms: u64) -> bool { a_ns < b_ms }");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(
            got[0].1.contains("(ns)") && got[0].1.contains("(ms)"),
            "{got:?}"
        );
        assert!(t2("fn f(a_ns: u64, b_ns: u64) -> u64 { a_ns + b_ns }").is_empty());
    }

    #[test]
    fn scale_factor_counts_as_conversion() {
        assert!(t2("fn f(a_ns: u64, b_ms: u64) -> u64 { a_ns + b_ms * 1_000_000 }").is_empty());
        assert!(t2("fn f(a_us: u64) -> u64 { let t_ns = a_us * 1000; t_ns }").is_empty());
    }

    #[test]
    fn cross_unit_assignment_flagged() {
        let got = t2("fn f(a_us: u64) { let t_ns = a_us; }");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].1.contains("assigned from"), "{got:?}");
    }

    #[test]
    fn conversion_calls_classify() {
        let got = t2("fn f(d: SimDuration, cut_ms: u64) -> bool { d.as_nanos() > cut_ms }");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].1.contains("as_nanos()"), "{got:?}");
    }

    #[test]
    fn call_boundary_mismatch_flagged() {
        let got = t2("fn wait(delay_ms: u64) {}\nfn f(t_ns: u64) { wait(t_ns); }");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].1.contains("delay_ms"), "{got:?}");
        assert!(t2("fn wait(delay_ms: u64) {}\nfn f(t_ms: u64) { wait(t_ms); }").is_empty());
    }

    #[test]
    fn return_name_inference_flags_assignments() {
        let got = t2("fn elapsed_us() -> u64 { 5 }\nfn f() { let t_ns = elapsed_us(); }");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].1.contains("elapsed_us()"), "{got:?}");
    }

    #[test]
    fn dotted_field_units_are_seen() {
        let got = t2("fn f(cfg: Config, t_ns: u64) -> bool { t_ns < cfg.tick_us }");
        assert_eq!(got.len(), 1, "{got:?}");
    }
}
