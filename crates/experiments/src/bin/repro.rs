//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all              # every artifact, paper-scale parameters
//! repro fig1             # one artifact
//! repro fig7a fig7b ...  # several
//! repro fig11 --quick    # reduced sample set
//! repro all --out DIR    # additionally write one text file per artifact
//! repro all --threads N  # sweep-level parallelism (default: all cores,
//!                        # or GPUFLOW_THREADS); results are identical
//!                        # at every thread count
//! repro all --telemetry DIR  # additionally run the canonical Matmul with
//!                            # telemetry and write telemetry.jsonl,
//!                            # trace.chrome.json, decisions.log,
//!                            # overhead.txt into DIR
//! repro gate                 # perf-regression gate against committed
//!                            # baselines (artifacts/baselines); exits 1
//!                            # on regression or missing baseline
//! repro gate --update        # rewrite the baseline profiles
//! repro gate --baselines DIR --tolerance PCT --report FILE
//! repro lint                 # workspace determinism & integer-time
//!                            # lints (docs/static_analysis.md);
//!                            # exits 1 on unsuppressed findings
//! repro perf                 # master-overhead stress suite (host ns
//!                            # per simulated task, 100k-task DAGs)
//! repro perf --full          # million-task DAGs
//! repro perf --tasks N       # custom DAG size
//! repro perf --check         # also compare against the committed
//!                            # ceilings (artifacts/baselines/
//!                            # perf_ns_per_task.txt); exits 1 on breach
//! repro replay               # production-trace replay scenario
//!                            # (diurnal arrivals × heavy-tailed jobs ×
//!                            # tenant mix) with metrics-over-time
//! repro replay --seed N --jobs N --tenants N --chaos
//! repro replay --check       # validate the Prometheus exposition
//!                            # (exits 1 on malformed output)
//! repro replay --out FILE    # write the artifact to FILE
//! repro replay --from-log FILE   # deterministically re-execute a
//!                                # recorded gpuflowd submission log;
//!                                # prints the per-job fingerprints and
//!                                # exposition — bit-identical to the
//!                                # live daemon run at any --threads
//! repro spans                # causal span traces, flame graph,
//!                            # deterministic sampling and the SLO
//!                            # alert timeline over the chaos replay
//!                            # scenario
//! repro spans --rate PPM --span-seed N --otlp FILE --out FILE
//! repro spans --check        # byte-diff against artifacts/spans.txt,
//!                            # validate the collapsed-stack grammar
//!                            # and the Prometheus exposition; exits 1
//!                            # on any mismatch
//! repro spans --stress       # 10^6-task DAG sampler bound check:
//!                            # kept <= documented bound and 100%
//!                            # critical-path retention; exits 1 on
//!                            # breach (--tasks N, --shape S override)
//! ```
//!
//! Artifacts: table1, fig1, fig6, fig7a, fig7b, fig8, fig9a, fig9b,
//! fig10a, fig10b, fig11, fig12, plus the extensions `sensitivity`
//! (resource-parameter sweeps the paper defers to future work),
//! `generalizability` (the §5.5.1 parallel-fraction spectrum), `obs`
//! (telemetry bundle: event summary + overhead decomposition), and
//! `chaos` (fault-injection sensitivity: makespan and output
//! convergence under transient failures and node crashes).

use std::time::Instant;

use gpuflow_experiments::{
    ablation, factors, fault_sensitivity, fig1, fig10, fig11, fig12, fig6, fig7, fig8, fig9, gate,
    generalizability, memory, obs, prediction, replay, sensitivity, spans, stress, Context,
};

/// Runs the perf-regression gate (`repro gate [--update] [--baselines
/// DIR] [--tolerance PCT] [--report FILE]`); exits nonzero on failure.
fn run_gate(ctx: &Context, args: &[String]) {
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let dir = value_of("--baselines").unwrap_or_else(|| "artifacts/baselines".to_string());
    let dir = std::path::Path::new(&dir);
    if args.iter().any(|a| a == "--update") {
        let written = gate::update(ctx, dir).expect("write baseline profiles");
        for path in &written {
            eprintln!("[baseline -> {}]", path.display());
        }
        println!(
            "updated {} baseline profiles in {}",
            written.len(),
            dir.display()
        );
        return;
    }
    let tolerance = value_of("--tolerance")
        .map(|v| v.parse::<f64>().expect("--tolerance takes a percentage"))
        .unwrap_or(gate::DEFAULT_TOLERANCE_PCT);
    let report = gate::check(ctx, dir, tolerance);
    let mut text = report.render();
    if !report.passed() {
        // A perf regression on a tree that also violates the determinism
        // lints is usually the lint finding's fault; say so up front.
        if let Some(note) = lint_note() {
            text.push('\n');
            text.push_str(&note);
            text.push('\n');
        }
    }
    println!("{text}");
    if let Some(path) = value_of("--report") {
        std::fs::write(&path, &text).expect("write gate report");
        eprintln!("[gate report -> {path}]");
    }
    if !report.passed() {
        std::process::exit(1);
    }
}

/// Runs the master-overhead stress suite (`repro perf [--full]
/// [--tasks N] [--check] [--thresholds FILE]`): million-task DAGs
/// measured in host ns per simulated task. With `--check`, compares
/// against the committed ceilings and exits nonzero on a breach.
fn run_perf(args: &[String]) {
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let full = args.iter().any(|a| a == "--full");
    let tasks = value_of("--tasks")
        .map(|v| v.parse::<usize>().expect("--tasks takes a number"))
        .unwrap_or(if full { 1_000_000 } else { 100_000 });
    let results = stress::run_suite(tasks);
    println!("{}", stress::render(&results));
    if args.iter().any(|a| a == "--check") {
        let path = value_of("--thresholds")
            .unwrap_or_else(|| "artifacts/baselines/perf_ns_per_task.txt".to_string());
        match stress::check(&results, std::path::Path::new(&path)) {
            Ok(verdicts) => println!("perf check: PASS\n{verdicts}"),
            Err(verdicts) => {
                eprintln!("perf check: FAIL\n{verdicts}");
                std::process::exit(1);
            }
        }
    }
}

/// Runs a production-trace replay scenario (`repro replay [--seed N]
/// [--jobs N] [--tenants N] [--horizon SECS] [--interval SECS]
/// [--chaos] [--check] [--out FILE]`). The artifact is the scenario's
/// submission log, metrics-over-time series, and final Prometheus
/// exposition; with `--check`, the exposition is validated against the
/// text-format grammar and the process exits nonzero on a violation —
/// this is the zero-dependency checker the CI metrics-smoke job runs.
/// `repro replay --from-log FILE`: re-executes a recorded `gpuflowd`
/// submission journal by committing its decisions verbatim
/// ([`gpuflow_daemon::DaemonCore::replay`]). The printed report —
/// per-job output fingerprints plus the final Prometheus exposition —
/// is bit-identical to the live daemon's `ctl report` output.
fn run_replay_from_log(path: &str, args: &[String]) {
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("repro replay: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let core = gpuflow_daemon::DaemonCore::replay(&text).unwrap_or_else(|e| {
        eprintln!("repro replay: {path}: {e}");
        std::process::exit(2);
    });
    let report = core.report();
    print!("{report}");
    if let Some(out) = value_of("--out") {
        std::fs::write(&out, &report).expect("write replay report");
        eprintln!("[replay -> {out}]");
    }
    if args.iter().any(|a| a == "--check") {
        let text = core.metrics_text();
        match gpuflow_lint::promtext::check(&text) {
            Ok(stats) => println!(
                "exposition check: PASS ({} families, {} samples)",
                stats.families, stats.samples
            ),
            Err(err) => {
                eprintln!("exposition check: FAIL\n{err}");
                std::process::exit(1);
            }
        }
        match gpuflow_lint::promtext::check_alert_families(&text) {
            Ok(stats) => println!(
                "alert surface check: PASS ({} alert samples, {} recording rules)",
                stats.alert_samples, stats.recording_families
            ),
            Err(err) => {
                eprintln!("alert surface check: FAIL\n{err}");
                std::process::exit(1);
            }
        }
    }
}

fn run_replay(args: &[String]) {
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if let Some(path) = value_of("--from-log") {
        run_replay_from_log(&path, args);
        return;
    }
    let mut spec = replay::ReplaySpec::default();
    if let Some(v) = value_of("--seed") {
        spec.seed = v.parse().expect("--seed takes an integer");
    }
    if let Some(v) = value_of("--jobs") {
        spec.jobs = v.parse().expect("--jobs takes a number");
    }
    if let Some(v) = value_of("--tenants") {
        spec.tenants = v.parse().expect("--tenants takes a number");
    }
    if let Some(v) = value_of("--horizon") {
        spec.horizon_secs = v.parse().expect("--horizon takes seconds");
    }
    if let Some(v) = value_of("--interval") {
        spec.interval_secs = v.parse().expect("--interval takes seconds");
    }
    if args.iter().any(|a| a == "--chaos") {
        spec.chaos = true;
    }
    let report = replay::run(&spec);
    let text = report.render();
    println!("{text}");
    if let Some(path) = value_of("--out") {
        std::fs::write(&path, &text).expect("write replay artifact");
        eprintln!("[replay -> {path}]");
    }
    if args.iter().any(|a| a == "--check") {
        match gpuflow_lint::promtext::check(&report.metrics.expose()) {
            Ok(stats) => println!(
                "exposition check: PASS ({} families, {} samples)",
                stats.families, stats.samples
            ),
            Err(err) => {
                eprintln!("exposition check: FAIL\n{err}");
                std::process::exit(1);
            }
        }
    }
}

/// Runs the span-trace scenario (`repro spans [--seed N] [--jobs N]
/// [--tenants N] [--horizon SECS] [--interval SECS] [--rate PPM]
/// [--span-seed N] [--otlp FILE] [--out FILE] [--check] [--stress
/// [--tasks N] [--shape S]]`). The artifact is the chaos replay
/// scenario's collapsed flame graph, span summary, sampler coverage,
/// and SLO alert timeline; with `--check` it is byte-diffed against
/// the committed golden and both output grammars are validated. With
/// `--stress`, a million-task DAG (by default) checks the sampler's
/// documented size bound and 100% critical-path retention instead.
fn run_spans(args: &[String]) {
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let rate = value_of("--rate")
        .map(|v| v.parse::<u64>().expect("--rate takes ppm"))
        .unwrap_or(spans::DEFAULT_RATE_PPM);
    let span_seed = value_of("--span-seed")
        .map(|v| v.parse::<u64>().expect("--span-seed takes an integer"))
        .unwrap_or(spans::DEFAULT_SAMPLER_SEED);
    if args.iter().any(|a| a == "--stress") {
        let tasks = value_of("--tasks")
            .map(|v| v.parse::<usize>().expect("--tasks takes a number"))
            .unwrap_or(1_000_000);
        let shape = value_of("--shape")
            .map(|v| stress::Shape::parse(&v).expect("--shape takes wide|stencil|tree"))
            .unwrap_or(stress::Shape::Wide);
        let verdict = spans::run_stress(shape, tasks, rate, span_seed);
        let line = spans::render_stress(&verdict);
        println!("{line}");
        if !verdict.passed() {
            eprintln!("spans stress check: FAIL");
            std::process::exit(1);
        }
        return;
    }
    let mut spec = replay::ReplaySpec {
        chaos: true,
        ..replay::ReplaySpec::default()
    };
    if let Some(v) = value_of("--seed") {
        spec.seed = v.parse().expect("--seed takes an integer");
    }
    if let Some(v) = value_of("--jobs") {
        spec.jobs = v.parse().expect("--jobs takes a number");
    }
    if let Some(v) = value_of("--tenants") {
        spec.tenants = v.parse().expect("--tenants takes a number");
    }
    if let Some(v) = value_of("--horizon") {
        spec.horizon_secs = v.parse().expect("--horizon takes seconds");
    }
    if let Some(v) = value_of("--interval") {
        spec.interval_secs = v.parse().expect("--interval takes seconds");
    }
    let report = spans::run(&spec, rate, span_seed);
    let text = report.render();
    println!("{text}");
    if let Some(path) = value_of("--out") {
        std::fs::write(&path, &text).expect("write spans artifact");
        eprintln!("[spans -> {path}]");
    }
    if let Some(path) = value_of("--otlp") {
        std::fs::write(&path, report.sampled.to_otlp_json()).expect("write OTLP span JSON");
        eprintln!("[otlp -> {path}]");
    }
    if args.iter().any(|a| a == "--check") {
        let golden = value_of("--golden").unwrap_or_else(|| "artifacts/spans.txt".to_string());
        let pinned = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
            eprintln!("spans check: cannot read {golden}: {e}");
            std::process::exit(2);
        });
        let mut failed = false;
        if pinned != text {
            eprintln!("spans check: FAIL — output differs from {golden}");
            failed = true;
        }
        if let Err(err) = gpuflow_lint::collapsed::check(&report.collapsed()) {
            eprintln!("collapsed grammar check: FAIL\n{err}");
            failed = true;
        }
        let exposition = report.metrics.expose();
        match gpuflow_lint::promtext::check(&exposition) {
            Ok(stats) => println!(
                "exposition check: PASS ({} families, {} samples)",
                stats.families, stats.samples
            ),
            Err(err) => {
                eprintln!("exposition check: FAIL\n{err}");
                failed = true;
            }
        }
        match gpuflow_lint::promtext::check_alert_families(&exposition) {
            Ok(stats) => println!(
                "alert surface check: PASS ({} alert samples, {} recording rules)",
                stats.alert_samples, stats.recording_families
            ),
            Err(err) => {
                eprintln!("alert surface check: FAIL\n{err}");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("spans check: PASS (byte-identical to {golden})");
    }
}

/// Returns a one-line warning when the workspace is not lint-clean,
/// or `None` when it is (or when no workspace root can be found).
fn lint_note() -> Option<String> {
    let cwd = std::env::current_dir().ok()?;
    let root = gpuflow_lint::workspace::find_root(&cwd)?;
    let report = gpuflow_lint::run(&root).ok()?;
    if report.clean() {
        None
    } else {
        // Rule-code histogram, so the gate log itself says *what kind*
        // of violation to suspect (a D2 wall clock explains drift; an
        // A1 stale allow does not).
        let mut by_rule: Vec<(gpuflow_lint::RuleCode, usize)> = Vec::new();
        for f in &report.findings {
            match by_rule.iter_mut().find(|(c, _)| *c == f.rule) {
                Some((_, n)) => *n += 1,
                None => by_rule.push((f.rule, 1)),
            }
        }
        by_rule.sort();
        let histogram: Vec<String> = by_rule.iter().map(|(c, n)| format!("{c}: {n}")).collect();
        Some(format!(
            "note: the tree is not lint-clean ({} unsuppressed finding(s); {}) — run \
             `gpuflow lint` and rule out a determinism violation before chasing the regression",
            report.findings.len(),
            histogram.join(", ")
        ))
    }
}

/// Runs the workspace determinism & integer-time lint (`repro lint`);
/// exits nonzero when unsuppressed findings remain.
fn run_lint() {
    let cwd = std::env::current_dir().expect("read current directory");
    let root = gpuflow_lint::workspace::find_root(&cwd)
        .expect("repro lint must run inside the cargo workspace");
    let report = gpuflow_lint::run(&root).expect("scan workspace sources");
    println!("{}", report.render());
    if !report.clean() {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Replay and spans dispatch before the generic `--out DIR`
    // handling: their `--out` names a file, not a directory.
    if args.iter().any(|a| a == "replay") {
        run_replay(&args);
        return;
    }
    if args.iter().any(|a| a == "spans") {
        run_spans(&args);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--threads takes a number"));
    let telemetry_dir = args
        .iter()
        .position(|a| a == "--telemetry")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if args.iter().any(|a| a == "gate") {
        let ctx = Context::default().with_threads(threads.unwrap_or(0));
        run_gate(&ctx, &args);
        return;
    }
    if args.iter().any(|a| a == "lint") {
        run_lint();
        return;
    }
    if args.iter().any(|a| a == "perf") {
        run_perf(&args);
        return;
    }
    let mut skip_values: Vec<usize> = Vec::new();
    for flag in ["--out", "--threads", "--telemetry"] {
        if let Some(i) = args.iter().position(|a| a == flag) {
            skip_values.extend([i, i + 1]);
        }
    }
    let mut targets: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !skip_values.contains(i))
        .map(|(_, a)| a.as_str())
        .collect();
    if targets.is_empty() || targets.contains(&"all") {
        let paper = [
            "table1", "fig1", "fig6", "fig7a", "fig7b", "fig8", "fig9a", "fig9b", "fig10a",
            "fig10b", "fig11", "fig12",
        ];
        let extras: Vec<&str> = targets.iter().copied().filter(|t| *t != "all").collect();
        targets = paper.into_iter().chain(extras).collect();
    }

    let ctx = Context::default().with_threads(threads.unwrap_or(0));
    for target in targets {
        // lint: allow(D2, host progress timing printed to stderr only; never reaches an artifact)
        let t0 = Instant::now();
        let output = match target {
            "table1" => factors::render(),
            "fig1" => fig1::run(&ctx).render(),
            "fig6" => {
                let f = fig6::run();
                format!(
                    "{}\n--- kmeans DOT ---\n{}\n--- matmul DOT ---\n{}",
                    f.render(),
                    f.kmeans_dot,
                    f.matmul_dot
                )
            }
            "fig7a" => {
                let mut out = fig7::run_matmul(
                    &ctx,
                    &gpuflow_data::paper::matmul_8gb(),
                    &fig7::MATMUL_GRIDS,
                )
                .render();
                out.push('\n');
                out.push_str(
                    &fig7::run_matmul(
                        &ctx,
                        &gpuflow_data::paper::matmul_32gb(),
                        &fig7::MATMUL_GRIDS,
                    )
                    .render(),
                );
                out
            }
            "fig7b" => {
                let mut out = fig7::run_kmeans(
                    &ctx,
                    &gpuflow_data::paper::kmeans_10gb(),
                    &fig7::KMEANS_GRIDS,
                    10,
                    fig7::KMEANS_ITERATIONS,
                )
                .render();
                out.push('\n');
                out.push_str(
                    &fig7::run_kmeans(
                        &ctx,
                        &gpuflow_data::paper::kmeans_100gb(),
                        &fig7::KMEANS_GRIDS,
                        10,
                        fig7::KMEANS_ITERATIONS,
                    )
                    .render(),
                );
                out
            }
            "fig8" => fig8::run(&ctx).render(),
            "fig9a" => fig9::run_9a(&ctx).render(),
            "fig9b" => fig9::run_9b(&ctx).render(),
            "fig10a" => fig10::run_matmul(&ctx).render(),
            "fig10b" => fig10::run_kmeans(&ctx).render(),
            "fig11" => {
                if quick {
                    fig11::run_quick(&ctx).render()
                } else {
                    fig11::run(&ctx).render()
                }
            }
            "fig12" => fig12::run(&ctx).render(),
            "sensitivity" => sensitivity::render_all(),
            "generalizability" => generalizability::run(&ctx).render(),
            "prediction" => prediction::run(&ctx).render(),
            "memory" => memory::run(&ctx).render(),
            "obs" => obs::run(&ctx).render(),
            "chaos" => fault_sensitivity::run(&ctx).render(),
            "ablation" => format!(
                "{}
{}",
                ablation::run_scheduler_ablation().render(),
                ablation::render_variance()
            ),
            other => {
                eprintln!("unknown artifact '{other}' (see --help in the source header)");
                continue;
            }
        };
        println!("{output}");
        if let Some(dir) = &out_dir {
            let path = std::path::Path::new(dir).join(format!("{target}.txt"));
            std::fs::write(&path, &output).expect("write artifact file");
            eprintln!("[{target} -> {}]", path.display());
        }
        eprintln!("[{target} regenerated in {:.2?}]", t0.elapsed());
    }

    if let Some(dir) = &telemetry_dir {
        // lint: allow(D2, host progress timing printed to stderr only; never reaches an artifact)
        let t0 = Instant::now();
        let bundle = obs::run(&ctx);
        bundle
            .write_dir(std::path::Path::new(dir))
            .expect("write telemetry bundle");
        println!("{}", bundle.render());
        eprintln!(
            "[telemetry bundle ({} events) -> {dir} in {:.2?}]",
            bundle.events,
            t0.elapsed()
        );
    }
}
