//! Findings and their two renderings: human diagnostics and `--json`.
//!
//! Both renderings are deterministic — findings are emitted in
//! (file, line, col, rule) order — so the JSON report itself satisfies
//! the workspace's byte-identical-artifact discipline and can be diffed
//! across CI runs.

use crate::rules::RuleCode;

/// One hop of an interprocedural call chain, sink first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainHop {
    /// Function label (`name` or `Owner::name`).
    pub func: String,
    /// File the function is defined in.
    pub file: String,
    /// 1-based line of the definition.
    pub line: u32,
}

/// One diagnostic: a rule violation at a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleCode,
    /// Repo-relative path of the file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Site-specific explanation.
    pub message: String,
    /// Interprocedural call chain, sink first (empty for per-function
    /// rules).
    pub chain: Vec<ChainHop>,
}

impl Finding {
    /// Builds a finding.
    pub fn new(
        rule: RuleCode,
        file: &str,
        line: u32,
        col: u32,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            col,
            message: message.into(),
            chain: Vec::new(),
        }
    }

    /// Attaches an interprocedural call chain (sink first).
    pub fn with_chain(mut self, chain: Vec<ChainHop>) -> Finding {
        self.chain = chain;
        self
    }
}

/// The result of scanning a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the tree is lint-clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering: one block per finding plus a summary
    /// line (also printed when clean, so CI logs state the verdict).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}: {} [{}]\n  --> {}:{}:{}\n  {}\n",
                f.rule,
                f.rule.summary(),
                f.rule,
                f.file,
                f.line,
                f.col,
                f.message
            ));
            for (i, h) in f.chain.iter().enumerate() {
                let role = if i == 0 {
                    "sink"
                } else if i + 1 == f.chain.len() {
                    "source"
                } else {
                    "via"
                };
                out.push_str(&format!(
                    "    {role} `{}` at {}:{}\n",
                    h.func, h.file, h.line
                ));
            }
        }
        let mut by_rule: Vec<(RuleCode, usize)> = Vec::new();
        for f in &self.findings {
            match by_rule.iter_mut().find(|(c, _)| *c == f.rule) {
                Some((_, n)) => *n += 1,
                None => by_rule.push((f.rule, 1)),
            }
        }
        by_rule.sort();
        if self.findings.is_empty() {
            out.push_str(&format!(
                "lint: clean — 0 findings across {} files\n",
                self.files_scanned
            ));
        } else {
            let breakdown: Vec<String> = by_rule.iter().map(|(c, n)| format!("{c}: {n}")).collect();
            out.push_str(&format!(
                "lint: {} finding(s) across {} files ({})\n",
                self.findings.len(),
                self.files_scanned,
                breakdown.join(", ")
            ));
        }
        out
    }

    /// JSON rendering (stable key order, findings pre-sorted). The
    /// shape is pinned by `tests/schemas/lint_report.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"chain\":[",
                f.rule,
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.message)
            ));
            for (j, h) in f.chain.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"func\":\"{}\",\"file\":\"{}\",\"line\":{}}}",
                    json_escape(&h.func),
                    json_escape(&h.file),
                    h.line
                ));
            }
            out.push_str("]}");
        }
        out.push_str(&format!(
            "],\"total\":{},\"files_scanned\":{}}}",
            self.findings.len(),
            self.files_scanned
        ));
        out
    }

    /// SARIF 2.1.0 rendering (one run, one result per finding, code
    /// flows for interprocedural chains) so findings surface in code
    /// hosts' security tabs without any extra tooling.
    pub fn to_sarif(&self) -> String {
        let mut out = String::from(
            "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
             \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
             \"name\":\"gpuflow-lint\",\"informationUri\":\
             \"docs/static_analysis.md\",\"rules\":[",
        );
        for (i, code) in RuleCode::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":\"{code}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
                json_escape(code.summary())
            ));
        }
        out.push_str("]}},\"results\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                 {{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]",
                f.rule,
                json_escape(&f.message),
                json_escape(&f.file),
                f.line,
                f.col
            ));
            if !f.chain.is_empty() {
                out.push_str(",\"codeFlows\":[{\"threadFlows\":[{\"locations\":[");
                for (j, h) in f.chain.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"location\":{{\"physicalLocation\":{{\"artifactLocation\":\
                         {{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}},\
                         \"message\":{{\"text\":\"{}\"}}}}}}",
                        json_escape(&h.file),
                        h.line,
                        json_escape(&h.func)
                    ));
                }
                out.push_str("]}]}]");
            }
            out.push('}');
        }
        out.push_str("]}]}");
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![Finding::new(
                RuleCode::D2,
                "src/a.rs",
                3,
                7,
                "Instant::now() reads the host clock",
            )],
            files_scanned: 2,
        }
    }

    #[test]
    fn human_rendering_has_span_and_summary() {
        let r = sample().render();
        assert!(r.contains("src/a.rs:3:7"), "{r}");
        assert!(r.contains("D2"), "{r}");
        assert!(r.contains("1 finding(s) across 2 files"), "{r}");
    }

    #[test]
    fn clean_report_says_so() {
        let r = Report {
            findings: vec![],
            files_scanned: 5,
        };
        assert!(r.clean());
        assert!(r.render().contains("clean — 0 findings across 5 files"));
    }

    #[test]
    fn json_rendering_parses_and_carries_fields() {
        let j = sample().to_json();
        let v = crate::json::parse(&j).unwrap();
        let findings = v.get("findings").and_then(|f| f.as_array()).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].get("rule").and_then(|r| r.as_str()), Some("D2"));
        assert_eq!(v.get("total").and_then(|t| t.as_u64()), Some(1));
    }

    #[test]
    fn json_escaping_handles_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    fn chained() -> Report {
        Report {
            findings: vec![Finding::new(
                RuleCode::D5,
                "src/render.rs",
                10,
                5,
                "wall clock reaches sink",
            )
            .with_chain(vec![
                ChainHop {
                    func: "render_report".into(),
                    file: "src/render.rs".into(),
                    line: 8,
                },
                ChainHop {
                    func: "host_nanos".into(),
                    file: "src/time.rs".into(),
                    line: 3,
                },
            ])],
            files_scanned: 2,
        }
    }

    #[test]
    fn chain_appears_in_both_renderings() {
        let r = chained();
        let text = r.render();
        assert!(
            text.contains("sink `render_report` at src/render.rs:8"),
            "{text}"
        );
        assert!(
            text.contains("source `host_nanos` at src/time.rs:3"),
            "{text}"
        );
        let v = crate::json::parse(&r.to_json()).unwrap();
        let chain = v.get("findings").and_then(|f| f.as_array()).unwrap()[0]
            .get("chain")
            .and_then(|c| c.as_array())
            .unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(
            chain[1].get("func").and_then(|f| f.as_str()),
            Some("host_nanos")
        );
        // Per-function findings carry an empty chain, not a missing key.
        let v = crate::json::parse(&sample().to_json()).unwrap();
        let chain = v.get("findings").and_then(|f| f.as_array()).unwrap()[0]
            .get("chain")
            .and_then(|c| c.as_array())
            .unwrap();
        assert!(chain.is_empty());
    }

    #[test]
    fn sarif_parses_and_carries_rules_results_and_flows() {
        let s = chained().to_sarif();
        let v = crate::json::parse(&s).unwrap();
        assert_eq!(v.get("version").and_then(|x| x.as_str()), Some("2.1.0"));
        let run = &v.get("runs").and_then(|r| r.as_array()).unwrap()[0];
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(|r| r.as_array())
            .unwrap();
        assert_eq!(rules.len(), RuleCode::ALL.len());
        let results = run.get("results").and_then(|r| r.as_array()).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].get("ruleId").and_then(|r| r.as_str()),
            Some("D5")
        );
        assert!(results[0].get("codeFlows").is_some());
    }
}
