//! The discrete-event engine.
//!
//! [`Engine`] is a priority queue of timestamped events with stable FIFO
//! tie-breaking: events scheduled for the same instant pop in the order
//! they were scheduled. The engine is deliberately *passive* — it does not
//! dispatch callbacks. The caller (e.g. the workflow executor) drives the
//! loop with [`Engine::pop`] and interprets its own event payload type,
//! which keeps borrow-checker gymnastics out of simulation models.
//!
//! Internally the queue is a *calendar queue* (Brown 1988): a circular
//! array of time-bucketed lists whose bucket width adapts to the observed
//! event density. Enqueue and dequeue are O(1) amortized instead of the
//! O(log n) of a binary heap, and — unlike a heap — a pop touches only the
//! one bucket the cursor points at, so the hot loop stays in cache. The
//! observable contract is identical to the previous `BinaryHeap`
//! implementation: strict (time, seq) pop order with monotonically
//! increasing sequence numbers (see the equivalence suite in
//! `tests/properties.rs`).

use crate::time::{SimDuration, SimTime};

/// A scheduled event: a payload that becomes due at a simulated instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Instant at which the event fires.
    pub time: SimTime,
    /// Monotonic sequence number; breaks ties between same-time events.
    pub seq: u64,
    /// Caller-defined payload.
    pub payload: E,
}

/// Smallest number of buckets the calendar ever uses.
const MIN_BUCKETS: usize = 8;
/// Bucket-width exponent before any events have been observed (2^20 ns ≈ 1 ms).
const DEFAULT_SHIFT: u32 = 20;
/// Widest bucket the width estimator may pick (2^40 ns ≈ 18 min).
const MAX_SHIFT: u32 = 40;
/// How many head events the resize pass samples to estimate density.
const WIDTH_SAMPLE: usize = 1024;

/// A deterministic discrete-event queue.
///
/// ```
/// use gpuflow_sim::{Engine, SimDuration, SimTime};
///
/// let mut engine: Engine<&str> = Engine::new();
/// engine.schedule_after(SimDuration::from_millis(5), "later");
/// engine.schedule_after(SimDuration::from_millis(1), "sooner");
/// assert_eq!(engine.pop().unwrap().payload, "sooner");
/// assert_eq!(engine.now(), SimTime::from_nanos(1_000_000));
/// ```
pub struct Engine<E> {
    /// Circular bucket array; each bucket is sorted *descending* by
    /// (time, seq) so the due event is an O(1) `pop()` from the tail.
    buckets: Vec<Vec<Scheduled<E>>>,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: usize,
    /// Bucket width is `1 << shift` nanoseconds.
    shift: u32,
    /// Cursor: index of the bucket whose window is being swept.
    cur: usize,
    /// Exclusive upper bound (ns) of the cursor bucket's current window.
    cur_top: u64,
    /// Floor for shrinking, so a capacity hint is never deallocated.
    min_buckets: usize,
    count: usize,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine at t = 0.
    pub fn new() -> Self {
        Engine::with_capacity(0)
    }

    /// Creates an empty engine sized for roughly `capacity` concurrently
    /// pending events, so steady-state scheduling never grows the calendar
    /// mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        let nb = (capacity / 2).next_power_of_two().max(MIN_BUCKETS);
        let mut e = Engine {
            buckets: Vec::new(),
            mask: nb - 1,
            shift: DEFAULT_SHIFT,
            cur: 0,
            cur_top: 1u64 << DEFAULT_SHIFT,
            min_buckets: nb,
            count: 0,
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
        };
        e.buckets = std::iter::repeat_with(|| Vec::with_capacity(4))
            .take(nb)
            .collect();
        e
    }

    /// Ensures the calendar can absorb `additional` more pending events
    /// without growing during subsequent `schedule_*` calls.
    pub fn reserve(&mut self, additional: usize) {
        while self.count + additional > self.buckets.len() * 2 {
            let nb = self.buckets.len() * 2;
            self.rebuild(nb);
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.count
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Schedules `payload` at the absolute instant `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the simulated past — scheduling into the past
    /// is always a model bug and silently reordering would corrupt results.
    pub fn schedule_at(&mut self, time: SimTime, payload: E) -> u64 {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Scheduled { time, seq, payload });
        seq
    }

    /// Schedules `payload` after `delay` from the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> u64 {
        self.schedule_at(self.now + delay, payload)
    }

    /// Pops the next due event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.pop_if_due(SimTime::MAX)
    }

    /// Pops the next event only if it is due at or before `deadline`;
    /// otherwise leaves the queue untouched and returns `None`. This
    /// replaces the `peek_time`-then-`pop` pattern (two ordered searches)
    /// with a single search.
    pub fn pop_if_due(&mut self, deadline: SimTime) -> Option<Scheduled<E>> {
        let (cur, cur_top) = self.locate(self.cur, self.cur_top)?;
        // Persist the sweep so the next call resumes where this one ended.
        self.cur = cur;
        self.cur_top = cur_top;
        if self.buckets[cur].last().map(|e| e.time)? > deadline {
            return None;
        }
        let ev = self.buckets[cur].pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        self.processed += 1;
        self.count -= 1;
        if self.count * 4 < self.buckets.len() && self.buckets.len() > self.min_buckets {
            let nb = self.buckets.len() / 2;
            self.rebuild(nb);
        }
        Some(ev)
    }

    /// Timestamp of the next due event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        let (b, _) = self.locate(self.cur, self.cur_top)?;
        self.buckets[b].last().map(|e| e.time)
    }

    /// Finds the bucket holding the globally next (time, seq) event.
    ///
    /// Sweeps forward from the cursor window; each bucket's due event is
    /// its tail (buckets are sorted descending). If a full lap finds no
    /// event inside its window — every pending event is beyond the current
    /// calendar "year" — falls back to a direct min scan and jumps the
    /// cursor to that event's window.
    fn locate(&self, mut cur: usize, mut cur_top: u64) -> Option<(usize, u64)> {
        if self.count == 0 {
            return None;
        }
        let width = 1u64 << self.shift;
        for _ in 0..self.buckets.len() {
            if let Some(tail) = self.buckets[cur].last() {
                if tail.time.as_nanos() < cur_top {
                    return Some((cur, cur_top));
                }
            }
            cur = (cur + 1) & self.mask;
            cur_top = cur_top.saturating_add(width);
        }
        // Direct search: min (time, seq) over all bucket tails. Same-time
        // events always share a bucket, so comparing tails is exact.
        let mut best = usize::MAX;
        let mut key = (u64::MAX, u64::MAX);
        for (i, b) in self.buckets.iter().enumerate() {
            if let Some(tail) = b.last() {
                let k = (tail.time.as_nanos(), tail.seq);
                if k < key {
                    key = k;
                    best = i;
                }
            }
        }
        let vb = key.0 >> self.shift;
        Some((best, (vb + 1) << self.shift))
    }

    fn insert(&mut self, ev: Scheduled<E>) {
        let t = ev.time.as_nanos();
        let vb = t >> self.shift;
        // If the event's window precedes the cursor's, pull the cursor
        // back so the next sweep cannot skip it.
        let cur_vb = (self.cur_top >> self.shift).saturating_sub(1);
        if vb < cur_vb {
            self.cur = (vb as usize) & self.mask;
            self.cur_top = (vb + 1) << self.shift;
        }
        let idx = (vb as usize) & self.mask;
        let b = &mut self.buckets[idx];
        let key = (t, ev.seq);
        let pos = b.partition_point(|e| (e.time.as_nanos(), e.seq) > key);
        b.insert(pos, ev);
        self.count += 1;
        if self.count > self.buckets.len() * 2 {
            let nb = self.buckets.len() * 2;
            self.rebuild(nb);
        }
    }

    /// Re-buckets every pending event into `nb` buckets, re-estimating the
    /// bucket width from the head of the queue. O(n log n), amortized away
    /// by the doubling/halving schedule.
    fn rebuild(&mut self, nb: usize) {
        let nb = nb.next_power_of_two().max(self.min_buckets);
        let mut all: Vec<Scheduled<E>> = Vec::with_capacity(self.count);
        for b in &mut self.buckets {
            all.append(b);
        }
        // Stable sort: (time, seq) is already total, but stable keeps
        // the determinism obvious to the taint lint and to readers.
        all.sort_by_key(|e| (e.time, e.seq));
        self.shift = estimate_shift(&all);
        if self.buckets.len() != nb {
            self.buckets = std::iter::repeat_with(|| Vec::with_capacity(4))
                .take(nb)
                .collect();
            self.mask = nb - 1;
        }
        // Reset the cursor to `now`'s window; every event is >= now.
        let vb_now = self.now.as_nanos() >> self.shift;
        self.cur = (vb_now as usize) & self.mask;
        self.cur_top = (vb_now + 1) << self.shift;
        // Descending insertion order makes every bucket push an O(1) append
        // while preserving the descending (time, seq) bucket invariant.
        for ev in all.into_iter().rev() {
            let idx = ((ev.time.as_nanos() >> self.shift) as usize) & self.mask;
            self.buckets[idx].push(ev);
        }
    }
}

/// Picks a bucket-width exponent so that the head of the queue spreads at
/// a few events per bucket. Deterministic: depends only on queue contents.
fn estimate_shift<E>(sorted: &[Scheduled<E>]) -> u32 {
    let k = sorted.len().min(WIDTH_SAMPLE);
    if k < 2 {
        return DEFAULT_SHIFT;
    }
    let span = sorted[k - 1]
        .time
        .as_nanos()
        .saturating_sub(sorted[0].time.as_nanos());
    let avg_gap = span / (k as u64 - 1);
    // Target width ≈ 4 average gaps → ~4 events per bucket near the head.
    let target = avg_gap.saturating_mul(4).max(1);
    let ceil_log2 = 64 - (target - 1).leading_zeros();
    ceil_log2.min(MAX_SHIFT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(SimTime::from_nanos(30), 3);
        e.schedule_at(SimTime::from_nanos(10), 1);
        e.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|s| s.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(e.processed(), 3);
    }

    #[test]
    fn same_time_events_pop_fifo() {
        let mut e: Engine<&str> = Engine::new();
        let t = SimTime::from_nanos(5);
        e.schedule_at(t, "first");
        e.schedule_at(t, "second");
        e.schedule_at(t, "third");
        assert_eq!(e.pop().unwrap().payload, "first");
        assert_eq!(e.pop().unwrap().payload, "second");
        assert_eq!(e.pop().unwrap().payload, "third");
    }

    #[test]
    fn now_advances_with_pop() {
        let mut e: Engine<()> = Engine::new();
        e.schedule_after(SimDuration::from_millis(7), ());
        assert_eq!(e.now(), SimTime::ZERO);
        e.pop();
        assert_eq!(e.now(), SimTime::from_nanos(7_000_000));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut e: Engine<()> = Engine::new();
        e.schedule_at(SimTime::from_nanos(100), ());
        e.pop();
        e.schedule_at(SimTime::from_nanos(50), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule_at(SimTime::from_nanos(42), 1);
        assert_eq!(e.peek_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(e.now(), SimTime::ZERO);
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn pop_if_due_respects_deadline() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule_at(SimTime::from_nanos(100), 1);
        e.schedule_at(SimTime::from_nanos(200), 2);
        assert!(e.pop_if_due(SimTime::from_nanos(99)).is_none());
        assert_eq!(e.pending(), 2);
        assert_eq!(
            e.now(),
            SimTime::ZERO,
            "a refused pop must not advance time"
        );
        assert_eq!(e.pop_if_due(SimTime::from_nanos(100)).unwrap().payload, 1);
        assert_eq!(e.now(), SimTime::from_nanos(100));
        assert!(e.pop_if_due(SimTime::from_nanos(150)).is_none());
        assert_eq!(e.pop_if_due(SimTime::from_nanos(200)).unwrap().payload, 2);
        assert!(e.pop_if_due(SimTime::MAX).is_none());
    }

    #[test]
    fn grows_and_shrinks_through_resize_thresholds() {
        let mut e: Engine<u64> = Engine::new();
        for i in 0..10_000u64 {
            // Mixed density: clusters of same-instant events plus spread.
            e.schedule_at(SimTime::from_nanos((i / 3) * 977), i);
        }
        assert_eq!(e.pending(), 10_000);
        let mut last = (SimTime::ZERO, 0u64);
        let mut popped = 0u64;
        while let Some(ev) = e.pop() {
            assert!((ev.time, ev.seq) > last || popped == 0);
            last = (ev.time, ev.seq);
            popped += 1;
        }
        assert_eq!(popped, 10_000);
        assert!(e.is_empty());
    }

    #[test]
    fn far_future_gap_uses_direct_search() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule_at(SimTime::from_nanos(10), 1);
        // Far beyond one calendar year of the initial geometry.
        e.schedule_at(SimTime::from_nanos(u64::MAX / 2), 2);
        assert_eq!(e.pop().unwrap().payload, 1);
        assert_eq!(e.pop().unwrap().payload, 2);
        assert!(e.pop().is_none());
    }

    #[test]
    fn insert_behind_swept_cursor_is_not_skipped() {
        let mut e: Engine<u8> = Engine::new();
        // Sweep the cursor far forward by popping a distant event...
        e.schedule_at(SimTime::from_nanos(50_000_000), 1);
        assert_eq!(e.pop().unwrap().payload, 1);
        // ...then schedule nearer than the cursor's window and a decoy later.
        e.schedule_at(SimTime::from_nanos(50_000_001), 3);
        e.schedule_at(SimTime::from_nanos(50_000_000), 2);
        assert_eq!(e.pop().unwrap().payload, 2);
        assert_eq!(e.pop().unwrap().payload, 3);
    }

    #[test]
    fn with_capacity_and_reserve_pre_size_the_calendar() {
        let mut e: Engine<u32> = Engine::with_capacity(4096);
        e.reserve(10_000);
        for i in 0..10_000 {
            e.schedule_at(SimTime::from_nanos(u64::from(i) * 13), i);
        }
        let mut expect = 0u32;
        while let Some(ev) = e.pop() {
            assert_eq!(ev.payload, expect);
            expect += 1;
        }
        assert_eq!(expect, 10_000);
    }
}
