// A0 fixture: malformed suppression annotations.

// lint: allow(D2)
fn missing_reason() {}

// lint: allow(BOGUS, not a rule code)
fn unknown_code() {}
