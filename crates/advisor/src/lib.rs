//! # gpuflow-advisor — toward automated workflow tuning (§5.4.3)
//!
//! The paper closes by sketching "an automated method to handle
//! task-based workflows in modern, high-compute capacity CPU-GPU
//! engines". This crate is that method's first iteration: a
//! simulation-backed search over the execution-factor space of Table 1
//! (block/grid dimension, processor type, storage architecture,
//! scheduling policy), with static pruning rules that encode the paper's
//! observations — memory walls (Figs. 7–10), and an upper-bound GPU
//! speedup test capturing O1/O3 ("GPUs only pay when the parallel
//! fraction outweighs serial + transfer costs").

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod advisor;
mod workload;

pub use advisor::{
    AdviseError, Advisor, Candidate, Evaluation, PruneReason, Recommendation, SearchSpace,
};
pub use workload::Workload;
