//! Counted FCFS resource pools.
//!
//! Models a set of interchangeable servers (the CPU cores of a node, the
//! GPU devices of a node). Requests that cannot be served immediately wait
//! in FIFO order. The pool is passive: the simulation executor calls
//! [`FcfsPool::try_acquire`] / [`FcfsPool::release`] as its events fire and
//! reacts to the returned grants.

use std::collections::VecDeque;

use crate::time::SimTime;

/// Result of an acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// A unit was free; the caller holds it now.
    Granted,
    /// All units busy; the ticket was enqueued and will be handed a unit
    /// by a future [`FcfsPool::release`].
    Queued,
}

/// A pool of `capacity` identical units with a FIFO wait queue.
///
/// The type parameter `T` is the caller's ticket (typically a task id) used
/// to identify who gets the unit freed by a release.
#[derive(Debug, Clone)]
pub struct FcfsPool<T> {
    capacity: usize,
    in_use: usize,
    waiters: VecDeque<T>,
    // Utilization accounting: integral of `in_use` over time.
    busy_integral_ns: u128,
    last_change: SimTime,
    peak_queue: usize,
}

impl<T> FcfsPool<T> {
    /// Creates a pool with `capacity` units, all free.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a zero-capacity pool can never grant.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pool capacity must be positive");
        FcfsPool {
            capacity,
            in_use: 0,
            waiters: VecDeque::new(),
            busy_integral_ns: 0,
            last_change: SimTime::ZERO,
            peak_queue: 0,
        }
    }

    fn account(&mut self, now: SimTime) {
        let dt = now.duration_since(self.last_change).as_nanos() as u128;
        self.busy_integral_ns += dt * self.in_use as u128;
        self.last_change = now;
    }

    /// Attempts to take one unit at instant `now`. If none is free the
    /// ticket is queued FIFO.
    pub fn try_acquire(&mut self, now: SimTime, ticket: T) -> Acquire {
        self.account(now);
        if self.in_use < self.capacity {
            self.in_use += 1;
            Acquire::Granted
        } else {
            self.waiters.push_back(ticket);
            self.peak_queue = self.peak_queue.max(self.waiters.len());
            Acquire::Queued
        }
    }

    /// Returns one unit at instant `now`. If a ticket is waiting, the unit
    /// is immediately handed to it and the ticket is returned so the caller
    /// can resume it.
    ///
    /// # Panics
    /// Panics if no unit is currently held — releasing an idle pool is
    /// always an executor bug.
    pub fn release(&mut self, now: SimTime) -> Option<T> {
        assert!(self.in_use > 0, "release on an idle pool");
        self.account(now);
        match self.waiters.pop_front() {
            Some(next) => Some(next), // unit transfers directly; in_use unchanged
            None => {
                self.in_use -= 1;
                None
            }
        }
    }

    /// Removes a queued ticket matching `pred` (e.g. a cancelled task).
    /// Returns `true` if one was removed.
    pub fn cancel_waiter<F: FnMut(&T) -> bool>(&mut self, mut pred: F) -> bool {
        if let Some(pos) = self.waiters.iter().position(&mut pred) {
            self.waiters.remove(pos);
            true
        } else {
            false
        }
    }

    /// Total units in the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Units currently held.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Units currently free.
    pub fn available(&self) -> usize {
        self.capacity - self.in_use
    }

    /// Tickets currently waiting.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Longest wait queue observed so far.
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }

    /// Accumulated busy time across all units up to `now`, in unit-seconds.
    /// E.g. 2 units busy for 3 s yields 6.0.
    pub fn busy_unit_seconds(&self, now: SimTime) -> f64 {
        let dt = now.duration_since(self.last_change).as_nanos() as u128;
        // lint: allow(T1, u128 accumulator with 64 bits of headroom over any simulated horizon)
        (self.busy_integral_ns + dt * self.in_use as u128) as f64 / 1e9
    }

    /// Mean utilization in `[0, 1]` over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_unit_seconds(now) / (self.capacity as f64 * now.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn grants_until_capacity_then_queues() {
        let mut p: FcfsPool<u32> = FcfsPool::new(2);
        assert_eq!(p.try_acquire(t(0), 1), Acquire::Granted);
        assert_eq!(p.try_acquire(t(0), 2), Acquire::Granted);
        assert_eq!(p.try_acquire(t(0), 3), Acquire::Queued);
        assert_eq!(p.available(), 0);
        assert_eq!(p.queue_len(), 1);
    }

    #[test]
    fn release_hands_unit_to_fifo_waiter() {
        let mut p: FcfsPool<&str> = FcfsPool::new(1);
        assert_eq!(p.try_acquire(t(0), "a"), Acquire::Granted);
        assert_eq!(p.try_acquire(t(1), "b"), Acquire::Queued);
        assert_eq!(p.try_acquire(t(2), "c"), Acquire::Queued);
        assert_eq!(p.release(t(3)), Some("b"));
        assert_eq!(p.release(t(4)), Some("c"));
        assert_eq!(p.release(t(5)), None);
        assert_eq!(p.available(), 1);
    }

    #[test]
    fn in_use_stable_when_unit_transfers() {
        let mut p: FcfsPool<u8> = FcfsPool::new(1);
        p.try_acquire(t(0), 1);
        p.try_acquire(t(0), 2);
        assert_eq!(p.in_use(), 1);
        p.release(t(1));
        assert_eq!(p.in_use(), 1, "unit moved to waiter, still held");
        p.release(t(2));
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "idle pool")]
    fn release_on_idle_pool_panics() {
        let mut p: FcfsPool<u8> = FcfsPool::new(1);
        p.release(t(0));
    }

    #[test]
    fn cancel_waiter_removes_matching() {
        let mut p: FcfsPool<u8> = FcfsPool::new(1);
        p.try_acquire(t(0), 1);
        p.try_acquire(t(0), 2);
        p.try_acquire(t(0), 3);
        assert!(p.cancel_waiter(|&x| x == 2));
        assert!(!p.cancel_waiter(|&x| x == 2));
        assert_eq!(p.release(t(1)), Some(3));
    }

    #[test]
    fn utilization_integral() {
        let mut p: FcfsPool<u8> = FcfsPool::new(2);
        p.try_acquire(t(0), 1); // 1 busy from 0
        p.try_acquire(t(1_000_000_000), 2); // 2 busy from 1s
        p.release(t(2_000_000_000)); // 1 busy from 2s
        p.release(t(3_000_000_000)); // 0 busy from 3s
                                     // busy unit-seconds = 1*1 + 2*1 + 1*1 = 4
        assert!((p.busy_unit_seconds(t(4_000_000_000)) - 4.0).abs() < 1e-9);
        assert!((p.utilization(t(4_000_000_000)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn peak_queue_tracks_high_water_mark() {
        let mut p: FcfsPool<u8> = FcfsPool::new(1);
        p.try_acquire(t(0), 1);
        p.try_acquire(t(0), 2);
        p.try_acquire(t(0), 3);
        p.release(t(1));
        p.release(t(2));
        assert_eq!(p.peak_queue(), 2);
    }
}
