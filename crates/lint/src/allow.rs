//! The inline suppression grammar: `// lint: allow(CODE, reason)`.
//!
//! Every suppression is auditable: it names the rule it silences and
//! must carry a non-empty reason. Like `FaultPlan`'s clause grammar,
//! the annotation round-trips — `parse(render(a)) == a` — which the
//! proptest suite pins, so annotations can be machine-rewritten safely.
//!
//! Placement rules:
//!
//! * an annotation on its **own line** covers the next statement
//!   (through the line where that statement ends);
//! * a **trailing** annotation (after code, same line) covers exactly
//!   its own line;
//! * an annotation no finding matches is itself reported (rule `A1`),
//!   so stale suppressions cannot rot in the tree;
//! * a comment that starts `// lint:` but does not parse is reported as
//!   malformed (rule `A0`).

use crate::rules::RuleCode;

/// One parsed suppression annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being suppressed.
    pub code: RuleCode,
    /// Why the finding is intentional (non-empty, single line, no `)`
    /// as its final character ambiguity — the reason runs to the last
    /// closing parenthesis).
    pub reason: String,
}

impl Allow {
    /// Renders the canonical annotation text. [`Allow::parse`] of the
    /// result yields `self` back (round-trip; proptest-pinned).
    pub fn render(&self) -> String {
        format!("// lint: allow({}, {})", self.code.as_str(), self.reason)
    }

    /// Parses an annotation from a full line-comment text.
    ///
    /// Returns `Ok(None)` when the comment is not a lint annotation at
    /// all (doc comments and ordinary prose are ignored).
    ///
    /// # Errors
    /// A comment that *is* addressed to the linter (`// lint:` prefix)
    /// but malformed — unknown code, missing reason, missing
    /// parentheses — is an error, surfaced as an `A0` finding.
    pub fn parse(comment: &str) -> Result<Option<Allow>, String> {
        let Some(body) = annotation_body(comment) else {
            return Ok(None);
        };
        let body = body.trim();
        let Some(rest) = body.strip_prefix("allow") else {
            return Err(format!("expected 'allow(CODE, reason)', got '{body}'"));
        };
        let rest = rest.trim_start();
        let Some(inner) = rest
            .strip_prefix('(')
            .and_then(|r| r.trim_end().strip_suffix(')'))
        else {
            return Err("allow needs parentheses: allow(CODE, reason)".to_string());
        };
        let Some((code_text, reason)) = inner.split_once(',') else {
            return Err("allow needs a reason: allow(CODE, reason)".to_string());
        };
        let code_text = code_text.trim();
        let Some(code) = RuleCode::parse(code_text) else {
            return Err(format!(
                "unknown rule code '{code_text}' (known: {})",
                RuleCode::all_names().join(", ")
            ));
        };
        if !code.suppressible() {
            return Err(format!("rule {code_text} cannot be suppressed"));
        }
        let reason = reason.trim();
        if reason.is_empty() {
            return Err("empty reason: every suppression must say why".to_string());
        }
        Ok(Some(Allow {
            code,
            reason: reason.to_string(),
        }))
    }
}

/// The annotation body after `// lint:`, or `None` for comments not
/// addressed to the linter. Doc comments (`///`, `//!`) never count —
/// they are prose, so rule documentation can quote the grammar freely.
fn annotation_body(comment: &str) -> Option<&str> {
    let rest = comment.strip_prefix("//")?;
    if rest.starts_with('/') || rest.starts_with('!') {
        return None;
    }
    rest.trim_start().strip_prefix("lint:")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_canonical_form() {
        let a = Allow::parse("// lint: allow(D1, collected then sorted below)")
            .unwrap()
            .unwrap();
        assert_eq!(a.code, RuleCode::D1);
        assert_eq!(a.reason, "collected then sorted below");
    }

    #[test]
    fn render_parse_round_trips() {
        let a = Allow {
            code: RuleCode::T1,
            reason: "saturating by construction (values < 2^53)".into(),
        };
        assert_eq!(Allow::parse(&a.render()).unwrap().unwrap(), a);
    }

    #[test]
    fn reasons_may_contain_inner_parens() {
        let a = Allow::parse("// lint: allow(D2, host probe (stderr only))")
            .unwrap()
            .unwrap();
        assert_eq!(a.reason, "host probe (stderr only)");
    }

    #[test]
    fn ordinary_and_doc_comments_are_ignored() {
        assert_eq!(Allow::parse("// a normal comment").unwrap(), None);
        assert_eq!(
            Allow::parse("/// lint: allow(D1, doc prose)").unwrap(),
            None
        );
        assert_eq!(
            Allow::parse("//! lint: allow(D1, doc prose)").unwrap(),
            None
        );
    }

    #[test]
    fn malformed_annotations_error() {
        assert!(Allow::parse("// lint: alow(D1, typo)").is_err());
        assert!(Allow::parse("// lint: allow(D9, unknown code)").is_err());
        assert!(Allow::parse("// lint: allow(D1)").is_err());
        assert!(Allow::parse("// lint: allow(D1, )").is_err());
        assert!(Allow::parse("// lint: allow D1, no parens").is_err());
        assert!(Allow::parse("// lint: allow(A1, meta rules stay loud)").is_err());
    }
}
