//! Simulated time primitives.
//!
//! Time is represented as an integer number of nanoseconds since the start
//! of the simulation. Using integers (rather than `f64` seconds) keeps the
//! event queue totally ordered and makes runs bit-for-bit reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The far end of simulated time; no event is ever later.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration(0);
        }
        // lint: allow(T1, this is the blessed conversion: inputs are guarded above and the f64->u64 cast saturates)
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two durations.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative scale factor.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.3}us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500_000_000);
        assert_eq!(t.as_secs_f64(), 1.5);
        let t2 = t + SimDuration::from_millis(500);
        assert_eq!(t2.as_secs_f64(), 2.0);
        assert_eq!((t2 - t).as_nanos(), 500_000_000);
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        assert_eq!(b.duration_since(a).as_nanos(), 10);
    }

    #[test]
    fn from_secs_f64_clamps_invalid() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(2.5).as_nanos(), 2_500_000_000);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(2.0), SimDuration::from_millis(200));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_secs_f64(1.5).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7.000us");
    }

    #[test]
    fn durations_sum() {
        let total: SimDuration = [1u64, 2, 3].into_iter().map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(6));
    }
}
