//! # gpuflow-data — distributed blocked arrays (the dislib substrate)
//!
//! The data layer of the reproduction: the partitioning algebra of §3.5
//! (datasets, grids, blocks, Eq. 1–2), dataset specifications matching the
//! paper's inventory (§4.4.5), seeded synthetic generators (uniform and
//! skewed), and dense-matrix kernels used to validate the blocked
//! algorithms functionally at test scale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod dataset;
mod dsarray;
mod grid;
mod matrix;

pub use dataset::{paper, DatasetSpec, F64_BYTES, MAX_MATERIALIZE_ELEMENTS};
pub use dsarray::{BlockCoord, ChunkingPolicy, DsArray, DsArraySpec};
pub use grid::{BlockDim, DatasetDim, GridDim, PartitionError};
pub use matrix::{kmeans_partial_sum, kmeans_update_centers, squared_distance, Matrix};
