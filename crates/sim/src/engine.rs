//! The discrete-event engine.
//!
//! [`Engine`] is a priority queue of timestamped events with stable FIFO
//! tie-breaking: events scheduled for the same instant pop in the order
//! they were scheduled. The engine is deliberately *passive* — it does not
//! dispatch callbacks. The caller (e.g. the workflow executor) drives the
//! loop with [`Engine::pop`] and interprets its own event payload type,
//! which keeps borrow-checker gymnastics out of simulation models.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A scheduled event: a payload that becomes due at a simulated instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Instant at which the event fires.
    pub time: SimTime,
    /// Monotonic sequence number; breaks ties between same-time events.
    pub seq: u64,
    /// Caller-defined payload.
    pub payload: E,
}

/// Min-heap wrapper: earliest (time, seq) pops first.
struct HeapEntry<E>(Scheduled<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest key first.
        (other.0.time, other.0.seq).cmp(&(self.0.time, self.0.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use gpuflow_sim::{Engine, SimDuration, SimTime};
///
/// let mut engine: Engine<&str> = Engine::new();
/// engine.schedule_after(SimDuration::from_millis(5), "later");
/// engine.schedule_after(SimDuration::from_millis(1), "sooner");
/// assert_eq!(engine.pop().unwrap().payload, "sooner");
/// assert_eq!(engine.now(), SimTime::from_nanos(1_000_000));
/// ```
pub struct Engine<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine at t = 0.
    pub fn new() -> Self {
        Engine {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at the absolute instant `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the simulated past — scheduling into the past
    /// is always a model bug and silently reordering would corrupt results.
    pub fn schedule_at(&mut self, time: SimTime, payload: E) -> u64 {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Scheduled { time, seq, payload }));
        seq
    }

    /// Schedules `payload` after `delay` from the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> u64 {
        self.schedule_at(self.now + delay, payload)
    }

    /// Pops the next due event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.0.time >= self.now);
        self.now = entry.0.time;
        self.processed += 1;
        Some(entry.0)
    }

    /// Timestamp of the next due event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(SimTime::from_nanos(30), 3);
        e.schedule_at(SimTime::from_nanos(10), 1);
        e.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|s| s.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(e.processed(), 3);
    }

    #[test]
    fn same_time_events_pop_fifo() {
        let mut e: Engine<&str> = Engine::new();
        let t = SimTime::from_nanos(5);
        e.schedule_at(t, "first");
        e.schedule_at(t, "second");
        e.schedule_at(t, "third");
        assert_eq!(e.pop().unwrap().payload, "first");
        assert_eq!(e.pop().unwrap().payload, "second");
        assert_eq!(e.pop().unwrap().payload, "third");
    }

    #[test]
    fn now_advances_with_pop() {
        let mut e: Engine<()> = Engine::new();
        e.schedule_after(SimDuration::from_millis(7), ());
        assert_eq!(e.now(), SimTime::ZERO);
        e.pop();
        assert_eq!(e.now(), SimTime::from_nanos(7_000_000));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut e: Engine<()> = Engine::new();
        e.schedule_at(SimTime::from_nanos(100), ());
        e.pop();
        e.schedule_at(SimTime::from_nanos(50), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule_at(SimTime::from_nanos(42), 1);
        assert_eq!(e.peek_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(e.now(), SimTime::ZERO);
        assert_eq!(e.pending(), 1);
    }
}
