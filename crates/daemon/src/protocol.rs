//! The line-oriented client protocol of `gpuflowd`.
//!
//! One TCP connection carries one request line and one reply; the
//! daemon closes the connection after writing, so clients read to EOF.
//! Requests are `verb k=v ...` with a fixed keyword set — the same
//! `k=v` idiom as the recorded journal ([`crate::log`]) — and replies
//! start with `ok` or `err`.

use gpuflow_runtime::JobShape;

/// Why a submission was refused — the typed backpressure surface.
/// Every reason is also a Prometheus label value on
/// `gpuflow_tenant_jobs_rejected_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant already has `quota` jobs queued.
    QuotaExceeded,
    /// The global queue is at capacity.
    QueueFull,
    /// The submission names a tenant the daemon was not configured
    /// with.
    UnknownTenant,
    /// Malformed submission (bad shape, zero or oversized task count,
    /// bad tenant name).
    BadRequest,
}

impl RejectReason {
    /// Every reason, in declaration order.
    pub const ALL: [RejectReason; 4] = [
        RejectReason::QuotaExceeded,
        RejectReason::QueueFull,
        RejectReason::UnknownTenant,
        RejectReason::BadRequest,
    ];

    /// Stable label used in the journal and as a metric label value.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QuotaExceeded => "quota",
            RejectReason::QueueFull => "queue-full",
            RejectReason::UnknownTenant => "unknown-tenant",
            RejectReason::BadRequest => "bad-request",
        }
    }

    /// Parses a [`RejectReason::label`] back to the reason.
    pub fn parse(s: &str) -> Option<RejectReason> {
        RejectReason::ALL.into_iter().find(|r| r.label() == s)
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Submit one job: `submit tenant=acme shape=wide tasks=24
    /// [prio=5]`.
    Submit {
        /// Tenant name (validated against the daemon config).
        tenant: String,
        /// DAG template.
        shape: JobShape,
        /// Requested task count.
        tasks: u64,
        /// Fair-share tie-break priority (higher first; default 0).
        prio: u32,
    },
    /// Cancel a queued job: `cancel job=3`.
    Cancel {
        /// The job id `submit` returned.
        job: u64,
    },
    /// Execute every queued job as one simulated epoch: `drain`.
    Drain,
    /// Queue state: `queue` (table) or `queue json` (fixed schema).
    Queue {
        /// Emit the machine-readable JSON form.
        json: bool,
    },
    /// Per-job fingerprint report plus the metrics exposition.
    Report,
    /// The current Prometheus exposition snapshot.
    Metrics,
    /// Alert rule states, the firing timeline, and per-job root spans.
    Alerts,
    /// Liveness probe.
    Health,
    /// The recorded submission journal.
    Log,
    /// Stop the daemon after replying.
    Shutdown,
}

/// Tenant names are journal- and label-safe by construction: ASCII
/// alphanumerics, `_`, `-`, 1..=64 chars.
pub fn valid_tenant_name(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Looks up `key=`-prefixed value among whitespace-split words.
pub(crate) fn field<'a>(words: &[&'a str], key: &str) -> Option<&'a str> {
    words
        .iter()
        .find_map(|w| w.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
}

/// Parses one request line. Unknown verbs and malformed fields are
/// errors (the daemon replies `err ...` without touching any state).
pub fn parse_command(line: &str) -> Result<Command, String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    let verb = *words.first().ok_or("empty request")?;
    match verb {
        "submit" => {
            let tenant = field(&words, "tenant").ok_or("submit needs tenant=")?;
            let shape = field(&words, "shape").ok_or("submit needs shape=")?;
            let shape = JobShape::parse(shape)
                .ok_or_else(|| format!("unknown shape {shape:?} (wide|stencil|tree)"))?;
            let tasks: u64 = field(&words, "tasks")
                .ok_or("submit needs tasks=")?
                .parse()
                .map_err(|_| "tasks= must be an integer".to_string())?;
            let prio: u32 = match field(&words, "prio") {
                None => 0,
                Some(p) => p
                    .parse()
                    .map_err(|_| "prio= must be a non-negative integer".to_string())?,
            };
            Ok(Command::Submit {
                tenant: tenant.to_string(),
                shape,
                tasks,
                prio,
            })
        }
        "cancel" => {
            let job: u64 = field(&words, "job")
                .ok_or("cancel needs job=")?
                .parse()
                .map_err(|_| "job= must be an integer".to_string())?;
            Ok(Command::Cancel { job })
        }
        "drain" => Ok(Command::Drain),
        "queue" => Ok(Command::Queue {
            json: words.get(1) == Some(&"json"),
        }),
        "report" => Ok(Command::Report),
        "metrics" => Ok(Command::Metrics),
        "alerts" => Ok(Command::Alerts),
        "health" => Ok(Command::Health),
        "log" => Ok(Command::Log),
        "shutdown" => Ok(Command::Shutdown),
        other => Err(format!("unknown verb {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_submit_with_and_without_prio() {
        assert_eq!(
            parse_command("submit tenant=acme shape=wide tasks=24"),
            Ok(Command::Submit {
                tenant: "acme".into(),
                shape: JobShape::Wide,
                tasks: 24,
                prio: 0
            })
        );
        assert_eq!(
            parse_command("submit tenant=beta shape=tree tasks=9 prio=5"),
            Ok(Command::Submit {
                tenant: "beta".into(),
                shape: JobShape::Tree,
                tasks: 9,
                prio: 5
            })
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_command("").is_err());
        assert!(parse_command("submit tenant=a shape=ring tasks=4").is_err());
        assert!(parse_command("submit tenant=a tasks=4").is_err());
        assert!(parse_command("cancel").is_err());
        assert!(parse_command("frobnicate").is_err());
    }

    #[test]
    fn parses_control_verbs() {
        assert_eq!(parse_command("queue"), Ok(Command::Queue { json: false }));
        assert_eq!(
            parse_command("queue json"),
            Ok(Command::Queue { json: true })
        );
        assert_eq!(
            parse_command("cancel job=3"),
            Ok(Command::Cancel { job: 3 })
        );
        assert_eq!(parse_command("drain"), Ok(Command::Drain));
        assert_eq!(parse_command("alerts"), Ok(Command::Alerts));
        assert_eq!(parse_command("shutdown"), Ok(Command::Shutdown));
    }

    #[test]
    fn reject_reason_labels_round_trip() {
        for r in RejectReason::ALL {
            assert_eq!(RejectReason::parse(r.label()), Some(r));
        }
        assert_eq!(RejectReason::parse("nope"), None);
    }

    #[test]
    fn tenant_name_charset_is_enforced() {
        assert!(valid_tenant_name("acme-prod_2"));
        assert!(!valid_tenant_name(""));
        assert!(!valid_tenant_name("a b"));
        assert!(!valid_tenant_name("quote\"y"));
    }
}
