//! The workflow executor: a discrete-event simulation of PyCOMPSs-style
//! task execution on a heterogeneous CPU-GPU cluster.
//!
//! Each task moves through the processing stages of Fig. 4:
//!
//! ```text
//! dispatch -> deserialize inputs -> serial fraction ->
//!   CPU run:   parallel fraction on the held core
//!   GPU run:   H2D transfer -> GPU kernel -> D2H transfer
//! -> serialize outputs -> release resources
//! ```
//!
//! Resource contention is modelled with `gpuflow-sim` primitives: CPU
//! cores and GPU devices as counted slots per node, the PCIe bus and the
//! node-local disks as fair-share links, and the shared file system as a
//! grouped link (per-node NICs in front of the GPFS backend). A per-node
//! object cache lets well-placed tasks skip deserialization, which is the
//! mechanism coupling scheduling policy and storage architecture.

use std::collections::BTreeMap;
use std::fmt;

use fxhash::{FxHashMap, FxHashSet};

use gpuflow_chaos::{mix64, FaultPlan, RecoveryPolicy};
use gpuflow_cluster::{ClusterSpec, ProcessorKind, StorageArchitecture};
use gpuflow_sim::{Engine, FairShareLink, FlowId, GroupedLink, Jitter, SimDuration, SimTime};

use crate::cache::BlockCache;
use crate::data::{DataId, DataVersion};
use crate::jobs::JobSchedule;
use crate::metrics::{RunMetrics, TaskRecord};
use crate::scheduler::{decision_overhead, place, NodeAvail, ReadyQueue, SchedulingPolicy};
use crate::task::TaskId;
use crate::telemetry::{
    CandidateScore, EventBus, LinkKind, MetricsHub, SchedulerDecision, TelemetryEvent, TelemetryLog,
};
use crate::trace::{Trace, TraceState};
use crate::workflow::{DagShape, Workflow};

/// Configuration of one run — the factor combination of Table 1.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The cluster.
    pub cluster: ClusterSpec,
    /// Processor type factor: where parallel fractions execute.
    pub processor: ProcessorKind,
    /// Storage architecture factor.
    pub storage: StorageArchitecture,
    /// Scheduling policy factor.
    pub policy: SchedulingPolicy,
    /// Seed for execution jitter.
    pub seed: u64,
    /// Relative amplitude of run-to-run noise on compute/(de)ser stages.
    pub jitter_sigma: f64,
    /// Collect a Paraver-like trace (costs memory on big runs).
    pub collect_trace: bool,
    /// Collect the full structured telemetry stream (task lifecycle,
    /// scheduler decisions, cache activity, transfers, gauges) into
    /// [`RunReport::telemetry`]. Costs memory on big runs; when both
    /// this and `collect_trace` are off the event bus is inert and the
    /// run pays one branch per emission site.
    pub collect_telemetry: bool,
    /// Fraction of node RAM used as the worker object cache.
    pub cache_fraction: f64,
    /// CPU cores assigned to each CPU task's parallel fraction. The
    /// paper's frameworks recommend 1 (no oversubscription, §3.3) and
    /// leave multi-threaded CPU tasks as future work; values > 1 trade
    /// task-level parallelism for intra-task thread parallelism with
    /// sub-linear scaling (see [`RunConfig::with_cpu_threads`]).
    pub cpu_threads_per_task: usize,
    /// Deterministic fault plan injected into the run. `None` (or an
    /// empty plan) leaves the executor byte-identical to a fault-free
    /// run; any non-empty plan turns on the recovery machinery.
    pub faults: Option<FaultPlan>,
    /// Recovery policy applied when `faults` is active: retry budget,
    /// virtual-time backoff, alternate-node resubmission, GPU-to-CPU
    /// fallback.
    pub recovery: RecoveryPolicy,
    /// Live metrics hub: when set, every telemetry event is folded into
    /// this shared [`MetricsHub`] as it is emitted, so another thread
    /// (e.g. `gpuflow serve`) can scrape a current snapshot while the
    /// run executes. Independent of `collect_telemetry`.
    pub live_metrics: Option<MetricsHub>,
    /// Submission times, virtual seconds, for root tasks (tasks with no
    /// dependencies): `(task, at_secs)`. Listed tasks enter the ready
    /// queue at their submission instant instead of time zero —
    /// the replay frontend's arrival process. Empty = all roots at 0.
    pub arrivals: Vec<(TaskId, f64)>,
    /// Multi-tenant job gate (see [`JobSchedule`]): jobs become
    /// *eligible* at their arrival instants but are released into a
    /// bounded in-flight window under stride fair-share + priority —
    /// the `gpuflowd` admission path. Mutually exclusive with
    /// [`RunConfig::arrivals`].
    pub jobs: Option<JobSchedule>,
}

impl RunConfig {
    /// A config with the defaults used throughout the paper's experiments:
    /// shared disk, generation-order scheduling, ±2 % jitter.
    pub fn new(cluster: ClusterSpec, processor: ProcessorKind) -> Self {
        RunConfig {
            cluster,
            processor,
            storage: StorageArchitecture::SharedDisk,
            policy: SchedulingPolicy::GenerationOrder,
            seed: 0xC0FFEE,
            jitter_sigma: 0.02,
            collect_trace: false,
            collect_telemetry: false,
            cache_fraction: 0.5,
            cpu_threads_per_task: 1,
            faults: None,
            recovery: RecoveryPolicy::default(),
            live_metrics: None,
            arrivals: Vec::new(),
            jobs: None,
        }
    }

    /// Marginal efficiency of each extra CPU thread inside a task
    /// (synchronisation and memory-bandwidth sharing eat into scaling).
    pub const THREAD_MARGINAL_EFFICIENCY: f64 = 0.85;

    /// Sets the CPU threads per task (the §3.3 future-work experiment).
    ///
    /// # Panics
    /// Panics when `threads` is zero.
    pub fn with_cpu_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "tasks need at least one thread");
        self.cpu_threads_per_task = threads;
        self
    }

    /// Speedup of a `threads`-way parallel fraction over one thread.
    pub fn thread_speedup(threads: usize) -> f64 {
        1.0 + Self::THREAD_MARGINAL_EFFICIENCY * (threads.saturating_sub(1)) as f64
    }

    /// Sets the storage architecture.
    pub fn with_storage(mut self, storage: StorageArchitecture) -> Self {
        self.storage = storage;
        self
    }

    /// Sets the scheduling policy.
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the jitter seed (repeat runs with different seeds).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables trace collection.
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// Enables structured telemetry collection (see
    /// [`RunReport::telemetry`]).
    pub fn with_telemetry(mut self) -> Self {
        self.collect_telemetry = true;
        self
    }

    /// Injects a deterministic fault plan (see [`FaultPlan`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the recovery policy applied under fault injection.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Attaches a live metrics hub (see [`RunConfig::live_metrics`]).
    pub fn with_live_metrics(mut self, hub: MetricsHub) -> Self {
        self.live_metrics = Some(hub);
        self
    }

    /// Sets submission times for root tasks (see
    /// [`RunConfig::arrivals`]).
    pub fn with_arrivals(mut self, arrivals: Vec<(TaskId, f64)>) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Gates whole jobs behind a fair-share in-flight window (see
    /// [`RunConfig::jobs`]).
    pub fn with_jobs(mut self, jobs: JobSchedule) -> Self {
        self.jobs = Some(jobs);
        self
    }
}

/// Why a run failed — the failure modes the paper reports in its charts.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// A task footprint exceeded GPU device memory ("GPU OOM" in
    /// Figs. 7-10).
    GpuOom {
        /// Task type that overflowed.
        task_type: String,
        /// Bytes required on the device.
        required: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// A task's working set exceeded node RAM ("CPU OOM" in Fig. 9a).
    HostOom {
        /// Task type that overflowed.
        task_type: String,
        /// Bytes required on the host.
        required: u64,
        /// Node RAM.
        capacity: u64,
    },
    /// The executor stalled with tasks pending (an internal invariant
    /// violation, never expected).
    Deadlock {
        /// Tasks completed before the stall.
        completed: usize,
        /// Total tasks.
        total: usize,
    },
    /// A task exhausted its retry budget under fault injection.
    TaskFailed {
        /// Task type that kept failing.
        task_type: String,
        /// Attempts made (initial dispatch plus retries).
        attempts: u32,
    },
    /// The injected faults left the workflow unable to finish (e.g. all
    /// nodes holding a required resource are permanently down).
    Unrecoverable {
        /// Tasks in a completed state when the run stalled.
        completed: usize,
        /// Total tasks.
        total: usize,
    },
    /// The cluster specification is inconsistent.
    InvalidConfig(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::GpuOom {
                task_type,
                required,
                capacity,
            } => write!(
                f,
                "GPU OOM: task '{task_type}' needs {required} B on a {capacity} B device"
            ),
            RunError::HostOom {
                task_type,
                required,
                capacity,
            } => write!(
                f,
                "host OOM: task '{task_type}' needs {required} B on a {capacity} B node"
            ),
            RunError::Deadlock { completed, total } => {
                write!(f, "executor deadlock after {completed}/{total} tasks")
            }
            RunError::TaskFailed {
                task_type,
                attempts,
            } => write!(
                f,
                "task '{task_type}' failed permanently after {attempts} attempts"
            ),
            RunError::Unrecoverable { completed, total } => {
                write!(
                    f,
                    "injected faults are unrecoverable: stalled at {completed}/{total} tasks"
                )
            }
            RunError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Counters of fault-injection and recovery activity during one run.
/// All zero when the run had no fault plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Fault-plan entries armed for this run (crashes, GPU failures,
    /// stragglers, link degradations, transient-rate rules).
    pub faults_injected: usize,
    /// Task attempts killed by sampled transient failures.
    pub transient_failures: usize,
    /// Task attempts killed by node crashes or GPU failures.
    pub crash_failures: usize,
    /// Retries scheduled after transient failures (backoff waits).
    pub retries: usize,
    /// Attempts resubmitted after losing their node or device.
    pub resubmissions: usize,
    /// Completed tasks re-executed to regenerate lost data (lineage
    /// recovery).
    pub regenerated_tasks: usize,
    /// GPU-capable tasks degraded to CPU execution.
    pub gpu_fallbacks: usize,
    /// Cache entries and local-disk block versions destroyed by crashes.
    pub blocks_invalidated: u64,
}

/// The outcome of a successful run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Aggregated metrics (§4.2).
    pub metrics: RunMetrics,
    /// Raw per-task records.
    pub records: Vec<TaskRecord>,
    /// Paraver-like trace (empty unless requested).
    pub trace: Trace,
    /// Structured telemetry stream (empty unless
    /// [`RunConfig::collect_telemetry`] is set).
    pub telemetry: TelemetryLog,
    /// DAG shape of the executed workflow.
    pub shape: DagShape,
    /// Processor factor of the run.
    pub processor: ProcessorKind,
    /// Storage factor of the run.
    pub storage: StorageArchitecture,
    /// Policy factor of the run.
    pub policy: SchedulingPolicy,
    /// Fault-injection and recovery activity (all zero without a plan).
    pub recovery: RecoveryStats,
    /// Deterministic lineage fingerprint of the workflow's terminal
    /// outputs (versions written but never consumed). A faulted run
    /// that recovered correctly produces the same fingerprint as a
    /// fault-free run of the same workflow.
    pub output_fingerprint: u64,
}

impl RunReport {
    /// Wall-clock makespan in seconds.
    pub fn makespan(&self) -> f64 {
        self.metrics.makespan
    }

    /// Validates the executor's bookkeeping against the workflow and the
    /// cluster: record completeness, dependency ordering, per-node
    /// concurrency caps, metric decomposition, and cache accounting.
    /// Intended for tests (property suites call this after every run).
    ///
    /// Under fault injection each record describes a task's *first
    /// successful* attempt (failed attempts and lineage re-executions
    /// are not recorded), so there is still exactly one record per task,
    /// dependency ordering holds between recorded attempts, and the
    /// concurrency sweep bounds only successfully recorded work.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(
        &self,
        workflow: &Workflow,
        cluster: &ClusterSpec,
    ) -> Result<(), String> {
        if self.records.len() != workflow.tasks().len() {
            return Err(format!(
                "{} records for {} tasks",
                self.records.len(),
                workflow.tasks().len()
            ));
        }
        let mut seen = vec![false; workflow.tasks().len()];
        let by_task: FxHashMap<TaskId, &TaskRecord> =
            self.records.iter().map(|r| (r.task, r)).collect();
        for r in &self.records {
            let idx = r.task.0 as usize;
            if idx >= seen.len() || seen[idx] {
                return Err(format!("duplicate or unknown record for {}", r.task));
            }
            seen[idx] = true;
            if r.end < r.start {
                return Err(format!("{} ends before it starts", r.task));
            }
            // User code decomposes exactly into its fractions.
            if r.user_code() != r.serial + r.parallel + r.comm {
                return Err(format!("{}: user code does not decompose", r.task));
            }
            // Cache lookups cover exactly the declared reads.
            let reads = workflow.task(r.task).reads().count() as u32;
            if r.cache_hits + r.cache_misses != reads {
                return Err(format!(
                    "{}: {} cache lookups for {} reads",
                    r.task,
                    r.cache_hits + r.cache_misses,
                    reads
                ));
            }
            // Dependencies finished before this task started.
            for p in workflow.predecessors(r.task) {
                let pred = by_task
                    .get(p)
                    .ok_or_else(|| format!("missing record {p}"))?;
                if pred.end > r.start {
                    return Err(format!("{p} overlaps its dependent {}", r.task));
                }
            }
            // The makespan covers everything.
            if r.end.as_secs_f64() > self.makespan() + 1e-9 {
                return Err(format!("{} ends after the makespan", r.task));
            }
        }
        // Concurrency sweep per node: held cores <= cores, GPU
        // records <= devices. Multi-threaded CPU tasks weigh in with
        // every core they hold.
        // BTreeMap so a violation is always attributed to the lowest
        // offending node, independent of hash order.
        let mut events: BTreeMap<usize, Vec<(u64, i32, i32)>> = BTreeMap::new();
        for r in &self.records {
            let (dc, dg) = match r.processor {
                ProcessorKind::Cpu => (r.cores.max(1) as i32, 0),
                ProcessorKind::Gpu => (1, 1), // GPU task holds a core too
            };
            let e = events.entry(r.node).or_default();
            e.push((r.start.as_nanos(), dc, dg));
            e.push((r.end.as_nanos(), -dc, -dg));
        }
        for (node, mut evs) in events {
            evs.sort();
            let (mut cpu, mut gpu) = (0i32, 0i32);
            for (_, dc, dg) in evs {
                cpu += dc;
                gpu += dg;
                if cpu as usize > cluster.cores_of(node) {
                    return Err(format!("node {node}: core concurrency exceeded"));
                }
                if gpu as usize > cluster.gpus_of(node) {
                    return Err(format!("node {node}: GPU concurrency exceeded"));
                }
            }
        }
        // Recovery accounting: every retry follows a transient failure.
        if self.recovery.retries > self.recovery.transient_failures {
            return Err(format!(
                "{} retries for {} transient failures",
                self.recovery.retries, self.recovery.transient_failures
            ));
        }
        Ok(())
    }
}

/// Runs `workflow` under `config`.
///
/// # Errors
/// Fails on OOM (the paper's charts mark these configurations) or on an
/// invalid cluster spec.
pub fn run(workflow: &Workflow, config: &RunConfig) -> Result<RunReport, RunError> {
    config
        .cluster
        .validate()
        .map_err(|errs| RunError::InvalidConfig(errs.join("; ")))?;
    // A task needing more threads than any node has cores could never be
    // placed; fail fast instead of deadlocking.
    let max_cores = (0..config.cluster.nodes)
        .map(|n| config.cluster.cores_of(n))
        .max()
        .unwrap_or(0);
    if config.cpu_threads_per_task > max_cores {
        return Err(RunError::InvalidConfig(format!(
            "cpu_threads_per_task ({}) exceeds the largest node's {} cores",
            config.cpu_threads_per_task, max_cores
        )));
    }
    if !(0.0..1.0).contains(&config.jitter_sigma) {
        return Err(RunError::InvalidConfig(format!(
            "jitter_sigma must be in [0, 1), got {}",
            config.jitter_sigma
        )));
    }
    if !(0.0..=1.0).contains(&config.cache_fraction) {
        return Err(RunError::InvalidConfig(format!(
            "cache_fraction must be in [0, 1], got {}",
            config.cache_fraction
        )));
    }
    if let Some(plan) = &config.faults {
        plan.validate(config.cluster.nodes)
            .map_err(|errs| RunError::InvalidConfig(errs.join("; ")))?;
    }
    for &(tid, at_secs) in &config.arrivals {
        let idx = tid.0 as usize;
        if idx >= workflow.tasks().len() {
            return Err(RunError::InvalidConfig(format!(
                "arrival for unknown task {}",
                tid.0
            )));
        }
        if !workflow.predecessors(tid).is_empty() {
            return Err(RunError::InvalidConfig(format!(
                "arrival for task {} which has dependencies; only root tasks can have submission times",
                tid.0
            )));
        }
        if !at_secs.is_finite() || at_secs < 0.0 {
            return Err(RunError::InvalidConfig(format!(
                "arrival time for task {} must be finite and non-negative, got {at_secs}",
                tid.0
            )));
        }
    }
    if let Some(sched) = &config.jobs {
        validate_job_schedule(workflow, config, sched)?;
    }
    let mut exec = Exec::new(workflow, config);
    exec.schedule_faults();
    exec.seed_ready();
    exec.try_start_master();
    while let Some(ev) = exec.engine.pop() {
        let payload = ev.payload;
        exec.handle(payload)?;
        if let Some(e) = exec.fatal.take() {
            return Err(e);
        }
    }
    exec.finish()
}

/// Checks a [`JobSchedule`] against the workflow: sane window and
/// weights, in-range non-overlapping task ranges, no cross-job
/// dependencies, and every dependency-free task of a job's range listed
/// among its roots (an unlisted one would enter the ready queue at time
/// zero and bypass the gate, corrupting the window accounting).
fn validate_job_schedule(
    workflow: &Workflow,
    config: &RunConfig,
    sched: &JobSchedule,
) -> Result<(), RunError> {
    let bad = |msg: String| Err(RunError::InvalidConfig(msg));
    if !config.arrivals.is_empty() {
        return bad("arrivals and a job schedule are mutually exclusive".into());
    }
    if sched.max_inflight == 0 {
        return bad("job schedule needs max_inflight >= 1".into());
    }
    if sched.tenants.is_empty() {
        return bad("job schedule needs at least one tenant".into());
    }
    if let Some(t) = sched.tenants.iter().find(|t| t.weight == 0) {
        return bad(format!("tenant {} has zero fair-share weight", t.name));
    }
    let n_tasks = workflow.tasks().len() as u32;
    for (j, job) in sched.jobs.iter().enumerate() {
        if job.tenant >= sched.tenants.len() {
            return bad(format!("job {j} names unknown tenant {}", job.tenant));
        }
        if job.task_lo > job.task_hi || job.task_hi >= n_tasks {
            return bad(format!(
                "job {j} has task range {}..={} outside the workflow's {n_tasks} tasks",
                job.task_lo, job.task_hi
            ));
        }
        if !job.arrival_secs.is_finite() || job.arrival_secs < 0.0 {
            return bad(format!(
                "job {j} arrival must be finite and non-negative, got {}",
                job.arrival_secs
            ));
        }
        let roots: FxHashSet<u32> = job.roots.iter().map(|t| t.0).collect();
        for &r in &job.roots {
            if !(job.task_lo..=job.task_hi).contains(&r.0) {
                return bad(format!("job {j} root {} outside its task range", r.0));
            }
        }
        for tid in job.task_lo..=job.task_hi {
            let preds = workflow.predecessors(TaskId(tid));
            if preds.is_empty() && !roots.contains(&tid) {
                return bad(format!(
                    "job {j}: dependency-free task {tid} is not listed as a root"
                ));
            }
            if let Some(p) = preds
                .iter()
                .find(|p| !(job.task_lo..=job.task_hi).contains(&p.0))
            {
                return bad(format!(
                    "job {j}: task {tid} depends on task {} of another job",
                    p.0
                ));
            }
        }
    }
    let mut ranges: Vec<(u32, u32)> = sched.jobs.iter().map(|j| (j.task_lo, j.task_hi)).collect();
    ranges.sort_unstable();
    if let Some(w) = ranges.windows(2).find(|w| w[1].0 <= w[0].1) {
        return bad(format!(
            "job task ranges {}..={} and {}..={} overlap",
            w[0].0, w[0].1, w[1].0, w[1].1
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Internal machinery
// ---------------------------------------------------------------------

/// Sentinel in the dense `home` table: the block has no disk home (yet).
const NO_HOME: usize = usize::MAX;

/// Recycled `TaskRun` buffers — `(inputs, outputs, core_ids)` — so the
/// steady-state dispatch path reuses capacity instead of allocating
/// three fresh vectors per task.
type RunBuffers = (Vec<(DataVersion, u64)>, Vec<(DataVersion, u64)>, Vec<u16>);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LinkKey {
    Pcie(usize),
    Disk(usize),
    Shared,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    MasterDone,
    /// Stage delay for a task attempt; the attempt tag lets delays from
    /// an aborted attempt be recognised as stale and dropped.
    TaskDelay(TaskId, u32),
    LinkTick(LinkKey, u64),
    /// A discrete fault from the plan (index into the fault timeline).
    Fault(usize),
    /// End of a transient-failure backoff window.
    Retry(TaskId),
    /// Submission instant of a root task with a configured arrival time
    /// (see [`RunConfig::arrivals`]): the task enters the ready queue.
    Release(TaskId),
    /// Eligibility instant of a gated job (index into
    /// [`JobSchedule::jobs`]): the job may now be released into the
    /// fair-share window when a slot frees up.
    JobArrive(usize),
}

/// Runtime state of the [`JobSchedule`] gate (see
/// [`RunConfig::jobs`]): which jobs are eligible/released, how much of
/// each is still running, and the per-tenant stride accounting.
#[derive(Debug)]
struct JobGate {
    /// Job reached its arrival instant (eligible for release).
    arrived: Vec<bool>,
    /// Job's roots have been released into the ready queue.
    released: Vec<bool>,
    /// Unfinished tasks per job; 0 after release means the job is done
    /// and its window slot frees up.
    remaining: Vec<usize>,
    /// Released-but-unfinished jobs (bounded by `max_inflight`).
    inflight: usize,
    /// Released-but-unfinished jobs per tenant.
    tenant_inflight: Vec<usize>,
    /// Stride accounting: tasks released per tenant. The next slot goes
    /// to the eligible job minimising `consumed / weight`, compared
    /// exactly by cross-multiplication.
    consumed: Vec<u64>,
    /// `(task_lo, task_hi, job index)`, sorted, for task-to-job lookup
    /// on completion.
    ranges: Vec<(u32, u32, usize)>,
}

/// A discrete fault materialised from the plan at a fixed virtual time.
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    Crash { node: usize },
    Rejoin { node: usize },
    GpuFail { node: usize },
}

#[derive(Debug, Clone, Copy)]
enum Stage {
    ReadLatency { key: DataVersion, bytes: u64 },
    ReadFlow { key: DataVersion, bytes: u64 },
    Decode { key: DataVersion, bytes: u64 },
    SerialFrac,
    H2dLatency,
    H2dFlow,
    Kernel,
    D2hLatency,
    D2hFlow,
    CpuCompute,
    Encode { key: DataVersion, bytes: u64 },
    WriteLatency { key: DataVersion, bytes: u64 },
    WriteFlow { key: DataVersion, bytes: u64 },
}

struct TaskRun {
    node: usize,
    stage: Stage,
    on_gpu: bool,
    cores_held: usize,
    core_ids: Vec<u16>,
    /// GPU device identity held for the task's lifetime, if any.
    gpu_id: Option<u16>,
    inputs: Vec<(DataVersion, u64)>, // pending, reversed (pop from back)
    outputs: Vec<(DataVersion, u64)>, // pending, reversed
    in_bytes: u64,
    out_bytes: u64,
    host_footprint: u64,
    anchor: SimTime,
    /// Start of the in-flight link flow (for transfer telemetry).
    flow_start: SimTime,
    /// Lineage hash folded over this attempt's input versions at
    /// dispatch time (inputs are guaranteed available then, even if a
    /// later crash invalidates them mid-run).
    in_hash: u64,
    rec: TaskRecord,
}

struct Exec<'a> {
    wf: &'a Workflow,
    cfg: &'a RunConfig,
    engine: Engine<Ev>,
    // Resources.
    free_cores: Vec<usize>,
    /// Free core identities per node (for trace lanes).
    core_stacks: Vec<Vec<u16>>,
    free_gpus: Vec<usize>,
    /// Free GPU device identities per node (for telemetry lanes).
    gpu_stacks: Vec<Vec<u16>>,
    peak_cores: Vec<usize>,
    ram_used: Vec<u64>,
    peak_ram: u64,
    pcie: Vec<FairShareLink>,
    disks: Vec<FairShareLink>,
    shared: GroupedLink,
    flow_task: FxHashMap<(LinkKey, FlowId), TaskId>,
    // Scheduling.
    /// HEFT-style upward rank per task (estimated seconds on the
    /// critical path to the sink), used by the CriticalPath policy.
    upward_rank: Vec<f64>,
    rr_cursor: usize,
    master_busy: bool,
    pending_assign: Option<(TaskId, usize)>,
    sched_overhead: f64,
    ready: ReadyQueue,
    deps_left: Vec<usize>,
    /// Scratch for node scoring, reused across decisions.
    avail_scratch: Vec<NodeAvail>,
    /// Scratch for the chosen task's resolved reads `(version, bytes)`,
    /// reused across decisions.
    reads_scratch: Vec<(DataVersion, u64)>,
    // Task state.
    runs: Vec<Option<TaskRun>>,
    records: Vec<TaskRecord>,
    /// Freed [`TaskRun`] buffers, recycled by the next dispatch.
    run_pool: Vec<RunBuffers>,
    done: usize,
    // Data placement & caching.
    caches: Vec<BlockCache>,
    /// Home node per `DataId` (dense, indexed by id), `NO_HOME` where a
    /// block has no disk home yet. Only meaningful under local disks.
    home: Vec<usize>,
    jitter: Jitter,
    /// The telemetry bus. Stage events double as the trace source, so
    /// the bus runs whenever either collection is on; `finish` then
    /// derives the trace and/or the log from one event stream.
    bus: EventBus,
    gpu_kernel_seconds: f64,
    core_held_seconds: f64,
    gpu_held_seconds: f64,
    // Fault injection & recovery. `faults` is `None` when the config has
    // no plan *or* an empty one, so an empty plan is a pure observer.
    faults: Option<&'a FaultPlan>,
    /// Discrete faults in deterministic firing order.
    fault_timeline: Vec<(SimTime, FaultAction)>,
    /// Dispatch count per task (1-based after first dispatch).
    attempts: Vec<u32>,
    /// Transient failures per task, charged against the retry budget.
    transient_fails: Vec<u32>,
    /// Node of the task's last failed attempt (alternate-node
    /// resubmission steers away from it when possible).
    last_failed_node: Vec<Option<usize>>,
    /// Task sits out a backoff window and must not be scheduled.
    in_backoff: Vec<bool>,
    /// Root tasks with a future submission time: invisible to the
    /// scheduler (and to recovery re-admission) until released.
    unarrived: FxHashSet<u32>,
    /// The job gate, when [`RunConfig::jobs`] is set.
    gate: Option<JobGate>,
    /// Task currently has a valid completed output.
    completed: Vec<bool>,
    /// Task's first successful attempt has been recorded.
    recorded: Vec<bool>,
    node_up: Vec<bool>,
    /// Permanently failed GPU devices per node.
    gpus_dead: Vec<usize>,
    /// Home node of every *written* (non-durable) version; shared-disk
    /// writes are durable and never appear here.
    version_home: FxHashMap<DataVersion, usize>,
    /// Producing task of every written version.
    producer: FxHashMap<DataVersion, TaskId>,
    /// Versions written but never read by any task, sorted — the
    /// fingerprint domain.
    terminal: Vec<DataVersion>,
    /// Lineage hash of every currently available produced version.
    data_hash: FxHashMap<DataVersion, u64>,
    stats: RecoveryStats,
    /// Fatal error raised deep inside the stage machinery; the run loop
    /// surfaces it after the current event.
    fatal: Option<RunError>,
}

impl<'a> Exec<'a> {
    fn new(wf: &'a Workflow, cfg: &'a RunConfig) -> Self {
        let c = &cfg.cluster;
        let nodes = c.nodes;
        let cache_bytes = (c.node.ram_bytes as f64 * cfg.cache_fraction) as u64;
        let mut home = vec![NO_HOME; wf.registry().len()];
        // Initial dataset blocks round-robin over node disks (local-disk
        // architecture); with shared disk the home node is irrelevant.
        let mut rr = 0usize;
        for obj in wf.registry().iter() {
            if obj.initial {
                home[obj.id.0 as usize] = rr % nodes;
                rr += 1;
            }
        }
        // Upward ranks: est(t) + max over successors (reverse topological
        // pass; tasks are indexed in topological order by construction).
        let cpu = c.node.cpu;
        let mut upward_rank = vec![0.0f64; wf.tasks().len()];
        for idx in (0..wf.tasks().len()).rev() {
            let t = &wf.tasks()[idx];
            let est =
                cpu.time(&t.cost.serial).as_secs_f64() + cpu.time(&t.cost.parallel).as_secs_f64();
            let succ_max = wf
                .successors(t.id)
                .iter()
                .map(|s| upward_rank[s.0 as usize])
                .fold(0.0, f64::max);
            upward_rank[idx] = est + succ_max;
        }
        // Lineage bookkeeping: who writes each version, and which
        // versions are terminal (written, never consumed).
        let mut producer: FxHashMap<DataVersion, TaskId> = FxHashMap::default();
        let mut consumed: FxHashSet<DataVersion> = FxHashSet::default();
        for t in wf.tasks() {
            for (id, version) in t.reads() {
                consumed.insert(DataVersion { id, version });
            }
            for (id, version) in t.writes() {
                producer.insert(DataVersion { id, version }, t.id);
            }
        }
        let mut terminal: Vec<DataVersion> = producer
            .keys()
            .filter(|v| !consumed.contains(v))
            .copied()
            .collect();
        terminal.sort_by_key(|v| (v.id.0, v.version));
        // An empty plan must be indistinguishable from no plan.
        let faults = cfg.faults.as_ref().filter(|p| !p.is_empty());
        let mut fault_timeline: Vec<(SimTime, FaultAction)> = Vec::new();
        if let Some(plan) = faults {
            // (time, class, node) gives a total deterministic order;
            // same-time events then fire in schedule order (FIFO).
            let mut timed: Vec<(f64, u8, usize, FaultAction)> = Vec::new();
            for cr in &plan.node_crashes {
                timed.push((cr.at_secs, 0, cr.node, FaultAction::Crash { node: cr.node }));
                if let Some(rejoin) = cr.rejoin_after_secs {
                    timed.push((
                        cr.at_secs + rejoin,
                        2,
                        cr.node,
                        FaultAction::Rejoin { node: cr.node },
                    ));
                }
            }
            for g in &plan.gpu_failures {
                timed.push((g.at_secs, 1, g.node, FaultAction::GpuFail { node: g.node }));
            }
            timed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
            fault_timeline = timed
                .into_iter()
                .map(|(at, _, _, action)| (SimTime::ZERO + SimDuration::from_secs_f64(at), action))
                .collect();
        }
        let n_tasks = wf.tasks().len();
        // The event population is bounded by resources, not tasks: one
        // delay per running attempt (≤ cores), one tick per link, the
        // master, and the armed fault timeline.
        let pending_bound =
            c.total_cpu_cores() + c.total_gpus() + 2 * nodes + fault_timeline.len() + 8;
        Exec {
            wf,
            cfg,
            engine: Engine::with_capacity(pending_bound),
            free_cores: (0..nodes).map(|n| c.cores_of(n)).collect(),
            core_stacks: (0..nodes)
                .map(|n| (0..c.cores_of(n) as u16).rev().collect())
                .collect(),
            free_gpus: (0..nodes).map(|n| c.gpus_of(n)).collect(),
            gpu_stacks: (0..nodes)
                .map(|n| (0..c.gpus_of(n) as u16).rev().collect())
                .collect(),
            peak_cores: vec![0; nodes],
            ram_used: vec![0; nodes],
            peak_ram: 0,
            pcie: (0..nodes)
                .map(|_| FairShareLink::new(c.node.pcie.bandwidth_bps))
                .collect(),
            disks: (0..nodes)
                .map(|_| FairShareLink::new(c.node.local_disk.bandwidth_bps))
                .collect(),
            shared: GroupedLink::new(c.shared_disk.bandwidth_bps, nodes, c.network.nic_bps),
            flow_task: FxHashMap::default(),
            upward_rank,
            rr_cursor: 0,
            master_busy: false,
            pending_assign: None,
            sched_overhead: 0.0,
            ready: ReadyQueue::new(cfg.policy),
            deps_left: wf
                .tasks()
                .iter()
                .map(|t| wf.predecessors(t.id).len())
                .collect(),
            avail_scratch: Vec::with_capacity(nodes),
            reads_scratch: Vec::new(),
            runs: wf.tasks().iter().map(|_| None).collect(),
            records: Vec::with_capacity(wf.tasks().len()),
            done: 0,
            caches: (0..nodes).map(|_| BlockCache::new(cache_bytes)).collect(),
            home,
            jitter: Jitter::new(cfg.seed, cfg.jitter_sigma),
            bus: {
                let bus = EventBus::new(cfg.collect_trace || cfg.collect_telemetry);
                match &cfg.live_metrics {
                    Some(hub) => bus.with_live(hub.clone()),
                    None => bus,
                }
            },
            gpu_kernel_seconds: 0.0,
            core_held_seconds: 0.0,
            gpu_held_seconds: 0.0,
            faults,
            fault_timeline,
            attempts: vec![0; n_tasks],
            transient_fails: vec![0; n_tasks],
            last_failed_node: vec![None; n_tasks],
            in_backoff: vec![false; n_tasks],
            unarrived: FxHashSet::default(),
            gate: cfg.jobs.as_ref().map(|sched| {
                let mut ranges: Vec<(u32, u32, usize)> = sched
                    .jobs
                    .iter()
                    .enumerate()
                    .map(|(j, job)| (job.task_lo, job.task_hi, j))
                    .collect();
                ranges.sort_unstable();
                JobGate {
                    arrived: vec![false; sched.jobs.len()],
                    released: vec![false; sched.jobs.len()],
                    remaining: sched.jobs.iter().map(|j| j.task_count() as usize).collect(),
                    inflight: 0,
                    tenant_inflight: vec![0; sched.tenants.len()],
                    consumed: vec![0; sched.tenants.len()],
                    ranges,
                }
            }),
            completed: vec![false; n_tasks],
            recorded: vec![false; n_tasks],
            node_up: vec![true; nodes],
            gpus_dead: vec![0; nodes],
            version_home: FxHashMap::default(),
            producer,
            terminal,
            data_hash: FxHashMap::default(),
            run_pool: Vec::new(),
            stats: RecoveryStats::default(),
            fatal: None,
        }
    }

    /// Arms the discrete fault timeline and announces every plan entry
    /// to the telemetry stream (continuous perturbations — stragglers,
    /// link degradation, transient rates — need no engine events; they
    /// are pure functions of the virtual clock).
    fn schedule_faults(&mut self) {
        for (idx, &(at, _)) in self.fault_timeline.iter().enumerate() {
            self.engine.schedule_at(at, Ev::Fault(idx));
        }
        let Some(plan) = self.faults else { return };
        self.stats.faults_injected = plan.node_crashes.len()
            + plan.gpu_failures.len()
            + plan.stragglers.len()
            + plan.link_degradations.len()
            + plan.task_failures.len();
        if self.bus.active() {
            for s in &plan.stragglers {
                self.bus.push(TelemetryEvent::FaultInjected {
                    at: SimTime::ZERO + SimDuration::from_secs_f64(s.at_secs),
                    node: Some(s.node),
                    what: "straggler",
                });
            }
            for l in &plan.link_degradations {
                self.bus.push(TelemetryEvent::FaultInjected {
                    at: SimTime::ZERO + SimDuration::from_secs_f64(l.at_secs),
                    node: None,
                    what: "link-degradation",
                });
            }
            for _ in &plan.task_failures {
                self.bus.push(TelemetryEvent::FaultInjected {
                    at: SimTime::ZERO,
                    node: None,
                    what: "transient-rate",
                });
            }
        }
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn seed_ready(&mut self) {
        // Roots with a configured future submission time are held back
        // and released by an engine event at their arrival instant.
        for &(tid, at_secs) in &self.cfg.arrivals {
            if at_secs > 0.0 {
                self.unarrived.insert(tid.0);
                self.engine.schedule_at(
                    SimTime::ZERO + SimDuration::from_secs_f64(at_secs),
                    Ev::Release(tid),
                );
            }
        }
        // Gated jobs: every root is held back — even at time zero — and
        // only the fair-share window releases it (see `job_fill_window`).
        if let Some(sched) = self.cfg.jobs.as_ref() {
            for (j, job) in sched.jobs.iter().enumerate() {
                for r in &job.roots {
                    self.unarrived.insert(r.0);
                }
                self.engine.schedule_at(
                    SimTime::ZERO + SimDuration::from_secs_f64(job.arrival_secs),
                    Ev::JobArrive(j),
                );
            }
        }
        for (i, &d) in self.deps_left.iter().enumerate() {
            if d == 0 && !self.unarrived.contains(&(i as u32)) {
                self.ready.insert(self.upward_rank[i], TaskId(i as u32));
                if self.bus.active() {
                    self.bus.push(TelemetryEvent::TaskReady {
                        at: SimTime::ZERO,
                        task: TaskId(i as u32),
                    });
                }
            }
        }
    }

    /// A held-back root task reached its submission time.
    fn on_release(&mut self, tid: TaskId) {
        if !self.unarrived.remove(&tid.0) {
            return;
        }
        self.ready.insert(self.upward_rank[tid.0 as usize], tid);
        if self.bus.active() {
            self.bus.push(TelemetryEvent::TaskReady {
                at: self.now(),
                task: tid,
            });
        }
        self.try_start_master();
    }

    /// A gated job reached its arrival instant: mark it eligible and
    /// try to release work into the window.
    fn on_job_arrive(&mut self, j: usize) {
        match self.gate.as_mut() {
            Some(gate) if !gate.arrived[j] => gate.arrived[j] = true,
            _ => return,
        }
        self.job_fill_window();
    }

    /// Releases eligible jobs into the in-flight window until it is
    /// full or no job qualifies. Pick rule (stride fair-share): the
    /// eligible job whose tenant minimises `consumed / weight` —
    /// compared exactly by cross-multiplication, no floats — with ties
    /// broken by priority (higher first), then submission order. A
    /// released job's roots leave `unarrived` and enter the ready
    /// queue at the current virtual instant.
    fn job_fill_window(&mut self) {
        // `cfg` is a copyable `&'a RunConfig`, so `sched` borrows the
        // config for `'a` rather than `self` — the loop below mutates
        // `self` freely.
        let cfg: &'a RunConfig = self.cfg;
        let Some(sched) = cfg.jobs.as_ref() else {
            return;
        };
        let now = self.now();
        loop {
            let gate = self.gate.as_ref().expect("gate exists with a schedule");
            if gate.inflight >= sched.max_inflight {
                break;
            }
            let mut best: Option<usize> = None;
            for (j, job) in sched.jobs.iter().enumerate() {
                if !gate.arrived[j] || gate.released[j] {
                    continue;
                }
                if sched.max_inflight_per_tenant > 0
                    && gate.tenant_inflight[job.tenant] >= sched.max_inflight_per_tenant
                {
                    continue;
                }
                best = match best {
                    None => Some(j),
                    Some(b) => {
                        let other = &sched.jobs[b];
                        let lhs = gate.consumed[job.tenant] as u128
                            * sched.tenants[other.tenant].weight as u128;
                        let rhs = gate.consumed[other.tenant] as u128
                            * sched.tenants[job.tenant].weight as u128;
                        let ord = lhs
                            .cmp(&rhs)
                            .then(other.priority.cmp(&job.priority))
                            .then(std::cmp::Ordering::Greater);
                        if ord == std::cmp::Ordering::Less {
                            Some(j)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            let Some(j) = best else { break };
            let job = &sched.jobs[j];
            let gate = self.gate.as_mut().expect("gate exists with a schedule");
            gate.released[j] = true;
            gate.inflight += 1;
            gate.tenant_inflight[job.tenant] += 1;
            gate.consumed[job.tenant] += job.task_count();
            for &r in &job.roots {
                if self.unarrived.remove(&r.0) {
                    self.ready.insert(self.upward_rank[r.0 as usize], r);
                    if self.bus.active() {
                        self.bus
                            .push(TelemetryEvent::TaskReady { at: now, task: r });
                    }
                }
            }
        }
        self.try_start_master();
    }

    /// Job-gate bookkeeping for a task's first successful completion:
    /// when the job's last task finishes, its window slot frees up and
    /// the window refills.
    fn job_task_done(&mut self, tid: TaskId) {
        let Some(gate) = self.gate.as_mut() else {
            return;
        };
        let Ok(idx) = gate.ranges.binary_search_by(|&(lo, hi, _)| {
            if hi < tid.0 {
                std::cmp::Ordering::Less
            } else if lo > tid.0 {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        }) else {
            return;
        };
        let j = gate.ranges[idx].2;
        gate.remaining[j] -= 1;
        if gate.remaining[j] == 0 {
            let sched = self.cfg.jobs.as_ref().expect("gate exists with a schedule");
            let tenant = sched.jobs[j].tenant;
            let gate = self.gate.as_mut().expect("gate exists with a schedule");
            gate.inflight -= 1;
            gate.tenant_inflight[tenant] -= 1;
            self.job_fill_window();
        }
    }

    /// Does this task offload its parallel fraction to a GPU in this run?
    fn is_gpu_task(&self, tid: TaskId) -> bool {
        let t = self.wf.task(tid);
        self.cfg.processor == ProcessorKind::Gpu && !t.cpu_only && t.cost.parallel.flops > 0.0
    }

    /// Host cores a task occupies: GPU tasks and serial tasks hold one;
    /// CPU tasks with a parallel fraction hold the configured thread
    /// count.
    fn cores_needed(&self, tid: TaskId) -> usize {
        let t = self.wf.task(tid);
        if self.is_gpu_task(tid) || t.cost.parallel.flops <= 0.0 {
            1
        } else {
            self.cfg.cpu_threads_per_task
        }
    }

    /// GPU devices on `node` that have not permanently failed.
    fn alive_gpus(&self, node: usize) -> usize {
        self.cfg.cluster.gpus_of(node) - self.gpus_dead[node]
    }

    /// Schedules a stage delay tagged with the task's current attempt,
    /// so delays outliving an aborted attempt are dropped as stale.
    fn delay(&mut self, d: SimDuration, tid: TaskId) {
        let att = self.attempts[tid.0 as usize];
        self.engine.schedule_after(d, Ev::TaskDelay(tid, att));
    }

    /// Applies the active straggler slowdown of `node` to a stage
    /// duration. A factor of exactly 1.0 (or no plan) returns `d`
    /// untouched, keeping fault-free runs byte-identical.
    fn stretch(&self, node: usize, d: SimDuration) -> SimDuration {
        if let Some(plan) = self.faults {
            let f = plan.straggle_factor(node, self.now().as_secs_f64());
            if f != 1.0 {
                return d.mul_f64(f);
            }
        }
        d
    }

    /// Effective bytes of a link flow under the active link-degradation
    /// window (degradation inflates the transferred volume).
    fn flow_bytes(&self, bytes: u64) -> f64 {
        let b = bytes as f64;
        if let Some(plan) = self.faults {
            let f = plan.link_factor(self.now().as_secs_f64());
            if f != 1.0 {
                return b * f;
            }
        }
        b
    }

    /// Disk home of `data`, if it has one (dense-table lookup).
    fn home_of(&self, data: DataId) -> Option<usize> {
        match self.home[data.0 as usize] {
            NO_HOME => None,
            h => Some(h),
        }
    }

    /// Lineage hash of a version nobody produces (initial datasets, and
    /// their durable re-fetched copies).
    fn source_hash(v: DataVersion) -> u64 {
        mix64(0x9E37_79B9_7F4A_7C15 ^ ((v.id.0 as u64) << 32) ^ v.version as u64)
    }

    /// Free execution slots on `node` for `tid`.
    fn free_slots(&self, node: usize, tid: TaskId) -> usize {
        if self.faults.is_some() && !self.node_up[node] {
            return 0;
        }
        if self.is_gpu_task(tid) {
            if self.faults.is_some() && self.alive_gpus(node) == 0 {
                // Every device on the node is dead: degrade to a CPU
                // core when the policy allows it, else the node cannot
                // host this task.
                return if self.cfg.recovery.gpu_to_cpu_fallback {
                    self.free_cores[node]
                } else {
                    0
                };
            }
            self.free_cores[node].min(self.free_gpus[node])
        } else {
            self.free_cores[node] / self.cores_needed(tid)
        }
    }

    fn try_start_master(&mut self) {
        if self.master_busy || self.ready.is_empty() {
            return;
        }
        // O(nodes) pre-aggregates. `place` succeeds exactly when some
        // node has a free slot for the task's resource kind, i.e. when
        // the matching aggregate below is non-zero — so the first ready
        // task (in dispatch order) passing these O(1) tests is the one
        // the seed implementation placed after scoring every candidate.
        let chaos = self.faults.is_some();
        let nodes = self.cfg.cluster.nodes;
        let total_free_cores: usize = if chaos {
            (0..nodes)
                .filter(|&n| self.node_up[n])
                .map(|n| self.free_cores[n])
                .sum()
        } else {
            self.free_cores.iter().sum()
        };
        if total_free_cores == 0 {
            return;
        }
        let max_free_cores: usize = if chaos {
            (0..nodes)
                .filter(|&n| self.node_up[n])
                .map(|n| self.free_cores[n])
                .max()
                .unwrap_or(0)
        } else {
            self.free_cores.iter().copied().max().unwrap_or(0)
        };
        let total_free_gpu_slots: usize = if chaos {
            (0..nodes)
                .map(|n| {
                    if !self.node_up[n] {
                        0
                    } else if self.alive_gpus(n) == 0 {
                        if self.cfg.recovery.gpu_to_cpu_fallback {
                            self.free_cores[n]
                        } else {
                            0
                        }
                    } else {
                        self.free_cores[n].min(self.free_gpus[n])
                    }
                })
                .sum()
        } else {
            self.free_cores
                .iter()
                .zip(&self.free_gpus)
                .map(|(&c, &g)| c.min(g))
                .sum()
        };
        // Find-and-remove in one queue walk. `queue_depth` is sampled
        // first so telemetry still counts the chosen task (the seed
        // removed it only after scoring).
        let queue_depth = self.ready.len();
        let mut queue = std::mem::replace(&mut self.ready, ReadyQueue::new(self.cfg.policy));
        let chosen = queue.take_first(|tid| {
            if self.is_gpu_task(tid) {
                total_free_gpu_slots > 0
            } else {
                self.cores_needed(tid) <= max_free_cores
            }
        });
        self.ready = queue;
        let Some(tid) = chosen else { return };
        // Host-side decision timing, only when someone will consume it.
        let host_t0 = if self.cfg.collect_telemetry {
            // lint: allow(D2, host overhead probe; host_nanos is excluded from artifact serialization)
            Some(std::time::Instant::now())
        } else {
            None
        };

        // Score the nodes exactly once, for the task that will be
        // placed. The task's reads are resolved to `(version, bytes)`
        // once, then each node only pays a cache peek per read.
        let score_cache = matches!(
            self.cfg.policy,
            SchedulingPolicy::DataLocality | SchedulingPolicy::CriticalPath
        );
        let mut avail = std::mem::take(&mut self.avail_scratch);
        let mut reads = std::mem::take(&mut self.reads_scratch);
        avail.clear();
        reads.clear();
        if score_cache {
            let reg = self.wf.registry();
            reads.extend(self.wf.task(tid).reads().map(|(data, version)| {
                (DataVersion { id: data, version }, reg.object(data).bytes)
            }));
        }
        for node in 0..self.cfg.cluster.nodes {
            let free_slots = self.free_slots(node, tid);
            let cached_bytes = if score_cache && free_slots > 0 {
                reads
                    .iter()
                    .filter(|&&(key, _)| self.caches[node].peek(key))
                    .map(|&(_, bytes)| bytes)
                    .sum()
            } else {
                0
            };
            avail.push(NodeAvail {
                node,
                free_slots,
                cached_bytes,
            });
        }
        // Resubmission steers a previously failed task away from the
        // node that killed it, when any alternative has capacity.
        if chaos && self.cfg.recovery.resubmit_alternate {
            if let Some(bad) = self.last_failed_node[tid.0 as usize] {
                if avail.iter().any(|a| a.node != bad && a.free_slots > 0) {
                    if let Some(slot) = avail.iter_mut().find(|a| a.node == bad) {
                        slot.free_slots = 0;
                    }
                }
            }
        }
        let placed = place(self.cfg.policy, &avail, self.rr_cursor);
        let node = placed.expect("a ready task passing the slot pre-checks is placeable");
        self.rr_cursor = self.rr_cursor.wrapping_add(1);
        self.master_busy = true;
        self.pending_assign = Some((tid, node));
        let overhead = decision_overhead(
            self.cfg.policy,
            self.cfg.cluster.sched_overhead_fifo,
            self.cfg.cluster.sched_overhead_locality,
        );
        self.sched_overhead += overhead.as_secs_f64();
        if self.bus.active() {
            self.bus.push(TelemetryEvent::Decision(SchedulerDecision {
                at: self.now(),
                task: tid,
                chosen: node,
                queue_depth,
                sim_overhead: overhead,
                host_nanos: host_t0.map_or(0, |t| {
                    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
                }),
                candidates: avail
                    .iter()
                    .map(|a| CandidateScore {
                        node: a.node,
                        free_slots: a.free_slots,
                        cached_bytes: a.cached_bytes,
                    })
                    .collect(),
            }));
        }
        self.avail_scratch = avail;
        self.reads_scratch = reads;
        self.engine.schedule_after(overhead, Ev::MasterDone);
    }

    fn handle(&mut self, ev: Ev) -> Result<(), RunError> {
        match ev {
            Ev::MasterDone => {
                let (tid, node) = self.pending_assign.take().expect("assignment pending");
                self.master_busy = false;
                if self.faults.is_some() {
                    // A fault may have invalidated the assignment while
                    // the master was deciding.
                    let i = tid.0 as usize;
                    if self.completed[i] || self.runs[i].is_some() {
                        self.try_start_master();
                        return Ok(());
                    }
                    if self.deps_left[i] > 0 {
                        // Inputs were lost mid-decision; the task will
                        // re-enter through dependency tracking.
                        self.try_start_master();
                        return Ok(());
                    }
                    if self.free_slots(node, tid) == 0 {
                        if !self.in_backoff[i] {
                            self.ready.insert(self.upward_rank[i], tid);
                        }
                        self.try_start_master();
                        return Ok(());
                    }
                }
                self.dispatch(tid, node)?;
                self.try_start_master();
                Ok(())
            }
            Ev::TaskDelay(tid, att) => {
                // Stale if the attempt died (abort) or was superseded.
                let i = tid.0 as usize;
                if self.runs[i].is_none() || att != self.attempts[i] {
                    return Ok(());
                }
                self.on_delay_done(tid)
            }
            Ev::Fault(idx) => {
                let (_, action) = self.fault_timeline[idx];
                match action {
                    FaultAction::Crash { node } => self.on_node_crash(node),
                    FaultAction::Rejoin { node } => self.on_node_rejoin(node),
                    FaultAction::GpuFail { node } => self.on_gpu_failure(node),
                }
                Ok(())
            }
            Ev::Retry(tid) => {
                self.on_retry(tid);
                Ok(())
            }
            Ev::Release(tid) => {
                self.on_release(tid);
                Ok(())
            }
            Ev::JobArrive(j) => {
                self.on_job_arrive(j);
                Ok(())
            }
            Ev::LinkTick(key, gen) => {
                if gen != self.link_generation(key) {
                    return Ok(()); // stale tick
                }
                let now = self.now();
                let flows = match key {
                    LinkKey::Pcie(n) => self.pcie[n].harvest(now),
                    LinkKey::Disk(n) => self.disks[n].harvest(now),
                    LinkKey::Shared => self.shared.harvest(now),
                };
                for flow in flows {
                    if let Some(tid) = self.flow_task.remove(&(key, flow)) {
                        self.on_flow_done(tid)?;
                    }
                }
                self.reschedule_link(key);
                Ok(())
            }
        }
    }

    fn link_generation(&self, key: LinkKey) -> u64 {
        match key {
            LinkKey::Pcie(n) => self.pcie[n].generation(),
            LinkKey::Disk(n) => self.disks[n].generation(),
            LinkKey::Shared => self.shared.generation(),
        }
    }

    fn reschedule_link(&mut self, key: LinkKey) {
        let now = self.now();
        let (gen, next) = match key {
            LinkKey::Pcie(n) => (self.pcie[n].generation(), self.pcie[n].next_completion(now)),
            LinkKey::Disk(n) => (
                self.disks[n].generation(),
                self.disks[n].next_completion(now),
            ),
            LinkKey::Shared => (self.shared.generation(), self.shared.next_completion(now)),
        };
        if let Some(t) = next {
            self.engine.schedule_at(t.max(now), Ev::LinkTick(key, gen));
        }
    }

    fn dispatch(&mut self, tid: TaskId, node: usize) -> Result<(), RunError> {
        let spec = self.wf.task(tid);
        let gpu_capable = self.is_gpu_task(tid);
        // Graceful degradation: a GPU task lands on its core when every
        // device on the node has failed (the scheduler only offers such
        // a node when the fallback policy is on).
        let on_gpu = gpu_capable && (self.faults.is_none() || self.alive_gpus(node) > 0);
        if gpu_capable && !on_gpu {
            self.stats.gpu_fallbacks += 1;
        }
        self.attempts[tid.0 as usize] += 1;
        let reg = self.wf.registry();
        // Reuse buffers from a finished attempt; steady-state dispatch
        // then allocates nothing.
        let (mut inputs, mut outputs, mut core_ids) = self.run_pool.pop().unwrap_or_default();
        inputs.clear();
        outputs.clear();
        core_ids.clear();
        inputs
            .extend(spec.reads().map(|(data, version)| {
                (DataVersion { id: data, version }, reg.object(data).bytes)
            }));
        outputs
            .extend(spec.writes().map(|(data, version)| {
                (DataVersion { id: data, version }, reg.object(data).bytes)
            }));
        let in_bytes: u64 = inputs.iter().map(|(_, b)| b).sum();
        let out_bytes: u64 = outputs.iter().map(|(_, b)| b).sum();

        // OOM checks — these abort the run, as on the real cluster.
        if on_gpu {
            let required = in_bytes + out_bytes + spec.cost.gpu_extra_bytes;
            let capacity = self.cfg.cluster.node.gpu.memory_bytes;
            if required > capacity {
                return Err(RunError::GpuOom {
                    task_type: spec.task_type.to_string(),
                    required,
                    capacity,
                });
            }
        }
        let host_footprint = in_bytes + out_bytes + spec.cost.host_extra_bytes;
        let ram = self.cfg.cluster.node.ram_bytes;
        if self.ram_used[node] + host_footprint > ram {
            return Err(RunError::HostOom {
                task_type: spec.task_type.to_string(),
                required: self.ram_used[node] + host_footprint,
                capacity: ram,
            });
        }

        // Acquire resources (the scheduler guaranteed availability).
        let cores = self.cores_needed(tid);
        assert!(
            self.free_cores[node] >= cores,
            "dispatch without free cores"
        );
        self.free_cores[node] -= cores;
        core_ids.extend((0..cores).map(|_| {
            self.core_stacks[node]
                .pop()
                .expect("core identity available")
        }));
        let gpu_id = if on_gpu {
            assert!(self.free_gpus[node] > 0, "dispatch without a free GPU");
            self.free_gpus[node] -= 1;
            Some(self.gpu_stacks[node].pop().expect("GPU identity available"))
        } else {
            None
        };
        let in_use = self.cfg.cluster.cores_of(node) - self.free_cores[node];
        self.peak_cores[node] = self.peak_cores[node].max(in_use);
        self.ram_used[node] += host_footprint;
        self.peak_ram = self.peak_ram.max(self.ram_used[node]);

        let now = self.now();
        // Fold the attempt's input lineage now: every input version is
        // available at dispatch (dependency tracking guarantees it).
        let mut in_hash = mix64(0x517C_C1B7_2722_0A95 ^ tid.0 as u64);
        for (v, _) in &inputs {
            let hv = self
                .data_hash
                .get(v)
                .copied()
                .unwrap_or_else(|| Self::source_hash(*v));
            in_hash = mix64(in_hash ^ hv);
        }
        inputs.reverse();
        outputs.reverse();
        self.runs[tid.0 as usize] = Some(TaskRun {
            node,
            stage: Stage::SerialFrac, // placeholder; set by enter_inputs
            on_gpu,
            cores_held: cores,
            core_ids,
            gpu_id,
            inputs,
            outputs,
            in_bytes,
            out_bytes,
            host_footprint,
            anchor: now,
            flow_start: now,
            in_hash,
            rec: TaskRecord {
                task: tid,
                task_type: spec.task_type.clone(),
                node,
                core: 0, // set below from the acquired identity
                cores: cores as u16,
                processor: if on_gpu {
                    ProcessorKind::Gpu
                } else {
                    ProcessorKind::Cpu
                },
                level: self.wf.level(tid),
                start: now,
                end: now,
                deser: SimDuration::ZERO,
                ser: SimDuration::ZERO,
                serial: SimDuration::ZERO,
                parallel: SimDuration::ZERO,
                comm: SimDuration::ZERO,
                cache_hits: 0,
                cache_misses: 0,
            },
        });
        {
            let run = self.runs[tid.0 as usize].as_mut().expect("run");
            run.rec.core = run.core_ids[0];
        }
        if self.bus.active() {
            let run = self.runs[tid.0 as usize].as_ref().expect("run");
            self.bus.push(TelemetryEvent::TaskDispatched {
                at: now,
                task: tid,
                task_type: spec.task_type.clone(),
                node,
                core: run.rec.core,
                cores: cores as u16,
                gpu: gpu_id,
            });
            self.push_gauge(node, now);
        }
        self.enter_inputs(tid);
        Ok(())
    }

    /// Emits a [`TelemetryEvent::NodeGauge`] sample for `node` (callers
    /// guard on `bus.active()`).
    fn push_gauge(&mut self, node: usize, at: SimTime) {
        let c = &self.cfg.cluster;
        self.bus.push(TelemetryEvent::NodeGauge {
            at,
            node,
            ram_used: self.ram_used[node],
            busy_cores: c.cores_of(node) - self.free_cores[node],
            busy_gpus: c.gpus_of(node) - self.free_gpus[node],
        });
    }

    /// Latency preceding a storage read of `data` from `node`.
    fn read_latency(&self, node: usize, data: DataId) -> SimDuration {
        let c = &self.cfg.cluster;
        match self.cfg.storage {
            StorageArchitecture::SharedDisk => c.network.latency + c.shared_disk.latency,
            StorageArchitecture::LocalDisk => {
                let home = self.home_of(data).unwrap_or(node);
                if home == node {
                    c.node.local_disk.latency
                } else {
                    // Remote block: disk seek plus a network round trip.
                    c.node.local_disk.latency + c.network.latency + c.network.latency
                }
            }
        }
    }

    /// Starts a storage read flow for `tid` on the right link.
    fn start_read_flow(&mut self, tid: TaskId, data: DataId, bytes: u64) {
        let run = self.runs[tid.0 as usize].as_ref().expect("running task");
        let node = run.node;
        let now = self.now();
        let key = match self.cfg.storage {
            StorageArchitecture::SharedDisk => LinkKey::Shared,
            StorageArchitecture::LocalDisk => {
                let home = self.home_of(data).unwrap_or(node);
                LinkKey::Disk(home)
            }
        };
        let eff = self.flow_bytes(bytes);
        let flow = match key {
            LinkKey::Shared => self.shared.start(now, node, eff),
            LinkKey::Disk(n) => self.disks[n].start(now, eff),
            LinkKey::Pcie(_) => unreachable!("reads never use the PCIe bus"),
        };
        self.flow_task.insert((key, flow), tid);
        self.reschedule_link(key);
    }

    /// Starts a storage write flow for `tid`.
    fn start_write_flow(&mut self, tid: TaskId, bytes: u64) {
        let run = self.runs[tid.0 as usize].as_ref().expect("running task");
        let node = run.node;
        let now = self.now();
        let key = match self.cfg.storage {
            StorageArchitecture::SharedDisk => LinkKey::Shared,
            StorageArchitecture::LocalDisk => LinkKey::Disk(node),
        };
        let eff = self.flow_bytes(bytes);
        let flow = match key {
            LinkKey::Shared => self.shared.start(now, node, eff),
            LinkKey::Disk(n) => self.disks[n].start(now, eff),
            LinkKey::Pcie(_) => unreachable!("writes never use the PCIe bus"),
        };
        self.flow_task.insert((key, flow), tid);
        self.reschedule_link(key);
    }

    /// Consumes pending inputs: cache hits cost nothing; the first miss
    /// starts a read. When inputs are exhausted, moves on to compute.
    fn enter_inputs(&mut self, tid: TaskId) {
        loop {
            let run = self.runs[tid.0 as usize].as_mut().expect("running task");
            let node = run.node;
            match run.inputs.pop() {
                Some((key, bytes)) => {
                    let hit = self.caches[node].lookup(key);
                    if self.bus.active() {
                        self.bus.push(TelemetryEvent::CacheAccess {
                            at: self.engine.now(),
                            node,
                            task: tid,
                            key,
                            hit,
                        });
                    }
                    if hit {
                        self.runs[tid.0 as usize]
                            .as_mut()
                            .expect("run")
                            .rec
                            .cache_hits += 1;
                        continue;
                    }
                    {
                        let run = self.runs[tid.0 as usize].as_mut().expect("run");
                        run.rec.cache_misses += 1;
                        run.anchor = self.engine.now();
                        run.stage = Stage::ReadLatency { key, bytes };
                    }
                    let latency = self.read_latency(node, key.id);
                    self.delay(latency, tid);
                    return;
                }
                None => {
                    self.enter_compute(tid);
                    return;
                }
            }
        }
    }

    fn enter_compute(&mut self, tid: TaskId) {
        let cost = self.wf.task(tid).cost;
        let serial_time = self.cfg.cluster.node.cpu.time(&cost.serial);
        if !serial_time.is_zero() {
            let d = self.jitter.apply(serial_time);
            let now = self.now();
            let run = self.runs[tid.0 as usize].as_mut().expect("run");
            run.stage = Stage::SerialFrac;
            run.anchor = now;
            let node = run.node;
            let d = self.stretch(node, d);
            self.delay(d, tid);
        } else {
            self.enter_parallel(tid);
        }
    }

    fn enter_parallel(&mut self, tid: TaskId) {
        let cost = self.wf.task(tid).cost;
        if cost.parallel.flops <= 0.0 && cost.parallel.bytes <= 0.0 {
            self.enter_outputs(tid);
            return;
        }
        let now = self.now();
        let on_gpu = self.runs[tid.0 as usize].as_ref().expect("run").on_gpu;
        if on_gpu {
            let run = self.runs[tid.0 as usize].as_mut().expect("run");
            run.stage = Stage::H2dLatency;
            run.anchor = now;
            let latency = self.cfg.cluster.node.pcie.latency;
            self.delay(latency, tid);
        } else {
            let threads = self.runs[tid.0 as usize].as_ref().expect("run").cores_held;
            let single = self.cfg.cluster.node.cpu.time(&cost.parallel);
            let d = self
                .jitter
                .apply(single.mul_f64(1.0 / RunConfig::thread_speedup(threads)));
            let run = self.runs[tid.0 as usize].as_mut().expect("run");
            run.stage = Stage::CpuCompute;
            run.anchor = now;
            let node = run.node;
            let d = self.stretch(node, d);
            self.delay(d, tid);
        }
    }

    fn enter_outputs(&mut self, tid: TaskId) {
        let now = self.now();
        let next = self.runs[tid.0 as usize]
            .as_mut()
            .expect("run")
            .outputs
            .pop();
        match next {
            Some((key, bytes)) => {
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                run.stage = Stage::Encode { key, bytes };
                run.anchor = now;
                let node = run.node;
                let d = self
                    .jitter
                    .apply(self.cfg.cluster.serde.serialize_time(bytes as f64));
                let d = self.stretch(node, d);
                self.delay(d, tid);
            }
            None => self.finalize(tid),
        }
    }

    fn on_delay_done(&mut self, tid: TaskId) -> Result<(), RunError> {
        let now = self.now();
        let stage = self.runs[tid.0 as usize].as_ref().expect("run").stage;
        match stage {
            Stage::ReadLatency { key, bytes } => {
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                run.stage = Stage::ReadFlow { key, bytes };
                run.flow_start = now;
                self.start_read_flow(tid, key.id, bytes);
            }
            Stage::Decode { key, bytes } => {
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                let node = run.node;
                run.rec.deser += now - run.anchor;
                let (anchor, rnode) = (run.anchor, node);
                self.cache_insert(node, key, bytes, now);
                self.push_trace(rnode, tid, TraceState::Deserialize, anchor, now);
                self.enter_inputs(tid);
            }
            Stage::SerialFrac => {
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                run.rec.serial += now - run.anchor;
                let (anchor, node) = (run.anchor, run.node);
                self.push_trace(node, tid, TraceState::SerialFraction, anchor, now);
                self.enter_parallel(tid);
            }
            Stage::H2dLatency => {
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                run.stage = Stage::H2dFlow;
                run.flow_start = now;
                let bytes = run.in_bytes;
                let node = run.node;
                let eff = self.flow_bytes(bytes);
                let flow = self.pcie[node].start(now, eff);
                self.flow_task.insert((LinkKey::Pcie(node), flow), tid);
                self.reschedule_link(LinkKey::Pcie(node));
            }
            Stage::Kernel => {
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                let kernel = now - run.anchor;
                run.rec.parallel += kernel;
                self.gpu_kernel_seconds += kernel.as_secs_f64();
                let (anchor, node) = (run.anchor, run.node);
                self.push_trace(node, tid, TraceState::ParallelFraction, anchor, now);
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                run.stage = Stage::D2hLatency;
                run.anchor = now;
                let latency = self.cfg.cluster.node.pcie.latency;
                self.delay(latency, tid);
            }
            Stage::D2hLatency => {
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                run.stage = Stage::D2hFlow;
                run.flow_start = now;
                let bytes = run.out_bytes;
                let node = run.node;
                let eff = self.flow_bytes(bytes);
                let flow = self.pcie[node].start(now, eff);
                self.flow_task.insert((LinkKey::Pcie(node), flow), tid);
                self.reschedule_link(LinkKey::Pcie(node));
            }
            Stage::CpuCompute => {
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                run.rec.parallel += now - run.anchor;
                let (anchor, node) = (run.anchor, run.node);
                self.push_trace(node, tid, TraceState::ParallelFraction, anchor, now);
                self.enter_outputs(tid);
            }
            Stage::Encode { key, bytes } => {
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                run.stage = Stage::WriteLatency { key, bytes };
                let latency = match self.cfg.storage {
                    StorageArchitecture::SharedDisk => {
                        self.cfg.cluster.network.latency + self.cfg.cluster.shared_disk.latency
                    }
                    StorageArchitecture::LocalDisk => self.cfg.cluster.node.local_disk.latency,
                };
                self.delay(latency, tid);
            }
            Stage::WriteLatency { key, bytes } => {
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                run.stage = Stage::WriteFlow { key, bytes };
                run.flow_start = now;
                self.start_write_flow(tid, bytes);
            }
            Stage::ReadFlow { .. } | Stage::H2dFlow | Stage::D2hFlow | Stage::WriteFlow { .. } => {
                unreachable!("flow stages complete via link ticks, not delays")
            }
        }
        Ok(())
    }

    /// Emits a [`TelemetryEvent::Transfer`] for a completed link flow
    /// of `tid` (callers guard on `bus.active()`).
    fn push_transfer(&mut self, tid: TaskId, link: LinkKind, bytes: u64, t1: SimTime) {
        let run = self.runs[tid.0 as usize].as_ref().expect("run");
        let (node, t0) = (run.node, run.flow_start);
        self.bus.push(TelemetryEvent::Transfer {
            task: tid,
            node,
            link,
            bytes,
            t0,
            t1,
        });
    }

    fn on_flow_done(&mut self, tid: TaskId) -> Result<(), RunError> {
        let now = self.now();
        let stage = self.runs[tid.0 as usize].as_ref().expect("run").stage;
        match stage {
            Stage::ReadFlow { key, bytes } => {
                if self.bus.active() {
                    self.push_transfer(tid, LinkKind::StorageRead, bytes, now);
                }
                // Storage read finished; decode on the held core.
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                run.stage = Stage::Decode { key, bytes };
                let node = run.node;
                let d = self
                    .jitter
                    .apply(self.cfg.cluster.serde.deserialize_time(bytes as f64));
                let d = self.stretch(node, d);
                self.delay(d, tid);
            }
            Stage::H2dFlow => {
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                run.rec.comm += now - run.anchor;
                let (anchor, node, bytes) = (run.anchor, run.node, run.in_bytes);
                if self.bus.active() {
                    self.push_transfer(tid, LinkKind::HostToDevice, bytes, now);
                }
                self.push_trace(node, tid, TraceState::CpuGpuComm, anchor, now);
                let cost = self.wf.task(tid).cost;
                let d = self
                    .jitter
                    .apply(self.cfg.cluster.node.gpu.time(&cost.parallel));
                let d = self.stretch(node, d);
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                run.stage = Stage::Kernel;
                run.anchor = now;
                self.delay(d, tid);
            }
            Stage::D2hFlow => {
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                run.rec.comm += now - run.anchor;
                let (anchor, node, bytes) = (run.anchor, run.node, run.out_bytes);
                if self.bus.active() {
                    self.push_transfer(tid, LinkKind::DeviceToHost, bytes, now);
                }
                self.push_trace(node, tid, TraceState::CpuGpuComm, anchor, now);
                self.enter_outputs(tid);
            }
            Stage::WriteFlow { key, bytes } => {
                let run = self.runs[tid.0 as usize].as_mut().expect("run");
                run.rec.ser += now - run.anchor;
                let node = run.node;
                let anchor = run.anchor;
                if self.bus.active() {
                    self.push_transfer(tid, LinkKind::StorageWrite, bytes, now);
                }
                // Output object stays in the worker's memory cache and,
                // with local disks, now lives on this node's disk.
                self.cache_insert(node, key, bytes, now);
                if self.cfg.storage == StorageArchitecture::LocalDisk {
                    self.home[key.id.0 as usize] = node;
                    if self.faults.is_some() {
                        // Written versions on a local disk die with the
                        // node; shared-disk writes are durable.
                        self.version_home.insert(key, node);
                    }
                }
                self.push_trace(node, tid, TraceState::Serialize, anchor, now);
                self.enter_outputs(tid);
            }
            other => unreachable!("unexpected flow completion in stage {other:?}"),
        }
        Ok(())
    }

    fn finalize(&mut self, tid: TaskId) {
        let i = tid.0 as usize;
        // A chaos plan may kill this attempt at its commit point; the
        // sampler is a stateless hash of (plan seed, task, attempt), so
        // the verdict is identical at any thread count and the jitter
        // stream is never touched.
        if let Some(plan) = self.faults {
            let p = plan.failure_probability(self.wf.task(tid).task_type.as_str());
            if p > 0.0
                && gpuflow_chaos::transient_failure(
                    plan.seed,
                    tid.0,
                    self.attempts[i].saturating_sub(1),
                    p,
                )
            {
                self.fail_transient(tid);
                self.try_start_master();
                return;
            }
        }
        let now = self.now();
        let mut run = self.runs[i].take().expect("run");
        run.rec.end = now;
        let node = run.node;
        self.free_cores[node] += run.cores_held;
        self.core_stacks[node].extend(run.core_ids.iter().copied());
        self.core_held_seconds +=
            run.cores_held as f64 * (run.rec.end - run.rec.start).as_secs_f64();
        if run.on_gpu {
            self.free_gpus[node] += 1;
            self.gpu_stacks[node].push(run.gpu_id.expect("GPU task holds a device"));
            self.gpu_held_seconds += (run.rec.end - run.rec.start).as_secs_f64();
        }
        self.ram_used[node] -= run.host_footprint;
        // Commit the outputs' lineage hashes: pure functions of the task
        // and its input lineage, so a regenerated producer reinserts the
        // exact value a crash destroyed.
        for (id, version) in self.wf.task(tid).writes() {
            let key = DataVersion { id, version };
            let h = mix64(run.in_hash ^ (((key.id.0 as u64) << 32) | key.version as u64));
            self.data_hash.insert(key, h);
        }
        debug_assert!(!self.completed[i], "double completion of {tid}");
        self.completed[i] = true;
        self.run_pool.push((run.inputs, run.outputs, run.core_ids));
        if !self.recorded[i] {
            // Only the first successful attempt is recorded; lineage
            // re-executions keep the books at one record per task.
            self.recorded[i] = true;
            self.records.push(run.rec);
            self.done += 1;
            self.job_task_done(tid);
        }
        if self.bus.active() {
            self.bus.push(TelemetryEvent::TaskCompleted {
                at: now,
                task: tid,
                node,
            });
            self.push_gauge(node, now);
        }
        for &succ in self.wf.successors(tid) {
            let si = succ.0 as usize;
            if self.completed[si] || self.runs[si].is_some() {
                // A lineage re-execution's successor may already be
                // done or running; never feed it back into the queue.
                continue;
            }
            let d = &mut self.deps_left[si];
            *d = d.saturating_sub(1);
            if *d == 0 {
                let pending = self.pending_assign.map(|(t, _)| t) == Some(succ);
                if !self.in_backoff[si] && !pending {
                    self.ready.insert(self.upward_rank[si], succ);
                    if self.bus.active() {
                        self.bus.push(TelemetryEvent::TaskReady {
                            at: now,
                            task: succ,
                        });
                    }
                }
            }
        }
        self.try_start_master();
    }

    /// Tears down a live attempt: releases its core(s), RAM, and —
    /// unless the device itself died — its GPU, drops its in-flight
    /// link flows (the orphaned flows drain harmlessly; their
    /// completions find no owner), and reports the failure. Pending
    /// stage delays become stale via the attempt tag.
    fn abort_attempt(&mut self, tid: TaskId, reason: &'static str, release_gpu: bool) {
        let now = self.now();
        let i = tid.0 as usize;
        // lint: allow(R1, caller-contract invariant: every abort site holds a live attempt; not fault-dependent state)
        let run = self.runs[i].take().expect("aborting a live attempt");
        let node = run.node;
        self.free_cores[node] += run.cores_held;
        self.core_stacks[node].extend(run.core_ids.iter().copied());
        self.core_held_seconds += run.cores_held as f64 * (now - run.rec.start).as_secs_f64();
        if run.on_gpu {
            self.gpu_held_seconds += (now - run.rec.start).as_secs_f64();
            if release_gpu {
                self.free_gpus[node] += 1;
                // lint: allow(R1, on_gpu attempts always record their device id at dispatch)
                self.gpu_stacks[node].push(run.gpu_id.expect("GPU attempt holds a device"));
            }
        }
        self.ram_used[node] -= run.host_footprint;
        self.flow_task.retain(|_, t| *t != tid);
        if self.bus.active() {
            self.bus.push(TelemetryEvent::TaskFailed {
                at: now,
                task: tid,
                node,
                attempt: self.attempts[i].saturating_sub(1),
                started: run.rec.start,
                reason,
            });
            self.push_gauge(node, now);
        }
        self.run_pool.push((run.inputs, run.outputs, run.core_ids));
    }

    /// Kills the current attempt with a sampled transient failure and
    /// either schedules a backed-off retry or, with the budget spent,
    /// raises the fatal [`RunError::TaskFailed`].
    fn fail_transient(&mut self, tid: TaskId) {
        let i = tid.0 as usize;
        let now = self.now();
        let node = self.runs[i].as_ref().expect("failing a live attempt").node;
        self.stats.transient_failures += 1;
        self.transient_fails[i] += 1;
        self.abort_attempt(tid, "transient", true);
        if self.transient_fails[i] > self.cfg.recovery.max_retries {
            self.fatal = Some(RunError::TaskFailed {
                task_type: self.wf.task(tid).task_type.to_string(),
                attempts: self.attempts[i],
            });
            return;
        }
        if self.cfg.recovery.resubmit_alternate {
            self.last_failed_node[i] = Some(node);
        }
        self.stats.retries += 1;
        let backoff =
            SimDuration::from_secs_f64(self.cfg.recovery.backoff_secs(self.transient_fails[i]));
        self.in_backoff[i] = true;
        if self.bus.active() {
            self.bus.push(TelemetryEvent::TaskRetry {
                at: now,
                task: tid,
                attempt: self.attempts[i],
                until: now + backoff,
            });
        }
        self.engine.schedule_after(backoff, Ev::Retry(tid));
    }

    /// End of a backoff window: the task re-enters the ready queue if
    /// its dependencies still hold (a crash may have invalidated them;
    /// dependency tracking re-admits it later in that case).
    fn on_retry(&mut self, tid: TaskId) {
        let i = tid.0 as usize;
        if !self.in_backoff[i] {
            return;
        }
        self.in_backoff[i] = false;
        self.requeue(tid);
        self.try_start_master();
    }

    /// Re-inserts a task whose attempt was torn down, if it is runnable
    /// right now (dependencies met, not completed/running/pending).
    fn requeue(&mut self, tid: TaskId) {
        let i = tid.0 as usize;
        if self.completed[i]
            || self.runs[i].is_some()
            || self.in_backoff[i]
            || self.deps_left[i] > 0
            || self.unarrived.contains(&tid.0)
            || self.pending_assign.map(|(t, _)| t) == Some(tid)
        {
            return;
        }
        // A crash may have destroyed produced input versions while this
        // attempt ran on a surviving node or sat in backoff — it was
        // live then, so no crash-time sweep chased its inputs. Re-read
        // lineage now: a missing produced version forces regeneration of
        // its producer before this task may run again.
        let lost_input = self.wf.task(tid).reads().any(|(id, version)| {
            let v = DataVersion { id, version };
            !self.data_hash.contains_key(&v) && self.producer.contains_key(&v)
        });
        if lost_input {
            self.mark_regeneration(&[]);
            self.rebuild_dependencies();
            return;
        }
        self.ready.insert(self.upward_rank[i], tid);
        if self.bus.active() {
            self.bus.push(TelemetryEvent::TaskReady {
                at: self.now(),
                task: tid,
            });
        }
    }

    /// A node dies: every attempt on it is killed and resubmitted, its
    /// worker cache is wiped, and (with local disks) every block version
    /// written to its disk is lost — forcing lineage regeneration of the
    /// producers. Initial dataset blocks are durable and are re-homed
    /// onto surviving nodes.
    fn on_node_crash(&mut self, node: usize) {
        if !self.node_up[node] {
            return;
        }
        let now = self.now();
        self.node_up[node] = false;
        if self.bus.active() {
            self.bus.push(TelemetryEvent::FaultInjected {
                at: now,
                node: Some(node),
                what: "node-crash",
            });
            self.bus.push(TelemetryEvent::NodeDown { at: now, node });
        }
        let victims: Vec<TaskId> = (0..self.runs.len())
            .filter(|&i| self.runs[i].as_ref().is_some_and(|r| r.node == node))
            .map(|i| TaskId(i as u32))
            .collect();
        for tid in victims {
            self.stats.crash_failures += 1;
            self.stats.resubmissions += 1;
            if self.cfg.recovery.resubmit_alternate {
                self.last_failed_node[tid.0 as usize] = Some(node);
            }
            self.abort_attempt(tid, "node-crash", true);
            if self.bus.active() {
                self.bus.push(TelemetryEvent::TaskResubmitted {
                    at: now,
                    task: tid,
                    from_node: node,
                });
            }
        }
        let dropped = self.caches[node].clear();
        let mut lost: Vec<DataVersion> = Vec::new();
        if self.cfg.storage == StorageArchitecture::LocalDisk {
            lost = self
                .version_home
                .iter()
                .filter(|&(_, &h)| h == node)
                .map(|(&v, _)| v)
                .collect();
            lost.sort_by_key(|v| (v.id.0, v.version));
            for &v in &lost {
                self.version_home.remove(&v);
                self.data_hash.remove(&v);
                // Cached copies elsewhere are invalidated too: a lost
                // version must be regenerated before anyone consumes it
                // again, which is what makes fingerprint equality prove
                // lineage recovery.
                for cache in &mut self.caches {
                    cache.invalidate(v);
                }
            }
            // Durable initial blocks move to surviving disks. The dense
            // table is already in ascending-id order, matching the old
            // map's collect-and-sort.
            let ids: Vec<usize> = self
                .home
                .iter()
                .enumerate()
                .filter(|&(_, &h)| h == node)
                .map(|(id, _)| id)
                .collect();
            let alive: Vec<usize> = (0..self.cfg.cluster.nodes)
                .filter(|&n| self.node_up[n])
                .collect();
            if !alive.is_empty() {
                for (k, id) in ids.into_iter().enumerate() {
                    self.home[id] = alive[k % alive.len()];
                }
            }
        }
        self.stats.blocks_invalidated += dropped + lost.len() as u64;
        if self.bus.active() {
            self.bus.push(TelemetryEvent::BlocksInvalidated {
                at: now,
                node,
                count: dropped,
                lost_versions: lost.len() as u64,
            });
            // The crash released every resource on the node; gauge the
            // new (empty) occupancy so down intervals read as idle.
            self.push_gauge(node, now);
        }
        self.mark_regeneration(&lost);
        self.rebuild_dependencies();
        self.try_start_master();
    }

    /// A transiently crashed node comes back: empty cache, full core
    /// complement (permanently failed GPUs stay dead).
    fn on_node_rejoin(&mut self, node: usize) {
        if self.node_up[node] {
            return;
        }
        let now = self.now();
        self.node_up[node] = true;
        if self.bus.active() {
            self.bus.push(TelemetryEvent::NodeUp { at: now, node });
            // A rejoined node restarts cold: gauge the empty occupancy.
            self.push_gauge(node, now);
        }
        self.try_start_master();
    }

    /// One GPU device on `node` fails permanently. An idle device is
    /// simply removed from the pool; otherwise the lowest-id running
    /// GPU attempt on the node dies with its device and is resubmitted.
    fn on_gpu_failure(&mut self, node: usize) {
        if self.gpus_dead[node] >= self.cfg.cluster.gpus_of(node) {
            return;
        }
        let now = self.now();
        self.gpus_dead[node] += 1;
        if self.bus.active() {
            self.bus.push(TelemetryEvent::FaultInjected {
                at: now,
                node: Some(node),
                what: "gpu-failure",
            });
        }
        if self.free_gpus[node] > 0 {
            self.free_gpus[node] -= 1;
            self.gpu_stacks[node].pop();
        } else if let Some(tid) = (0..self.runs.len())
            .find(|&i| {
                self.runs[i]
                    .as_ref()
                    .is_some_and(|r| r.node == node && r.on_gpu)
            })
            .map(|i| TaskId(i as u32))
        {
            self.stats.crash_failures += 1;
            self.stats.resubmissions += 1;
            if self.cfg.recovery.resubmit_alternate {
                self.last_failed_node[tid.0 as usize] = Some(node);
            }
            self.abort_attempt(tid, "gpu-failure", false);
            if self.bus.active() {
                self.bus.push(TelemetryEvent::TaskResubmitted {
                    at: now,
                    task: tid,
                    from_node: node,
                });
            }
            self.requeue(tid);
        }
        self.try_start_master();
    }

    /// Marks every task whose (transitive) inputs were lost for
    /// re-execution. Seeds are all pending tasks (they may need lost
    /// inputs) plus the producers of lost *terminal* versions, which
    /// must regenerate even with no pending consumer — the run's output
    /// set itself was damaged.
    fn mark_regeneration(&mut self, lost: &[DataVersion]) {
        let n = self.wf.tasks().len();
        let mut work: Vec<TaskId> = (0..n)
            .filter(|&i| !self.completed[i] && self.runs[i].is_none())
            .map(|i| TaskId(i as u32))
            .collect();
        for v in lost {
            if self
                .terminal
                .binary_search_by_key(&(v.id.0, v.version), |t| (t.id.0, t.version))
                .is_ok()
            {
                if let Some(&p) = self.producer.get(v) {
                    work.push(p);
                }
            }
        }
        let mut visited = vec![false; n];
        while let Some(t) = work.pop() {
            let i = t.0 as usize;
            if visited[i] {
                continue;
            }
            visited[i] = true;
            if self.completed[i] {
                self.completed[i] = false;
                self.stats.regenerated_tasks += 1;
            }
            // Chase lost inputs upstream: a produced version missing
            // from the lineage table forces its producer to re-run
            // (initial versions have no producer — they are durable).
            for (id, version) in self.wf.task(t).reads() {
                let v = DataVersion { id, version };
                if !self.data_hash.contains_key(&v) {
                    if let Some(&p) = self.producer.get(&v) {
                        if !visited[p.0 as usize] {
                            work.push(p);
                        }
                    }
                }
            }
        }
    }

    /// Recomputes `deps_left` and rebuilds the ready queue from scratch
    /// after regeneration changed the completion frontier.
    fn rebuild_dependencies(&mut self) {
        let now = self.now();
        let mut ready = ReadyQueue::new(self.cfg.policy);
        for i in 0..self.wf.tasks().len() {
            if self.completed[i] || self.runs[i].is_some() {
                continue;
            }
            let tid = TaskId(i as u32);
            let deps = self
                .wf
                .predecessors(tid)
                .iter()
                .filter(|p| !self.completed[p.0 as usize])
                .count();
            self.deps_left[i] = deps;
            let pending = self.pending_assign.map(|(t, _)| t) == Some(tid);
            if deps == 0 && !self.in_backoff[i] && !pending && !self.unarrived.contains(&tid.0) {
                ready.insert(self.upward_rank[i], tid);
                if self.bus.active() {
                    self.bus
                        .push(TelemetryEvent::TaskReady { at: now, task: tid });
                }
            }
        }
        self.ready = ready;
    }

    /// Emits one processing-stage interval to the bus — the single
    /// source feeding both the Paraver trace and the telemetry stream.
    fn push_trace(
        &mut self,
        node: usize,
        task: TaskId,
        state: TraceState,
        t0: SimTime,
        t1: SimTime,
    ) {
        if self.bus.active() {
            let (core, gpu_held) = self.runs[task.0 as usize]
                .as_ref()
                .map_or((0, None), |r| (r.core_ids[0], r.gpu_id));
            // Only device-side stages run on the GPU; host-side stages
            // of a GPU task still belong to the held core's lane.
            let gpu = match state {
                TraceState::ParallelFraction | TraceState::CpuGpuComm => gpu_held,
                _ => None,
            };
            self.bus.push(TelemetryEvent::Stage {
                task,
                node,
                core,
                gpu,
                state,
                t0,
                t1,
            });
        }
    }

    /// Inserts into a node cache, reporting LRU evictions to the bus.
    fn cache_insert(&mut self, node: usize, key: DataVersion, bytes: u64, at: SimTime) {
        let before = self.caches[node].evictions();
        self.caches[node].insert(key, bytes);
        if self.bus.active() {
            let evicted = self.caches[node].evictions() - before;
            if evicted > 0 {
                self.bus.push(TelemetryEvent::CacheEvicted {
                    at,
                    node,
                    count: evicted,
                });
                // Eviction instants are occupancy-relevant sample points
                // too (the metrics series reads RAM between dispatches).
                self.push_gauge(node, at);
            }
        }
    }

    fn finish(self) -> Result<RunReport, RunError> {
        let total = self.wf.tasks().len();
        let completed_now = self.completed.iter().filter(|&&c| c).count();
        if self.done < total || completed_now < total {
            // With a fault plan the stall is the plan's doing (e.g. a
            // permanent crash of the only capable node); without one it
            // is an internal invariant violation.
            if self.faults.is_some() {
                return Err(RunError::Unrecoverable {
                    completed: completed_now,
                    total,
                });
            }
            return Err(RunError::Deadlock {
                completed: self.done,
                total,
            });
        }
        let makespan = self.now().as_secs_f64();
        let cores_used: usize = self.peak_cores.iter().sum();
        let c = &self.cfg.cluster;
        let denom = makespan.max(1e-12);
        let cpu_util = self.core_held_seconds / (c.total_cpu_cores() as f64 * denom);
        let gpu_util = if self.cfg.processor == ProcessorKind::Gpu {
            self.gpu_kernel_seconds / (c.total_gpus() as f64 * denom)
        } else {
            0.0
        };
        let metrics = RunMetrics::aggregate(
            &self.records,
            makespan,
            cores_used,
            self.sched_overhead,
            cpu_util,
            gpu_util,
            self.peak_ram,
        );
        // One event stream feeds both requested views of the run.
        self.bus.finish_live();
        let log = self.bus.into_log();
        let trace = if self.cfg.collect_trace {
            Trace::from_telemetry(&log)
        } else {
            Trace::new()
        };
        let telemetry = if self.cfg.collect_telemetry {
            log
        } else {
            TelemetryLog::default()
        };
        // Fold the lineage hashes of the terminal outputs, in a fixed
        // order — the run's output fingerprint.
        let mut fingerprint = 0xCBF2_9CE4_8422_2325u64;
        for v in &self.terminal {
            fingerprint = mix64(fingerprint ^ self.data_hash.get(v).copied().unwrap_or(0));
        }
        Ok(RunReport {
            metrics,
            records: self.records,
            trace,
            telemetry,
            shape: self.wf.shape(),
            processor: self.cfg.processor,
            storage: self.cfg.storage,
            policy: self.cfg.policy,
            recovery: self.stats,
            output_fingerprint: fingerprint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Direction;
    use crate::task::CostProfile;
    use crate::workflow::WorkflowBuilder;
    use gpuflow_cluster::KernelWork;

    const MB: u64 = 1 << 20;

    fn cluster() -> ClusterSpec {
        ClusterSpec::tiny()
    }

    fn compute_cost(flops: f64) -> CostProfile {
        CostProfile::fully_parallel(KernelWork {
            flops,
            bytes: flops / 10.0,
            parallelism: 1e9,
        })
    }

    /// A flat map workflow: n independent tasks, each reading one block.
    fn map_workflow(n: usize, block_bytes: u64, flops: f64) -> Workflow {
        let mut b = WorkflowBuilder::new();
        for i in 0..n {
            let x = b.input(format!("x{i}"), block_bytes);
            let y = b.intermediate(format!("y{i}"), block_bytes);
            b.submit(
                "map",
                compute_cost(flops),
                &[(x, Direction::In), (y, Direction::Out)],
                false,
            )
            .unwrap();
        }
        b.build()
    }

    fn cfg(processor: ProcessorKind) -> RunConfig {
        let mut c = RunConfig::new(cluster(), processor);
        c.jitter_sigma = 0.0;
        c
    }

    #[test]
    fn all_tasks_complete_and_metrics_cover_them() {
        let wf = map_workflow(10, MB, 1e9);
        let report = run(&wf, &cfg(ProcessorKind::Cpu)).unwrap();
        assert_eq!(report.records.len(), 10);
        assert!(report.makespan() > 0.0);
        let stats = report.metrics.task_type("map").unwrap();
        assert_eq!(stats.count, 10);
        assert!(stats.parallel > 0.0);
        assert_eq!(stats.comm, 0.0, "CPU run has no CPU-GPU communication");
    }

    #[test]
    fn gpu_run_records_comm_and_kernel_time() {
        let wf = map_workflow(4, MB, 1e9);
        let report = run(&wf, &cfg(ProcessorKind::Gpu)).unwrap();
        let stats = report.metrics.task_type("map").unwrap();
        assert!(stats.comm > 0.0, "H2D/D2H must be accounted");
        assert!(stats.parallel > 0.0);
        assert!(report.metrics.gpu_utilization > 0.0);
        assert!(report
            .records
            .iter()
            .all(|r| r.processor == ProcessorKind::Gpu));
    }

    #[test]
    fn gpu_parallel_fraction_beats_cpu_for_big_parallel_work() {
        let wf = map_workflow(1, MB, 1e11);
        let cpu = run(&wf, &cfg(ProcessorKind::Cpu)).unwrap();
        let gpu = run(&wf, &cfg(ProcessorKind::Gpu)).unwrap();
        let sp = cpu.metrics.mean_parallel() / gpu.metrics.mean_parallel();
        assert!(sp > 3.0, "expected a clear device speedup, got {sp}");
    }

    #[test]
    fn dependent_tasks_run_sequentially() {
        let mut b = WorkflowBuilder::new();
        let x = b.input("x", MB);
        let y = b.intermediate("y", MB);
        let z = b.intermediate("z", MB);
        b.submit(
            "first",
            compute_cost(1e9),
            &[(x, Direction::In), (y, Direction::Out)],
            false,
        )
        .unwrap();
        b.submit(
            "second",
            compute_cost(1e9),
            &[(y, Direction::In), (z, Direction::Out)],
            false,
        )
        .unwrap();
        let wf = b.build();
        let report = run(&wf, &cfg(ProcessorKind::Cpu)).unwrap();
        let first = &report.records[0];
        let second = &report.records[1];
        assert_eq!(first.task_type, "first");
        assert!(second.start >= first.end, "RAW dependency must serialise");
    }

    #[test]
    fn second_read_of_same_version_hits_cache() {
        // r2 depends on r1 and re-reads x; with one node the re-read is a
        // cache hit (the dependency keeps the reads from racing).
        let mut spec = cluster();
        spec.nodes = 1;
        let mut b = WorkflowBuilder::new();
        let x = b.input("x", MB);
        let y = b.intermediate("y", MB);
        b.submit(
            "r1",
            compute_cost(1e9),
            &[(x, Direction::In), (y, Direction::Out)],
            false,
        )
        .unwrap();
        b.submit(
            "r2",
            compute_cost(1e9),
            &[(x, Direction::In), (y, Direction::In)],
            false,
        )
        .unwrap();
        let wf = b.build();
        let mut c = cfg(ProcessorKind::Cpu);
        c.cluster = spec;
        let report = run(&wf, &c).unwrap();
        let hits: u32 = report.records.iter().map(|r| r.cache_hits).sum();
        let misses: u32 = report.records.iter().map(|r| r.cache_misses).sum();
        // r1 misses x; r2 hits both x (decoded by r1) and y (written here).
        assert_eq!((hits, misses), (2, 1));
        // The all-hits task has zero deser time.
        assert!(report.records.iter().any(|r| r.deser.is_zero()));
    }

    #[test]
    fn gpu_oom_for_oversized_block() {
        let big = 13 * (1u64 << 30); // > 12 GB device memory
        let wf = map_workflow(1, big, 1e9);
        let mut c = cfg(ProcessorKind::Gpu);
        c.cluster.node.ram_bytes = 512 * (1 << 30); // keep host out of the way
        let err = run(&wf, &c).unwrap_err();
        assert!(matches!(err, RunError::GpuOom { .. }), "{err}");
        // The same workflow runs fine on CPUs.
        let mut c2 = cfg(ProcessorKind::Cpu);
        c2.cluster.node.ram_bytes = 512 * (1 << 30);
        assert!(run(&wf, &c2).is_ok());
    }

    #[test]
    fn host_oom_for_oversized_working_set() {
        let wf = map_workflow(1, MB, 1e9);
        let mut c = cfg(ProcessorKind::Cpu);
        c.cluster.node.ram_bytes = MB; // 1 MB of RAM cannot host 2 MB
        let err = run(&wf, &c).unwrap_err();
        assert!(matches!(err, RunError::HostOom { .. }), "{err}");
    }

    #[test]
    fn local_disk_faster_than_shared_for_data_heavy_run() {
        let wf = map_workflow(8, 256 * MB, 1e6);
        let shared = run(&wf, &cfg(ProcessorKind::Cpu)).unwrap();
        let local = run(
            &wf,
            &cfg(ProcessorKind::Cpu).with_storage(StorageArchitecture::LocalDisk),
        )
        .unwrap();
        // The nodes' local disks in parallel beat the NIC-constrained
        // GPFS path for this layout (round-robin block homes).
        assert!(
            local.makespan() < shared.makespan(),
            "local {} vs shared {}",
            local.makespan(),
            shared.makespan()
        );
    }

    #[test]
    fn locality_policy_accumulates_more_sched_overhead() {
        let wf = map_workflow(16, MB, 1e8);
        let fifo = run(&wf, &cfg(ProcessorKind::Cpu)).unwrap();
        let loc = run(
            &wf,
            &cfg(ProcessorKind::Cpu).with_policy(SchedulingPolicy::DataLocality),
        )
        .unwrap();
        assert!(loc.metrics.sched_overhead > fifo.metrics.sched_overhead);
    }

    #[test]
    fn task_parallelism_bounded_by_gpu_count() {
        // tiny(): 2 nodes x 1 GPU. 8 GPU tasks must run in >= 4 waves,
        // while the CPU run (2x4 cores) finishes in one wave.
        let wf = map_workflow(8, MB, 1e10);
        let cpu = run(&wf, &cfg(ProcessorKind::Cpu)).unwrap();
        let gpu = run(&wf, &cfg(ProcessorKind::Gpu)).unwrap();
        let cpu_span = cpu.metrics.levels[0].span;
        let gpu_span = gpu.metrics.levels[0].span;
        // Per-task GPU compute is ~14x faster, but 4 forced waves eat it.
        let per_task_cpu = cpu.metrics.mean_parallel();
        let per_task_gpu = gpu.metrics.mean_parallel();
        assert!(per_task_gpu < per_task_cpu);
        assert!(
            gpu_span > per_task_gpu * 3.9,
            "waves must serialise GPU tasks"
        );
        assert!(
            cpu_span < per_task_cpu * 3.0,
            "CPU run is one wave (plus skew)"
        );
    }

    #[test]
    fn trace_collection_is_opt_in() {
        let wf = map_workflow(2, MB, 1e9);
        let without = run(&wf, &cfg(ProcessorKind::Cpu)).unwrap();
        assert!(without.trace.is_empty());
        let with = run(&wf, &cfg(ProcessorKind::Cpu).with_trace()).unwrap();
        assert!(!with.trace.is_empty());
        // Every completed task shows a parallel-fraction interval.
        let parallel = with
            .trace
            .records()
            .iter()
            .filter(|r| r.state == TraceState::ParallelFraction)
            .count();
        assert_eq!(parallel, 2);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let wf = map_workflow(12, MB, 1e9);
        let mut c = cfg(ProcessorKind::Cpu);
        c.jitter_sigma = 0.02;
        let a = run(&wf, &c).unwrap();
        let b = run(&wf, &c).unwrap();
        assert_eq!(a.makespan(), b.makespan());
        let c2 = c.clone().with_seed(999);
        let d = run(&wf, &c2).unwrap();
        assert_ne!(
            a.makespan(),
            d.makespan(),
            "different seed, different noise"
        );
    }

    #[test]
    fn sched_overhead_scales_with_task_count() {
        let few = run(&map_workflow(4, MB, 1e8), &cfg(ProcessorKind::Cpu)).unwrap();
        let many = run(&map_workflow(32, MB, 1e8), &cfg(ProcessorKind::Cpu)).unwrap();
        let ratio = many.metrics.sched_overhead / few.metrics.sched_overhead;
        assert!(
            (ratio - 8.0).abs() < 1e-6,
            "one decision per task, got {ratio}"
        );
    }

    #[test]
    fn empty_workflow_completes_immediately() {
        let wf = WorkflowBuilder::new().build();
        let report = run(&wf, &cfg(ProcessorKind::Cpu)).unwrap();
        assert_eq!(report.makespan(), 0.0);
        assert!(report.records.is_empty());
    }
}

#[cfg(test)]
mod thread_tests {
    use super::*;
    use crate::data::Direction;
    use crate::task::CostProfile;
    use crate::workflow::{Workflow, WorkflowBuilder};
    use gpuflow_cluster::KernelWork;

    const MB: u64 = 1 << 20;

    fn map_workflow(n: usize) -> Workflow {
        let mut b = WorkflowBuilder::new();
        let cost = CostProfile::fully_parallel(KernelWork {
            flops: 1e10,
            bytes: 1e8,
            parallelism: 1e9,
        });
        for i in 0..n {
            let x = b.input(format!("x{i}"), MB);
            b.submit("map", cost, &[(x, Direction::In)], false).unwrap();
        }
        b.build()
    }

    fn cfg(threads: usize) -> RunConfig {
        let mut c =
            RunConfig::new(ClusterSpec::tiny(), ProcessorKind::Cpu).with_cpu_threads(threads);
        c.jitter_sigma = 0.0;
        c
    }

    #[test]
    fn thread_speedup_model_is_sublinear() {
        assert_eq!(RunConfig::thread_speedup(1), 1.0);
        assert!(RunConfig::thread_speedup(4) < 4.0);
        assert!(RunConfig::thread_speedup(4) > RunConfig::thread_speedup(2));
    }

    #[test]
    fn single_task_benefits_from_threads() {
        // One task on an idle cluster: intra-task threads are free wins.
        let wf = map_workflow(1);
        let t1 = run(&wf, &cfg(1)).unwrap().makespan();
        let t4 = run(&wf, &cfg(4)).unwrap().makespan();
        assert!(t4 < t1, "threads must accelerate a lone task: {t1} vs {t4}");
    }

    #[test]
    fn saturated_cluster_prefers_one_thread_per_task() {
        // 16 tasks on 8 cores (tiny cluster): oversubscribing threads
        // costs task parallelism and loses overall — the practice the
        // paper's frameworks recommend (§3.3).
        let wf = map_workflow(16);
        let t1 = run(&wf, &cfg(1)).unwrap().makespan();
        let t4 = run(&wf, &cfg(4)).unwrap().makespan();
        assert!(
            t1 < t4,
            "under task abundance one core per task must win: {t1} vs {t4}"
        );
    }

    #[test]
    fn bad_noise_and_cache_configs_fail_fast() {
        let wf = map_workflow(1);
        let mut c = cfg(1);
        c.jitter_sigma = 1.5;
        assert!(matches!(run(&wf, &c), Err(RunError::InvalidConfig(_))));
        let mut c = cfg(1);
        c.cache_fraction = -0.1;
        assert!(matches!(run(&wf, &c), Err(RunError::InvalidConfig(_))));
    }

    #[test]
    fn oversized_thread_counts_fail_fast() {
        let wf = map_workflow(1);
        // tiny() nodes have 4 cores; 8 threads per task cannot ever fit.
        let err = run(&wf, &cfg(8)).unwrap_err();
        assert!(matches!(err, RunError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn threads_never_used_by_gpu_or_serial_tasks() {
        let mut b = WorkflowBuilder::new();
        let x = b.input("x", MB);
        let serial = CostProfile::serial_only(KernelWork {
            flops: 1e8,
            bytes: 1e6,
            parallelism: 1.0,
        });
        b.submit("serial", serial, &[(x, Direction::In)], false)
            .unwrap();
        let wf = b.build();
        // With 4-thread config a serial task still holds one core: eight
        // such workflows' worth of slots remain on a 4-core node.
        let mut c = cfg(4);
        c.cluster.nodes = 1;
        let report = run(&wf, &c).unwrap();
        assert_eq!(report.records.len(), 1);
        // GPU mode: device tasks keep one host core regardless of config.
        let wfg = map_workflow(2);
        let cg = RunConfig::new(ClusterSpec::tiny(), ProcessorKind::Gpu).with_cpu_threads(4);
        assert!(run(&wfg, &cg).is_ok());
    }
}

#[cfg(test)]
mod critical_path_tests {
    use super::*;
    use crate::data::Direction;
    use crate::task::CostProfile;
    use crate::workflow::WorkflowBuilder;
    use gpuflow_cluster::KernelWork;

    /// A 3-task heavy chain competes with light filler tasks on two
    /// cores. Generation order starts the fillers (lower ids) and delays
    /// the chain — which is the critical path — while the CP policy
    /// starts the chain immediately and hides the fillers behind it.
    fn contended_workflow() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let heavy = CostProfile::fully_parallel(KernelWork {
            flops: 3e10,
            bytes: 1e6,
            parallelism: 1e9,
        });
        let light = CostProfile::fully_parallel(KernelWork {
            flops: 1e10,
            bytes: 1e6,
            parallelism: 1e9,
        });
        // Fillers submitted FIRST (generation-order bait).
        for i in 0..3 {
            let s = b.input(format!("s{i}"), 1 << 20);
            b.submit("filler", light, &[(s, Direction::In)], false)
                .unwrap();
        }
        // The chain.
        let x = b.input("x", 1 << 20);
        let mut prev = x;
        for i in 0..3 {
            let out = b.intermediate(format!("c{i}"), 1 << 20);
            b.submit(
                "chain",
                heavy,
                &[(prev, Direction::In), (out, Direction::Out)],
                false,
            )
            .unwrap();
            prev = out;
        }
        b.build()
    }

    fn two_core_cluster() -> ClusterSpec {
        let mut c = ClusterSpec::tiny();
        c.nodes = 1;
        c.node.cpu_cores = 2;
        c.node.gpus = 1;
        c
    }

    #[test]
    fn upward_rank_prioritises_the_chain() {
        let wf = contended_workflow();
        let mut cfg = RunConfig::new(two_core_cluster(), ProcessorKind::Cpu)
            .with_policy(SchedulingPolicy::CriticalPath);
        cfg.jitter_sigma = 0.0;
        let cp = run(&wf, &cfg).unwrap();
        let fifo_cfg = {
            let mut c = cfg.clone();
            c.policy = SchedulingPolicy::GenerationOrder;
            c
        };
        let fifo = run(&wf, &fifo_cfg).unwrap();
        // FIFO fills both cores with fillers before the chain can start;
        // CP starts the critical path at t=0 and hides the fillers on the
        // second core.
        assert!(
            cp.makespan() < fifo.makespan() * 0.95,
            "critical-path should beat FIFO here: {} vs {}",
            cp.makespan(),
            fifo.makespan()
        );
        // First dispatched task under CP is the chain head, not a filler.
        let first_cp = cp.records.iter().min_by_key(|r| r.start).unwrap();
        assert_eq!(first_cp.task_type, "chain");
    }

    #[test]
    fn critical_path_completes_all_workload_shapes() {
        let wf = contended_workflow();
        for proc in ProcessorKind::ALL {
            let cfg = RunConfig::new(ClusterSpec::tiny(), proc)
                .with_policy(SchedulingPolicy::CriticalPath);
            let report = run(&wf, &cfg).unwrap();
            assert_eq!(report.records.len(), wf.tasks().len());
        }
    }
}

#[cfg(test)]
mod heterogeneous_tests {
    use super::*;
    use crate::data::Direction;
    use crate::task::CostProfile;
    use crate::workflow::{Workflow, WorkflowBuilder};
    use gpuflow_cluster::{KernelWork, NodeResources};

    fn gpu_heavy_workflow(n: usize) -> Workflow {
        let mut b = WorkflowBuilder::new();
        let cost = CostProfile::fully_parallel(KernelWork {
            flops: 1e11,
            bytes: 1e8,
            parallelism: 1e9,
        });
        for i in 0..n {
            let x = b.input(format!("x{i}"), 1 << 20);
            b.submit("work", cost, &[(x, Direction::In)], false)
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn gpu_tasks_avoid_gpu_less_nodes() {
        // Node 0 has no GPUs; every GPU task must land on node 1.
        let cluster = ClusterSpec::tiny().with_overrides(vec![
            NodeResources {
                cpu_cores: 4,
                gpus: 0,
            },
            NodeResources {
                cpu_cores: 4,
                gpus: 2,
            },
        ]);
        let wf = gpu_heavy_workflow(6);
        let report = run(&wf, &RunConfig::new(cluster.clone(), ProcessorKind::Gpu)).unwrap();
        assert!(report.records.iter().all(|r| r.node == 1));
        report.check_invariants(&wf, &cluster).unwrap();
    }

    #[test]
    fn cpu_runs_use_all_heterogeneous_cores() {
        let cluster = ClusterSpec::tiny().with_overrides(vec![
            NodeResources {
                cpu_cores: 6,
                gpus: 0,
            },
            NodeResources {
                cpu_cores: 2,
                gpus: 2,
            },
        ]);
        let wf = gpu_heavy_workflow(8);
        let report = run(&wf, &RunConfig::new(cluster.clone(), ProcessorKind::Cpu)).unwrap();
        report.check_invariants(&wf, &cluster).unwrap();
        // Both nodes participated and node 0 hosted more tasks.
        let on_node = |n: usize| report.records.iter().filter(|r| r.node == n).count();
        assert!(on_node(0) > on_node(1), "{} vs {}", on_node(0), on_node(1));
        assert!(on_node(1) > 0);
    }

    #[test]
    fn denser_gpu_nodes_pay_more_pcie_contention() {
        // Same 8 GPUs total: spread over 8 nodes (1 per bus) vs packed
        // into 2 nodes (4 per bus). Transfer-heavy tasks finish sooner
        // when every device has its own PCIe bus.
        let mut spread = ClusterSpec::minotauro();
        spread.node.gpus = 1;
        let packed = ClusterSpec::minotauro().with_overrides(
            (0..8)
                .map(|n| NodeResources {
                    cpu_cores: 16,
                    gpus: if n < 2 { 4 } else { 0 },
                })
                .collect(),
        );
        // Transfer-dominated GPU tasks: big bytes, modest flops.
        let mut b = WorkflowBuilder::new();
        let cost = CostProfile::fully_parallel(KernelWork {
            flops: 1e9,
            bytes: 1e9,
            parallelism: 1e9,
        });
        for i in 0..8 {
            let x = b.input(format!("x{i}"), 1 << 30);
            b.submit("xfer", cost, &[(x, Direction::In)], false)
                .unwrap();
        }
        let wf = b.build();
        let t_spread = run(&wf, &RunConfig::new(spread, ProcessorKind::Gpu))
            .unwrap()
            .makespan();
        let t_packed = run(&wf, &RunConfig::new(packed, ProcessorKind::Gpu))
            .unwrap()
            .makespan();
        assert!(
            t_spread < t_packed,
            "dedicated buses must win: spread {t_spread} vs packed {t_packed}"
        );
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use crate::data::Direction;
    use crate::task::CostProfile;
    use crate::workflow::WorkflowBuilder;
    use gpuflow_cluster::KernelWork;

    const MB: u64 = 1 << 20;

    fn compute_cost(flops: f64) -> CostProfile {
        CostProfile::fully_parallel(KernelWork {
            flops,
            bytes: flops / 10.0,
            parallelism: 1e9,
        })
    }

    /// A three-stage pipeline over `width` independent chains; plenty of
    /// intermediates to lose in a crash.
    fn pipeline(width: usize) -> Workflow {
        let mut b = WorkflowBuilder::new();
        for i in 0..width {
            let x = b.input(format!("x{i}"), MB);
            let a = b.intermediate(format!("a{i}"), MB);
            let c = b.intermediate(format!("c{i}"), MB);
            b.submit(
                "stage0",
                compute_cost(1e9),
                &[(x, Direction::In), (a, Direction::Out)],
                false,
            )
            .unwrap();
            b.submit(
                "stage1",
                compute_cost(1e9),
                &[(a, Direction::In), (c, Direction::Out)],
                false,
            )
            .unwrap();
        }
        b.build()
    }

    fn base_cfg() -> RunConfig {
        let mut c = RunConfig::new(ClusterSpec::tiny(), ProcessorKind::Cpu);
        c.jitter_sigma = 0.0;
        c.storage = StorageArchitecture::LocalDisk;
        c
    }

    #[test]
    fn empty_plan_is_a_pure_observer() {
        let wf = pipeline(6);
        let plain = run(&wf, &base_cfg().with_telemetry()).unwrap();
        let observed = run(
            &wf,
            &base_cfg().with_telemetry().with_faults(FaultPlan::new(7)),
        )
        .unwrap();
        assert_eq!(plain.telemetry.to_jsonl(), observed.telemetry.to_jsonl());
        assert_eq!(plain.makespan(), observed.makespan());
        assert_eq!(plain.output_fingerprint, observed.output_fingerprint);
        assert_eq!(observed.recovery, RecoveryStats::default());
    }

    #[test]
    fn transient_failures_retry_and_converge() {
        let wf = pipeline(6);
        let baseline = run(&wf, &base_cfg()).unwrap();
        let plan = FaultPlan::new(42).with_task_failures(None, 0.3);
        let faulted = run(&wf, &base_cfg().with_faults(plan)).unwrap();
        assert!(faulted.recovery.transient_failures > 0, "p=0.3 must bite");
        assert_eq!(
            faulted.recovery.retries,
            faulted.recovery.transient_failures
        );
        assert_eq!(faulted.output_fingerprint, baseline.output_fingerprint);
        assert!(faulted.makespan() > baseline.makespan());
        faulted.check_invariants(&wf, &ClusterSpec::tiny()).unwrap();
    }

    #[test]
    fn retry_budget_exhaustion_is_a_typed_error() {
        let wf = pipeline(2);
        let plan = FaultPlan::new(1).with_task_failures(Some("stage0"), 0.9999);
        match run(&wf, &base_cfg().with_faults(plan)) {
            Err(RunError::TaskFailed {
                task_type,
                attempts,
            }) => {
                assert_eq!(task_type, "stage0");
                assert_eq!(attempts, RecoveryPolicy::default().max_retries + 1);
            }
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    #[test]
    fn transient_node_crash_recovers_with_same_fingerprint() {
        let wf = pipeline(8);
        let baseline = run(&wf, &base_cfg()).unwrap();
        // Crash node 0 mid-run, long before the fault-free makespan
        // ends, and bring it back shortly after.
        let at = baseline.makespan() * 0.4;
        let plan = FaultPlan::new(3).with_node_crash(0, at, Some(at));
        let faulted = run(&wf, &base_cfg().with_telemetry().with_faults(plan)).unwrap();
        assert_eq!(faulted.output_fingerprint, baseline.output_fingerprint);
        assert!(
            faulted.recovery.blocks_invalidated > 0,
            "the crash must cost something: {:?}",
            faulted.recovery
        );
        faulted.check_invariants(&wf, &ClusterSpec::tiny()).unwrap();
        let jsonl = faulted.telemetry.to_jsonl();
        assert!(jsonl.contains("\"ev\":\"node-down\""));
        assert!(jsonl.contains("\"ev\":\"node-up\""));
    }

    #[test]
    fn permanent_crash_of_every_node_is_unrecoverable() {
        let wf = pipeline(4);
        let plan = FaultPlan::new(5)
            .with_node_crash(0, 1e-4, None)
            .with_node_crash(1, 1e-4, None);
        match run(&wf, &base_cfg().with_faults(plan)) {
            Err(RunError::Unrecoverable { completed, total }) => {
                assert!(completed < total);
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }

    #[test]
    fn gpu_failure_degrades_to_cpu_only_when_allowed() {
        let wf = pipeline(4);
        let mut cfg = base_cfg();
        cfg.processor = ProcessorKind::Gpu;
        let baseline = run(&wf, &cfg).unwrap();
        // Kill the single GPU on both tiny-cluster nodes immediately.
        let plan = FaultPlan::new(9)
            .with_gpu_failure(0, 0.0)
            .with_gpu_failure(1, 0.0);
        let strict = run(&wf, &cfg.clone().with_faults(plan.clone()));
        assert!(
            matches!(strict, Err(RunError::Unrecoverable { .. })),
            "no fallback, no devices, no progress: {strict:?}"
        );
        let fallback = RecoveryPolicy {
            gpu_to_cpu_fallback: true,
            ..RecoveryPolicy::default()
        };
        let degraded = run(&wf, &cfg.with_faults(plan).with_recovery(fallback)).unwrap();
        assert!(degraded.recovery.gpu_fallbacks > 0);
        assert_eq!(degraded.output_fingerprint, baseline.output_fingerprint);
        assert!(
            degraded
                .records
                .iter()
                .all(|r| r.processor == ProcessorKind::Cpu),
            "every recorded attempt ran on a core"
        );
    }

    #[test]
    fn straggler_and_link_degradation_slow_the_run() {
        let wf = pipeline(6);
        let baseline = run(&wf, &base_cfg()).unwrap();
        let horizon = baseline.makespan() * 10.0;
        let slow = FaultPlan::new(11)
            .with_straggler(0, 0.0, horizon, 4.0)
            .with_straggler(1, 0.0, horizon, 4.0)
            .with_link_degradation(0.0, horizon, 3.0);
        let slowed = run(&wf, &base_cfg().with_faults(slow)).unwrap();
        assert!(
            slowed.makespan() > baseline.makespan() * 2.0,
            "4x compute + 3x links must dominate: {} vs {}",
            slowed.makespan(),
            baseline.makespan()
        );
        assert_eq!(slowed.output_fingerprint, baseline.output_fingerprint);
    }

    #[test]
    fn faulted_runs_reproduce_bit_for_bit() {
        let wf = pipeline(8);
        let plan = FaultPlan::new(21)
            .with_node_crash(1, 0.02, Some(0.05))
            .with_task_failures(None, 0.15);
        let cfg = base_cfg().with_telemetry().with_faults(plan);
        let a = run(&wf, &cfg).unwrap();
        let b = run(&wf, &cfg).unwrap();
        assert_eq!(a.telemetry.to_jsonl(), b.telemetry.to_jsonl());
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.output_fingerprint, b.output_fingerprint);
    }
}
