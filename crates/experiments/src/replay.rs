//! Production-trace replay scenarios (`repro replay`).
//!
//! The paper's experiments run one workflow at a time from a cold
//! start; production GPU clusters look nothing like that. System-wide
//! telemetry studies of real fleets (see PAPERS.md) report three robust
//! shapes: a **diurnal arrival curve** (submissions follow the working
//! day), **heavy-tailed job sizes** (most jobs are small, a few are
//! enormous), and **mixed tenancy** (concurrent users with different
//! workload mixes). This module turns those shapes into *deterministic*
//! scenarios, in the Task Bench spirit of parameterized, regenerable
//! workloads: every sample is drawn with the stateless `mix64` hash
//! keyed by `(seed, job, salt)`, so the same seed regenerates the same
//! submission log, the same DAG, and — through the executor's virtual
//! clock — the same metrics series at any `--threads` count.
//!
//! A scenario is a set of jobs, each a small DAG (wide fan-out, a
//! stencil sweep, or a reduction tree — the shapes of
//! [`crate::stress`], scaled down), whose root tasks are released into
//! the executor at the job's sampled arrival instant via
//! [`RunConfig::with_arrivals`]. The run is folded into a
//! [`MetricsRegistry`], and the artifact golden-pins the submission
//! log, the metrics-over-time series, and the final Prometheus
//! exposition snapshot. `--chaos` adds a seeded [`FaultPlan`] for a
//! production-shaped *bad day*.

use std::fmt::Write as _;

use gpuflow_chaos::{mix64, FaultPlan};
use gpuflow_cluster::{ClusterSpec, ProcessorKind, StorageArchitecture};
use gpuflow_runtime::{MetricsRegistry, RunConfig, SchedulingPolicy};
use gpuflow_sim::SimDuration;

pub use gpuflow_runtime::jobs::build;
pub use gpuflow_runtime::{JobShape, JobSpec};

/// Weight of each of the 24 "hours" of the diurnal arrival curve. The
/// scenario horizon is mapped onto this day: a deep overnight trough, a
/// morning ramp, a midday plateau, and an evening tail — the canonical
/// shape of production submission logs.
const DIURNAL_WEIGHTS: [u32; 24] = [
    2, 1, 1, 1, 1, 2, 4, 8, 14, 18, 20, 20, 18, 19, 20, 19, 16, 12, 9, 7, 5, 4, 3, 2,
];

/// Parameters of one replay scenario.
#[derive(Debug, Clone)]
pub struct ReplaySpec {
    /// Master seed: every sampled quantity is a pure function of it.
    pub seed: u64,
    /// Number of tenants in the mix.
    pub tenants: usize,
    /// Number of jobs submitted over the horizon.
    pub jobs: usize,
    /// Scenario horizon, virtual seconds, onto which the diurnal day is
    /// mapped.
    pub horizon_secs: f64,
    /// Inject the scenario's seeded fault plan.
    pub chaos: bool,
    /// Metrics sampling interval, virtual seconds.
    pub interval_secs: f64,
}

impl Default for ReplaySpec {
    fn default() -> Self {
        ReplaySpec {
            seed: 0xD1A1,
            tenants: 3,
            jobs: 24,
            horizon_secs: 4.0,
            chaos: false,
            interval_secs: 0.25,
        }
    }
}

/// Picks an index from integer `weights` with hash `h` (cumulative
/// categorical sampling; no floats).
fn weighted_index(weights: &[u32], h: u64) -> usize {
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    let mut x = h % total.max(1);
    for (i, &w) in weights.iter().enumerate() {
        if x < w as u64 {
            return i;
        }
        x -= w as u64;
    }
    weights.len() - 1
}

/// Samples the scenario's job set. Deterministic: every field of every
/// job is a pure function of `(spec.seed, job index)`. Jobs are
/// returned in submission order (arrival, then id).
pub fn generate(spec: &ReplaySpec) -> Vec<JobSpec> {
    let mut jobs = Vec::with_capacity(spec.jobs);
    for j in 0..spec.jobs {
        let key = |salt: u64| mix64(spec.seed ^ (j as u64).wrapping_mul(0x9E37) ^ salt);
        // Diurnal arrival: pick an hour bucket by weight, then a
        // uniform offset inside it, mapped onto the horizon.
        let hour = weighted_index(&DIURNAL_WEIGHTS, key(0xA1));
        let frac_millionths = key(0xB2) % 1_000_000;
        let day_pos = (hour as f64 + frac_millionths as f64 / 1e6) / 24.0;
        let arrival_secs = spec.horizon_secs * day_pos;
        // Tenant mix: earlier tenants submit more (weights T, T-1, .., 1).
        let tenant_weights: Vec<u32> = (0..spec.tenants.max(1))
            .map(|t| (spec.tenants.max(1) - t) as u32)
            .collect();
        let tenant = weighted_index(&tenant_weights, key(0xC3));
        // Shape: each tenant has a preferred template (tenant % 3) it
        // submits half the time; the rest is uniform.
        let h_shape = key(0xD4);
        let shape_idx = if h_shape % 2 == 0 {
            tenant % JobShape::ALL.len()
        } else {
            ((h_shape >> 1) % JobShape::ALL.len() as u64) as usize
        };
        let shape = JobShape::ALL[shape_idx];
        // Heavy-tailed size: a geometric number of doublings (trailing
        // zeros of a uniform hash) over a small base — most jobs are
        // tiny, a few are 2^5 bigger.
        let h_size = key(0xE5);
        let k = (h_size.trailing_zeros() as u64).min(5);
        let base = 8u64 << k;
        let tasks = (base + (h_size >> 8) % base) as usize;
        jobs.push(JobSpec {
            id: j,
            tenant,
            shape,
            tasks,
            arrival_secs,
            priority: 0,
        });
    }
    jobs.sort_by(|a, b| {
        a.arrival_secs
            .total_cmp(&b.arrival_secs)
            .then(a.id.cmp(&b.id))
    });
    jobs
}

/// The scenario's seeded fault plan (used with `--chaos`): a mid-run
/// node crash with rejoin, a straggler window, and a transient failure
/// rate on the dominant tenant's wide tasks — a production-shaped bad
/// day, fully determined by the spec seed.
pub fn fault_plan(spec: &ReplaySpec) -> FaultPlan {
    let h = mix64(spec.seed ^ 0xFA);
    let crash_node = (h % 8) as usize;
    let straggler_node = ((h >> 8) % 8) as usize;
    let t = spec.horizon_secs;
    FaultPlan::new(spec.seed)
        .with_node_crash(crash_node, 0.35 * t, Some(0.25 * t))
        .with_straggler(straggler_node, 0.5 * t, 0.8 * t, 2.5)
        .with_task_failures(Some("wide_t0"), 0.05)
}

/// The submission log: one line per job, in submission order.
pub fn submission_log(jobs: &[JobSpec]) -> String {
    let mut out = String::new();
    for j in jobs {
        let _ = writeln!(
            out,
            "submit t={:.6} tenant={} job={} shape={} tasks={}",
            j.arrival_secs,
            j.tenant,
            j.id,
            j.shape.label(),
            j.tasks
        );
    }
    out
}

/// Everything one replay run produces.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The scenario parameters.
    pub spec: ReplaySpec,
    /// The sampled jobs, in submission order.
    pub jobs: Vec<JobSpec>,
    /// Total tasks in the built workflow.
    pub tasks: usize,
    /// Virtual makespan, seconds.
    pub makespan: f64,
    /// The folded metrics registry (series + exposition source).
    pub metrics: MetricsRegistry,
    /// Output fingerprint of the run (lineage hash).
    pub fingerprint: u64,
}

/// Runs a replay scenario end to end: sample jobs, build the workflow,
/// execute with telemetry and per-job arrivals, fold the metrics.
pub fn run(spec: &ReplaySpec) -> ReplayReport {
    let jobs = generate(spec);
    let (workflow, arrivals) = build(&jobs);
    let tasks = workflow.tasks().len();
    let mut cfg = RunConfig::new(ClusterSpec::minotauro(), ProcessorKind::Gpu)
        .with_storage(StorageArchitecture::SharedDisk)
        .with_policy(SchedulingPolicy::GenerationOrder)
        .with_seed(spec.seed)
        .with_arrivals(arrivals)
        .with_telemetry();
    cfg.jitter_sigma = 0.0;
    if spec.chaos {
        cfg = cfg.with_faults(fault_plan(spec));
    }
    let report = gpuflow_runtime::run(&workflow, &cfg).expect("replay scenario must complete");
    let metrics = MetricsRegistry::from_log(
        &report.telemetry,
        SimDuration::from_secs_f64(spec.interval_secs),
    );
    ReplayReport {
        spec: spec.clone(),
        jobs,
        tasks,
        makespan: report.makespan(),
        metrics,
        fingerprint: report.output_fingerprint,
    }
}

impl ReplayReport {
    /// The golden-pinned artifact: scenario header, submission log,
    /// fault plan (under chaos), metrics-over-time series, and the
    /// final Prometheus exposition snapshot.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "replay scenario: seed {:#x}, {} jobs, {} tenants, horizon {:.2} s, chaos {}",
            self.spec.seed,
            self.spec.jobs,
            self.spec.tenants,
            self.spec.horizon_secs,
            if self.spec.chaos { "on" } else { "off" },
        );
        let _ = writeln!(
            out,
            "workflow: {} tasks   makespan: {:.9} s   fingerprint: {:#018x}",
            self.tasks, self.makespan, self.fingerprint
        );
        out.push_str("\n-- submission log --\n");
        out.push_str(&submission_log(&self.jobs));
        if self.spec.chaos {
            out.push_str("\n-- fault plan --\n");
            out.push_str(&fault_plan(&self.spec).render());
            out.push('\n');
        }
        out.push_str("\n-- metrics series --\n");
        out.push_str(&self.metrics.render_series());
        out.push_str("\n-- exposition --\n");
        out.push_str(&self.metrics.expose());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let spec = ReplaySpec::default();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_secs <= w[1].arrival_secs));
        assert_eq!(a.len(), spec.jobs);
        // All arrivals inside the horizon.
        assert!(a
            .iter()
            .all(|j| (0.0..spec.horizon_secs).contains(&j.arrival_secs)));
    }

    #[test]
    fn different_seeds_sample_different_scenarios() {
        let a = generate(&ReplaySpec::default());
        let b = generate(&ReplaySpec {
            seed: 0xBEEF,
            ..ReplaySpec::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn job_sizes_are_heavy_tailed_not_constant() {
        let spec = ReplaySpec {
            jobs: 200,
            ..ReplaySpec::default()
        };
        let jobs = generate(&spec);
        let min = jobs.iter().map(|j| j.tasks).min().unwrap();
        let max = jobs.iter().map(|j| j.tasks).max().unwrap();
        assert!(min >= 8);
        assert!(max >= 4 * min, "tail missing: min {min}, max {max}");
        // The tenant mix is skewed toward tenant 0.
        let t0 = jobs.iter().filter(|j| j.tenant == 0).count();
        let t_last = jobs.iter().filter(|j| j.tenant == spec.tenants - 1).count();
        assert!(t0 > t_last, "tenant skew missing: {t0} vs {t_last}");
    }

    #[test]
    fn build_releases_only_root_tasks() {
        let spec = ReplaySpec {
            jobs: 6,
            ..ReplaySpec::default()
        };
        let jobs = generate(&spec);
        let (wf, arrivals) = build(&jobs);
        assert!(!arrivals.is_empty());
        for (tid, at) in &arrivals {
            assert!(wf.predecessors(*tid).is_empty(), "arrival for non-root");
            assert!((0.0..spec.horizon_secs).contains(at));
        }
    }

    #[test]
    fn replay_run_is_bit_reproducible() {
        let spec = ReplaySpec {
            jobs: 6,
            ..ReplaySpec::default()
        };
        let a = run(&spec);
        let b = run(&spec);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.render(), b.render());
        // The makespan extends past the last arrival: jobs really are
        // held back until their submission instants.
        let last = a.jobs.last().unwrap().arrival_secs;
        assert!(
            a.makespan > last,
            "makespan {} vs last arrival {last}",
            a.makespan
        );
    }

    #[test]
    fn chaos_scenario_completes_and_differs() {
        let base = ReplaySpec {
            jobs: 6,
            ..ReplaySpec::default()
        };
        let chaos = ReplaySpec {
            chaos: true,
            ..base.clone()
        };
        let a = run(&base);
        let b = run(&chaos);
        assert!(b.makespan >= a.makespan, "faults cannot speed a run up");
        assert!(b.render().contains("-- fault plan --"));
    }
}
