//! Scheduler ablation and measurement-variance studies (extensions).
//!
//! * **Scheduler ablation** — adds the HEFT-style critical-path policy to
//!   the paper's two and compares all three across DAG shapes: the
//!   wide-shallow Matmul (ordering barely matters), the staircase
//!   Cholesky (ordering matters a lot), and iterative K-means (placement
//!   matters more than ordering).
//! * **Run variance** — reproduces the paper's measurement protocol
//!   (§4.4.5: six runs, first discarded) against the simulator's seeded
//!   jitter and reports mean/σ/CV per configuration.

use gpuflow_algorithms::{CholeskyConfig, KmeansConfig, MatmulConfig};
use gpuflow_analysis::{confidence_half_width_95, mean, std_dev};
use gpuflow_cluster::{ClusterSpec, ProcessorKind};
use gpuflow_data::DatasetSpec;
use gpuflow_runtime::{RunConfig, SchedulingPolicy, Workflow};

use crate::table::TextTable;

/// The three policies of the ablation.
pub const POLICIES: [SchedulingPolicy; 3] = [
    SchedulingPolicy::GenerationOrder,
    SchedulingPolicy::DataLocality,
    SchedulingPolicy::CriticalPath,
];

/// Makespans of one workload under every policy.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Workload label.
    pub workload: String,
    /// `(policy, makespan seconds)`, in [`POLICIES`] order.
    pub makespans: Vec<(SchedulingPolicy, f64)>,
}

impl AblationRow {
    /// The fastest policy for this workload.
    pub fn best(&self) -> (SchedulingPolicy, f64) {
        self.makespans
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite makespans"))
            .expect("non-empty")
    }

    /// Makespan under one policy.
    pub fn under(&self, policy: SchedulingPolicy) -> f64 {
        self.makespans
            .iter()
            .find(|(p, _)| *p == policy)
            .expect("policy measured")
            .1
    }
}

/// The scheduler-ablation result.
#[derive(Debug, Clone)]
pub struct SchedulerAblation {
    /// One row per workload.
    pub rows: Vec<AblationRow>,
}

fn ablate(workload: &str, wf: &Workflow, processor: ProcessorKind) -> AblationRow {
    let makespans = POLICIES
        .iter()
        .map(|&policy| {
            let cfg = RunConfig::new(ClusterSpec::minotauro(), processor).with_policy(policy);
            let report = gpuflow_runtime::run(wf, &cfg).expect("workload fits");
            (policy, report.makespan())
        })
        .collect();
    AblationRow {
        workload: workload.to_string(),
        makespans,
    }
}

/// Runs the three-policy comparison across the three DAG shapes.
pub fn run_scheduler_ablation() -> SchedulerAblation {
    let mut rows = Vec::new();
    let chol = CholeskyConfig::new(DatasetSpec::uniform("abl-chol", 32_768, 32_768, 1), 8)
        .expect("valid grid")
        .build_workflow();
    rows.push(ablate("Cholesky 8GB 8x8 (CPU)", &chol, ProcessorKind::Cpu));
    rows.push(ablate("Cholesky 8GB 8x8 (GPU)", &chol, ProcessorKind::Gpu));
    let mm = MatmulConfig::new(gpuflow_data::paper::matmul_8gb(), 8)
        .expect("valid grid")
        .build_workflow();
    rows.push(ablate("Matmul 8GB 8x8 (GPU)", &mm, ProcessorKind::Gpu));
    let km = KmeansConfig::new(gpuflow_data::paper::kmeans_10gb(), 64, 10, 5)
        .expect("valid grid")
        .build_workflow();
    rows.push(ablate("K-means 10GB 64x1 (CPU)", &km, ProcessorKind::Cpu));
    SchedulerAblation { rows }
}

impl SchedulerAblation {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Scheduler ablation: generation order vs locality vs critical path",
            [
                "workload",
                "gen. order s",
                "locality s",
                "crit. path s",
                "best",
            ],
        );
        for r in &self.rows {
            t.push([
                r.workload.clone(),
                format!("{:.2}", r.under(SchedulingPolicy::GenerationOrder)),
                format!("{:.2}", r.under(SchedulingPolicy::DataLocality)),
                format!("{:.2}", r.under(SchedulingPolicy::CriticalPath)),
                r.best().0.label().to_string(),
            ]);
        }
        t.render()
    }
}

/// Mean/σ statistics of repeated runs of one configuration.
#[derive(Debug, Clone)]
pub struct VarianceRow {
    /// Configuration label.
    pub label: String,
    /// Per-seed makespans after discarding the warm-up run.
    pub makespans: Vec<f64>,
}

impl VarianceRow {
    /// Mean makespan.
    pub fn mean(&self) -> f64 {
        mean(&self.makespans)
    }

    /// Coefficient of variation (σ / mean).
    pub fn cv(&self) -> f64 {
        std_dev(&self.makespans) / self.mean().max(1e-12)
    }
}

/// Runs the paper's six-run protocol (first run discarded as warm-up)
/// for the Fig. 1 K-means configuration on both processors.
pub fn run_variance() -> Vec<VarianceRow> {
    let wf = KmeansConfig::new(gpuflow_data::paper::kmeans_10gb(), 256, 10, 1)
        .expect("valid grid")
        .build_workflow();
    ProcessorKind::ALL
        .iter()
        .map(|&p| {
            let makespans: Vec<f64> = (0..6u64)
                .map(|rep| {
                    let cfg =
                        RunConfig::new(ClusterSpec::minotauro(), p).with_seed(0x5EED_0000 + rep);
                    gpuflow_runtime::run(&wf, &cfg).expect("fits").makespan()
                })
                .skip(1) // discard the warm-up, like the paper
                .collect();
            VarianceRow {
                label: format!("K-means Fig.1 ({})", p.label()),
                makespans,
            }
        })
        .collect()
}

/// Renders the variance study with 95 % confidence intervals (Student t,
/// n−1 degrees of freedom — the small-sample treatment the paper's
/// six-run protocol calls for).
pub fn render_variance() -> String {
    let mut t = TextTable::new(
        "Run-to-run variance (6 seeded runs, warm-up discarded)",
        ["configuration", "mean s", "sigma s", "CV %", "95% CI"],
    );
    for row in run_variance() {
        let half = confidence_half_width_95(&row.makespans);
        t.push([
            row.label.clone(),
            format!("{:.3}", row.mean()),
            format!("{:.4}", std_dev(&row.makespans)),
            format!("{:.2}", row.cv() * 100.0),
            format!("±{half:.4}"),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_path_is_competitive_everywhere_and_wins_on_cholesky_cpu() {
        let ab = run_scheduler_ablation();
        for row in &ab.rows {
            let best = row.best().1;
            let cp = row.under(SchedulingPolicy::CriticalPath);
            assert!(
                cp <= best * 1.35,
                "{}: critical path too far from best ({cp} vs {best})",
                row.workload
            );
        }
        // On the staircase DAG the ordering policy should not lose to
        // plain FIFO.
        let chol = &ab.rows[0];
        assert!(
            chol.under(SchedulingPolicy::CriticalPath)
                <= chol.under(SchedulingPolicy::GenerationOrder) * 1.05,
            "{:?}",
            chol.makespans
        );
        assert!(ab.render().contains("crit. path"));
    }

    #[test]
    fn run_variance_is_small_and_nonzero() {
        for row in run_variance() {
            assert_eq!(row.makespans.len(), 5, "six runs minus the warm-up");
            assert!(
                row.cv() > 0.0,
                "{}: jitter must produce variance",
                row.label
            );
            assert!(
                row.cv() < 0.1,
                "{}: CV {:.3} should stay below 10%",
                row.label,
                row.cv()
            );
            // The CI must cover the sample spread plausibly: every run
            // within a few half-widths of the mean.
            let half = confidence_half_width_95(&row.makespans);
            assert!(half > 0.0);
            for &m in &row.makespans {
                assert!(
                    (m - row.mean()).abs() < 4.0 * half,
                    "{}: outlier {m}",
                    row.label
                );
            }
        }
        assert!(render_variance().contains("95% CI"));
    }
}
