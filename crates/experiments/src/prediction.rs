//! Execution-time prediction (§5.4.3's learning-model direction).
//!
//! Trains the CART regression tree of `gpuflow-analysis` on samples from
//! the correlation study: features are the Table 1 factors/parameters
//! (one-hot categoricals included), the target is log parallel-task
//! execution time (times span four decades). Evaluated on a held-out
//! test set against the mean predictor baseline — the paper's point is
//! precisely that non-linear models are needed because "naive heuristics
//! and cost-based models do not suffice".

use gpuflow_analysis::{r2_score, spearman, train_test_split, Forest, RegressionTree, TreeParams};

use crate::fig11;
use crate::measure::Context;
use crate::table::TextTable;

/// The prediction experiment's result.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Training samples.
    pub train_samples: usize,
    /// Held-out samples.
    pub test_samples: usize,
    /// Tree leaves (model complexity).
    pub leaves: usize,
    /// Train R² on log-time.
    pub train_r2: f64,
    /// Held-out R² on log-time.
    pub test_r2: f64,
    /// Held-out Spearman between predicted and actual times — the
    /// ranking quality an autotuner actually needs.
    pub test_rank_correlation: f64,
    /// Baseline (mean predictor) held-out R², by construction ≤ 0.
    pub baseline_r2: f64,
    /// Held-out R² of a 20-tree bagged forest over the same features.
    pub forest_test_r2: f64,
    /// Held-out rank correlation of the forest.
    pub forest_rank_correlation: f64,
}

/// Runs the prediction experiment on the quick correlation sample set.
pub fn run(ctx: &Context) -> Prediction {
    let fig = fig11::run_quick(ctx);
    let table = &fig.table;
    let n = table.rows();
    // Feature matrix: everything except the target; impute Matmul's
    // undefined algorithm parameter as 0 (trees handle the indicator via
    // the complexity/width features).
    let target_name = "parallel task exec. time";
    let mut x: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut y: Vec<f64> = Vec::with_capacity(n);
    let target_idx = table
        .names()
        .iter()
        .position(|f| f == target_name)
        .expect("target present");
    for i in 0..n {
        let row = table.row(i);
        y.push(row[target_idx].max(1e-9).ln());
        x.push(
            row.iter()
                .enumerate()
                .filter(|(j, _)| *j != target_idx)
                .map(|(_, &v)| if v.is_nan() { 0.0 } else { v })
                .collect(),
        );
    }

    let (train_idx, test_idx) = train_test_split(n, 0.3, 0xA11CE);
    let take = |idx: &[usize]| -> (Vec<Vec<f64>>, Vec<f64>) {
        (
            idx.iter().map(|&i| x[i].clone()).collect(),
            idx.iter().map(|&i| y[i]).collect(),
        )
    };
    let (x_train, y_train) = take(&train_idx);
    let (x_test, y_test) = take(&test_idx);

    let params = TreeParams {
        max_depth: 7,
        min_leaf: 2,
    };
    let tree = RegressionTree::fit(&x_train, &y_train, params);
    let forest = Forest::fit(&x_train, &y_train, params, 20, 0xF0553);
    let pred_train = tree.predict_all(&x_train);
    let pred_test = tree.predict_all(&x_test);
    let forest_test = forest.predict_all(&x_test);
    let mean_train = y_train.iter().sum::<f64>() / y_train.len() as f64;
    let baseline: Vec<f64> = vec![mean_train; y_test.len()];

    Prediction {
        train_samples: train_idx.len(),
        test_samples: test_idx.len(),
        leaves: tree.leaves(),
        train_r2: r2_score(&y_train, &pred_train),
        test_r2: r2_score(&y_test, &pred_test),
        test_rank_correlation: spearman(&y_test, &pred_test),
        baseline_r2: r2_score(&y_test, &baseline),
        forest_test_r2: r2_score(&y_test, &forest_test),
        forest_rank_correlation: spearman(&y_test, &forest_test),
    }
}

impl Prediction {
    /// Renders the evaluation summary.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Prediction: regression tree on Table 1 features (§5.4.3 extension)",
            ["quantity", "value"],
        );
        t.push([
            "train / test samples",
            &format!("{} / {}", self.train_samples, self.test_samples),
        ]);
        t.push(["tree leaves", &self.leaves.to_string()]);
        t.push(["train R2 (log time)", &format!("{:.3}", self.train_r2)]);
        t.push(["test R2 (log time)", &format!("{:.3}", self.test_r2)]);
        t.push([
            "test rank correlation",
            &format!("{:.3}", self.test_rank_correlation),
        ]);
        t.push([
            "mean-predictor baseline R2",
            &format!("{:.3}", self.baseline_r2),
        ]);
        t.push([
            "forest test R2 (20 trees)",
            &format!("{:.3}", self.forest_test_r2),
        ]);
        t.push([
            "forest rank correlation",
            &format!("{:.3}", self.forest_rank_correlation),
        ]);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_predicts_held_out_execution_times() {
        let p = run(&Context::default());
        assert!(p.train_samples > p.test_samples);
        assert!(
            p.train_r2 > 0.9,
            "train fit should be tight: {}",
            p.train_r2
        );
        assert!(
            p.test_r2 > 0.5,
            "held-out R2 must beat naive substantially: {}",
            p.test_r2
        );
        assert!(
            p.test_rank_correlation > 0.7,
            "ranking quality drives autotuning: {}",
            p.test_rank_correlation
        );
        assert!(
            p.test_r2 > p.baseline_r2 + 0.4,
            "must beat the mean baseline"
        );
        assert!(
            p.forest_rank_correlation > 0.7,
            "the bagged forest must also rank well: {}",
            p.forest_rank_correlation
        );
        assert!(p.render().contains("forest test R2"));
    }
}
