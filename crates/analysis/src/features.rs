//! Feature tables, one-hot encoding, and correlation matrices (§5.4,
//! Fig. 11).
//!
//! Each row of a [`FeatureTable`] is one experiment sample: the factor
//! and parameter values of Table 1 plus the measured parallel task
//! execution time. Categorical factors (processor type, storage
//! architecture, scheduling policy) are one-hot encoded exactly as in the
//! paper, which is why Fig. 11 shows complementary ±1 column pairs.

use std::fmt::Write as _;

use crate::spearman::{pearson, spearman_pairwise};

/// One-hot encodes `value` against the closed set `categories`.
///
/// # Panics
/// Panics when `value` is not one of `categories`.
pub fn one_hot(categories: &[&str], value: &str) -> Vec<f64> {
    assert!(
        categories.contains(&value),
        "value '{value}' not in categories {categories:?}"
    );
    categories
        .iter()
        .map(|c| if *c == value { 1.0 } else { 0.0 })
        .collect()
}

/// A column-oriented table of named numeric features.
#[derive(Debug, Clone)]
pub struct FeatureTable {
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
}

impl FeatureTable {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let columns = names.iter().map(|_| Vec::new()).collect();
        FeatureTable { names, columns }
    }

    /// Appends one sample.
    ///
    /// # Panics
    /// Panics when the row width does not match the column count.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        for (col, &v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// Number of samples.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// A column by name.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        let idx = self.names.iter().position(|n| n == name)?;
        Some(&self.columns[idx])
    }

    /// One sample row by index.
    ///
    /// # Panics
    /// Panics when `row` is out of range.
    pub fn row(&self, row: usize) -> Vec<f64> {
        assert!(row < self.rows(), "row {row} out of range");
        self.columns.iter().map(|c| c[row]).collect()
    }

    /// The full Spearman correlation matrix of all columns, computed over
    /// pairwise-complete observations (NaN marks a feature undefined for
    /// a sample and drops it from correlations involving that feature).
    pub fn correlation_matrix(&self) -> CorrMatrix {
        self.correlation_matrix_with(CorrMethod::Spearman)
    }

    /// Correlation matrix under an explicit method — the paper notes
    /// that "other measures could be used as well" (§5.4); Pearson is the
    /// obvious alternative when linearity is plausible.
    pub fn correlation_matrix_with(&self, method: CorrMethod) -> CorrMatrix {
        let corr = |a: &[f64], b: &[f64]| match method {
            CorrMethod::Spearman => spearman_pairwise(a, b),
            CorrMethod::Pearson => {
                let (fa, fb): (Vec<f64>, Vec<f64>) = a
                    .iter()
                    .zip(b)
                    .filter(|(x, y)| !x.is_nan() && !y.is_nan())
                    .map(|(&x, &y)| (x, y))
                    .unzip();
                pearson(&fa, &fb)
            }
        };
        let k = self.names.len();
        let mut values = vec![vec![0.0; k]; k];
        #[allow(clippy::needless_range_loop)] // symmetric fill needs both indices
        for i in 0..k {
            values[i][i] = 1.0;
            for j in (i + 1)..k {
                let rho = corr(&self.columns[i], &self.columns[j]);
                values[i][j] = rho;
                values[j][i] = rho;
            }
        }
        CorrMatrix {
            names: self.names.clone(),
            values,
        }
    }

    /// CSV export of the raw samples.
    pub fn to_csv(&self) -> String {
        let mut out = self.names.join(",");
        out.push('\n');
        for r in 0..self.rows() {
            let row: Vec<String> = self.columns.iter().map(|c| format!("{}", c[r])).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// The correlation measure for [`FeatureTable::correlation_matrix_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrMethod {
    /// Tie-aware rank correlation (the paper's choice, robust to
    /// monotone non-linearity).
    Spearman,
    /// Linear correlation of the raw values.
    Pearson,
}

/// A symmetric correlation matrix with named axes (Fig. 11).
#[derive(Debug, Clone)]
pub struct CorrMatrix {
    names: Vec<String>,
    values: Vec<Vec<f64>>,
}

impl CorrMatrix {
    /// Axis names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Correlation between two named features.
    pub fn get(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.names.iter().position(|n| n == a)?;
        let j = self.names.iter().position(|n| n == b)?;
        Some(self.values[i][j])
    }

    /// All correlations with `name`, strongest absolute value first
    /// (excluding the self-correlation).
    pub fn strongest_with(&self, name: &str) -> Vec<(String, f64)> {
        let Some(i) = self.names.iter().position(|n| n == name) else {
            return Vec::new();
        };
        let mut out: Vec<(String, f64)> = self
            .names
            .iter()
            .zip(&self.values[i])
            .filter(|(n, _)| n.as_str() != name)
            .map(|(n, &v)| (n.clone(), v))
            .collect();
        out.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite rho"));
        out
    }

    /// Verifies symmetry, unit diagonal, and bounds (test helper).
    pub fn check_invariants(&self) -> Result<(), String> {
        let k = self.names.len();
        for i in 0..k {
            if (self.values[i][i] - 1.0).abs() > 1e-12 {
                return Err(format!("diagonal {i} is {}", self.values[i][i]));
            }
            for j in 0..k {
                let v = self.values[i][j];
                if !(-1.0..=1.0).contains(&v) {
                    return Err(format!("rho[{i}][{j}] = {v} out of bounds"));
                }
                if (v - self.values[j][i]).abs() > 1e-12 {
                    return Err(format!("asymmetry at [{i}][{j}]"));
                }
            }
        }
        Ok(())
    }

    /// Renders the matrix as fixed-width ASCII (the Fig. 11 layout).
    pub fn render(&self, label_width: usize) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:>label_width$} ", "");
        for n in &self.names {
            let short: String = n.chars().take(6).collect();
            let _ = write!(out, "{short:>7}");
        }
        out.push('\n');
        for (i, n) in self.names.iter().enumerate() {
            let label: String = n.chars().take(label_width).collect();
            let _ = write!(out, "{label:>label_width$} ");
            for v in &self.values[i] {
                let _ = write!(out, "{v:>7.3}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_encodes_categories() {
        assert_eq!(one_hot(&["CPU", "GPU"], "CPU"), vec![1.0, 0.0]);
        assert_eq!(one_hot(&["CPU", "GPU"], "GPU"), vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "not in categories")]
    fn one_hot_rejects_unknown() {
        one_hot(&["a", "b"], "c");
    }

    #[test]
    fn table_roundtrip() {
        let mut t = FeatureTable::new(["x", "y"]);
        t.push_row(&[1.0, 10.0]);
        t.push_row(&[2.0, 20.0]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.column("y"), Some(&[10.0, 20.0][..]));
        assert_eq!(t.column("nope"), None);
    }

    #[test]
    fn monotone_columns_correlate_fully() {
        let mut t = FeatureTable::new(["x", "y", "z"]);
        for i in 0..10 {
            let v = i as f64;
            t.push_row(&[v, v * v, -v]);
        }
        let m = t.correlation_matrix();
        m.check_invariants().unwrap();
        assert!((m.get("x", "y").unwrap() - 1.0).abs() < 1e-12);
        assert!((m.get("x", "z").unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn complementary_one_hot_columns_correlate_minus_one() {
        // The Fig. 11 pattern: CPU and GPU columns are exact opposites.
        let mut t = FeatureTable::new(["cpu", "gpu"]);
        for i in 0..8 {
            let is_cpu = i % 2 == 0;
            t.push_row(&[is_cpu as u8 as f64, !is_cpu as u8 as f64]);
        }
        let m = t.correlation_matrix();
        assert!((m.get("cpu", "gpu").unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_and_spearman_differ_on_nonlinear_data() {
        let mut t = FeatureTable::new(["x", "y"]);
        for i in 1..=13 {
            let v = i as f64;
            t.push_row(&[v, v.exp()]);
        }
        let s = t.correlation_matrix_with(CorrMethod::Spearman);
        let p = t.correlation_matrix_with(CorrMethod::Pearson);
        // Monotone: Spearman is exactly 1; Pearson is dragged down by
        // the exponential's curvature.
        assert!((s.get("x", "y").unwrap() - 1.0).abs() < 1e-12);
        assert!(p.get("x", "y").unwrap() < 0.95);
        p.check_invariants().unwrap();
    }

    #[test]
    fn strongest_with_sorts_by_magnitude() {
        let mut t = FeatureTable::new(["target", "strong", "weak"]);
        let noise = [0.3, -0.2, 0.4, -0.1, 0.25, -0.35, 0.15, -0.05];
        for i in 0..8 {
            let v = i as f64;
            t.push_row(&[v, v, noise[i as usize]]);
        }
        let ranked = t.correlation_matrix().strongest_with("target");
        assert_eq!(ranked[0].0, "strong");
    }

    #[test]
    fn row_extraction_matches_columns() {
        let mut t = FeatureTable::new(["a", "b"]);
        t.push_row(&[1.0, 2.0]);
        t.push_row(&[3.0, 4.0]);
        assert_eq!(t.row(1), vec![3.0, 4.0]);
    }

    #[test]
    fn csv_export_includes_all_rows() {
        let mut t = FeatureTable::new(["a", "b"]);
        t.push_row(&[1.0, 2.0]);
        t.push_row(&[3.0, 4.0]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("a,b\n1,2\n"));
    }

    #[test]
    fn render_contains_labels_and_diagonal() {
        let mut t = FeatureTable::new(["alpha", "beta"]);
        t.push_row(&[1.0, 5.0]);
        t.push_row(&[2.0, 3.0]);
        let s = t.correlation_matrix().render(8);
        assert!(s.contains("alpha"));
        assert!(s.contains("1.000"));
    }
}
