//! Dense row-major `f64` matrices and the numeric kernels of the studied
//! algorithms.
//!
//! These run *real* computation and exist to validate functionally that
//! our blocked implementations (matmul, matmul-FMA, K-means) compute the
//! same answers as their straightforward dense counterparts at test scale.
//! Performance at paper scale is produced by the simulator, not by these
//! kernels.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams rhs rows, decent cache behaviour.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Element-wise sum `self + rhs` (the paper's `add_func`).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Fused multiply-add accumulation `self += a × b` (the paper's
    /// Matmul-FMA variant, Fig. 12).
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn fma_accumulate(&mut self, a: &Matrix, b: &Matrix) {
        assert_eq!(a.cols, b.rows, "inner dimensions must agree");
        assert_eq!((self.rows, self.cols), (a.rows, b.cols), "output shape");
        for i in 0..a.rows {
            for k in 0..a.cols {
                let av = a[(i, k)];
                if av == 0.0 {
                    continue;
                }
                let b_row = b.row(k);
                let out_row = &mut self.data[i * b.cols..(i + 1) * b.cols];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    /// Extracts the sub-matrix at (`row0..row0+rows`, `col0..col0+cols`).
    ///
    /// # Panics
    /// Panics when the window exceeds the matrix bounds.
    pub fn submatrix(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(row0 + rows <= self.rows && col0 + cols <= self.cols);
        Matrix::from_fn(rows, cols, |i, j| self[(row0 + i, col0 + j)])
    }

    /// Writes `block` into this matrix at offset (`row0`, `col0`).
    ///
    /// # Panics
    /// Panics when the block exceeds the matrix bounds.
    pub fn set_submatrix(&mut self, row0: usize, col0: usize, block: &Matrix) {
        assert!(row0 + block.rows <= self.rows && col0 + block.cols <= self.cols);
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(row0 + i, col0 + j)] = block[(i, j)];
            }
        }
    }

    /// Largest absolute element-wise difference to `rhs`.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Squared Euclidean distance between two equal-length points.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// The K-means `partial_sum` kernel (§4.4.4): assigns each row of `block`
/// to its nearest center and returns, per center, the sum of assigned rows
/// and their count. This is the per-task unit the paper's K-means
/// distributes.
pub fn kmeans_partial_sum(block: &Matrix, centers: &Matrix) -> (Matrix, Vec<u64>) {
    assert_eq!(block.cols(), centers.cols(), "feature count mismatch");
    let k = centers.rows();
    let mut sums = Matrix::zeros(k, block.cols());
    let mut counts = vec![0u64; k];
    for i in 0..block.rows() {
        let row = block.row(i);
        let (best, _) = (0..k)
            .map(|c| (c, squared_distance(row, centers.row(c))))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .expect("at least one center");
        counts[best] += 1;
        for j in 0..block.cols() {
            sums[(best, j)] += row[j];
        }
    }
    (sums, counts)
}

/// Merges partial sums/counts and produces updated centers. Centers with
/// no assigned points keep their previous position (dislib behaviour).
pub fn kmeans_update_centers(partials: &[(Matrix, Vec<u64>)], previous: &Matrix) -> Matrix {
    let k = previous.rows();
    let n = previous.cols();
    let mut sums = Matrix::zeros(k, n);
    let mut counts = vec![0u64; k];
    for (s, c) in partials {
        sums = sums.add(s);
        for (tot, add) in counts.iter_mut().zip(c) {
            *tot += add;
        }
    }
    Matrix::from_fn(k, n, |c, j| {
        if counts[c] == 0 {
            previous[(c, j)]
        } else {
            sums[(c, j)] / counts[c] as f64
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(3).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![58., 64., 139., 154.]));
    }

    #[test]
    fn add_is_elementwise() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(2, 2, vec![10., 20., 30., 40.]);
        assert_eq!(a.add(&b), Matrix::from_vec(2, 2, vec![11., 22., 33., 44.]));
    }

    #[test]
    fn fma_matches_matmul_plus_add() {
        let a = Matrix::from_fn(4, 5, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(5, 3, |i, j| (i * j) as f64 - 1.0);
        let mut acc = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let expected = acc.add(&a.matmul(&b));
        acc.fma_accumulate(&a, &b);
        assert!(acc.max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn submatrix_roundtrip() {
        let a = Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let block = a.submatrix(2, 3, 2, 3);
        assert_eq!(block[(0, 0)], a[(2, 3)]);
        let mut rebuilt = Matrix::zeros(6, 6);
        for bi in 0..3 {
            for bj in 0..2 {
                rebuilt.set_submatrix(bi * 2, bj * 3, &a.submatrix(bi * 2, bj * 3, 2, 3));
            }
        }
        assert_eq!(rebuilt, a);
    }

    #[test]
    fn partial_sum_assigns_to_nearest_center() {
        // Two obvious clusters around (0,0) and (10,10).
        let block = Matrix::from_vec(4, 2, vec![0., 0., 1., 1., 10., 10., 11., 9.]);
        let centers = Matrix::from_vec(2, 2, vec![0., 0., 10., 10.]);
        let (sums, counts) = kmeans_partial_sum(&block, &centers);
        assert_eq!(counts, vec![2, 2]);
        assert_eq!(sums, Matrix::from_vec(2, 2, vec![1., 1., 21., 19.]));
    }

    #[test]
    fn update_centers_averages_partials() {
        let centers = Matrix::from_vec(2, 1, vec![0., 100.]);
        let partials = vec![
            (Matrix::from_vec(2, 1, vec![4., 0.]), vec![2, 0]),
            (Matrix::from_vec(2, 1, vec![2., 0.]), vec![1, 0]),
        ];
        let updated = kmeans_update_centers(&partials, &centers);
        assert_eq!(updated[(0, 0)], 2.0);
        // Empty cluster keeps its previous center.
        assert_eq!(updated[(1, 0)], 100.0);
    }

    #[test]
    fn squared_distance_basic() {
        assert_eq!(squared_distance(&[0., 0.], &[3., 4.]), 25.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }
}
