//! # gpuflow-runtime — a COMPSs-like distributed task-based runtime
//!
//! The system substrate of the reproduction: applications register data
//! and submit tasks with directional parameters; the runtime derives the
//! dependency DAG (§3.1), schedules ready tasks under one of two policies
//! (§3.2), and executes them on a simulated heterogeneous cluster through
//! the full task lifecycle of Fig. 4 — deserialization, serial fraction,
//! CPU compute or GPU offload over PCIe, serialization — while measuring
//! every metric of §4.2.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cache;
mod data;
mod executor;
pub mod jobs;
mod metrics;
mod scheduler;
mod task;
pub mod telemetry;
mod trace;
pub mod trace_analysis;
mod workflow;

pub use cache::BlockCache;
pub use data::{DataId, DataRegistry, DataVersion, Direction};
pub use executor::{run, RecoveryStats, RunConfig, RunError, RunReport};
pub use gpuflow_chaos::{FaultPlan, RecoveryPolicy};
pub use jobs::{BuiltJob, JobEntry, JobSchedule, JobShape, JobSpec, TenantSpec};
pub use metrics::{LevelStats, RunMetrics, TaskRecord, UserCodeStats};
pub use scheduler::{
    decision_overhead, pick, place, NodeAvail, RankKey, ReadyQueue, SchedulingPolicy,
};
pub use task::{CostProfile, Param, TaskId, TaskSpec, TaskType};
pub use telemetry::{
    to_chrome_trace, to_collapsed, AlertEngine, AlertRule, AlertSeverity, AlertState,
    AlertTransition, BucketDelta, BucketHistogram, CandidateScore, ChromeTraceSink,
    CriticalSegment, EventBus, Histogram, HistogramDigest, JsonlSink, LinkKind, MemorySink,
    MetricsHub, MetricsRegistry, OverheadReport, PathChange, PathDelta, PhaseSpan, ResourceProfile,
    RuleKind, RunDiff, RunProfile, SampleRow, SampleStats, SchedulerDecision, SpanForest,
    SpanPhase, SpanSampler, TaskSpans, TaskTypeProfile, TelemetryEvent, TelemetryLog,
    TelemetrySink, TypeDelta,
};
pub use trace::{paraver_pcf, to_paraver_prv, Trace, TraceRecord, TraceState};
pub use workflow::{DagShape, Workflow, WorkflowBuilder};
