//! Lock-order / deadlock analysis (rule `L1`).
//!
//! The daemon and the metrics hub guard shared state with
//! `Mutex`/`RwLock`. Two threads taking the same pair of locks in
//! opposite orders is the textbook deadlock, and nothing dynamic in the
//! test suite would catch it short of an actual hang. This pass:
//!
//! 1. indexes every lock **binding name** in the workspace — struct
//!    fields, statics, and `let`s whose type or initializer mentions
//!    `Mutex<..>`/`RwLock<..>` (also through `Arc<..>`);
//! 2. records, per function, the ordered sequence of acquisitions —
//!    `.lock()`, `.read()`, `.write()` on a known lock name — and the
//!    calls interleaved with them;
//! 3. builds a lock graph: an edge `A -> B` when some function acquires
//!    `A` and later acquires `B` (directly, or because a function it
//!    calls *after* taking `A` acquires `B` — **one** level of
//!    inlining, a documented limit);
//! 4. reports every cycle among distinct locks, with the functions
//!    contributing each edge.
//!
//! Guard-drop tracking is deliberately absent: a guard bound by `let`
//! may live to end of scope, so "acquired earlier in the function" is
//! the conservative approximation. Same-lock re-acquisition (`A -> A`)
//! is *not* reported — sequential `lock(); drop; lock();` is idiomatic
//! and the token stream cannot see the drop (documented false
//! negative: a true double-lock self-deadlock is invisible here).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Lexed, Tok, TokKind};
use crate::report::Finding;
use crate::rules::RuleCode;
use crate::symbols::SymbolGraph;

/// One acquisition or call event inside a function, in token order.
enum Event {
    /// Acquired the named lock at (line, col).
    Acquire(String, u32, u32),
    /// Called these candidate functions at (line, col).
    Call(Vec<usize>, u32, u32),
}

/// Collects every lock binding name in the file: `name: [&] [Arc<]
/// Mutex<..>`/`RwLock<..>` type ascriptions (fields, params, statics)
/// and `let name = Mutex::new(..)` initializers.
pub fn lock_bindings(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident && matches!(toks.get(i + 1), Some(t) if t.is_punct(":")) {
            let mut angle = 0i32;
            for t in toks.iter().skip(i + 2).take(12) {
                if t.is_punct("<") {
                    angle += 1;
                } else if t.is_punct(">") {
                    angle -= 1;
                    if angle < 0 {
                        break;
                    }
                } else if angle == 0
                    && (t.is_punct(";") || t.is_punct("=") || t.is_punct(",") || t.is_punct(")"))
                {
                    break;
                } else if t.is_ident("Mutex") || t.is_ident("RwLock") {
                    names.push(toks[i].text.clone());
                    break;
                }
            }
        }
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if matches!(toks.get(j), Some(t) if t.is_ident("mut")) {
                j += 1;
            }
            if matches!(toks.get(j), Some(t) if t.kind == TokKind::Ident)
                && matches!(toks.get(j + 1), Some(t) if t.is_punct("="))
            {
                for k in j + 2..(j + 14).min(toks.len()) {
                    if toks[k].is_punct(";") {
                        break;
                    }
                    if (toks[k].is_ident("Mutex") || toks[k].is_ident("RwLock"))
                        && matches!(toks.get(k + 1), Some(t) if t.is_punct("::"))
                    {
                        names.push(toks[j].text.clone());
                        break;
                    }
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Acquisition methods on a lock binding.
fn is_acquire(name: &str) -> bool {
    matches!(name, "lock" | "read" | "write")
}

/// One directed edge in the lock graph, with its provenance.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    /// Function the edge was observed in.
    via: String,
    file: String,
    line: u32,
    col: u32,
}

/// Runs the L1 pass. `files` pairs each path with its lexed tokens and
/// test-skip mask, in the same order the graph was built from.
pub fn check(graph: &SymbolGraph, files: &[(String, Lexed, Vec<bool>)]) -> Vec<Finding> {
    // Workspace-global lock name set: a field name is acquired through
    // `self.` or a clone in a different file than its declaration.
    let mut lock_names: BTreeSet<String> = BTreeSet::new();
    for (_, lexed, _) in files {
        lock_names.extend(lock_bindings(&lexed.tokens));
    }
    if lock_names.is_empty() {
        return Vec::new();
    }

    // Per-function event sequences.
    let mut events: Vec<Vec<Event>> = (0..graph.fns.len()).map(|_| Vec::new()).collect();
    for (fn_idx, def) in graph.fns.iter().enumerate() {
        let Some((body_start, body_end)) = def.body else {
            continue;
        };
        let toks = &files[def.file].1.tokens;
        // Call sites of this function, in token order (calls_from
        // preserves source order within a file).
        let mut calls: Vec<&crate::symbols::CallSite> = graph.calls_from[fn_idx]
            .iter()
            .map(|&ci| &graph.calls[ci])
            .collect();
        calls.sort_by_key(|c| (c.line, c.col));
        let mut call_iter = calls.into_iter().peekable();
        for i in body_start..body_end.min(toks.len()) {
            let t = &toks[i];
            // Interleave calls by position.
            while let Some(c) = call_iter.peek() {
                if (c.line, c.col) <= (t.line, t.col) {
                    events[fn_idx].push(Event::Call(c.callees.clone(), c.line, c.col));
                    call_iter.next();
                } else {
                    break;
                }
            }
            if t.kind == TokKind::Ident
                && is_acquire(&t.text)
                && i >= 2
                && toks[i - 1].is_punct(".")
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
                && toks[i - 2].kind == TokKind::Ident
                && lock_names.contains(&toks[i - 2].text)
            {
                events[fn_idx].push(Event::Acquire(toks[i - 2].text.clone(), t.line, t.col));
            }
        }
        for c in call_iter {
            events[fn_idx].push(Event::Call(c.callees.clone(), c.line, c.col));
        }
    }

    // First-acquisition table per function, for one-level inlining.
    let acquires_of: Vec<Vec<String>> = events
        .iter()
        .map(|evs| {
            let mut names: Vec<String> = evs
                .iter()
                .filter_map(|e| match e {
                    Event::Acquire(n, _, _) => Some(n.clone()),
                    Event::Call(..) => None,
                })
                .collect();
            names.sort();
            names.dedup();
            names
        })
        .collect();

    // Edges: held-lock × (later acquisition ∪ callee acquisitions).
    let mut edges: Vec<Edge> = Vec::new();
    for (fn_idx, evs) in events.iter().enumerate() {
        let via = graph.label(fn_idx);
        let file = graph.files[graph.fns[fn_idx].file].clone();
        let mut held: Vec<String> = Vec::new();
        for e in evs {
            match e {
                Event::Acquire(name, line, col) => {
                    for h in &held {
                        if h != name {
                            edges.push(Edge {
                                from: h.clone(),
                                to: name.clone(),
                                via: via.clone(),
                                file: file.clone(),
                                line: *line,
                                col: *col,
                            });
                        }
                    }
                    held.push(name.clone());
                }
                Event::Call(callees, line, col) => {
                    if held.is_empty() {
                        continue;
                    }
                    for &callee in callees {
                        for inner in &acquires_of[callee] {
                            for h in &held {
                                if h != inner {
                                    edges.push(Edge {
                                        from: h.clone(),
                                        to: inner.clone(),
                                        via: format!("{via} -> {}", graph.label(callee)),
                                        file: file.clone(),
                                        line: *line,
                                        col: *col,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Cycle detection over the lock-name graph.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let first_edge = |from: &str, to: &str| {
        edges
            .iter()
            .find(|e| e.from == from && e.to == to)
            .expect("edge exists")
    };
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();
    // DFS from each node in sorted order; a path returning to its
    // start is a cycle. Paths are short (lock counts are tiny), so the
    // simple enumeration is fine.
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack: Vec<(Vec<&str>,)> = vec![(vec![start],)];
        while let Some((path,)) = stack.pop() {
            let last = *path.last().expect("non-empty path");
            let Some(nexts) = adj.get(last) else { continue };
            for &next in nexts {
                if next == start && path.len() >= 2 {
                    // Canonical form: rotate so the smallest name leads.
                    let mut cycle: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    let min_pos = cycle
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min_pos);
                    if !reported.insert(cycle.clone()) {
                        continue;
                    }
                    let mut legs = Vec::new();
                    for w in 0..cycle.len() {
                        let a = &cycle[w];
                        let b = &cycle[(w + 1) % cycle.len()];
                        let e = first_edge(a, b);
                        legs.push(format!(
                            "`{a}` then `{b}` in {} ({}:{})",
                            e.via, e.file, e.line
                        ));
                    }
                    let anchor = first_edge(&cycle[0], &cycle[1 % cycle.len()]);
                    let ring: Vec<&str> = cycle
                        .iter()
                        .map(|s| s.as_str())
                        .chain(std::iter::once(cycle[0].as_str()))
                        .collect();
                    out.push(Finding::new(
                        RuleCode::L1,
                        &anchor.file,
                        anchor.line,
                        anchor.col,
                        format!(
                            "lock-order cycle {}: {}",
                            ring.join(" -> "),
                            legs.join("; "),
                        ),
                    ));
                } else if !path.contains(&next) && next > start {
                    // Only walk nodes after `start` so each cycle is
                    // discovered from its smallest member exactly once.
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((p,));
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn l1(src: &str) -> Vec<String> {
        let lexed = lex(src);
        let n = lexed.tokens.len();
        let files = vec![("t.rs".to_string(), lexed, vec![false; n])];
        let g = SymbolGraph::build(&files);
        check(&g, &files).into_iter().map(|f| f.message).collect()
    }

    const STATE: &str = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n";

    #[test]
    fn opposite_order_is_a_cycle() {
        let src = format!(
            "{STATE}impl S {{\n fn one(&self) {{ let x = self.a.lock(); let y = self.b.lock(); }}\n \
             fn two(&self) {{ let y = self.b.lock(); let x = self.a.lock(); }}\n}}"
        );
        let got = l1(&src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(
            got[0].contains("a -> b") || got[0].contains("b -> a"),
            "{got:?}"
        );
        assert!(got[0].contains("one") && got[0].contains("two"), "{got:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = format!(
            "{STATE}impl S {{\n fn one(&self) {{ let x = self.a.lock(); let y = self.b.lock(); }}\n \
             fn two(&self) {{ let x = self.a.lock(); let y = self.b.lock(); }}\n}}"
        );
        assert!(l1(&src).is_empty());
    }

    #[test]
    fn one_level_inlining_sees_helper_acquisitions() {
        let src = format!(
            "{STATE}impl S {{\n fn helper(&self) {{ let y = self.b.lock(); }}\n \
             fn one(&self) {{ let x = self.a.lock(); self.helper(); }}\n \
             fn two(&self) {{ let y = self.b.lock(); let x = self.a.lock(); }}\n}}"
        );
        let got = l1(&src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("helper"), "{got:?}");
    }

    #[test]
    fn rwlock_read_write_count_as_acquisitions() {
        let src = "struct S { a: RwLock<u32>, b: RwLock<u32> }\n\
                   impl S {\n fn one(&self) { let x = self.a.read(); let y = self.b.write(); }\n \
                   fn two(&self) { let y = self.b.read(); let x = self.a.write(); }\n}";
        assert_eq!(l1(src).len(), 1);
    }

    #[test]
    fn unrelated_read_write_methods_are_ignored() {
        let src = "fn io(f: File, buf: Vec<u8>) { f.read(buf); f.write(buf); }";
        assert!(l1(src).is_empty());
    }

    #[test]
    fn same_lock_reacquisition_is_not_reported() {
        let src = "struct S { a: Mutex<u32> }\n\
                   impl S { fn f(&self) { self.a.lock(); self.a.lock(); } }";
        assert!(l1(src).is_empty());
    }
}
