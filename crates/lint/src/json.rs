//! A minimal JSON parser and example-shaped schema checker.
//!
//! The workspace has no serde; JSON is emitted by hand-written,
//! deterministic renderers (`RunDiff::to_json`, telemetry summaries,
//! this crate's own report). This module closes the loop: tests parse
//! that output back and validate it against a *checked-in example
//! shape* — a JSON document whose string leaves are type placeholders:
//!
//! * `"string"` — any string
//! * `"u64"` — a non-negative integer number
//! * `"number"` — any number
//! * `"bool"` — a boolean
//! * `"any"` — anything
//!
//! Objects are strict in both directions (missing and unexpected keys
//! both fail), so a schema file is an executable promise about the
//! CLI's `--json` output — the guard PR 4's fixed shapes needed.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (f64 is exact for the u64 magnitudes we emit < 2^53;
    /// larger integers also keep their text for exactness checks).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup for objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parses a JSON document. Rejects trailing garbage.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(text.as_bytes()) {
            self.i += text.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            members.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or("truncated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.i - 1;
                    let len = utf8_len(c);
                    let end = (start + len).min(self.b.len());
                    out.push_str(
                        std::str::from_utf8(&self.b[start..end]).map_err(|e| e.to_string())?,
                    );
                    self.i = end;
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.i += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

/// Validates `actual` against an example-shaped `schema` (see module
/// docs). Errors carry a JSON path for debuggability.
pub fn check_shape(schema: &Value, actual: &Value) -> Result<(), String> {
    check_at(schema, actual, "$")
}

fn check_at(schema: &Value, actual: &Value, path: &str) -> Result<(), String> {
    match schema {
        Value::Str(placeholder) => match placeholder.as_str() {
            "any" => Ok(()),
            "string" => match actual {
                Value::Str(_) => Ok(()),
                other => Err(format!("{path}: expected string, got {other:?}")),
            },
            "bool" => match actual {
                Value::Bool(_) => Ok(()),
                other => Err(format!("{path}: expected bool, got {other:?}")),
            },
            "number" => match actual {
                Value::Num(_) => Ok(()),
                other => Err(format!("{path}: expected number, got {other:?}")),
            },
            "u64" => match actual {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(()),
                other => Err(format!(
                    "{path}: expected non-negative integer, got {other:?}"
                )),
            },
            other => Err(format!(
                "{path}: schema uses unknown placeholder \"{other}\" \
                 (known: string, u64, number, bool, any)"
            )),
        },
        Value::Obj(want) => {
            let Value::Obj(got) = actual else {
                return Err(format!("{path}: expected object, got {actual:?}"));
            };
            for (k, sub) in want {
                let Some(v) = actual.get(k) else {
                    return Err(format!("{path}: missing key \"{k}\""));
                };
                check_at(sub, v, &format!("{path}.{k}"))?;
            }
            for (k, _) in got {
                if want.iter().all(|(wk, _)| wk != k) {
                    return Err(format!("{path}: unexpected key \"{k}\""));
                }
            }
            Ok(())
        }
        Value::Arr(want) => {
            let Value::Arr(got) = actual else {
                return Err(format!("{path}: expected array, got {actual:?}"));
            };
            let Some(elem) = want.first() else {
                return Ok(()); // `[]` schema: any array content
            };
            for (i, v) in got.iter().enumerate() {
                check_at(elem, v, &format!("{path}[{i}]"))?;
            }
            Ok(())
        }
        other => {
            if other == actual {
                Ok(())
            } else {
                Err(format!(
                    "{path}: expected literal {other:?}, got {actual:?}"
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a":"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn shape_check_accepts_matching_documents() {
        let schema = parse(r#"{"name":"string","count":"u64","items":[{"x":"number"}]}"#).unwrap();
        let ok = parse(r#"{"name":"w","count":3,"items":[{"x":1.5},{"x":2}]}"#).unwrap();
        assert!(check_shape(&schema, &ok).is_ok());
    }

    #[test]
    fn shape_check_is_strict_about_keys() {
        let schema = parse(r#"{"a":"u64"}"#).unwrap();
        let missing = parse(r#"{}"#).unwrap();
        let extra = parse(r#"{"a":1,"b":2}"#).unwrap();
        let wrong = parse(r#"{"a":-1}"#).unwrap();
        assert!(check_shape(&schema, &missing)
            .unwrap_err()
            .contains("missing key"));
        assert!(check_shape(&schema, &extra)
            .unwrap_err()
            .contains("unexpected key"));
        assert!(check_shape(&schema, &wrong).unwrap_err().contains("$.a"));
    }

    #[test]
    fn empty_array_schema_accepts_any_array() {
        let schema = parse(r#"{"xs":[]}"#).unwrap();
        let v = parse(r#"{"xs":[1,"two",null]}"#).unwrap();
        assert!(check_shape(&schema, &v).is_ok());
    }
}
