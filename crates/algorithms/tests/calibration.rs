//! Calibration tests: the simulator must reproduce the paper's headline
//! measurements (shape and rough magnitude, not exact seconds).

use gpuflow_algorithms::{KmeansConfig, MatmulConfig};
use gpuflow_cluster::{ClusterSpec, ProcessorKind};
use gpuflow_runtime::{RunConfig, RunReport};

fn run(processor: ProcessorKind, wf: &gpuflow_runtime::Workflow) -> RunReport {
    let cfg = RunConfig::new(ClusterSpec::minotauro(), processor);
    gpuflow_runtime::run(wf, &cfg).expect("run must succeed")
}

/// Fig. 1: distributed K-means, 10 GB, 256 tasks, 128 cores / 32 GPUs.
///
/// Paper: 5.69x parallel-fraction speedup, 1.24x user-code speedup,
/// -1.20x parallel-tasks "speedup" (GPU slower end-to-end).
#[test]
fn figure1_kmeans_three_stage_speedups() {
    let wf = KmeansConfig::new(gpuflow_data::paper::kmeans_10gb(), 256, 10, 1)
        .unwrap()
        .build_workflow();
    let cpu = run(ProcessorKind::Cpu, &wf);
    let gpu = run(ProcessorKind::Gpu, &wf);

    let cpu_ps = cpu.metrics.task_type("partial_sum").unwrap();
    let gpu_ps = gpu.metrics.task_type("partial_sum").unwrap();

    let pfrac_speedup = cpu_ps.parallel / gpu_ps.parallel;
    let user_speedup = cpu_ps.user_code / gpu_ps.user_code;
    // Stage (iii): whole distributed execution.
    let parallel_ratio = gpu.makespan() / cpu.makespan();

    println!("Fig1 parallel-fraction speedup: {pfrac_speedup:.2} (paper 5.69)");
    println!("Fig1 user-code speedup:        {user_speedup:.2} (paper 1.24)");
    println!("Fig1 GPU/CPU parallel tasks:   {parallel_ratio:.2} (paper 1.20x slower)");
    println!(
        "     cpu makespan {:.2}s gpu makespan {:.2}s",
        cpu.makespan(),
        gpu.makespan()
    );
    println!(
        "     cpu: serial {:.3} parallel {:.3} comm {:.3} | gpu: serial {:.3} parallel {:.3} comm {:.3}",
        cpu_ps.serial, cpu_ps.parallel, cpu_ps.comm, gpu_ps.serial, gpu_ps.parallel, gpu_ps.comm
    );

    assert!(
        (3.5..=8.5).contains(&pfrac_speedup),
        "parallel fraction speedup {pfrac_speedup} outside the Fig.1 band"
    );
    assert!(
        (1.02..=1.7).contains(&user_speedup),
        "user code speedup {user_speedup} outside the Fig.1 band"
    );
    assert!(
        parallel_ratio > 1.0,
        "GPUs must lose end-to-end in the Fig.1 setting, got {parallel_ratio}"
    );
    assert!(
        parallel_ratio < 4.0,
        "GPU slowdown should stay moderate, got {parallel_ratio}"
    );
    // Ordering across stages: the gain shrinks as more overhead enters.
    assert!(pfrac_speedup > user_speedup);
    assert!(user_speedup > 1.0 / parallel_ratio);
}

/// Fig. 8: matmul_func speedup scales with block size up to ~21x; the
/// low-complexity add_func never wins on the GPU.
#[test]
fn figure8_matmul_complexity_split() {
    let ds = gpuflow_data::paper::matmul_8gb();
    let mut mm_speedups = Vec::new();
    // Grids 16x16 (32 MiB) and 4x4 (512 MiB): fine and coarse tasks.
    for g in [16u64, 4] {
        let wf = MatmulConfig::new(ds.clone(), g).unwrap().build_workflow();
        let cpu = run(ProcessorKind::Cpu, &wf);
        let gpu = run(ProcessorKind::Gpu, &wf);
        let mm = cpu.metrics.task_type("matmul_func").unwrap().user_code
            / gpu.metrics.task_type("matmul_func").unwrap().user_code;
        let add = cpu.metrics.task_type("add_func").unwrap().user_code
            / gpu.metrics.task_type("add_func").unwrap().user_code;
        println!("grid {g}x{g}: matmul_func {mm:.2}x, add_func {add:.2}x");
        mm_speedups.push(mm);
        assert!(
            add < 1.0,
            "add_func must degrade on GPU (grid {g}), got {add}"
        );
    }
    assert!(
        mm_speedups[1] > mm_speedups[0] * 1.5,
        "matmul_func speedup must grow with block size: {mm_speedups:?}"
    );
    assert!(
        mm_speedups[1] > 10.0 && mm_speedups[1] < 30.0,
        "coarse-grained matmul_func speedup should be ~15-21x, got {}",
        mm_speedups[1]
    );
}

/// Fig. 9a: GPU user-code speedup grows with the cluster count.
#[test]
fn figure9a_cluster_count_scaling() {
    let ds = gpuflow_data::paper::kmeans_10gb();
    let mut speedups = Vec::new();
    for k in [10u64, 100, 1000] {
        let wf = KmeansConfig::new(ds.clone(), 256, k, 1)
            .unwrap()
            .build_workflow();
        let cpu = run(ProcessorKind::Cpu, &wf);
        let gpu = run(ProcessorKind::Gpu, &wf);
        let s = cpu.metrics.task_type("partial_sum").unwrap().user_code
            / gpu.metrics.task_type("partial_sum").unwrap().user_code;
        println!("clusters {k}: user-code speedup {s:.2}x");
        speedups.push(s);
    }
    assert!(speedups[0] < speedups[1] && speedups[1] < speedups[2]);
    assert!(
        speedups[0] < 2.0,
        "10 clusters: marginal speedup, got {}",
        speedups[0]
    );
    assert!(
        speedups[2] / speedups[0] > 4.0,
        "1000 clusters should be several times the 10-cluster speedup: {speedups:?}"
    );
}
