//! # gpuflow-algorithms — the workloads under study
//!
//! The two algorithm families of §4.1 plus the generalizability variant:
//!
//! * [`MatmulConfig`] — blocked matrix multiplication (fully
//!   parallelizable; `matmul_func` + `add_func`),
//! * [`FmaConfig`] — the fused multiply-add Matmul of Fig. 12,
//! * [`KmeansConfig`] — K-means (partially parallelizable;
//!   `partial_sum` with a serial fraction),
//! * [`KnnConfig`] — an extension workload: distributed k-nearest
//!   neighbours, the intermediate parallel-fraction data point §5.5.1
//!   calls for,
//! * [`CholeskyConfig`] — an extension workload: blocked Cholesky, whose
//!   staircase DAG sits between the paper's wide-shallow and narrow-deep
//!   shapes.
//!
//! [`Session`] composes any of these into one multi-stage pipeline DAG —
//! the data-science-pipeline workload class the paper's introduction
//! motivates.
//!
//! Each config builds a [`Workflow`](gpuflow_runtime::Workflow) with
//! calibrated cost profiles (see [`calibration`]) and has a functional
//! reference implementation over real matrices for correctness tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calibration;
mod cholesky;
mod fma;
mod kmeans;
mod knn;
mod matmul;
mod pipeline;

pub use cholesky::{
    dense_cholesky, gemm_cost, potrf_cost, reference_blocked_cholesky, spd_matrix, syrk_cost,
    trsm_cost, CholeskyConfig,
};
pub use fma::{reference_fma_matmul, FmaConfig};
pub use kmeans::{initial_centers, reference_kmeans, KmeansConfig};
pub use knn::{knn_merge, knn_merge_cost, knn_partial, knn_partial_cost, reference_knn, KnnConfig};
pub use matmul::{reference_blocked_matmul, MatmulConfig};
pub use pipeline::{ArrayHandle, ObjectHandle, PipelineError, Session};
