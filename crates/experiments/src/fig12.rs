//! Figure 12: generalizability — the Fused Multiply Add Matmul.
//!
//! Runs the FMA implementation with the same parameters as the dislib
//! Matmul experiment (Fig. 8) and checks that the trends carry over:
//! user-code speedup scaling with block size, parallel fraction
//! dominating CPU-GPU communication for coarse grains.

use gpuflow_algorithms::FmaConfig;
use gpuflow_analysis::signed_speedup;
use gpuflow_cluster::ProcessorKind;
use gpuflow_runtime::UserCodeStats;

use crate::measure::{Context, Outcome};
use crate::table::TextTable;

/// Grid sweep: same block sizes as Fig. 8, plus the 1×1 point the FMA
/// variant *can* run (paper Fig. 12 includes 8192 MB).
pub const GRIDS: [u64; 5] = [16, 8, 4, 2, 1];

/// One block-size point.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Block size (MiB).
    pub block_mib: f64,
    /// Grid extent.
    pub grid: u64,
    /// `fma_func` stats: (CPU, GPU) when both completed.
    pub stats: Option<(UserCodeStats, UserCodeStats)>,
    /// OOM annotation.
    pub note: Option<&'static str>,
}

impl Fig12Row {
    /// User-code GPU speedup.
    pub fn user_speedup(&self) -> Option<f64> {
        self.stats
            .map(|(c, g)| signed_speedup(c.user_code, g.user_code))
    }
}

/// The Figure 12 result.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// One row per block size.
    pub rows: Vec<Fig12Row>,
}

/// Runs the FMA sweep on the Matmul 8 GB dataset over `grids`.
pub fn run_with(ctx: &Context, grids: &[u64]) -> Fig12 {
    let ds = gpuflow_data::paper::matmul_8gb();
    let rows = grids
        .iter()
        .map(|&g| {
            let cfg = FmaConfig::new(ds.clone(), g).expect("valid grid");
            let wf = cfg.build_workflow();
            let cpu_out = ctx.run_default(&wf, ProcessorKind::Cpu);
            let gpu_out = ctx.run_default(&wf, ProcessorKind::Gpu);
            let note = match (&cpu_out, &gpu_out) {
                (Outcome::CpuOom, _) => Some("CPU OOM"),
                (_, Outcome::GpuOom) => Some("GPU OOM"),
                _ => None,
            };
            let stats = match (&cpu_out, &gpu_out) {
                (Outcome::Ok(c), Outcome::Ok(gp)) => Some((
                    *c.metrics.task_type("fma_func").expect("ran"),
                    *gp.metrics.task_type("fma_func").expect("ran"),
                )),
                _ => None,
            };
            Fig12Row {
                block_mib: cfg.spec.block_mib(),
                grid: g,
                stats,
                note,
            }
        })
        .collect();
    Fig12 { rows }
}

/// Runs with the paper's grids.
pub fn run(ctx: &Context) -> Fig12 {
    run_with(ctx, &GRIDS)
}

impl Fig12 {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Figure 12: Matmul FMA task user code",
            [
                "block MiB",
                "Usr.Code x",
                "P.Frac CPU s",
                "P.Frac GPU s",
                "comm s",
                "note",
            ],
        );
        for r in &self.rows {
            t.push([
                format!("{:.0}", r.block_mib),
                r.user_speedup().map_or("-".into(), |s| format!("{s:+.2}")),
                r.stats
                    .map_or("-".into(), |(c, _)| format!("{:.3}", c.parallel)),
                r.stats
                    .map_or("-".into(), |(_, g)| format!("{:.3}", g.parallel)),
                r.stats
                    .map_or("-".into(), |(_, g)| format!("{:.4}", g.comm)),
                r.note.unwrap_or("").to_string(),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_follows_the_matmul_trends() {
        let fig = run_with(&Context::default(), &[16, 4]);
        let fine = fig.rows[0].user_speedup().unwrap();
        let coarse = fig.rows[1].user_speedup().unwrap();
        // Same shape as Fig. 8's matmul_func: speedup scales with block.
        assert!(coarse > fine * 1.5, "fine {fine} vs coarse {coarse}");
        assert!(coarse > 8.0, "coarse FMA should be >8x, got {coarse}");
        // Computation dominates communication for coarse blocks.
        let (_, gpu) = fig.rows[1].stats.unwrap();
        assert!(gpu.parallel > gpu.comm);
        assert!(fig.render().contains("Figure 12"));
    }
}
