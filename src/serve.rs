//! `gpuflow serve` — a minimal, zero-dependency HTTP endpoint exposing
//! the live metrics of an executing run.
//!
//! The simulation core is virtual-time and single-threaded; this module
//! is the read-only real-time shell around it. The executor runs on a
//! worker thread with a shared [`MetricsHub`] attached to its event
//! bus, while the listener thread answers `GET /metrics` with the hub's
//! current Prometheus snapshot. Scrapes never perturb the run — the hub
//! is fed identically whether zero or a thousand requests arrive, so
//! the run's artifacts stay byte-identical to an unserved run.
//!
//! The HTTP surface is deliberately tiny (no keep-alive, no chunking,
//! HTTP/1.0-style close-after-response) because its only consumers are
//! scrapers and `curl`.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use gpuflow_runtime::MetricsHub;

/// Routes one request line to a `(status line, content type, body)`
/// triple. Pure, so the protocol surface is unit-testable without
/// sockets.
pub fn handle_request(request_line: &str, hub: &MetricsHub) -> (String, &'static str, String) {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return (
            "HTTP/1.0 405 Method Not Allowed".to_string(),
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        );
    }
    match path {
        "/metrics" => (
            "HTTP/1.0 200 OK".to_string(),
            // The content type the Prometheus text exposition mandates.
            "text/plain; version=0.0.4; charset=utf-8",
            hub.expose(),
        ),
        "/" => (
            "HTTP/1.0 200 OK".to_string(),
            "text/plain; charset=utf-8",
            "gpuflow metrics endpoint\n\n  GET /metrics  Prometheus text exposition\n".to_string(),
        ),
        _ => (
            "HTTP/1.0 404 Not Found".to_string(),
            "text/plain; charset=utf-8",
            "not found (try /metrics)\n".to_string(),
        ),
    }
}

/// Answers one accepted connection. The request is read until the
/// header-terminating blank line (clients may deliver it in several
/// segments), EOF, or the 2 KiB cap — whichever comes first.
fn answer(stream: &mut TcpStream, hub: &MetricsHub) -> std::io::Result<()> {
    let mut buf = [0u8; 2048];
    let mut n = 0;
    loop {
        let read = stream.read(&mut buf[n..])?;
        n += read;
        if read == 0 || n == buf.len() || buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf[..n]);
    let request_line = request.lines().next().unwrap_or("");
    let (status, ctype, body) = handle_request(request_line, hub);
    let header = format!(
        "{status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// Serves scrape requests on `listener` until `max_requests` have been
/// answered (`None` = forever). Individual connection errors are
/// ignored — a dropped scrape must not kill the endpoint.
pub fn serve_until(listener: &TcpListener, hub: &MetricsHub, max_requests: Option<u64>) {
    let mut answered = 0u64;
    for stream in listener.incoming() {
        if let Ok(mut stream) = stream {
            let _ = answer(&mut stream, hub);
            answered += 1;
        }
        if max_requests.is_some_and(|max| answered >= max) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_metrics_root_and_unknown_paths() {
        let hub = MetricsHub::default();
        let (status, ctype, body) = handle_request("GET /metrics HTTP/1.1", &hub);
        assert!(status.contains("200"));
        assert!(ctype.contains("version=0.0.4"));
        assert!(body.contains("gpuflow_ready_tasks"));

        let (status, _, body) = handle_request("GET / HTTP/1.1", &hub);
        assert!(status.contains("200"));
        assert!(body.contains("/metrics"));

        let (status, _, _) = handle_request("GET /nope HTTP/1.1", &hub);
        assert!(status.contains("404"));

        let (status, _, _) = handle_request("POST /metrics HTTP/1.1", &hub);
        assert!(status.contains("405"));
    }

    #[test]
    fn malformed_request_line_is_not_a_panic() {
        let hub = MetricsHub::default();
        let (status, _, _) = handle_request("", &hub);
        assert!(status.contains("405"));
    }
}
