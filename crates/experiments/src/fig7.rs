//! Figure 7: end-to-end performance analysis of Matmul (7a) and K-means
//! (7b) across block sizes, for the small and large datasets.
//!
//! For every grid dimension the experiment reports the three GPU-over-CPU
//! speedups (parallel fraction, user code, parallel tasks) and the stage
//! times behind them — with the GPU OOM walls the paper draws at large
//! block sizes.

use gpuflow_algorithms::{KmeansConfig, MatmulConfig};
use gpuflow_analysis::signed_speedup;
use gpuflow_cluster::ProcessorKind;
use gpuflow_data::DatasetSpec;
use gpuflow_runtime::RunReport;

use crate::measure::{Context, Outcome};
use crate::table::TextTable;

/// The paper's Matmul grid sweep (§4.4.5).
pub const MATMUL_GRIDS: [u64; 5] = [16, 8, 4, 2, 1];
/// The paper's K-means grid sweep (§4.4.5).
pub const KMEANS_GRIDS: [u64; 9] = [256, 128, 64, 32, 16, 8, 4, 2, 1];
/// Iterations used for the end-to-end K-means runs.
pub const KMEANS_ITERATIONS: u32 = 3;

/// Stage times of one run (seconds, per-task means except `ptask`).
#[derive(Debug, Clone, Copy)]
pub struct StageTimes {
    /// Mean parallel-fraction time per task.
    pub pfrac: f64,
    /// Mean serial fraction + CPU-GPU communication per task.
    pub serial_comm: f64,
    /// Mean (de)serialization time per core.
    pub deser_ser: f64,
    /// Parallel task execution time (mean DAG-level span).
    pub ptask: f64,
    /// Whole-workflow makespan.
    pub makespan: f64,
}

impl StageTimes {
    fn from_report(r: &RunReport) -> Self {
        StageTimes {
            pfrac: r.metrics.mean_parallel(),
            serial_comm: r.metrics.mean_user_code() - r.metrics.mean_parallel(),
            deser_ser: r.metrics.deser_per_core + r.metrics.ser_per_core,
            ptask: r.metrics.parallel_task_time,
            makespan: r.metrics.makespan,
        }
    }
}

/// One grid point of the sweep.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Grid extent (G for G×G Matmul grids, k for k×1 K-means grids).
    pub grid: u64,
    /// Block size label as on the paper's x-axes.
    pub block_label: String,
    /// CPU stage times.
    pub cpu: StageTimes,
    /// GPU outcome (times or an OOM wall).
    pub gpu: Option<StageTimes>,
    /// `"GPU OOM"` / `"CPU OOM"` when a side failed.
    pub note: Option<&'static str>,
}

impl Fig7Row {
    /// GPU-over-CPU speedup of the parallel fraction.
    pub fn pfrac_speedup(&self) -> Option<f64> {
        self.gpu.map(|g| signed_speedup(self.cpu.pfrac, g.pfrac))
    }

    /// GPU-over-CPU speedup of the user code.
    pub fn user_speedup(&self) -> Option<f64> {
        self.gpu.map(|g| {
            signed_speedup(
                self.cpu.pfrac + self.cpu.serial_comm,
                g.pfrac + g.serial_comm,
            )
        })
    }

    /// GPU-over-CPU speedup of the parallel-tasks stage.
    pub fn ptask_speedup(&self) -> Option<f64> {
        self.gpu.map(|g| signed_speedup(self.cpu.ptask, g.ptask))
    }
}

/// A full sweep for one algorithm × dataset.
#[derive(Debug, Clone)]
pub struct Fig7Sweep {
    /// Sweep label (e.g. "Matmul 8GB").
    pub label: String,
    /// One row per grid dimension.
    pub rows: Vec<Fig7Row>,
}

/// Runs the Matmul sweep of Fig. 7a over `grids`.
pub fn run_matmul(ctx: &Context, dataset: &DatasetSpec, grids: &[u64]) -> Fig7Sweep {
    let rows = ctx.par_map(grids, |_, &g| {
        let cfg = MatmulConfig::new(dataset.clone(), g).expect("valid paper grid");
        let wf = cfg.build_workflow();
        let label = format!("{:.0} ({}x{})", cfg.spec.block_mib(), g, g);
        sweep_point(ctx, &wf, g, label)
    });
    Fig7Sweep {
        label: format!("Matmul {}", dataset.name),
        rows,
    }
}

/// Runs the K-means sweep of Fig. 7b over `grids`.
pub fn run_kmeans(
    ctx: &Context,
    dataset: &DatasetSpec,
    grids: &[u64],
    clusters: u64,
    iterations: u32,
) -> Fig7Sweep {
    let rows = ctx.par_map(grids, |_, &g| {
        let cfg =
            KmeansConfig::new(dataset.clone(), g, clusters, iterations).expect("valid paper grid");
        let wf = cfg.build_workflow();
        let label = format!("{:.0} ({}x1)", cfg.spec.block_mb(), g);
        sweep_point(ctx, &wf, g, label)
    });
    Fig7Sweep {
        label: format!("K-means {}", dataset.name),
        rows,
    }
}

fn sweep_point(ctx: &Context, wf: &gpuflow_runtime::Workflow, grid: u64, label: String) -> Fig7Row {
    let cpu_out = ctx.run_default(wf, ProcessorKind::Cpu);
    let gpu_out = ctx.run_default(wf, ProcessorKind::Gpu);
    let cpu = match &cpu_out {
        Outcome::Ok(r) => StageTimes::from_report(r),
        // A CPU OOM (Fig. 9a's right edge) leaves empty stage times.
        _ => StageTimes {
            pfrac: 0.0,
            serial_comm: 0.0,
            deser_ser: 0.0,
            ptask: 0.0,
            makespan: 0.0,
        },
    };
    let note = match (&cpu_out, &gpu_out) {
        (Outcome::CpuOom, Outcome::GpuOom) => Some("CPU+GPU OOM"),
        (Outcome::CpuOom, _) => Some("CPU OOM"),
        (_, Outcome::GpuOom) => Some("GPU OOM"),
        _ => None,
    };
    Fig7Row {
        grid,
        block_label: label,
        cpu,
        gpu: gpu_out.map(StageTimes::from_report),
        note,
    }
}

impl Fig7Sweep {
    /// Renders the sweep as the paper's two stacked charts (speedups and
    /// stage times) in tabular form.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            &format!("Figure 7: end-to-end analysis, {}", self.label),
            [
                "block MB (grid)",
                "P.Frac x",
                "Usr.Code x",
                "P.Tasks x",
                "CPU pfrac s",
                "GPU pfrac s",
                "ser+comm s",
                "de/ser s",
                "note",
            ],
        );
        for r in &self.rows {
            let f = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:+.2}"));
            t.push([
                r.block_label.clone(),
                f(r.pfrac_speedup()),
                f(r.user_speedup()),
                f(r.ptask_speedup()),
                format!("{:.3}", r.cpu.pfrac),
                r.gpu.map_or("-".into(), |g| format!("{:.3}", g.pfrac)),
                r.gpu
                    .map_or("-".into(), |g| format!("{:.3}", g.serial_comm)),
                format!("{:.3}", r.cpu.deser_ser),
                r.note.unwrap_or("").to_string(),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_dataset_shape() {
        // Quick subset: fine and coarse grids plus the OOM point.
        let ctx = Context::default();
        let sweep = run_matmul(&ctx, &gpuflow_data::paper::matmul_8gb(), &[16, 4, 1]);
        assert_eq!(sweep.rows.len(), 3);
        // Speedups grow from fine to coarse...
        let s16 = sweep.rows[0].user_speedup().unwrap();
        let s4 = sweep.rows[1].user_speedup().unwrap();
        assert!(s4 > s16, "coarse blocks must speed up more: {s16} vs {s4}");
        // ...until the 8192 MiB block overflows the 12 GB device (3x8 GB).
        assert_eq!(sweep.rows[2].note, Some("GPU OOM"));
        assert!(sweep.render().contains("GPU OOM"));
    }

    #[test]
    fn kmeans_user_speedup_insensitive_to_block_size() {
        // Observation O1: serial fraction + comm dominate at every block
        // size, so user-code speedups barely move.
        let ctx = Context::default();
        let sweep = run_kmeans(&ctx, &gpuflow_data::paper::kmeans_10gb(), &[256, 16], 10, 1);
        let a = sweep.rows[0].user_speedup().unwrap();
        let b = sweep.rows[1].user_speedup().unwrap();
        assert!(
            (a - b).abs() < 0.5,
            "user speedups {a} vs {b} should be close"
        );
    }

    #[test]
    fn kmeans_parallel_tasks_favor_cpu_at_fine_grain() {
        let ctx = Context::default();
        let sweep = run_kmeans(&ctx, &gpuflow_data::paper::kmeans_10gb(), &[256], 10, 1);
        let pt = sweep.rows[0].ptask_speedup().unwrap();
        assert!(pt < 0.0, "fine-grained K-means favors CPUs, got {pt}");
    }
}
