//! Spearman rank correlation (§5.4).
//!
//! The paper uses Spearman's ρ for its robustness to non-linear (but
//! monotone) relationships between execution factors. We implement the
//! tie-aware definition: rank both variables with fractional (midrank)
//! ties, then take the Pearson correlation of the ranks.

/// Assigns fractional ranks (1-based; ties get the midrank).
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite samples"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Elements i..=j are tied; midrank = mean of positions (1-based).
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = midrank;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation of two equal-length samples; 0 when either is
/// constant (no variance) or empty.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must align");
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Spearman's ρ of two equal-length samples.
///
/// # Panics
/// Panics when the samples have different lengths.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks(xs), &ranks(ys))
}

/// Spearman's ρ over pairwise-complete observations: sample pairs where
/// either value is NaN are dropped before ranking — the pandas `corr`
/// convention the paper's analysis pipeline uses, which matters for
/// features undefined on some samples (Matmul has no algorithm-specific
/// parameter).
pub fn spearman_pairwise(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must align");
    let (fx, fy): (Vec<f64>, Vec<f64>) = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| !x.is_nan() && !y.is_nan())
        .map(|(&x, &y)| (x, y))
        .unzip();
    spearman(&fx, &fy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_simple() {
        assert_eq!(ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties_use_midrank() {
        // [1, 2, 2, 3] -> ranks [1, 2.5, 2.5, 4]
        assert_eq!(ranks(&[1.0, 2.0, 2.0, 3.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn perfect_monotone_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 100.0, 1000.0, 10_000.0]; // non-linear but monotone
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_inverse_is_minus_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_variable_yields_zero() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn symmetric() {
        let xs = [3.0, 1.0, 4.0, 1.5, 9.0];
        let ys = [2.0, 7.0, 1.0, 8.0, 2.0];
        assert!((spearman(&xs, &ys) - spearman(&ys, &xs)).abs() < 1e-12);
    }

    #[test]
    fn known_value_with_ties() {
        // Hand-computed: rank(x) = [1, 2, 3.5, 3.5, 5], rank(y) =
        // [2, 1, 4, 3, 5]; Pearson of the ranks = 8.5 / sqrt(9.5 * 10).
        let xs = [1.0, 2.0, 3.0, 3.0, 5.0];
        let ys = [2.0, 1.0, 4.0, 3.0, 5.0];
        let rho = spearman(&xs, &ys);
        let expected = 8.5 / (9.5f64 * 10.0).sqrt();
        assert!((rho - expected).abs() < 1e-12, "{rho} vs {expected}");
    }

    #[test]
    fn pairwise_drops_nan_pairs() {
        let xs = [1.0, f64::NAN, 3.0, 4.0, f64::NAN];
        let ys = [1.0, 99.0, 3.0, 4.0, -5.0];
        assert!((spearman_pairwise(&xs, &ys) - 1.0).abs() < 1e-12);
        // All-NaN column: no observations, rho = 0.
        let nan = [f64::NAN; 3];
        assert_eq!(spearman_pairwise(&nan, &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn bounded_in_unit_interval() {
        let xs = [0.3, -1.0, 2.5, 8.0, -4.0, 0.0];
        let ys = [1.0, 0.0, 9.0, -2.0, 4.0, 4.0];
        let rho = spearman(&xs, &ys);
        assert!((-1.0..=1.0).contains(&rho));
    }
}
