//! The partitioning algebra of §3.5 (Eq. 1 and Eq. 2).
//!
//! A dataset `D(i×j)` is split into a grid `G(k×l)` of blocks `B(m×n)`
//! with `i = k·m` and `j = l·n`. Block dimension and grid dimension are
//! inversely proportional — the thread-level vs. task-level parallelism
//! trade-off at the heart of the paper.

use std::fmt;

/// Shape of the input dataset `D(i×j)`: `i` rows × `j` columns of elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DatasetDim {
    /// Rows (`i`).
    pub rows: u64,
    /// Columns (`j`).
    pub cols: u64,
}

/// Shape of one block `B(m×n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockDim {
    /// Rows per block (`m`).
    pub rows: u64,
    /// Columns per block (`n`).
    pub cols: u64,
}

/// Shape of the grid `G(k×l)`: `k` block-rows × `l` block-columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridDim {
    /// Block-rows (`k`).
    pub rows: u64,
    /// Block-columns (`l`).
    pub cols: u64,
}

/// Why a partitioning is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A dimension was zero.
    ZeroDimension,
    /// The grid has more blocks along an axis than the dataset has
    /// elements (§3.5's second constraint).
    GridExceedsDataset {
        /// Grid extent.
        grid: u64,
        /// Dataset extent.
        dataset: u64,
    },
    /// Ceiling-divided blocks leave at least one grid cell empty — the
    /// requested grid is too fine for the dataset shape.
    DegenerateGrid {
        /// Grid extent.
        grid: u64,
        /// Dataset extent.
        dataset: u64,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::ZeroDimension => write!(f, "dimension must be positive"),
            PartitionError::GridExceedsDataset { grid, dataset } => {
                write!(f, "grid extent {grid} exceeds dataset extent {dataset}")
            }
            PartitionError::DegenerateGrid { grid, dataset } => {
                write!(
                    f,
                    "grid extent {grid} leaves empty blocks over dataset extent {dataset}"
                )
            }
        }
    }
}

impl std::error::Error for PartitionError {}

impl DatasetDim {
    /// Total number of elements (`i × j`).
    pub fn elements(&self) -> u64 {
        self.rows * self.cols
    }
}

impl BlockDim {
    /// Total elements per block (`m × n`).
    pub fn elements(&self) -> u64 {
        self.rows * self.cols
    }

    /// Block payload in bytes for the given element width.
    pub fn bytes(&self, elem_bytes: u64) -> u64 {
        self.elements() * elem_bytes
    }

    /// Eq. 2: derives the (nominal) block dimension for a dataset split by
    /// `grid`, using ceiling division — the trailing block of an axis may
    /// be smaller, as in dislib. Fails when any grid cell would be empty.
    pub fn for_grid(dataset: DatasetDim, grid: GridDim) -> Result<BlockDim, PartitionError> {
        if dataset.rows == 0 || dataset.cols == 0 || grid.rows == 0 || grid.cols == 0 {
            return Err(PartitionError::ZeroDimension);
        }
        if grid.rows > dataset.rows {
            return Err(PartitionError::GridExceedsDataset {
                grid: grid.rows,
                dataset: dataset.rows,
            });
        }
        if grid.cols > dataset.cols {
            return Err(PartitionError::GridExceedsDataset {
                grid: grid.cols,
                dataset: dataset.cols,
            });
        }
        let m = dataset.rows.div_ceil(grid.rows);
        let n = dataset.cols.div_ceil(grid.cols);
        // Every grid cell must hold at least one element (§3.5).
        if (grid.rows - 1) * m >= dataset.rows {
            return Err(PartitionError::DegenerateGrid {
                grid: grid.rows,
                dataset: dataset.rows,
            });
        }
        if (grid.cols - 1) * n >= dataset.cols {
            return Err(PartitionError::DegenerateGrid {
                grid: grid.cols,
                dataset: dataset.cols,
            });
        }
        Ok(BlockDim { rows: m, cols: n })
    }
}

impl GridDim {
    /// A square grid `g × g`.
    pub const fn square(g: u64) -> Self {
        GridDim { rows: g, cols: g }
    }

    /// A row-wise grid `k × 1` (the paper's K-means chunking).
    pub const fn row_wise(k: u64) -> Self {
        GridDim { rows: k, cols: 1 }
    }

    /// Number of blocks in the grid (`k × l`).
    pub fn blocks(&self) -> u64 {
        self.rows * self.cols
    }

    /// Eq. 2 inverted: derives the grid for a dataset split into blocks of
    /// (at most) `block` shape, using ceiling division.
    pub fn for_block(dataset: DatasetDim, block: BlockDim) -> Result<GridDim, PartitionError> {
        if dataset.rows == 0 || dataset.cols == 0 || block.rows == 0 || block.cols == 0 {
            return Err(PartitionError::ZeroDimension);
        }
        if block.rows > dataset.rows || block.cols > dataset.cols {
            return Err(PartitionError::GridExceedsDataset {
                grid: block.rows.max(block.cols),
                dataset: dataset.rows.min(dataset.cols),
            });
        }
        Ok(GridDim {
            rows: dataset.rows.div_ceil(block.rows),
            cols: dataset.cols.div_ceil(block.cols),
        })
    }
}

macro_rules! impl_fmt_dims {
    ($($ty:ty),*) => {$(
        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}x{}", self.rows, self.cols)
            }
        }
    )*};
}
impl_fmt_dims!(GridDim, BlockDim, DatasetDim);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_holds_for_derived_block() {
        let d = DatasetDim {
            rows: 32768,
            cols: 32768,
        };
        let g = GridDim::square(16);
        let b = BlockDim::for_grid(d, g).unwrap();
        assert_eq!(
            b,
            BlockDim {
                rows: 2048,
                cols: 2048
            }
        );
        // Eq. 1: i = k·m, j = l·n.
        assert_eq!(d.rows, g.rows * b.rows);
        assert_eq!(d.cols, g.cols * b.cols);
    }

    #[test]
    fn grid_and_block_derivations_are_inverse() {
        let d = DatasetDim {
            rows: 12_500_000,
            cols: 100,
        };
        let g = GridDim::row_wise(256);
        let b = BlockDim::for_grid(d, g).unwrap();
        assert_eq!(GridDim::for_block(d, b).unwrap(), g);
    }

    #[test]
    fn ragged_split_uses_ceiling_blocks() {
        // 10 rows over 3 block-rows -> nominal 4-row blocks (4, 4, 2).
        let d = DatasetDim { rows: 10, cols: 10 };
        let b = BlockDim::for_grid(d, GridDim { rows: 3, cols: 1 }).unwrap();
        assert_eq!(b, BlockDim { rows: 4, cols: 10 });
    }

    #[test]
    fn rejects_degenerate_grid() {
        // 10 rows over 6 block-rows -> 2-row blocks cover it in 5; the
        // sixth block would be empty.
        let d = DatasetDim { rows: 10, cols: 10 };
        let err = BlockDim::for_grid(d, GridDim { rows: 6, cols: 1 }).unwrap_err();
        assert!(matches!(err, PartitionError::DegenerateGrid { .. }));
    }

    #[test]
    fn rejects_grid_larger_than_dataset() {
        let d = DatasetDim { rows: 4, cols: 4 };
        let err = BlockDim::for_grid(d, GridDim::square(8)).unwrap_err();
        assert!(matches!(err, PartitionError::GridExceedsDataset { .. }));
    }

    #[test]
    fn rejects_zero_dims() {
        let d = DatasetDim { rows: 0, cols: 4 };
        assert_eq!(
            BlockDim::for_grid(d, GridDim::square(1)).unwrap_err(),
            PartitionError::ZeroDimension
        );
    }

    #[test]
    fn block_bytes_for_f64() {
        let b = BlockDim {
            rows: 2048,
            cols: 2048,
        };
        assert_eq!(b.bytes(8), 32 * 1024 * 1024);
    }

    #[test]
    fn displays_as_k_x_l() {
        assert_eq!(GridDim::square(4).to_string(), "4x4");
        assert_eq!(GridDim::row_wise(8).to_string(), "8x1");
    }
}
