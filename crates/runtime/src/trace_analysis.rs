//! Trace analytics — the Paraver side of the paper's methodology.
//!
//! The paper extracts its data-movement metrics from Paraver traces
//! (§4.4.3) and motivates the whole study with *resource wastage*: "a non
//! desirable situation would be to keep the CPUs busy while the GPUs stay
//! idle" (§1). This module turns a [`Trace`] plus the task records into
//! those analyses:
//!
//! * per-node busy/idle timelines and utilization profiles,
//! * state-time breakdowns (how much of the run went to deserialization
//!   vs. compute vs. transfers — the stacked story of Fig. 7's bottom
//!   charts),
//! * the resource-wastage measure (simultaneous CPU-busy/GPU-idle time),
//! * critical-path extraction (which chain of tasks determines the
//!   makespan).

use std::collections::{BTreeMap, HashMap};

use gpuflow_cluster::ProcessorKind;
use gpuflow_sim::SimTime;

use crate::metrics::TaskRecord;
use crate::task::TaskId;
use crate::telemetry::{TelemetryEvent, TelemetryLog};
use crate::trace::{Trace, TraceState};
use crate::workflow::Workflow;

/// Seconds spent in each processing state, cluster-wide.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateBreakdown {
    /// Deserialization (read + decode).
    pub deserialize: f64,
    /// Serial fraction.
    pub serial: f64,
    /// Parallel fraction (CPU compute or GPU kernel).
    pub parallel: f64,
    /// CPU-GPU communication.
    pub comm: f64,
    /// Serialization (encode + write).
    pub serialize: f64,
}

impl StateBreakdown {
    /// Total accounted seconds.
    pub fn total(&self) -> f64 {
        self.deserialize + self.serial + self.parallel + self.comm + self.serialize
    }

    /// The share of each state in `[0, 1]`, in trace-state order.
    pub fn shares(&self) -> [(TraceState, f64); 5] {
        let t = self.total().max(1e-12);
        [
            (TraceState::Deserialize, self.deserialize / t),
            (TraceState::SerialFraction, self.serial / t),
            (TraceState::ParallelFraction, self.parallel / t),
            (TraceState::CpuGpuComm, self.comm / t),
            (TraceState::Serialize, self.serialize / t),
        ]
    }
}

/// Computes the cluster-wide state breakdown of a trace.
pub fn state_breakdown(trace: &Trace) -> StateBreakdown {
    let mut out = StateBreakdown::default();
    for r in trace.records() {
        let dur = (r.t1 - r.t0).as_secs_f64();
        match r.state {
            TraceState::Deserialize => out.deserialize += dur,
            TraceState::SerialFraction => out.serial += dur,
            TraceState::ParallelFraction => out.parallel += dur,
            TraceState::CpuGpuComm => out.comm += dur,
            TraceState::Serialize => out.serialize += dur,
        }
    }
    out
}

/// A merged busy interval on one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusyInterval {
    /// Start.
    pub t0: SimTime,
    /// End.
    pub t1: SimTime,
    /// Number of concurrently busy tasks over the interval (minimum 1).
    pub min_concurrency: usize,
}

/// Per-node busy timelines derived from task records (a task is "busy"
/// on its node from dispatch to completion, like a Paraver worker lane).
pub fn node_timelines(records: &[TaskRecord]) -> BTreeMap<usize, Vec<BusyInterval>> {
    // Sweep per node: +1 at start, -1 at end.
    let mut events: BTreeMap<usize, Vec<(u64, i32)>> = BTreeMap::new();
    for r in records {
        let e = events.entry(r.node).or_default();
        e.push((r.start.as_nanos(), 1));
        e.push((r.end.as_nanos(), -1));
    }
    let mut out = BTreeMap::new();
    for (node, mut evs) in events {
        evs.sort();
        let mut intervals = Vec::new();
        let mut depth = 0i32;
        let mut open_at = 0u64;
        let mut min_c = usize::MAX;
        for (t, d) in evs {
            if depth == 0 && d > 0 {
                open_at = t;
                min_c = usize::MAX;
            }
            depth += d;
            if depth > 0 {
                min_c = min_c.min(depth as usize);
            }
            if depth == 0 && t > open_at {
                intervals.push(BusyInterval {
                    t0: SimTime::from_nanos(open_at),
                    t1: SimTime::from_nanos(t),
                    min_concurrency: if min_c == usize::MAX { 1 } else { min_c },
                });
            }
        }
        out.insert(node, intervals);
    }
    out
}

/// The resource-wastage measure of §1: seconds during which at least
/// `cpu_threshold` CPU cores are busy while *no* GPU kernel runs
/// ("CPUs busy while the GPUs stay idle"). Multi-threaded CPU tasks
/// count every core they hold, not just the first. Only meaningful for
/// GPU runs.
pub fn cpu_busy_gpu_idle_seconds(records: &[TaskRecord], cpu_threshold: usize) -> f64 {
    // Event sweep over two counters.
    let mut events: Vec<(u64, i32, i32)> = Vec::new(); // (t, d_cpu, d_gpu)
    for r in records {
        match r.processor {
            ProcessorKind::Cpu => {
                let cores = r.cores.max(1) as i32;
                events.push((r.start.as_nanos(), cores, 0));
                events.push((r.end.as_nanos(), -cores, 0));
            }
            ProcessorKind::Gpu => {
                events.push((r.start.as_nanos(), 0, 1));
                events.push((r.end.as_nanos(), 0, -1));
            }
        }
    }
    events.sort();
    let (mut cpu, mut gpu) = (0i32, 0i32);
    let mut wasted = 0u64;
    let mut prev = 0u64;
    for (t, dc, dg) in events {
        if cpu as usize >= cpu_threshold && gpu == 0 {
            wasted += t - prev;
        }
        cpu += dc;
        gpu += dg;
        prev = t;
    }
    wasted as f64 / 1e9
}

/// One hop of the critical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalHop {
    /// The task.
    pub task: TaskId,
    /// Its completion time.
    pub end: SimTime,
}

/// Extracts the critical path of a run: walk back from the task that
/// finished last through, at each step, the latest-finishing predecessor.
/// The returned path is in execution order (first task first).
pub fn critical_path(workflow: &Workflow, records: &[TaskRecord]) -> Vec<CriticalHop> {
    let end_of: HashMap<TaskId, SimTime> = records.iter().map(|r| (r.task, r.end)).collect();
    critical_path_walk_back(workflow, &end_of)
}

/// The shared walk-back over per-task completion times: start at the
/// latest-finishing task, repeatedly hop to the latest-finishing
/// predecessor. Ties break on the higher [`TaskId`], so the record- and
/// telemetry-fed variants agree hop for hop.
fn critical_path_walk_back(
    workflow: &Workflow,
    end_of: &HashMap<TaskId, SimTime>,
) -> Vec<CriticalHop> {
    // lint: allow(D1, max key tie-breaks on the task id so the selection is order-total)
    let Some((&last, &last_end)) = end_of.iter().max_by_key(|(t, at)| (**at, **t)) else {
        return Vec::new();
    };
    let mut path = vec![CriticalHop {
        task: last,
        end: last_end,
    }];
    let mut current = last;
    loop {
        let pred = workflow
            .predecessors(current)
            .iter()
            .filter_map(|p| end_of.get(p).map(|end| (*p, *end)))
            .max_by_key(|&(task, end)| (end, task));
        match pred {
            Some((task, end)) => {
                path.push(CriticalHop { task, end });
                current = task;
            }
            None => break,
        }
    }
    path.reverse();
    path
}

/// Renders a utilization profile: for each node, the fraction of
/// `[0, makespan]` with at least one task running.
pub fn node_utilization(records: &[TaskRecord], makespan: f64) -> BTreeMap<usize, f64> {
    node_timelines(records)
        .into_iter()
        .map(|(node, intervals)| {
            let busy: f64 = intervals.iter().map(|i| (i.t1 - i.t0).as_secs_f64()).sum();
            (node, busy / makespan.max(1e-12))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Telemetry-stream adapters: the same analytics, fed from the runtime
// event bus instead of post-hoc records, so traces, wastage, and the
// overhead decomposition all read one source of truth.
// ---------------------------------------------------------------------

/// [`state_breakdown`] computed from a telemetry event stream.
pub fn state_breakdown_from_telemetry(log: &TelemetryLog) -> StateBreakdown {
    state_breakdown(&Trace::from_telemetry(log))
}

/// [`cpu_busy_gpu_idle_seconds`] computed from a telemetry event
/// stream: dispatch/completion events bound each task's busy window,
/// dispatch events carry the held core count and the device kind.
pub fn cpu_busy_gpu_idle_from_telemetry(log: &TelemetryLog, cpu_threshold: usize) -> f64 {
    cpu_busy_gpu_idle_nanos_from_telemetry(log, cpu_threshold) as f64 / 1e9
}

/// [`cpu_busy_gpu_idle_from_telemetry`] on the integer nanosecond grid,
/// for exact profile digests ([`crate::telemetry::RunProfile`]).
pub fn cpu_busy_gpu_idle_nanos_from_telemetry(log: &TelemetryLog, cpu_threshold: usize) -> u64 {
    let mut open: HashMap<crate::task::TaskId, (i32, bool)> = HashMap::new();
    let mut events: Vec<(u64, i32, i32)> = Vec::new();
    for ev in log.events() {
        match ev {
            TelemetryEvent::TaskDispatched {
                at,
                task,
                cores,
                gpu,
                ..
            } => {
                let on_gpu = gpu.is_some();
                open.insert(*task, ((*cores).max(1) as i32, on_gpu));
                if on_gpu {
                    events.push((at.as_nanos(), 0, 1));
                } else {
                    events.push((at.as_nanos(), (*cores).max(1) as i32, 0));
                }
            }
            TelemetryEvent::TaskCompleted { at, task, .. } => {
                if let Some((cores, on_gpu)) = open.remove(task) {
                    if on_gpu {
                        events.push((at.as_nanos(), 0, -1));
                    } else {
                        events.push((at.as_nanos(), -cores, 0));
                    }
                }
            }
            _ => {}
        }
    }
    events.sort();
    let (mut cpu, mut gpu) = (0i32, 0i32);
    let mut wasted = 0u64;
    let mut prev = 0u64;
    for (t, dc, dg) in events {
        if cpu as usize >= cpu_threshold && cpu > 0 && gpu == 0 {
            wasted += t - prev;
        }
        cpu += dc;
        gpu += dg;
        prev = t;
    }
    wasted
}

/// [`critical_path`] computed from a telemetry event stream: completion
/// events supply the per-task finish times that the record-based
/// variant reads from [`TaskRecord`]s. Both variants share the same
/// walk-back over per-task completion times, so they agree hop for hop
/// on the same run.
pub fn critical_path_from_telemetry(workflow: &Workflow, log: &TelemetryLog) -> Vec<CriticalHop> {
    let mut end_of: HashMap<TaskId, SimTime> = HashMap::new();
    for ev in log.events() {
        if let TelemetryEvent::TaskCompleted { at, task, .. } = ev {
            end_of.insert(*task, *at);
        }
    }
    critical_path_walk_back(workflow, &end_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpuflow_sim::SimDuration;

    fn rec(task: u32, node: usize, proc: ProcessorKind, start_s: f64, end_s: f64) -> TaskRecord {
        TaskRecord {
            task: TaskId(task),
            task_type: "t".into(),
            node,
            core: 0,
            cores: 1,
            processor: proc,
            level: 0,
            start: SimTime::from_nanos((start_s * 1e9) as u64),
            end: SimTime::from_nanos((end_s * 1e9) as u64),
            deser: SimDuration::ZERO,
            ser: SimDuration::ZERO,
            serial: SimDuration::ZERO,
            parallel: SimDuration::ZERO,
            comm: SimDuration::ZERO,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    #[test]
    fn breakdown_sums_trace_intervals() {
        let mut trace = Trace::new();
        let t = |s: f64| SimTime::from_nanos((s * 1e9) as u64);
        trace.push(crate::trace::TraceRecord {
            node: 0,
            core: 0,
            task: TaskId(0),
            state: TraceState::Deserialize,
            t0: t(0.0),
            t1: t(1.0),
        });
        trace.push(crate::trace::TraceRecord {
            node: 0,
            core: 0,
            task: TaskId(0),
            state: TraceState::ParallelFraction,
            t0: t(1.0),
            t1: t(4.0),
        });
        let b = state_breakdown(&trace);
        assert_eq!(b.deserialize, 1.0);
        assert_eq!(b.parallel, 3.0);
        assert_eq!(b.total(), 4.0);
        let shares = b.shares();
        assert!((shares[2].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn timelines_merge_overlapping_tasks() {
        let records = vec![
            rec(0, 0, ProcessorKind::Cpu, 0.0, 2.0),
            rec(1, 0, ProcessorKind::Cpu, 1.0, 3.0), // overlaps task 0
            rec(2, 0, ProcessorKind::Cpu, 5.0, 6.0), // separate interval
            rec(3, 1, ProcessorKind::Cpu, 0.0, 1.0),
        ];
        let tl = node_timelines(&records);
        assert_eq!(tl[&0].len(), 2);
        assert_eq!(tl[&0][0].t1.as_secs_f64(), 3.0);
        assert_eq!(tl[&1].len(), 1);
    }

    #[test]
    fn utilization_fraction_of_makespan() {
        let records = vec![rec(0, 0, ProcessorKind::Cpu, 0.0, 2.0)];
        let u = node_utilization(&records, 4.0);
        assert!((u[&0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wastage_counts_cpu_busy_gpu_idle_time() {
        // CPU task runs 0..4; GPU kernel task only 1..2.
        let records = vec![
            rec(0, 0, ProcessorKind::Cpu, 0.0, 4.0),
            rec(1, 0, ProcessorKind::Gpu, 1.0, 2.0),
        ];
        // GPU idle while >=1 CPU busy: [0,1) and [2,4) = 3 s.
        let wasted = cpu_busy_gpu_idle_seconds(&records, 1);
        assert!((wasted - 3.0).abs() < 1e-9);
    }

    #[test]
    fn wastage_zero_when_gpu_always_busy() {
        let records = vec![
            rec(0, 0, ProcessorKind::Cpu, 0.0, 2.0),
            rec(1, 0, ProcessorKind::Gpu, 0.0, 2.0),
        ];
        assert_eq!(cpu_busy_gpu_idle_seconds(&records, 1), 0.0);
    }

    #[test]
    fn critical_path_follows_latest_predecessors() {
        use crate::data::Direction;
        use crate::task::CostProfile;
        use crate::workflow::WorkflowBuilder;
        use gpuflow_cluster::KernelWork;
        // Diamond DAG: t0 -> {t1 (slow), t2 (fast)} -> t3.
        let mut b = WorkflowBuilder::new();
        let cost = CostProfile::fully_parallel(KernelWork::data_parallel(1.0, 1.0));
        let x = b.intermediate("x", 8);
        let y1 = b.intermediate("y1", 8);
        let y2 = b.intermediate("y2", 8);
        b.submit("a", cost, &[(x, Direction::Out)], false).unwrap();
        b.submit(
            "b",
            cost,
            &[(x, Direction::In), (y1, Direction::Out)],
            false,
        )
        .unwrap();
        b.submit(
            "c",
            cost,
            &[(x, Direction::In), (y2, Direction::Out)],
            false,
        )
        .unwrap();
        b.submit(
            "d",
            cost,
            &[(y1, Direction::In), (y2, Direction::In)],
            false,
        )
        .unwrap();
        let wf = b.build();
        let records = vec![
            rec(0, 0, ProcessorKind::Cpu, 0.0, 1.0),
            rec(1, 0, ProcessorKind::Cpu, 1.0, 5.0), // the slow branch
            rec(2, 0, ProcessorKind::Cpu, 1.0, 2.0),
            rec(3, 0, ProcessorKind::Cpu, 5.0, 6.0),
        ];
        let path: Vec<u32> = critical_path(&wf, &records)
            .iter()
            .map(|h| h.task.0)
            .collect();
        assert_eq!(path, vec![0, 1, 3], "path must go through the slow branch");
    }

    #[test]
    fn empty_inputs_yield_empty_analyses() {
        assert!(node_timelines(&[]).is_empty());
        assert_eq!(state_breakdown(&Trace::new()), StateBreakdown::default());
        assert_eq!(cpu_busy_gpu_idle_seconds(&[], 1), 0.0);
    }
}
