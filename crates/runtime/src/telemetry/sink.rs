//! Pluggable telemetry sinks.
//!
//! A [`TelemetrySink`] consumes a replayed event stream. Three sinks
//! ship with the runtime:
//!
//! * [`MemorySink`] — buffers events for programmatic analysis (this is
//!   what [`super::TelemetryLog`] wraps);
//! * [`JsonlSink`] — one deterministic JSON object per line, for
//!   machine consumption;
//! * [`super::ChromeTraceSink`] — a Chrome `trace_event` JSON document
//!   viewable in Perfetto or `chrome://tracing`.

use super::event::TelemetryEvent;

/// A consumer of the runtime event stream.
pub trait TelemetrySink {
    /// Receives one event, in emission order.
    fn on_event(&mut self, ev: &TelemetryEvent);

    /// Signals the end of the stream (flush/assemble output).
    fn finish(&mut self) {}
}

/// Buffers cloned events in memory.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// The buffered events, in emission order.
    pub events: Vec<TelemetryEvent>,
}

impl TelemetrySink for MemorySink {
    fn on_event(&mut self, ev: &TelemetryEvent) {
        self.events.push(ev.clone());
    }
}

/// Serializes each event as one JSON line.
#[derive(Debug, Clone, Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The JSONL document accumulated so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the sink, returning the JSONL document.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl TelemetrySink for JsonlSink {
    fn on_event(&mut self, ev: &TelemetryEvent) {
        self.out.push_str(&ev.to_json());
        self.out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;
    use gpuflow_sim::SimTime;

    fn ev(task: u32) -> TelemetryEvent {
        TelemetryEvent::TaskReady {
            at: SimTime::from_nanos(1),
            task: TaskId(task),
        }
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let mut s = MemorySink::default();
        s.on_event(&ev(1));
        s.on_event(&ev(2));
        s.finish();
        assert_eq!(s.events.len(), 2);
        assert!(matches!(
            s.events[1],
            TelemetryEvent::TaskReady {
                task: TaskId(2),
                ..
            }
        ));
    }

    #[test]
    fn jsonl_sink_emits_one_line_per_event() {
        let mut s = JsonlSink::new();
        s.on_event(&ev(1));
        s.on_event(&ev(2));
        let out = s.into_string();
        assert_eq!(out.lines().count(), 2);
        assert!(out.ends_with('\n'));
    }
}
