//! Property suite for the executor's job gate: stride fair-share over
//! tenant weights must *converge* — when every tenant has a deep
//! backlog of identical jobs, the share of jobs each tenant gets in
//! any execution prefix tracks its weight share, with at most the
//! classic one-stride deviation per tenant.

use gpuflow_cluster::{ClusterSpec, ProcessorKind, StorageArchitecture};
use gpuflow_runtime::jobs::build_jobs;
use gpuflow_runtime::{
    run, JobSchedule, JobShape, JobSpec, RunConfig, SchedulingPolicy, TenantSpec,
};
use proptest::prelude::*;

const JOBS_PER_TENANT: usize = 20;
const TASKS_PER_JOB: usize = 6;

/// Runs a backlog of identical Wide jobs (all eligible at t=0) for the
/// given tenant weights through a window-1 gate and returns, per
/// tenant, how many of its jobs sit in the first `prefix` executions.
fn prefix_counts(weights: &[u32], prefix: usize) -> Vec<usize> {
    let tenants: Vec<TenantSpec> = weights
        .iter()
        .enumerate()
        .map(|(t, &w)| TenantSpec {
            name: format!("t{t}"),
            weight: w,
        })
        .collect();
    // Submission order round-robins tenants so ties cannot
    // systematically favor one of them.
    let mut specs = Vec::new();
    for round in 0..JOBS_PER_TENANT {
        for t in 0..weights.len() {
            specs.push(JobSpec {
                id: round * weights.len() + t,
                tenant: t,
                shape: JobShape::Wide,
                tasks: TASKS_PER_JOB,
                arrival_secs: 0.0,
                priority: 0,
            });
        }
    }
    let (workflow, built) = build_jobs(&specs);
    let sched = JobSchedule::assemble(tenants, &specs, &built, 1);
    let mut cfg = RunConfig::new(ClusterSpec::minotauro(), ProcessorKind::Gpu)
        .with_storage(StorageArchitecture::SharedDisk)
        .with_policy(SchedulingPolicy::GenerationOrder)
        .with_seed(7)
        .with_jobs(sched);
    cfg.jitter_sigma = 0.0;
    let report = run(&workflow, &cfg).expect("gated backlog executes");

    // Window 1 serializes jobs, so each job's earliest task start is
    // its release instant; sorting jobs by it recovers release order.
    let mut starts: Vec<(u64, usize)> = specs
        .iter()
        .map(|s| {
            let (lo, hi) = (built[s.id].task_lo, built[s.id].task_hi);
            let first = report
                .records
                .iter()
                .filter(|r| (lo..=hi).contains(&r.task.0))
                .map(|r| r.start.as_nanos())
                .min()
                .expect("every job ran");
            (first, s.id)
        })
        .collect();
    starts.sort_unstable();
    let mut counts = vec![0usize; weights.len()];
    for &(_, id) in starts.iter().take(prefix) {
        counts[specs[id].tenant] += 1;
    }
    counts
}

proptest! {
    /// In the first 12 executions of a deep uniform backlog, every
    /// tenant's job count is within one stride (±2 jobs) of its ideal
    /// weighted share — i.e. fair-share converges instead of starving
    /// light tenants or capping heavy ones.
    #[test]
    fn fair_share_prefix_tracks_weight_share(
        weights in prop::collection::vec(1u32..5, 2..4),
    ) {
        let prefix = 12usize;
        let counts = prefix_counts(&weights, prefix);
        let total_w: u64 = weights.iter().map(|&w| w as u64).sum();
        for (t, &got) in counts.iter().enumerate() {
            let ideal = prefix as f64 * weights[t] as f64 / total_w as f64;
            let dev = (got as f64 - ideal).abs();
            prop_assert!(
                dev <= 2.0,
                "tenant {t} (weight {} of {total_w}) got {got} of {prefix} jobs, ideal {ideal:.2}, \
                 weights {weights:?}",
                weights[t]
            );
        }
        // The heaviest tenant never gets fewer prefix jobs than the
        // lightest — monotonicity in weights.
        let max_w = *weights.iter().max().unwrap();
        let min_w = *weights.iter().min().unwrap();
        if max_w > min_w {
            let heavy = (0..weights.len()).find(|&t| weights[t] == max_w).unwrap();
            let light = (0..weights.len()).find(|&t| weights[t] == min_w).unwrap();
            prop_assert!(
                counts[heavy] >= counts[light],
                "weights {weights:?} but prefix counts {counts:?}"
            );
        }
    }
}

/// Every queued job runs exactly once regardless of weights — the gate
/// never drops or duplicates work.
#[test]
fn gate_completes_the_whole_backlog() {
    let counts = prefix_counts(&[3, 1], JOBS_PER_TENANT * 2);
    assert_eq!(counts.iter().sum::<usize>(), JOBS_PER_TENANT * 2);
    assert_eq!(counts, vec![JOBS_PER_TENANT, JOBS_PER_TENANT]);
}
