//! A minimal Rust lexer — just enough structure for token-pattern
//! rules.
//!
//! The analyzer does not need a full grammar: every rule in
//! [`crate::rules`] matches shapes like `Instant :: now` or
//! `map . iter ( )` over a flat token stream with source positions.
//! What the lexer must get exactly right is *what is not code*: string
//! literals (including raw and byte strings), character literals vs.
//! lifetimes, numeric literals with exponents, and comments — otherwise
//! a pattern inside a string would produce phantom findings. Line
//! comments are kept separately because the `// lint: allow(...)`
//! suppression grammar lives in them ([`crate::allow`]).

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (`1e9`, `0x1F`, `1_000`, `2.5`).
    Num,
    /// String, raw-string, byte-string, or char literal.
    Lit,
    /// Lifetime or loop label (`'a`).
    Lifetime,
    /// Punctuation; multi-character operators are merged (`::`, `+=`).
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Exact source text.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (bytes).
    pub col: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A line comment (`//`-style), with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the leading slashes.
    pub text: String,
    /// 1-based line.
    pub line: u32,
}

/// The lexed form of one source file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Line comments in source order (block comments are discarded).
    pub comments: Vec<Comment>,
}

/// Multi-character operators merged into single punctuation tokens, in
/// longest-match-first order. Shifts (`<<`, `>>`) are deliberately left
/// split so `Vec<Vec<u8>>` lexes as four `>`-free tokens.
const MULTI_PUNCT: [&str; 17] = [
    "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "..",
];

/// Lexes `src` into tokens and line comments.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    // Advances over `n` bytes, maintaining line/col.
    macro_rules! advance {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < b.len() {
                    if b[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }
    while i < b.len() {
        let c = b[i];
        let (tline, tcol) = (line, col);
        // Whitespace.
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() {
            if b[i + 1] == b'/' {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    advance!(1);
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line: tline,
                });
                continue;
            }
            if b[i + 1] == b'*' {
                advance!(2);
                let mut depth = 1;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        advance!(2);
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        advance!(2);
                    } else {
                        advance!(1);
                    }
                }
                continue;
            }
        }
        // Raw / byte string literals: r"", r#""#, b"", br#""#.
        if c == b'r' || c == b'b' {
            if let Some(len) = raw_or_byte_string_len(&src[i..]) {
                out.tokens.push(Tok {
                    kind: TokKind::Lit,
                    text: src[i..i + len].to_string(),
                    line: tline,
                    col: tcol,
                });
                advance!(len);
                continue;
            }
        }
        // Identifiers and keywords.
        if c == b'_' || c.is_ascii_alphabetic() {
            let start = i;
            while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                advance!(1);
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text: src[start..i].to_string(),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Numbers (incl. exponents `1e9`, `1.5e-3`, separators, radix
        // prefixes, and type suffixes — all folded into one token).
        if c.is_ascii_digit() {
            let start = i;
            advance!(1);
            while i < b.len() {
                let d = b[i];
                let ok = d == b'_'
                    || d.is_ascii_alphanumeric()
                    || (d == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit())
                    || ((d == b'+' || d == b'-')
                        && matches!(b[i - 1], b'e' | b'E')
                        && src[start..i].chars().next().map(|f| f.is_ascii_digit()) == Some(true));
                if !ok {
                    break;
                }
                advance!(1);
            }
            out.tokens.push(Tok {
                kind: TokKind::Num,
                text: src[start..i].to_string(),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Plain string literals.
        if c == b'"' {
            let start = i;
            advance!(1);
            while i < b.len() && b[i] != b'"' {
                if b[i] == b'\\' {
                    advance!(1);
                }
                advance!(1);
            }
            advance!(1); // closing quote
            out.tokens.push(Tok {
                kind: TokKind::Lit,
                text: src[start..i].to_string(),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Char literal vs. lifetime.
        if c == b'\'' {
            let start = i;
            // A lifetime is `'` ident-start not followed by a closing
            // quote (so `'a'` is a char but `'a` is a lifetime).
            let is_lifetime = i + 1 < b.len()
                && (b[i + 1] == b'_' || b[i + 1].is_ascii_alphabetic())
                && !(i + 2 < b.len() && b[i + 2] == b'\'');
            if is_lifetime {
                advance!(1);
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    advance!(1);
                }
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text: src[start..i].to_string(),
                    line: tline,
                    col: tcol,
                });
            } else {
                advance!(1);
                while i < b.len() && b[i] != b'\'' {
                    if b[i] == b'\\' {
                        advance!(1);
                    }
                    advance!(1);
                }
                advance!(1);
                out.tokens.push(Tok {
                    kind: TokKind::Lit,
                    text: src[start..i].to_string(),
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }
        // Punctuation, longest multi-char operator first.
        let rest = &src[i..];
        let multi = MULTI_PUNCT.iter().find(|op| rest.starts_with(**op));
        let len = multi.map_or(1, |op| op.len());
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: src[i..i + len].to_string(),
            line: tline,
            col: tcol,
        });
        advance!(len);
    }
    out
}

/// Length of a raw/byte string literal starting at the head of `s`, or
/// `None` if `s` does not start one. Handles `r"…"`, `r#"…"#` (any
/// number of hashes), `b"…"`, `br#"…"#`, and `rb` orderings.
fn raw_or_byte_string_len(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut j = 0usize;
    let mut raw = false;
    while j < 2 && j < b.len() && (b[j] == b'r' || b[j] == b'b') {
        if b[j] == b'r' {
            raw = true;
        }
        j += 1;
    }
    if j == 0 {
        return None;
    }
    let hashes_start = j;
    if raw {
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
    }
    let hashes = j - hashes_start;
    if j >= b.len() || b[j] != b'"' {
        return None;
    }
    j += 1;
    // Find the closing quote (followed by `hashes` hashes when raw).
    while j < b.len() {
        if b[j] == b'\\' && !raw {
            j += 2;
            continue;
        }
        if b[j] == b'"' {
            let close = &s[j + 1..];
            if !raw
                || close.len() >= hashes && close.as_bytes()[..hashes].iter().all(|&h| h == b'#')
            {
                return Some(j + 1 + hashes);
            }
        }
        j += 1;
    }
    Some(s.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn merges_paths_and_compound_operators() {
        assert_eq!(
            texts("a::b += c -> d"),
            vec!["a", "::", "b", "+=", "c", "->", "d"]
        );
    }

    #[test]
    fn keeps_generics_unmerged() {
        assert_eq!(
            texts("Vec<Vec<u8>>"),
            vec!["Vec", "<", "Vec", "<", "u8", ">", ">"]
        );
    }

    #[test]
    fn numbers_with_exponents_are_single_tokens() {
        assert_eq!(
            texts("1e9 1.5e-3 0x1F 1_000u64"),
            vec!["1e9", "1.5e-3", "0x1F", "1_000u64"]
        );
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        assert_eq!(texts("0..10"), vec!["0", "..", "10"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let x = "Instant::now()"; y"#);
        assert!(l.tokens.iter().all(|t| t.text != "Instant"));
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Lit));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r###"let x = r#"a "quoted" HashMap"#; z"###);
        assert!(l.tokens.iter().all(|t| t.text != "HashMap"));
        assert!(l.tokens.iter().any(|t| t.is_ident("z")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'y'; }");
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lit && t.text == "'y'"));
    }

    #[test]
    fn line_comments_are_captured_with_lines() {
        let l = lex("let a = 1;\n// lint: allow(D1, why)\nlet b = 2;");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 2);
        assert!(l.comments[0].text.starts_with("// lint:"));
    }

    #[test]
    fn block_comments_nest_and_vanish() {
        let l = lex("a /* x /* y */ Instant::now */ b");
        assert_eq!(
            l.tokens.iter().map(|t| &t.text[..]).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  b");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }
}
