//! End-to-end determinism contract: a live `gpuflowd` process driven
//! over TCP, its recorded submission log, and `DaemonCore::replay` of
//! that log must agree bit-for-bit — same per-job fingerprints, same
//! journal text, same Prometheus exposition.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use gpuflow_daemon::client::request;
use gpuflow_daemon::DaemonCore;

struct Daemon {
    child: Child,
    port: u16,
}

impl Daemon {
    /// Spawns the real binary with a journal file and an ephemeral
    /// port, and parses the announced address.
    fn spawn(log_path: &str) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_gpuflowd"))
            .args(["--port", "0", "--log", log_path, "--seed", "0xBEEF"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn gpuflowd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listen announcement");
        let port: u16 = line
            .trim()
            .rsplit(':')
            .next()
            .and_then(|p| p.parse().ok())
            .unwrap_or_else(|| panic!("unexpected announcement {line:?}"));
        Daemon { child, port }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Belt and braces: the test shuts down over the protocol, but a
        // failed assertion must not leak the process.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn live_daemon_log_and_replay_agree_bit_for_bit() {
    let dir = std::env::temp_dir().join(format!("gpuflowd_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let log_path = dir.join("submissions.log");
    let daemon = Daemon::spawn(log_path.to_str().unwrap());
    let p = daemon.port;

    // A session touching the whole decision surface: admits for every
    // tenant, a priority tie-break, a typed reject, a cancel, and two
    // drain epochs.
    assert!(request(p, "submit tenant=acme shape=wide tasks=12 prio=2")
        .unwrap()
        .starts_with("ok job=1"));
    assert!(request(p, "submit tenant=beta shape=tree tasks=9")
        .unwrap()
        .starts_with("ok job=2"));
    assert_eq!(
        request(p, "submit tenant=nobody shape=wide tasks=4").unwrap(),
        "err reject reason=unknown-tenant\n"
    );
    assert!(request(p, "submit tenant=gamma shape=stencil tasks=16")
        .unwrap()
        .starts_with("ok job=3"));
    assert!(request(p, "cancel job=2")
        .unwrap()
        .starts_with("ok cancelled"));
    assert!(request(p, "drain")
        .unwrap()
        .starts_with("ok drained jobs=2 epoch=0"));
    assert!(request(p, "submit tenant=beta shape=wide tasks=6 prio=1")
        .unwrap()
        .starts_with("ok job=4"));
    assert!(request(p, "drain")
        .unwrap()
        .starts_with("ok drained jobs=1 epoch=1"));

    let live_log = request(p, "log").unwrap();
    let live_report = request(p, "report").unwrap();
    let live_queue = request(p, "queue json").unwrap();
    let health = request(p, "health").unwrap();
    assert!(health.starts_with("ok gpuflowd alive"), "{health}");
    assert_eq!(request(p, "shutdown").unwrap(), "ok shutting down\n");

    // The journal the daemon persisted matches what it served.
    let disk_log = std::fs::read_to_string(&log_path).expect("read persisted journal");
    assert_eq!(disk_log, live_log);

    // Replaying the recorded log reproduces the live run bit-for-bit.
    let replayed = DaemonCore::replay(&disk_log).expect("recorded journal replays");
    assert_eq!(replayed.journal_text(), disk_log);
    assert_eq!(replayed.report(), live_report);
    assert_eq!(replayed.queue_json(), live_queue);

    // And replay is idempotent: a replay of the replay's journal is
    // identical again.
    let twice = DaemonCore::replay(&replayed.journal_text()).expect("replay of replay");
    assert_eq!(twice.report(), live_report);

    std::fs::remove_dir_all(&dir).ok();
}
