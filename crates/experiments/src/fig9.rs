//! Figure 9: (a) the algorithm-specific parameter (#clusters in K-means)
//! and (b) data skew.
//!
//! 9a sweeps the cluster count over {10, 100, 1000} and the K-means grid
//! sizes: higher cluster counts shift work into the parallel fraction and
//! multiply the GPU speedup — until the distance matrix overflows device
//! (and eventually host) memory.
//!
//! 9b compares uniform against 50 %-skewed datasets: the studied kernels
//! are value-oblivious, so execution times must not move.

use gpuflow_algorithms::{KmeansConfig, MatmulConfig};
use gpuflow_analysis::signed_speedup;
use gpuflow_cluster::ProcessorKind;
use gpuflow_runtime::UserCodeStats;

use crate::measure::{Context, Outcome};
use crate::table::TextTable;

/// Cluster counts studied in Fig. 9a.
pub const CLUSTER_COUNTS: [u64; 3] = [10, 100, 1000];
/// Grid sweep of Fig. 9a (same as Fig. 7b).
pub const GRIDS: [u64; 9] = [256, 128, 64, 32, 16, 8, 4, 2, 1];

/// One (clusters, grid) cell of Fig. 9a.
#[derive(Debug, Clone)]
pub struct Fig9aCell {
    /// Cluster count.
    pub clusters: u64,
    /// Grid rows.
    pub grid: u64,
    /// Block size label (MB).
    pub block_mb: f64,
    /// CPU stats for `partial_sum`, if the host fit.
    pub cpu: Option<UserCodeStats>,
    /// GPU stats for `partial_sum`, if the device fit.
    pub gpu: Option<UserCodeStats>,
    /// OOM annotation.
    pub note: Option<&'static str>,
}

impl Fig9aCell {
    /// User-code GPU speedup when both sides completed.
    pub fn user_speedup(&self) -> Option<f64> {
        match (&self.cpu, &self.gpu) {
            (Some(c), Some(g)) => Some(signed_speedup(c.user_code, g.user_code)),
            _ => None,
        }
    }
}

/// The Fig. 9a result grid.
#[derive(Debug, Clone)]
pub struct Fig9a {
    /// All sampled cells.
    pub cells: Vec<Fig9aCell>,
}

/// Runs Fig. 9a over the given cluster counts and grids.
pub fn run_9a_with(ctx: &Context, clusters: &[u64], grids: &[u64]) -> Fig9a {
    let ds = gpuflow_data::paper::kmeans_10gb();
    let mut cells = Vec::new();
    for &k in clusters {
        for &g in grids {
            let cfg = KmeansConfig::new(ds.clone(), g, k, 1).expect("valid grid");
            let wf = cfg.build_workflow();
            let block_mb = cfg.spec.block_mb();
            let cpu_out = ctx.run_default(&wf, ProcessorKind::Cpu);
            let gpu_out = ctx.run_default(&wf, ProcessorKind::Gpu);
            let note = match (&cpu_out, &gpu_out) {
                (Outcome::CpuOom, Outcome::GpuOom) => Some("CPU+GPU OOM"),
                (Outcome::CpuOom, _) => Some("CPU OOM"),
                (_, Outcome::GpuOom) => Some("GPU OOM"),
                _ => None,
            };
            let stats = |o: &Outcome| o.map(|r| *r.metrics.task_type("partial_sum").expect("ran"));
            cells.push(Fig9aCell {
                clusters: k,
                grid: g,
                block_mb,
                cpu: stats(&cpu_out),
                gpu: stats(&gpu_out),
                note,
            });
        }
    }
    Fig9a { cells }
}

/// Runs Fig. 9a with the paper's parameters.
pub fn run_9a(ctx: &Context) -> Fig9a {
    run_9a_with(ctx, &CLUSTER_COUNTS, &GRIDS)
}

impl Fig9a {
    /// Renders the three chart columns (one per cluster count).
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Figure 9a: #clusters in K-means (10 GB)",
            [
                "clusters",
                "block MB",
                "Usr.Code x",
                "S.Frac s",
                "P.Frac CPU s",
                "P.Frac GPU s",
                "comm s",
                "note",
            ],
        );
        for c in &self.cells {
            t.push([
                c.clusters.to_string(),
                format!("{:.0}", c.block_mb),
                c.user_speedup().map_or("-".into(), |s| format!("{s:+.2}")),
                c.cpu.map_or("-".into(), |s| format!("{:.3}", s.serial)),
                c.cpu.map_or("-".into(), |s| format!("{:.3}", s.parallel)),
                c.gpu.map_or("-".into(), |s| format!("{:.3}", s.parallel)),
                c.gpu.map_or("-".into(), |s| format!("{:.4}", s.comm)),
                c.note.unwrap_or("").to_string(),
            ]);
        }
        t.render()
    }
}

/// One algorithm's skew comparison in Fig. 9b.
#[derive(Debug, Clone)]
pub struct Fig9bRow {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// CPU user-code time with uniform data.
    pub cpu_uniform: f64,
    /// CPU user-code time with 50 % skew.
    pub cpu_skewed: f64,
    /// GPU user-code time with uniform data.
    pub gpu_uniform: f64,
    /// GPU user-code time with 50 % skew.
    pub gpu_skewed: f64,
}

/// The Fig. 9b result.
#[derive(Debug, Clone)]
pub struct Fig9b {
    /// Matmul and K-means rows.
    pub rows: Vec<Fig9bRow>,
}

/// Runs Fig. 9b: Matmul 2 GB and K-means 1 GB, 0 % vs 50 % skew.
pub fn run_9b(ctx: &Context) -> Fig9b {
    let mut rows = Vec::new();
    // Matmul 2 GB at a 4x4 grid (128 MiB blocks).
    let mm = |skew: f64| {
        let wf = MatmulConfig::new(gpuflow_data::paper::matmul_2gb_skewed(skew), 4)
            .expect("valid grid")
            .build_workflow();
        let user = |p| {
            ctx.run_default(&wf, p)
                .map(|r| r.metrics.mean_user_code())
                .expect("fits")
        };
        (user(ProcessorKind::Cpu), user(ProcessorKind::Gpu))
    };
    let (cu, gu) = mm(0.0);
    let (cs, gs) = mm(0.5);
    rows.push(Fig9bRow {
        algorithm: "Matmul 2GB",
        cpu_uniform: cu,
        cpu_skewed: cs,
        gpu_uniform: gu,
        gpu_skewed: gs,
    });
    // K-means 1 GB at a 16x1 grid, 10 clusters.
    let km = |skew: f64| {
        let wf = KmeansConfig::new(gpuflow_data::paper::kmeans_1gb_skewed(skew), 16, 10, 1)
            .expect("valid grid")
            .build_workflow();
        let user = |p| {
            ctx.run_default(&wf, p)
                .map(|r| r.metrics.task_type("partial_sum").expect("ran").user_code)
                .expect("fits")
        };
        (user(ProcessorKind::Cpu), user(ProcessorKind::Gpu))
    };
    let (cu, gu) = km(0.0);
    let (cs, gs) = km(0.5);
    rows.push(Fig9bRow {
        algorithm: "K-means 1GB",
        cpu_uniform: cu,
        cpu_skewed: cs,
        gpu_uniform: gu,
        gpu_skewed: gs,
    });
    Fig9b { rows }
}

impl Fig9b {
    /// Renders the skew comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Figure 9b: data skew (0% vs 50%)",
            [
                "algorithm",
                "CPU 0% s",
                "CPU 50% s",
                "GPU 0% s",
                "GPU 50% s",
            ],
        );
        for r in &self.rows {
            t.push([
                r.algorithm.to_string(),
                format!("{:.4}", r.cpu_uniform),
                format!("{:.4}", r.cpu_skewed),
                format!("{:.4}", r.gpu_uniform),
                format!("{:.4}", r.gpu_skewed),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_count_multiplies_gpu_speedup() {
        let fig = run_9a_with(&Context::default(), &[10, 1000], &[64]);
        let s10 = fig.cells[0].user_speedup().unwrap();
        let s1000 = fig.cells[1].user_speedup().unwrap();
        assert!(s10 < 2.0, "marginal at 10 clusters: {s10}");
        assert!(s1000 > s10 * 4.0, "large at 1000 clusters: {s1000}");
    }

    #[test]
    fn distance_matrix_ooms_big_blocks_at_1000_clusters() {
        let fig = run_9a_with(&Context::default(), &[1000], &[16, 8, 1]);
        assert_eq!(fig.cells[0].note, None, "625 MB block fits");
        assert_eq!(
            fig.cells[1].note,
            Some("GPU OOM"),
            "1250 MB block overflows"
        );
        assert_eq!(
            fig.cells[2].note,
            Some("CPU+GPU OOM"),
            "10 GB block overflows both"
        );
        assert!(fig.render().contains("OOM"));
    }

    #[test]
    fn skew_does_not_change_execution_times() {
        // §5.2.3: the kernels are value-oblivious.
        let fig = run_9b(&Context::default());
        for r in &fig.rows {
            assert!(
                (r.cpu_uniform - r.cpu_skewed).abs() / r.cpu_uniform < 1e-9,
                "{}: CPU time moved with skew",
                r.algorithm
            );
            assert!(
                (r.gpu_uniform - r.gpu_skewed).abs() / r.gpu_uniform < 1e-9,
                "{}: GPU time moved with skew",
                r.algorithm
            );
        }
        assert!(fig.render().contains("Figure 9b"));
    }
}
