// R1 fixture: panics in a fault-handling file (the filename scopes the
// whole file as a recovery path).

fn requeue(task: Option<u32>) -> u32 {
    task.unwrap()
}

fn rejoin(node: Option<u32>) -> u32 {
    node.expect("node must exist")
}

fn escalate(attempts: u32) {
    if attempts > 3 {
        panic!("giving up");
    }
}
