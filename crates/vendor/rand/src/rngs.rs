//! `StdRng`: rand 0.8's standard RNG (ChaCha12), reimplemented to emit
//! the identical word stream.
//!
//! rand_chacha refills 4 ChaCha blocks (64 `u32` words) at a time; the
//! keystream equals sequential ChaCha blocks with a 64-bit counter in
//! state words 12-13 and a 64-bit stream id (0) in words 14-15.
//! `next_u64` consumption follows `rand_core::block::BlockRng`: two
//! consecutive words little-endian, with the documented straddle rule at
//! the end of a block buffer.

use crate::{RngCore, SeedableRng};

const ROUNDS: usize = 12;
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const BUF_WORDS: usize = 64; // 4 ChaCha blocks per refill, as rand_chacha

/// The standard RNG of rand 0.8: ChaCha with 12 rounds.
#[derive(Clone)]
pub struct StdRng {
    key: [u32; 8],
    /// 64-bit block counter (state words 12-13).
    counter: u64,
    /// 64-bit stream id (state words 14-15); always 0 for `from_seed`.
    stream: u64,
    buf: [u32; BUF_WORDS],
    index: usize,
}

impl core::fmt::Debug for StdRng {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StdRng").finish_non_exhaustive()
    }
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, stream: u64, rounds: usize) -> [u32; 16] {
    let mut s: [u32; 16] = [
        CONSTANTS[0],
        CONSTANTS[1],
        CONSTANTS[2],
        CONSTANTS[3],
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        stream as u32,
        (stream >> 32) as u32,
    ];
    let initial = s;
    for _ in 0..rounds / 2 {
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    for (w, i) in s.iter_mut().zip(initial) {
        *w = w.wrapping_add(i);
    }
    s
}

impl StdRng {
    fn refill(&mut self) {
        for blk in 0..BUF_WORDS / 16 {
            let words = chacha_block(
                &self.key,
                self.counter.wrapping_add(blk as u64),
                self.stream,
                ROUNDS,
            );
            self.buf[blk * 16..(blk + 1) * 16].copy_from_slice(&words);
        }
        self.counter = self.counter.wrapping_add((BUF_WORDS / 16) as u64);
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        StdRng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS, // force a refill on first use
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
            self.index = 0;
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // rand_core::block::BlockRng::next_u64, including the straddle
        // case when exactly one word remains in the buffer.
        let read =
            |buf: &[u32; BUF_WORDS], i: usize| (u64::from(buf[i + 1]) << 32) | u64::from(buf[i]);
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            read(&self.buf, index)
        } else if index >= BUF_WORDS {
            self.refill();
            self.index = 2;
            read(&self.buf, 0)
        } else {
            let x = u64::from(self.buf[BUF_WORDS - 1]);
            self.refill();
            self.index = 1;
            let y = u64::from(self.buf[0]);
            (y << 32) | x
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Simple word-wise fill; not on any artifact-relevant path.
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// djb's original ChaCha20 test vector: all-zero key and nonce,
    /// counter 0. Validates the permutation, the state layout, and the
    /// little-endian serialization (the parts shared with ChaCha12).
    #[test]
    fn chacha20_zero_key_vector() {
        let words = chacha_block(&[0; 8], 0, 0, 20);
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let expected: [u8; 32] = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28, 0xbd, 0xd2, 0x19, 0xb8, 0xa0, 0x8d, 0xed, 0x1a, 0xa8, 0x36, 0xef, 0xcc,
            0x8b, 0x77, 0x0d, 0xc7,
        ];
        assert_eq!(&bytes[..32], &expected);
    }

    /// Keystream is sequential across the 4-block refill boundary: word
    /// 64 must come from the block with counter 4.
    #[test]
    fn refill_advances_counter_sequentially() {
        let mut rng = StdRng::from_seed([1; 32]);
        let first_batch: Vec<u32> = (0..BUF_WORDS).map(|_| rng.next_u32()).collect();
        let next = rng.next_u32();
        let expect0 = chacha_block(&rng.key.clone(), 0, 0, ROUNDS);
        assert_eq!(&first_batch[..16], &expect0);
        let expect4 = chacha_block(&rng.key.clone(), 4, 0, ROUNDS);
        assert_eq!(next, expect4[0]);
    }

    /// The next_u64 straddle rule: consume 63 words, then one u64 must be
    /// (low = word 63 of this buffer, high = word 0 of the next).
    #[test]
    fn next_u64_straddles_buffer_boundary() {
        let mut a = StdRng::from_seed([2; 32]);
        let mut b = StdRng::from_seed([2; 32]);
        let mut words: Vec<u32> = (0..BUF_WORDS).map(|_| a.next_u32()).collect();
        // Second buffer's first word:
        let w64 = a.next_u32();
        words.push(w64);
        for _ in 0..31 {
            b.next_u64(); // consume 62 words
        }
        let _w62 = b.next_u32(); // word index 62; one word left
        let straddled = b.next_u64();
        assert_eq!(
            straddled,
            (u64::from(words[64]) << 32) | u64::from(words[63])
        );
    }
}
