//! Blocked matrix multiplication: task-granularity sweep.
//!
//! Walks the paper's Matmul 8 GB grid sweep (Fig. 7a / Fig. 8): fine
//! blocks maximise task parallelism but starve GPU occupancy; coarse
//! blocks saturate the device until the 3-blocks-per-task footprint
//! overflows its 12 GB memory. Also validates the blocked algorithm
//! against a dense product at a small scale first.
//!
//! ```sh
//! cargo run --release --example matmul_blocked
//! ```

use gpuflow::algorithms::{reference_blocked_matmul, MatmulConfig};
use gpuflow::cluster::ProcessorKind;
use gpuflow::data::{DatasetSpec, DsArray, GridDim};
use gpuflow::experiments::Context;

fn main() {
    // Functional sanity check with real numbers at test scale.
    let da = DatasetSpec::uniform("a", 64, 64, 1);
    let db = DatasetSpec::uniform("b", 64, 64, 2);
    let (ma, mb) = (da.materialize().unwrap(), db.materialize().unwrap());
    let arr_a = DsArray::from_matrix(da, &ma, GridDim::square(4)).unwrap();
    let arr_b = DsArray::from_matrix(db, &mb, GridDim::square(4)).unwrap();
    let err = reference_blocked_matmul(&arr_a, &arr_b).max_abs_diff(&ma.matmul(&mb));
    println!("blocked vs dense product, max |diff| = {err:.2e}  (functional check)\n");

    // Performance sweep at paper scale (simulated).
    let ctx = Context::default();
    let ds = gpuflow::data::paper::matmul_8gb();
    println!("Matmul 8 GB on simulated Minotauro:");
    println!(
        "{:>18} {:>10} {:>12} {:>12} {:>10}",
        "block (grid)", "tasks", "CPU mkspan", "GPU mkspan", "speedup"
    );
    for grid in [16u64, 8, 4, 2, 1] {
        let cfg = MatmulConfig::new(ds.clone(), grid).unwrap();
        let (mm, add) = cfg.task_counts();
        let wf = cfg.build_workflow();
        let label = format!("{:.0}MiB ({}x{})", cfg.spec.block_mib(), grid, grid);
        let cpu = ctx
            .run_default(&wf, ProcessorKind::Cpu)
            .report()
            .map(|r| r.makespan());
        let gpu = ctx
            .run_default(&wf, ProcessorKind::Gpu)
            .report()
            .map(|r| r.makespan());
        let speedup = match (cpu, gpu) {
            (Some(c), Some(g)) => format!("{:+.2}x", gpuflow::analysis::signed_speedup(c, g)),
            _ => "GPU OOM".into(),
        };
        println!(
            "{label:>18} {:>10} {:>11.1}s {:>12} {:>10}",
            mm + add,
            cpu.unwrap_or(f64::NAN),
            gpu.map_or("-".to_string(), |g| format!("{g:.1}s")),
            speedup
        );
    }
    println!("\nNote the trade-off: 16x16 yields 7936 fine tasks (high task");
    println!("parallelism, low GPU occupancy); 1x1 yields a single 8 GiB-block");
    println!("task whose 3-block footprint (24 GiB) cannot fit a 12 GiB device.");
}
