//! Differential run analysis — profiles, diffs, and the blame table.
//!
//! The paper's methodology is inherently *comparative*: every figure
//! sets two configurations side by side (CPU vs GPU, shared vs local
//! disk, granularity A vs B) and attributes the makespan delta to a
//! factor following Jain's systematic method. This module is that
//! machinery:
//!
//! * [`RunProfile`] — a deterministic digest of one telemetry stream:
//!   per-task-type duration histograms with exact nearest-rank
//!   percentiles, per-stage time sums, transfer volumes, per-node
//!   busy/idle accounting, the critical path (compressed to task-type
//!   segments), and the five-bucket overhead partition of
//!   [`super::OverheadReport`]. Profiles render to a line-oriented text
//!   format that parses back losslessly, so they can be committed as
//!   baselines and diffed across builds.
//! * [`RunDiff`] — the comparison of two profiles: a ranked **blame
//!   table** over the overhead buckets whose per-bucket deltas sum to
//!   the observed makespan delta *exactly* (each profile's buckets
//!   partition its makespan on the nanosecond grid, so the attribution
//!   is conservative by construction), per-task-type deltas, critical
//!   path alignment (which segments appeared, disappeared, stretched),
//!   and the factor changes between the two configurations.
//!
//! Everything here is integer arithmetic over the telemetry stream, so
//! profiles and diffs are byte-identical across thread counts and
//! reruns for a fixed seed.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

use gpuflow_sim::SimTime;

use crate::task::TaskId;
use crate::trace_analysis::{cpu_busy_gpu_idle_nanos_from_telemetry, critical_path_from_telemetry};
use crate::workflow::Workflow;

use super::event::{json_escape, TelemetryEvent};
use super::histogram::{Histogram, HistogramDigest};
use super::{OverheadReport, TelemetryLog};

/// Serialization header of the profile text format.
const PROFILE_HEADER: &str = "gpuflow-profile v1";

/// Fixed bucket order of the overhead partition (render, blame table).
const BUCKETS: [&str; 5] = ["compute", "data_movement", "recovery", "master", "idle"];

/// Per-task-type digest of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskTypeProfile {
    /// Per-task duration (dispatch → completion) distribution, ns.
    /// `duration.count` is the number of completed tasks of this type.
    pub duration: HistogramDigest,
    /// Total deserialization time, ns.
    pub deser_ns: u64,
    /// Total serialization time, ns.
    pub ser_ns: u64,
    /// Total serial-fraction time, ns.
    pub serial_ns: u64,
    /// Total parallel-fraction time, ns.
    pub parallel_ns: u64,
    /// Total CPU-GPU communication time, ns.
    pub comm_ns: u64,
    /// Total bytes moved over modelled links.
    pub transfer_bytes: u64,
    /// Total link-transfer time, ns.
    pub transfer_ns: u64,
}

impl TaskTypeProfile {
    /// The per-stage sums as `key value` pairs in serialization order.
    fn stage_fields(&self) -> [(&'static str, u64); 7] {
        [
            ("deser", self.deser_ns),
            ("ser", self.ser_ns),
            ("serial", self.serial_ns),
            ("parallel", self.parallel_ns),
            ("comm", self.comm_ns),
            ("xfer_bytes", self.transfer_bytes),
            ("xfer_ns", self.transfer_ns),
        ]
    }
}

/// Per-node busy accounting of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceProfile {
    /// Nanoseconds with at least one task resident on the node.
    pub busy_ns: u64,
    /// Number of merged busy intervals.
    pub intervals: u64,
}

/// One segment of the critical path: a run of consecutive hops that
/// share a task type, with the wall-clock span the segment advanced the
/// path by. Segment spans sum to the completion time of the last task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalSegment {
    /// Task type of the hops.
    pub task_type: String,
    /// Consecutive hops merged into this segment.
    pub hops: u64,
    /// Wall-clock the path advanced across the segment, ns.
    pub span_ns: u64,
}

/// A deterministic digest of one run, distilled from its telemetry
/// stream. See the module docs for the construction and the text
/// format.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunProfile {
    /// Human label of the run (configuration description).
    pub label: String,
    /// Makespan on the nanosecond grid.
    pub makespan_ns: u64,
    /// Tasks completed.
    pub tasks: u64,
    /// Scheduler decisions made.
    pub decisions: u64,
    /// Resource wastage (CPU busy while all GPUs idle), ns.
    pub wastage_ns: u64,
    /// Worker-cache hits across all tasks.
    pub cache_hits: u64,
    /// Worker-cache misses across all tasks.
    pub cache_misses: u64,
    /// Configuration factors (`processor`, `storage`, `policy`, plus
    /// whatever the caller adds — workload, grid, …).
    pub factors: BTreeMap<String, String>,
    /// The five-bucket overhead partition, ns. Sums to `makespan_ns`
    /// exactly.
    pub compute_ns: u64,
    /// Data-movement bucket, ns.
    pub data_movement_ns: u64,
    /// Recovery bucket, ns.
    pub recovery_ns: u64,
    /// Master bucket, ns.
    pub master_ns: u64,
    /// Idle bucket, ns.
    pub idle_ns: u64,
    /// Per-task-type digests.
    pub per_type: BTreeMap<String, TaskTypeProfile>,
    /// Per-node busy accounting.
    pub resources: BTreeMap<usize, ResourceProfile>,
    /// Critical path, compressed to task-type segments.
    pub critical_path: Vec<CriticalSegment>,
}

impl RunProfile {
    /// Distills a profile from a run's telemetry stream.
    ///
    /// # Errors
    /// The stream must be non-empty — profiles of runs without
    /// telemetry would silently compare as all-zero.
    pub fn from_telemetry(
        label: &str,
        workflow: &Workflow,
        log: &TelemetryLog,
        makespan: f64,
    ) -> Result<Self, String> {
        if log.is_empty() {
            return Err("telemetry stream is empty (run with telemetry enabled)".into());
        }
        let overhead = OverheadReport::from_log(log, makespan);
        let mut profile = RunProfile {
            label: label.to_string(),
            makespan_ns: overhead.makespan_ns,
            decisions: overhead.decisions as u64,
            wastage_ns: cpu_busy_gpu_idle_nanos_from_telemetry(log, 1),
            compute_ns: overhead.compute_ns,
            data_movement_ns: overhead.data_movement_ns,
            recovery_ns: overhead.recovery_ns,
            master_ns: overhead.master_ns,
            idle_ns: overhead.idle_ns,
            ..RunProfile::default()
        };

        // One pass over the stream for types, durations, stages,
        // transfers, caches, and the per-node busy sweep.
        let mut type_of: HashMap<TaskId, String> = HashMap::new();
        let mut dispatched_at: HashMap<TaskId, SimTime> = HashMap::new();
        let mut durations: BTreeMap<String, Histogram> = BTreeMap::new();
        let mut node_events: BTreeMap<usize, Vec<(u64, i32)>> = BTreeMap::new();
        for ev in log.events() {
            match ev {
                TelemetryEvent::TaskDispatched {
                    at,
                    task,
                    task_type,
                    ..
                } => {
                    type_of.insert(*task, task_type.to_string());
                    // Overwritten on retry: the duration histogram
                    // digests the successful attempt.
                    dispatched_at.insert(*task, *at);
                }
                TelemetryEvent::TaskCompleted { at, task, node } => {
                    profile.tasks += 1;
                    let ty = type_of.get(task).cloned().unwrap_or_default();
                    if let Some(start) = dispatched_at.get(task) {
                        durations
                            .entry(ty)
                            .or_default()
                            .record(at.duration_since(*start).as_nanos());
                        node_events
                            .entry(*node)
                            .or_default()
                            .extend([(start.as_nanos(), 1), (at.as_nanos(), -1)]);
                    }
                }
                TelemetryEvent::Stage {
                    task,
                    state,
                    t0,
                    t1,
                    ..
                } => {
                    let ty = type_of.get(task).cloned().unwrap_or_default();
                    let t = profile.per_type.entry(ty).or_default();
                    let dur = t1.duration_since(*t0).as_nanos();
                    use crate::trace::TraceState;
                    match state {
                        TraceState::Deserialize => t.deser_ns += dur,
                        TraceState::Serialize => t.ser_ns += dur,
                        TraceState::SerialFraction => t.serial_ns += dur,
                        TraceState::ParallelFraction => t.parallel_ns += dur,
                        TraceState::CpuGpuComm => t.comm_ns += dur,
                    }
                }
                TelemetryEvent::Transfer {
                    task,
                    bytes,
                    t0,
                    t1,
                    ..
                } => {
                    let ty = type_of.get(task).cloned().unwrap_or_default();
                    let t = profile.per_type.entry(ty).or_default();
                    t.transfer_bytes += bytes;
                    t.transfer_ns += t1.duration_since(*t0).as_nanos();
                }
                TelemetryEvent::CacheAccess { hit, .. } => {
                    if *hit {
                        profile.cache_hits += 1;
                    } else {
                        profile.cache_misses += 1;
                    }
                }
                _ => {}
            }
        }
        for (ty, hist) in durations {
            profile.per_type.entry(ty).or_default().duration = hist.digest();
        }

        // Per-node busy intervals: merge overlapping task residencies.
        for (node, mut evs) in node_events {
            evs.sort();
            let (mut depth, mut open_at, mut busy, mut intervals) = (0i32, 0u64, 0u64, 0u64);
            for (t, d) in evs {
                if depth == 0 && d > 0 {
                    open_at = t;
                }
                depth += d;
                if depth == 0 && t > open_at {
                    busy += t - open_at;
                    intervals += 1;
                }
            }
            profile.resources.insert(
                node,
                ResourceProfile {
                    busy_ns: busy,
                    intervals,
                },
            );
        }

        // Critical path, compressed to task-type segments. Segment
        // spans chain from the previous segment's completion, so they
        // sum to the last task's completion time.
        let hops = critical_path_from_telemetry(workflow, log);
        let mut prev_end = 0u64;
        for hop in &hops {
            let ty = type_of
                .get(&hop.task)
                .cloned()
                .unwrap_or_else(|| format!("task{}", hop.task.0));
            let end = hop.end.as_nanos();
            let span = end.saturating_sub(prev_end);
            prev_end = end;
            match profile.critical_path.last_mut() {
                Some(seg) if seg.task_type == ty => {
                    seg.hops += 1;
                    seg.span_ns += span;
                }
                _ => profile.critical_path.push(CriticalSegment {
                    task_type: ty,
                    hops: 1,
                    span_ns: span,
                }),
            }
        }
        Ok(profile)
    }

    /// Adds or overwrites a configuration factor.
    pub fn with_factor(mut self, key: &str, value: &str) -> Self {
        self.factors.insert(key.to_string(), value.to_string());
        self
    }

    /// The five overhead buckets `(name, ns)` in report order.
    pub fn buckets(&self) -> [(&'static str, u64); 5] {
        [
            (BUCKETS[0], self.compute_ns),
            (BUCKETS[1], self.data_movement_ns),
            (BUCKETS[2], self.recovery_ns),
            (BUCKETS[3], self.master_ns),
            (BUCKETS[4], self.idle_ns),
        ]
    }

    /// Sum of the five buckets; equals [`RunProfile::makespan_ns`] for
    /// any profile built by [`RunProfile::from_telemetry`].
    pub fn buckets_total_ns(&self) -> u64 {
        self.buckets().iter().map(|(_, v)| v).sum()
    }

    /// Completion time of the last critical-path task, ns (sum of the
    /// segment spans).
    pub fn critical_path_ns(&self) -> u64 {
        self.critical_path.iter().map(|s| s.span_ns).sum()
    }

    /// Serializes the profile to its line-oriented text format. The
    /// output is deterministic and [`RunProfile::parse`] inverts it
    /// exactly.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "{PROFILE_HEADER}");
        let _ = writeln!(out, "label {}", self.label);
        let _ = writeln!(out, "makespan_ns {}", self.makespan_ns);
        let _ = writeln!(out, "tasks {}", self.tasks);
        let _ = writeln!(out, "decisions {}", self.decisions);
        let _ = writeln!(out, "wastage_ns {}", self.wastage_ns);
        let _ = writeln!(out, "cache_hits {}", self.cache_hits);
        let _ = writeln!(out, "cache_misses {}", self.cache_misses);
        for (k, v) in &self.factors {
            let _ = writeln!(out, "factor {k} {v}");
        }
        for (name, ns) in self.buckets() {
            let _ = writeln!(out, "bucket {name} {ns}");
        }
        for (name, t) in &self.per_type {
            let _ = write!(out, "type");
            for (k, v) in t.duration.fields() {
                let _ = write!(out, " {k} {v}");
            }
            for (k, v) in t.stage_fields() {
                let _ = write!(out, " {k} {v}");
            }
            let _ = writeln!(out, " name {name}");
        }
        for (node, r) in &self.resources {
            let _ = writeln!(
                out,
                "resource {node} busy {} intervals {}",
                r.busy_ns, r.intervals
            );
        }
        for seg in &self.critical_path {
            let _ = writeln!(
                out,
                "path hops {} span {} type {}",
                seg.hops, seg.span_ns, seg.task_type
            );
        }
        out
    }

    /// Parses the text format written by [`RunProfile::render`].
    ///
    /// # Errors
    /// Reports the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(PROFILE_HEADER) => {}
            other => {
                return Err(format!(
                    "not a gpuflow profile (expected '{PROFILE_HEADER}', found {other:?})"
                ))
            }
        }
        let mut p = RunProfile::default();
        for (no, line) in lines.enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("line {}: {msg}: '{line}'", no + 2);
            let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
            let parse_u64 =
                |v: &str, what: &str| v.parse::<u64>().map_err(|_| err(&format!("bad {what}")));
            match tag {
                "label" => p.label = rest.to_string(),
                "makespan_ns" => p.makespan_ns = parse_u64(rest, "makespan")?,
                "tasks" => p.tasks = parse_u64(rest, "task count")?,
                "decisions" => p.decisions = parse_u64(rest, "decision count")?,
                "wastage_ns" => p.wastage_ns = parse_u64(rest, "wastage")?,
                "cache_hits" => p.cache_hits = parse_u64(rest, "cache hits")?,
                "cache_misses" => p.cache_misses = parse_u64(rest, "cache misses")?,
                "factor" => {
                    let (k, v) = rest
                        .split_once(' ')
                        .ok_or_else(|| err("factor needs key and value"))?;
                    p.factors.insert(k.to_string(), v.to_string());
                }
                "bucket" => {
                    let (name, v) = rest
                        .split_once(' ')
                        .ok_or_else(|| err("bucket needs name and value"))?;
                    let ns = parse_u64(v, "bucket value")?;
                    match name {
                        "compute" => p.compute_ns = ns,
                        "data_movement" => p.data_movement_ns = ns,
                        "recovery" => p.recovery_ns = ns,
                        "master" => p.master_ns = ns,
                        "idle" => p.idle_ns = ns,
                        other => return Err(err(&format!("unknown bucket '{other}'"))),
                    }
                }
                "type" => {
                    // Fixed key-value pairs, then `name <rest of line>`.
                    let (fields, name) = rest
                        .split_once(" name ")
                        .ok_or_else(|| err("type line needs a trailing name"))?;
                    let mut toks = fields.split_ascii_whitespace();
                    let duration = HistogramDigest::parse_fields(&mut toks).map_err(|e| err(&e))?;
                    let mut t = TaskTypeProfile {
                        duration,
                        ..TaskTypeProfile::default()
                    };
                    for (key, _) in t.clone().stage_fields() {
                        let k = toks.next().ok_or_else(|| err(&format!("missing {key}")))?;
                        if k != key {
                            return Err(err(&format!("expected '{key}', found '{k}'")));
                        }
                        let v = toks
                            .next()
                            .ok_or_else(|| err(&format!("{key} needs a value")))
                            .and_then(|v| parse_u64(v, key))?;
                        match key {
                            "deser" => t.deser_ns = v,
                            "ser" => t.ser_ns = v,
                            "serial" => t.serial_ns = v,
                            "parallel" => t.parallel_ns = v,
                            "comm" => t.comm_ns = v,
                            "xfer_bytes" => t.transfer_bytes = v,
                            "xfer_ns" => t.transfer_ns = v,
                            _ => unreachable!(),
                        }
                    }
                    p.per_type.insert(name.to_string(), t);
                }
                "resource" => {
                    let mut toks = rest.split_ascii_whitespace();
                    let node: usize = toks
                        .next()
                        .ok_or_else(|| err("resource needs a node"))?
                        .parse()
                        .map_err(|_| err("bad node index"))?;
                    let mut want = |key: &str| -> Result<u64, String> {
                        match (toks.next(), toks.next()) {
                            (Some(k), Some(v)) if k == key => parse_u64(v, key),
                            _ => Err(err(&format!("expected '{key} N'"))),
                        }
                    };
                    let busy_ns = want("busy")?;
                    let intervals = want("intervals")?;
                    p.resources
                        .insert(node, ResourceProfile { busy_ns, intervals });
                }
                "path" => {
                    let (fields, ty) = rest
                        .split_once(" type ")
                        .ok_or_else(|| err("path line needs a trailing type"))?;
                    let mut toks = fields.split_ascii_whitespace();
                    let mut want = |key: &str| -> Result<u64, String> {
                        match (toks.next(), toks.next()) {
                            (Some(k), Some(v)) if k == key => parse_u64(v, key),
                            _ => Err(err(&format!("expected '{key} N'"))),
                        }
                    };
                    let hops = want("hops")?;
                    let span_ns = want("span")?;
                    p.critical_path.push(CriticalSegment {
                        task_type: ty.to_string(),
                        hops,
                        span_ns,
                    });
                }
                other => return Err(err(&format!("unknown tag '{other}'"))),
            }
        }
        Ok(p)
    }
}

/// Signed change `b_ns - a_ns` for u64 nanosecond readings, widened
/// through i128 so no input pair can overflow, then clamped into i64.
pub fn signed_delta(a_ns: u64, b_ns: u64) -> i64 {
    let wide = b_ns as i128 - a_ns as i128;
    wide.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// One row of the blame table: how one overhead bucket moved between
/// the two runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketDelta {
    /// Bucket name.
    pub name: &'static str,
    /// Bucket value in run A, ns.
    pub a_ns: u64,
    /// Bucket value in run B, ns.
    pub b_ns: u64,
}

impl BucketDelta {
    /// Signed change `B - A`, ns.
    pub fn delta_ns(&self) -> i64 {
        signed_delta(self.a_ns, self.b_ns)
    }
}

/// Per-task-type comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeDelta {
    /// Task type.
    pub name: String,
    /// Task count in A / B.
    pub a_count: u64,
    /// Task count in B.
    pub b_count: u64,
    /// Total task-duration sum in A, ns.
    pub a_sum_ns: u64,
    /// Total task-duration sum in B, ns.
    pub b_sum_ns: u64,
    /// Median task duration in A, ns.
    pub a_p50_ns: u64,
    /// Median task duration in B, ns.
    pub b_p50_ns: u64,
    /// Per-stage `(stage, a_ns, b_ns)` sums, fixed order.
    pub stages: Vec<(&'static str, u64, u64)>,
}

impl TypeDelta {
    /// Signed duration-sum change `B - A`, ns.
    pub fn delta_ns(&self) -> i64 {
        signed_delta(self.a_sum_ns, self.b_sum_ns)
    }

    /// The stage with the largest absolute change, if any moved.
    pub fn dominant_stage(&self) -> Option<(&'static str, i64)> {
        self.stages
            .iter()
            .map(|&(s, a, b)| (s, signed_delta(a, b)))
            .max_by_key(|&(_, d)| d.abs())
            .filter(|&(_, d)| d != 0)
    }
}

/// How one task type's critical-path presence changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathChange {
    /// On B's path but not on A's.
    Appeared,
    /// On A's path but not on B's.
    Disappeared,
    /// Span grew.
    Stretched,
    /// Span shrank.
    Shrunk,
    /// Span unchanged.
    Steady,
}

impl PathChange {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            PathChange::Appeared => "appeared",
            PathChange::Disappeared => "disappeared",
            PathChange::Stretched => "stretched",
            PathChange::Shrunk => "shrunk",
            PathChange::Steady => "steady",
        }
    }
}

/// Critical-path alignment for one task type (hops and spans merged
/// across each run's whole path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathDelta {
    /// Task type.
    pub task_type: String,
    /// Hops on A's path.
    pub a_hops: u64,
    /// Path span in A, ns.
    pub a_span_ns: u64,
    /// Hops on B's path.
    pub b_hops: u64,
    /// Path span in B, ns.
    pub b_span_ns: u64,
    /// Classification of the change.
    pub change: PathChange,
}

impl PathDelta {
    /// Signed span change `B - A`, ns.
    pub fn delta_ns(&self) -> i64 {
        signed_delta(self.a_span_ns, self.b_span_ns)
    }
}

/// The comparison of two [`RunProfile`]s. `A` is the baseline, `B` the
/// candidate; every delta is `B - A`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDiff {
    /// Baseline label.
    pub a_label: String,
    /// Candidate label.
    pub b_label: String,
    /// Baseline makespan, ns.
    pub a_makespan_ns: u64,
    /// Candidate makespan, ns.
    pub b_makespan_ns: u64,
    /// Blame table: per-bucket deltas ranked by magnitude. Their sum
    /// equals the makespan delta exactly.
    pub blame: Vec<BucketDelta>,
    /// Per-task-type deltas ranked by magnitude.
    pub types: Vec<TypeDelta>,
    /// Critical-path alignment ranked by span-change magnitude.
    pub path: Vec<PathDelta>,
    /// Factors that differ: `(key, a_value, b_value)`. Missing factors
    /// render as `-`.
    pub factor_changes: Vec<(String, String, String)>,
}

/// A named stage-sum accessor over a task-type profile.
type StageAccessor = (&'static str, fn(&TaskTypeProfile) -> u64);

/// Stage-sum accessors shared by the type-delta construction.
const STAGES: [StageAccessor; 6] = [
    ("deser", |t| t.deser_ns),
    ("ser", |t| t.ser_ns),
    ("serial", |t| t.serial_ns),
    ("parallel", |t| t.parallel_ns),
    ("comm", |t| t.comm_ns),
    ("xfer", |t| t.transfer_ns),
];

impl RunDiff {
    /// Compares baseline `a` against candidate `b`.
    pub fn compare(a: &RunProfile, b: &RunProfile) -> RunDiff {
        // Blame table: one row per bucket, ranked by |delta| (stable on
        // the fixed bucket order for ties).
        let mut blame: Vec<BucketDelta> = a
            .buckets()
            .iter()
            .zip(b.buckets().iter())
            .map(|(&(name, a_ns), &(_, b_ns))| BucketDelta { name, a_ns, b_ns })
            .collect();
        blame.sort_by_key(|d| std::cmp::Reverse(d.delta_ns().abs()));

        // Per-type deltas over the union of type names.
        let empty = TaskTypeProfile::default();
        let names: std::collections::BTreeSet<&String> =
            a.per_type.keys().chain(b.per_type.keys()).collect();
        let mut types: Vec<TypeDelta> = names
            .into_iter()
            .map(|name| {
                let ta = a.per_type.get(name).unwrap_or(&empty);
                let tb = b.per_type.get(name).unwrap_or(&empty);
                TypeDelta {
                    name: name.clone(),
                    a_count: ta.duration.count,
                    b_count: tb.duration.count,
                    a_sum_ns: ta.duration.sum,
                    b_sum_ns: tb.duration.sum,
                    a_p50_ns: ta.duration.p50,
                    b_p50_ns: tb.duration.p50,
                    stages: STAGES.iter().map(|&(s, f)| (s, f(ta), f(tb))).collect(),
                }
            })
            .collect();
        types.sort_by_key(|d| std::cmp::Reverse(d.delta_ns().abs()));

        // Critical-path alignment: merge each path by task type, then
        // classify the change per type.
        let merge = |p: &RunProfile| -> BTreeMap<String, (u64, u64)> {
            let mut m: BTreeMap<String, (u64, u64)> = BTreeMap::new();
            for seg in &p.critical_path {
                let e = m.entry(seg.task_type.clone()).or_default();
                e.0 += seg.hops;
                e.1 += seg.span_ns;
            }
            m
        };
        let (ma, mb) = (merge(a), merge(b));
        let path_names: std::collections::BTreeSet<&String> = ma.keys().chain(mb.keys()).collect();
        let mut path: Vec<PathDelta> = path_names
            .into_iter()
            .map(|name| {
                let &(a_hops, a_span_ns) = ma.get(name).unwrap_or(&(0, 0));
                let &(b_hops, b_span_ns) = mb.get(name).unwrap_or(&(0, 0));
                let change = if a_hops == 0 {
                    PathChange::Appeared
                } else if b_hops == 0 {
                    PathChange::Disappeared
                } else if b_span_ns > a_span_ns {
                    PathChange::Stretched
                } else if b_span_ns < a_span_ns {
                    PathChange::Shrunk
                } else {
                    PathChange::Steady
                };
                PathDelta {
                    task_type: name.clone(),
                    a_hops,
                    a_span_ns,
                    b_hops,
                    b_span_ns,
                    change,
                }
            })
            .collect();
        path.sort_by_key(|d| std::cmp::Reverse(d.delta_ns().abs()));

        // Factor changes over the union of keys.
        let keys: std::collections::BTreeSet<&String> =
            a.factors.keys().chain(b.factors.keys()).collect();
        let factor_changes = keys
            .into_iter()
            .filter(|k| a.factors.get(*k) != b.factors.get(*k))
            .map(|k| {
                let get = |p: &RunProfile| p.factors.get(k).cloned().unwrap_or_else(|| "-".into());
                (k.clone(), get(a), get(b))
            })
            .collect();

        RunDiff {
            a_label: a.label.clone(),
            b_label: b.label.clone(),
            a_makespan_ns: a.makespan_ns,
            b_makespan_ns: b.makespan_ns,
            blame,
            types,
            path,
            factor_changes,
        }
    }

    /// Observed makespan delta `B - A`, ns.
    pub fn makespan_delta_ns(&self) -> i64 {
        signed_delta(self.a_makespan_ns, self.b_makespan_ns)
    }

    /// Sum of the blame-table deltas, ns.
    pub fn attributed_delta_ns(&self) -> i64 {
        self.blame.iter().map(BucketDelta::delta_ns).sum()
    }

    /// Whether the attribution is conservative: the blame-table deltas
    /// sum exactly to the observed makespan delta. True for any pair of
    /// profiles built by [`RunProfile::from_telemetry`].
    pub fn is_conservative(&self) -> bool {
        self.attributed_delta_ns() == self.makespan_delta_ns()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let s = |ns: u64| ns as f64 / 1e9;
        let sd = |ns: i64| ns as f64 / 1e9;
        let delta = self.makespan_delta_ns();
        let mut out = String::with_capacity(2048);
        let _ = writeln!(out, "run diff: A = {}", self.a_label);
        let _ = writeln!(out, "          B = {}", self.b_label);
        let verdict = match delta.cmp(&0) {
            std::cmp::Ordering::Greater => "slower",
            std::cmp::Ordering::Less => "faster",
            std::cmp::Ordering::Equal => "equal",
        };
        let pct = if self.a_makespan_ns > 0 {
            100.0 * delta as f64 / self.a_makespan_ns as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "makespan: A {:.6} s -> B {:.6} s   delta {:+.6} s ({pct:+.1} %, B is {verdict})",
            s(self.a_makespan_ns),
            s(self.b_makespan_ns),
            sd(delta),
        );
        if !self.factor_changes.is_empty() {
            let _ = writeln!(out, "\nfactor changes:");
            for (k, a, b) in &self.factor_changes {
                let _ = writeln!(out, "  {k:<12} {a} -> {b}");
            }
        }
        let _ = writeln!(
            out,
            "\nblame table (bucket deltas sum to the makespan delta exactly):"
        );
        let _ = writeln!(
            out,
            "  {:<14} {:>12} {:>12} {:>12} {:>7}",
            "bucket", "A (s)", "B (s)", "delta (s)", "share"
        );
        for b in &self.blame {
            let share = if delta != 0 {
                format!("{:>6.1} %", 100.0 * b.delta_ns() as f64 / delta as f64)
            } else {
                "     - ".to_string()
            };
            let _ = writeln!(
                out,
                "  {:<14} {:>12.6} {:>12.6} {:>+12.6} {share}",
                b.name,
                s(b.a_ns),
                s(b.b_ns),
                sd(b.delta_ns()),
            );
        }
        let _ = writeln!(
            out,
            "  {:<14} {:>12.6} {:>12.6} {:>+12.6}  100.0 %",
            "total",
            s(self.a_makespan_ns),
            s(self.b_makespan_ns),
            sd(self.attributed_delta_ns()),
        );
        let _ = writeln!(out, "\nper-task-type (total task duration, B - A):");
        let _ = writeln!(
            out,
            "  {:<20} {:>7} {:>7} {:>12} {:>12} {:>12}  dominant stage",
            "type", "n(A)", "n(B)", "sum A (s)", "sum B (s)", "delta (s)"
        );
        for t in &self.types {
            let dom = match t.dominant_stage() {
                Some((stage, d)) => format!("{stage} {:+.6} s", sd(d)),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  {:<20} {:>7} {:>7} {:>12.6} {:>12.6} {:>+12.6}  {dom}",
                t.name,
                t.a_count,
                t.b_count,
                s(t.a_sum_ns),
                s(t.b_sum_ns),
                sd(t.delta_ns()),
            );
        }
        let _ = writeln!(out, "\ncritical-path alignment (span by task type):");
        let _ = writeln!(
            out,
            "  {:<20} {:>6} {:>6} {:>12} {:>12}  change",
            "type", "hops A", "hops B", "span A (s)", "span B (s)"
        );
        for p in &self.path {
            let _ = writeln!(
                out,
                "  {:<20} {:>6} {:>6} {:>12.6} {:>12.6}  {}",
                p.task_type,
                p.a_hops,
                p.b_hops,
                s(p.a_span_ns),
                s(p.b_span_ns),
                p.change.label(),
            );
        }
        out
    }

    /// Deterministic JSON rendering (machine-readable `--json` output).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\"a\":\"{}\",\"b\":\"{}\",\"a_makespan_ns\":{},\"b_makespan_ns\":{},\"delta_ns\":{},\"conservative\":{},\"blame\":[",
            json_escape(&self.a_label),
            json_escape(&self.b_label),
            self.a_makespan_ns,
            self.b_makespan_ns,
            self.makespan_delta_ns(),
            self.is_conservative(),
        );
        for (i, b) in self.blame.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}{{\"bucket\":\"{}\",\"a_ns\":{},\"b_ns\":{},\"delta_ns\":{}}}",
                b.name,
                b.a_ns,
                b.b_ns,
                b.delta_ns()
            );
        }
        s.push_str("],\"types\":[");
        for (i, t) in self.types.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}{{\"type\":\"{}\",\"a_count\":{},\"b_count\":{},\"a_sum_ns\":{},\"b_sum_ns\":{},\"delta_ns\":{}}}",
                json_escape(&t.name),
                t.a_count,
                t.b_count,
                t.a_sum_ns,
                t.b_sum_ns,
                t.delta_ns()
            );
        }
        s.push_str("],\"path\":[");
        for (i, p) in self.path.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}{{\"type\":\"{}\",\"a_hops\":{},\"b_hops\":{},\"a_span_ns\":{},\"b_span_ns\":{},\"change\":\"{}\"}}",
                json_escape(&p.task_type),
                p.a_hops,
                p.b_hops,
                p.a_span_ns,
                p.b_span_ns,
                p.change.label()
            );
        }
        s.push_str("],\"factor_changes\":[");
        for (i, (k, a, b)) in self.factor_changes.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}{{\"factor\":\"{}\",\"a\":\"{}\",\"b\":\"{}\"}}",
                json_escape(k),
                json_escape(a),
                json_escape(b)
            );
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(label: &str, buckets: [u64; 5]) -> RunProfile {
        let mut p = RunProfile {
            label: label.into(),
            makespan_ns: buckets.iter().sum(),
            tasks: 4,
            decisions: 4,
            compute_ns: buckets[0],
            data_movement_ns: buckets[1],
            recovery_ns: buckets[2],
            master_ns: buckets[3],
            idle_ns: buckets[4],
            ..RunProfile::default()
        };
        p.factors.insert("processor".into(), "cpu".into());
        p.per_type.insert(
            "mm".into(),
            TaskTypeProfile {
                duration: HistogramDigest {
                    count: 4,
                    sum: 4_000,
                    min: 1_000,
                    p25: 1_000,
                    p50: 1_000,
                    p75: 1_000,
                    p90: 1_000,
                    p99: 1_000,
                    max: 1_000,
                },
                parallel_ns: 3_000,
                ..TaskTypeProfile::default()
            },
        );
        p.resources.insert(
            0,
            ResourceProfile {
                busy_ns: 4_000,
                intervals: 1,
            },
        );
        p.critical_path.push(CriticalSegment {
            task_type: "mm".into(),
            hops: 2,
            span_ns: 2_000,
        });
        p
    }

    #[test]
    fn profile_text_round_trips() {
        let p = profile("matmul cpu shared", [100, 20, 0, 5, 10]);
        let text = p.render();
        let parsed = RunProfile::parse(&text).unwrap();
        assert_eq!(parsed, p);
        assert_eq!(parsed.render(), text, "render is a fixed point");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(RunProfile::parse("not a profile").is_err());
        let mut text = profile("x", [1, 1, 1, 1, 1]).render();
        text.push_str("mystery line\n");
        assert!(RunProfile::parse(&text).unwrap_err().contains("mystery"));
        let bad = format!("{PROFILE_HEADER}\nbucket nonsense 5\n");
        assert!(RunProfile::parse(&bad).unwrap_err().contains("nonsense"));
    }

    #[test]
    fn type_names_with_spaces_survive() {
        let mut p = profile("x", [1, 0, 0, 0, 0]);
        let t = p.per_type.remove("mm").unwrap();
        p.per_type.insert("partial sums (gpu)".into(), t);
        p.critical_path[0].task_type = "partial sums (gpu)".into();
        let parsed = RunProfile::parse(&p.render()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn blame_deltas_sum_to_makespan_delta() {
        let a = profile("A", [100, 20, 0, 5, 10]);
        let b = profile("B", [90, 45, 3, 5, 2]);
        let d = RunDiff::compare(&a, &b);
        assert_eq!(d.makespan_delta_ns(), 10);
        assert_eq!(d.attributed_delta_ns(), 10);
        assert!(d.is_conservative());
        // Ranked by magnitude: data_movement (+25) first.
        assert_eq!(d.blame[0].name, "data_movement");
        assert_eq!(d.blame[0].delta_ns(), 25);
    }

    #[test]
    fn diff_tracks_types_paths_and_factors() {
        let a = profile("A", [100, 20, 0, 5, 10]);
        let mut b = profile("B", [100, 20, 0, 5, 10]);
        b.factors.insert("processor".into(), "gpu".into());
        b.per_type.insert(
            "new_type".into(),
            TaskTypeProfile {
                duration: HistogramDigest {
                    count: 1,
                    sum: 500,
                    ..HistogramDigest::default()
                },
                ..TaskTypeProfile::default()
            },
        );
        b.critical_path = vec![CriticalSegment {
            task_type: "new_type".into(),
            hops: 1,
            span_ns: 9_000,
        }];
        let d = RunDiff::compare(&a, &b);
        assert_eq!(
            d.factor_changes,
            vec![("processor".into(), "cpu".into(), "gpu".into())]
        );
        let nt = d.types.iter().find(|t| t.name == "new_type").unwrap();
        assert_eq!((nt.a_count, nt.b_count), (0, 1));
        let appeared = d.path.iter().find(|p| p.task_type == "new_type").unwrap();
        assert_eq!(appeared.change, PathChange::Appeared);
        let gone = d.path.iter().find(|p| p.task_type == "mm").unwrap();
        assert_eq!(gone.change, PathChange::Disappeared);
    }

    #[test]
    fn render_and_json_cover_every_section() {
        let a = profile("A", [100, 20, 0, 5, 10]);
        let b = profile("B", [90, 45, 3, 5, 2]);
        let d = RunDiff::compare(&a, &b);
        let text = d.render();
        for needle in ["blame table", "per-task-type", "critical-path", "share"] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
        let json = d.to_json();
        assert!(json.contains("\"conservative\":true"));
        assert!(json.contains("\"bucket\":\"data_movement\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
