//! Figure 10: the effects of storage architecture and scheduling policy
//! on parallel task execution time, for Matmul (10a) and K-means (10b).
//!
//! Four configurations per algorithm: {local, shared} × {generation
//! order, data locality}, swept over the block-size grid with both
//! processor types. The expected shapes (§5.3): local disk is faster and
//! insensitive to the policy (O5); shared disk is slower and
//! policy-sensitive, especially for low-complexity K-means tasks (O6);
//! times rise for coarse grains (lost task parallelism) and drop at the
//! single-task maximum block size; Matmul's 8192 MiB point is a GPU OOM.

use gpuflow_algorithms::{KmeansConfig, MatmulConfig};
use gpuflow_cluster::{ProcessorKind, StorageArchitecture};
use gpuflow_runtime::SchedulingPolicy;

use crate::measure::{Context, Outcome};
use crate::table::TextTable;

/// K-means iterations for Fig. 10b (iterations are what make the
/// cache/policy coupling visible).
pub const KMEANS_ITERATIONS: u32 = 5;

/// One (storage, policy) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Combo {
    /// Storage architecture.
    pub storage: StorageArchitecture,
    /// Scheduling policy.
    pub policy: SchedulingPolicy,
}

/// All four combinations in the paper's panel order.
pub const COMBOS: [Combo; 4] = [
    Combo {
        storage: StorageArchitecture::LocalDisk,
        policy: SchedulingPolicy::GenerationOrder,
    },
    Combo {
        storage: StorageArchitecture::LocalDisk,
        policy: SchedulingPolicy::DataLocality,
    },
    Combo {
        storage: StorageArchitecture::SharedDisk,
        policy: SchedulingPolicy::GenerationOrder,
    },
    Combo {
        storage: StorageArchitecture::SharedDisk,
        policy: SchedulingPolicy::DataLocality,
    },
];

/// Parallel-tasks average time for one grid under one combo.
#[derive(Debug, Clone)]
pub struct Fig10Cell {
    /// Grid extent.
    pub grid: u64,
    /// Block label as on the x-axis.
    pub block_label: String,
    /// Configuration.
    pub combo: Combo,
    /// CPU parallel-task time (mean level span), or `None` on OOM.
    pub cpu: Option<f64>,
    /// GPU parallel-task time, or `None` on OOM.
    pub gpu: Option<f64>,
    /// OOM annotation.
    pub note: Option<&'static str>,
}

/// A full Fig. 10 panel for one algorithm.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Panel label.
    pub label: String,
    /// All (combo × grid) cells.
    pub cells: Vec<Fig10Cell>,
}

fn sweep(
    ctx: &Context,
    label: &str,
    workflows: &[(u64, String, gpuflow_runtime::Workflow)],
) -> Fig10 {
    let jobs: Vec<(Combo, &(u64, String, gpuflow_runtime::Workflow))> = COMBOS
        .iter()
        .flat_map(|&combo| workflows.iter().map(move |w| (combo, w)))
        .collect();
    let cells = ctx.par_map(&jobs, |_, &(combo, (grid, block_label, wf))| {
        let cpu_out = ctx.run(wf, ProcessorKind::Cpu, combo.storage, combo.policy);
        let gpu_out = ctx.run(wf, ProcessorKind::Gpu, combo.storage, combo.policy);
        let note = match (&cpu_out, &gpu_out) {
            (Outcome::CpuOom, Outcome::GpuOom) => Some("CPU+GPU OOM"),
            (Outcome::CpuOom, _) => Some("CPU OOM"),
            (_, Outcome::GpuOom) => Some("GPU OOM"),
            _ => None,
        };
        Fig10Cell {
            grid: *grid,
            block_label: block_label.clone(),
            combo,
            cpu: cpu_out.map(|r| r.metrics.parallel_task_time),
            gpu: gpu_out.map(|r| r.metrics.parallel_task_time),
            note,
        }
    });
    Fig10 {
        label: label.to_string(),
        cells,
    }
}

/// Runs the Matmul panel (Fig. 10a) over `grids`.
pub fn run_matmul_with(ctx: &Context, grids: &[u64]) -> Fig10 {
    let ds = gpuflow_data::paper::matmul_8gb();
    let workflows: Vec<_> = grids
        .iter()
        .map(|&g| {
            let cfg = MatmulConfig::new(ds.clone(), g).expect("valid grid");
            let label = format!("{:.0} ({}x{})", cfg.spec.block_mib(), g, g);
            (g, label, cfg.build_workflow())
        })
        .collect();
    sweep(ctx, "Matmul 8GB", &workflows)
}

/// Runs the K-means panel (Fig. 10b) over `grids`.
pub fn run_kmeans_with(ctx: &Context, grids: &[u64]) -> Fig10 {
    let ds = gpuflow_data::paper::kmeans_10gb();
    let workflows: Vec<_> = grids
        .iter()
        .map(|&g| {
            let cfg = KmeansConfig::new(ds.clone(), g, 10, KMEANS_ITERATIONS).expect("valid grid");
            let label = format!("{:.0} ({}x1)", cfg.spec.block_mb(), g);
            (g, label, cfg.build_workflow())
        })
        .collect();
    sweep(ctx, "K-means 10GB, 10 clusters", &workflows)
}

/// Runs Fig. 10a with the paper's grids.
pub fn run_matmul(ctx: &Context) -> Fig10 {
    run_matmul_with(ctx, &crate::fig7::MATMUL_GRIDS)
}

/// Runs Fig. 10b with the paper's grids.
pub fn run_kmeans(ctx: &Context) -> Fig10 {
    run_kmeans_with(ctx, &crate::fig7::KMEANS_GRIDS)
}

impl Fig10 {
    /// Cells of one configuration, in grid order.
    pub fn panel(&self, combo: Combo) -> Vec<&Fig10Cell> {
        self.cells.iter().filter(|c| c.combo == combo).collect()
    }

    /// Renders all four panels.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            &format!("Figure 10: storage x scheduling, {}", self.label),
            [
                "storage",
                "policy",
                "block (grid)",
                "CPU P.Tasks s",
                "GPU P.Tasks s",
                "note",
            ],
        );
        for c in &self.cells {
            t.push([
                c.combo.storage.label().to_string(),
                c.combo.policy.label().to_string(),
                c.block_label.clone(),
                c.cpu.map_or("-".into(), |v| format!("{v:.2}")),
                c.gpu.map_or("-".into(), |v| format!("{v:.2}")),
                c.note.unwrap_or("").to_string(),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_cpu(panel: &[&Fig10Cell]) -> f64 {
        let vals: Vec<f64> = panel.iter().filter_map(|c| c.cpu).collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    #[test]
    fn local_disk_beats_shared_disk() {
        let fig = run_kmeans_with(&Context::default(), &[64, 16]);
        let local = mean_cpu(&fig.panel(COMBOS[0]));
        let shared = mean_cpu(&fig.panel(COMBOS[2]));
        assert!(local < shared, "local {local} vs shared {shared}");
    }

    #[test]
    fn policy_matters_more_on_shared_disk_for_kmeans() {
        let fig = run_kmeans_with(&Context::default(), &[64]);
        let gap = |a: Combo, b: Combo| {
            let x = mean_cpu(&fig.panel(a));
            let y = mean_cpu(&fig.panel(b));
            (x - y).abs() / x.max(y)
        };
        let local_gap = gap(COMBOS[0], COMBOS[1]);
        let shared_gap = gap(COMBOS[2], COMBOS[3]);
        assert!(
            shared_gap > local_gap,
            "shared-disk policy gap {shared_gap} should exceed local {local_gap}"
        );
    }

    #[test]
    fn matmul_largest_block_is_gpu_oom() {
        let fig = run_matmul_with(&Context::default(), &[1]);
        assert!(fig.cells.iter().all(|c| c.note == Some("GPU OOM")));
        assert!(fig.cells.iter().all(|c| c.cpu.is_some()));
        assert!(fig.render().contains("GPU OOM"));
    }
}
