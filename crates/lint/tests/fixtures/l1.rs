//! L1 fixture: two locks taken in opposite orders across two methods
//! (one side through a helper, exercising one-level inlining), plus a
//! consistently-ordered pair that stays clean.

struct Shared {
    queue: Mutex<Vec<u32>>,
    state: Mutex<u32>,
    journal: Mutex<u32>,
}

impl Shared {
    fn grab_state(&self) -> u32 {
        *self.state.lock().unwrap()
    }

    fn enqueue(&self) {
        let q = self.queue.lock().unwrap();
        let s = self.grab_state();
        drop(q);
        let _ = s;
    }

    fn drain(&self) {
        let s = self.state.lock().unwrap();
        let q = self.queue.lock().unwrap();
        let _ = (s, q);
    }

    fn consistent_a(&self) {
        let q = self.queue.lock().unwrap();
        let j = self.journal.lock().unwrap();
        let _ = (q, j);
    }

    fn consistent_b(&self) {
        let q = self.queue.lock().unwrap();
        let j = self.journal.lock().unwrap();
        let _ = (q, j);
    }
}
