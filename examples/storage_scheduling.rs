//! Storage architecture × scheduling policy (Fig. 10).
//!
//! Runs iterative K-means under the four {local, shared} × {generation
//! order, data locality} configurations and shows the coupling the paper
//! reports: on local disks the policy barely matters (O5), on the shared
//! file system locality-aware placement converts expensive GPFS re-reads
//! into cache hits (O6).
//!
//! ```sh
//! cargo run --release --example storage_scheduling
//! ```

use gpuflow::algorithms::KmeansConfig;
use gpuflow::cluster::{ProcessorKind, StorageArchitecture};
use gpuflow::experiments::Context;
use gpuflow::runtime::SchedulingPolicy;

fn main() {
    let ctx = Context::default();
    let wf = KmeansConfig::new(gpuflow::data::paper::kmeans_10gb(), 64, 10, 5)
        .expect("valid partitioning")
        .build_workflow();

    println!("K-means 10 GB, 64 blocks, 5 iterations, CPU run:\n");
    println!(
        "{:>12} {:>17} {:>10} {:>12} {:>12}",
        "storage", "policy", "makespan", "cache hits", "sched ovh"
    );
    let mut results = Vec::new();
    for storage in StorageArchitecture::ALL {
        for policy in SchedulingPolicy::ALL {
            let report = ctx
                .run(&wf, ProcessorKind::Cpu, storage, policy)
                .report()
                .expect("fits")
                .clone();
            println!(
                "{:>12} {:>17} {:>9.2}s {:>12} {:>11.2}s",
                storage.label(),
                policy.label(),
                report.makespan(),
                report.metrics.cache_hits,
                report.metrics.sched_overhead,
            );
            results.push((storage, policy, report.makespan()));
        }
    }

    let gap = |s: StorageArchitecture| {
        let times: Vec<f64> = results
            .iter()
            .filter(|(st, _, _)| *st == s)
            .map(|(_, _, t)| *t)
            .collect();
        (times[0] - times[1]).abs() / times[0].max(times[1]) * 100.0
    };
    println!(
        "\npolicy sensitivity: local disk {:.1}% vs shared disk {:.1}%",
        gap(StorageArchitecture::LocalDisk),
        gap(StorageArchitecture::SharedDisk)
    );
    println!("(O5: local disks hide placement mistakes — re-reads are cheap;");
    println!(" O6: on the shared file system placement decides whether warm");
    println!(" iterations re-read blocks over the network or hit node caches.)");
}
