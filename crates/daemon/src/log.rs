//! The recorded submission journal — `gpuflowd`'s replay format.
//!
//! Every state-changing decision the daemon makes appends exactly one
//! line to the journal. The grammar is line-oriented `k=v` text (the
//! same idiom as the client protocol), chosen so that
//! `render ∘ parse = id` holds exactly: a replayed journal re-renders
//! byte-identically, which is what makes `repro replay --from-log`
//! able to reproduce a live daemon run bit-for-bit.
//!
//! Layout of a journal:
//!
//! ```text
//! gpuflowd-log v1
//! config seed=0xd1a1 tick_us=10000 interval_us=10000 quota=8 queue_cap=24 window=2 tenant_window=0
//! tenant name=acme weight=3
//! tenant name=beta weight=2
//! submit t=0.010000 tenant=acme job=1 shape=wide tasks=24 prio=5
//! reject t=0.020000 tenant=beta reason=quota
//! cancel t=0.030000 job=1
//! drain t=0.040000 jobs=3
//! ```
//!
//! Timestamps are virtual: the daemon stamps decision `n` with
//! `n × tick_us` microseconds, rendered as fixed-point seconds with six
//! fractional digits. No wall clock is ever read, so the journal — and
//! everything derived from it — is a pure function of the command
//! stream.

use crate::protocol::{valid_tenant_name, RejectReason};
use gpuflow_runtime::JobShape;

/// First line of every journal; bump `v1` on grammar changes.
pub const LOG_HEADER: &str = "gpuflowd-log v1";

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogLine {
    /// Daemon configuration, written once right after the header.
    Config {
        /// Simulation seed for every drained epoch.
        seed: u64,
        /// Virtual microseconds between consecutive decisions.
        tick_us: u64,
        /// Metrics sampling interval forwarded to the executor.
        interval_us: u64,
        /// Per-tenant queued-job cap.
        quota: u32,
        /// Global queue capacity.
        queue_cap: u32,
        /// Fair-share in-flight window (jobs running concurrently).
        window: u32,
        /// Optional per-tenant in-flight cap (0 = unlimited).
        tenant_window: u32,
    },
    /// One configured tenant, written in declaration order after
    /// `config`.
    Tenant {
        /// Tenant name (journal-safe charset).
        name: String,
        /// Fair-share weight (≥ 1).
        weight: u32,
    },
    /// An accepted submission.
    Submit {
        /// Virtual decision time, microseconds.
        t_us: u64,
        /// Tenant index into the `tenant` lines (declaration order).
        tenant: usize,
        /// Job id handed back to the client.
        job: u64,
        /// DAG template.
        shape: JobShape,
        /// Task count after validation.
        tasks: u64,
        /// Priority (omitted from the rendered line when 0).
        prio: u32,
    },
    /// A refused submission (typed backpressure).
    Reject {
        /// Virtual decision time, microseconds.
        t_us: u64,
        /// Tenant index, or `usize::MAX` when the tenant is unknown
        /// (rendered as `tenant=?`).
        tenant: usize,
        /// Why it was refused.
        reason: RejectReason,
    },
    /// A queued job cancelled before any drain ran it.
    Cancel {
        /// Virtual decision time, microseconds.
        t_us: u64,
        /// The cancelled job id.
        job: u64,
    },
    /// A drain: every job queued at this instant ran as one simulated
    /// epoch.
    Drain {
        /// Virtual decision time, microseconds.
        t_us: u64,
        /// Number of jobs executed in the epoch.
        jobs: u64,
    },
}

fn fmt_t(t_us: u64) -> String {
    format!("{}.{:06}", t_us / 1_000_000, t_us % 1_000_000)
}

fn parse_t(s: &str) -> Option<u64> {
    let (secs, frac) = s.split_once('.')?;
    if frac.len() != 6 || !frac.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let secs: u64 = secs.parse().ok()?;
    let micros: u64 = frac.parse().ok()?;
    secs.checked_mul(1_000_000)?.checked_add(micros)
}

impl LogLine {
    /// Renders this record as one journal line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            LogLine::Config {
                seed,
                tick_us,
                interval_us,
                quota,
                queue_cap,
                window,
                tenant_window,
            } => format!(
                "config seed={seed:#x} tick_us={tick_us} interval_us={interval_us} \
                 quota={quota} queue_cap={queue_cap} window={window} tenant_window={tenant_window}"
            ),
            LogLine::Tenant { name, weight } => format!("tenant name={name} weight={weight}"),
            LogLine::Submit {
                t_us,
                tenant,
                job,
                shape,
                tasks,
                prio,
            } => {
                let mut s = format!(
                    "submit t={} tenant={tenant} job={job} shape={} tasks={tasks}",
                    fmt_t(*t_us),
                    shape.label()
                );
                if *prio != 0 {
                    s.push_str(&format!(" prio={prio}"));
                }
                s
            }
            LogLine::Reject {
                t_us,
                tenant,
                reason,
            } => {
                let who = if *tenant == usize::MAX {
                    "?".to_string()
                } else {
                    tenant.to_string()
                };
                format!(
                    "reject t={} tenant={who} reason={}",
                    fmt_t(*t_us),
                    reason.label()
                )
            }
            LogLine::Cancel { t_us, job } => format!("cancel t={} job={job}", fmt_t(*t_us)),
            LogLine::Drain { t_us, jobs } => format!("drain t={} jobs={jobs}", fmt_t(*t_us)),
        }
    }

    /// Parses one journal line. Inverse of [`LogLine::render`] on the
    /// canonical grammar; anything else is a descriptive error.
    pub fn parse(line: &str) -> Result<LogLine, String> {
        let words: Vec<&str> = line.split_whitespace().collect();
        let verb = *words.first().ok_or("empty journal line")?;
        let get = |key: &str| -> Result<&str, String> {
            crate::protocol::field(&words, key).ok_or_else(|| format!("{verb}: missing {key}="))
        };
        let int = |key: &str| -> Result<u64, String> {
            get(key)?
                .parse()
                .map_err(|_| format!("{verb}: {key}= is not an integer"))
        };
        let time = |key: &str| -> Result<u64, String> {
            parse_t(get(key)?).ok_or_else(|| format!("{verb}: {key}= is not s.micros time"))
        };
        match verb {
            "config" => {
                let seed_s = get("seed")?;
                let seed = seed_s
                    .strip_prefix("0x")
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                    .ok_or("config: seed= must be 0x-hex")?;
                Ok(LogLine::Config {
                    seed,
                    tick_us: int("tick_us")?,
                    interval_us: int("interval_us")?,
                    quota: int("quota")? as u32,
                    queue_cap: int("queue_cap")? as u32,
                    window: int("window")? as u32,
                    tenant_window: int("tenant_window")? as u32,
                })
            }
            "tenant" => {
                let name = get("name")?;
                if !valid_tenant_name(name) {
                    return Err(format!("tenant: bad name {name:?}"));
                }
                let weight = int("weight")? as u32;
                if weight == 0 {
                    return Err("tenant: weight must be >= 1".into());
                }
                Ok(LogLine::Tenant {
                    name: name.to_string(),
                    weight,
                })
            }
            "submit" => {
                let shape = get("shape")?;
                let shape =
                    JobShape::parse(shape).ok_or_else(|| format!("submit: bad shape {shape:?}"))?;
                let prio = match crate::protocol::field(&words, "prio") {
                    None => 0,
                    Some(p) => {
                        let p: u32 = p
                            .parse()
                            .map_err(|_| "submit: prio= is not an integer".to_string())?;
                        if p == 0 {
                            return Err("submit: prio=0 is rendered by omission".into());
                        }
                        p
                    }
                };
                Ok(LogLine::Submit {
                    t_us: time("t")?,
                    tenant: int("tenant")? as usize,
                    job: int("job")?,
                    shape,
                    tasks: int("tasks")?,
                    prio,
                })
            }
            "reject" => {
                let who = get("tenant")?;
                let tenant = if who == "?" {
                    usize::MAX
                } else {
                    who.parse()
                        .map_err(|_| "reject: tenant= is not an index".to_string())?
                };
                let reason = get("reason")?;
                let reason = RejectReason::parse(reason)
                    .ok_or_else(|| format!("reject: unknown reason {reason:?}"))?;
                Ok(LogLine::Reject {
                    t_us: time("t")?,
                    tenant,
                    reason,
                })
            }
            "cancel" => Ok(LogLine::Cancel {
                t_us: time("t")?,
                job: int("job")?,
            }),
            "drain" => Ok(LogLine::Drain {
                t_us: time("t")?,
                jobs: int("jobs")?,
            }),
            other => Err(format!("unknown journal verb {other:?}")),
        }
    }
}

/// Parses a whole journal: header, then one [`LogLine`] per non-empty
/// line. Returns line-numbered errors.
pub fn parse_journal(text: &str) -> Result<Vec<LogLine>, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim_end() == LOG_HEADER => {}
        Some((_, h)) => return Err(format!("bad journal header {h:?} (want {LOG_HEADER:?})")),
        None => return Err("empty journal".into()),
    }
    let mut out = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        out.push(LogLine::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Renders a full journal: header plus one line per record, each
/// newline-terminated.
pub fn render_journal(lines: &[LogLine]) -> String {
    let mut s = String::from(LOG_HEADER);
    s.push('\n');
    for l in lines {
        s.push_str(&l.render());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn renders_the_documented_example() {
        let l = LogLine::Submit {
            t_us: 10_000,
            tenant: 0,
            job: 1,
            shape: JobShape::Wide,
            tasks: 24,
            prio: 5,
        };
        assert_eq!(
            l.render(),
            "submit t=0.010000 tenant=0 job=1 shape=wide tasks=24 prio=5"
        );
        assert_eq!(LogLine::parse(&l.render()), Ok(l));
    }

    #[test]
    fn prio_zero_is_omitted_and_round_trips() {
        let l = LogLine::Submit {
            t_us: 1_234_567,
            tenant: 2,
            job: 9,
            shape: JobShape::Tree,
            tasks: 7,
            prio: 0,
        };
        let r = l.render();
        assert!(!r.contains("prio="), "{r}");
        assert_eq!(LogLine::parse(&r), Ok(l));
    }

    #[test]
    fn unknown_tenant_reject_round_trips() {
        let l = LogLine::Reject {
            t_us: 20_000,
            tenant: usize::MAX,
            reason: RejectReason::UnknownTenant,
        };
        assert_eq!(
            l.render(),
            "reject t=0.020000 tenant=? reason=unknown-tenant"
        );
        assert_eq!(LogLine::parse(&l.render()), Ok(l));
    }

    #[test]
    fn journal_round_trips_as_a_document() {
        let lines = vec![
            LogLine::Config {
                seed: 0xD1A1,
                tick_us: 10_000,
                interval_us: 10_000,
                quota: 8,
                queue_cap: 24,
                window: 2,
                tenant_window: 0,
            },
            LogLine::Tenant {
                name: "acme".into(),
                weight: 3,
            },
            LogLine::Tenant {
                name: "beta".into(),
                weight: 2,
            },
            LogLine::Submit {
                t_us: 10_000,
                tenant: 0,
                job: 1,
                shape: JobShape::Stencil,
                tasks: 32,
                prio: 0,
            },
            LogLine::Reject {
                t_us: 20_000,
                tenant: 1,
                reason: RejectReason::QueueFull,
            },
            LogLine::Cancel {
                t_us: 30_000,
                job: 1,
            },
            LogLine::Drain {
                t_us: 40_000,
                jobs: 0,
            },
        ];
        let text = render_journal(&lines);
        assert_eq!(parse_journal(&text), Ok(lines.clone()));
        // Render of the parse is byte-identical: render ∘ parse = id.
        assert_eq!(render_journal(&parse_journal(&text).unwrap()), text);
    }

    #[test]
    fn rejects_bad_headers_and_verbs() {
        assert!(parse_journal("").is_err());
        assert!(parse_journal("gpuflowd-log v999\n").is_err());
        assert!(parse_journal("gpuflowd-log v1\nflorp t=0.000001\n").is_err());
        assert!(LogLine::parse("submit t=0.01 tenant=0 job=1 shape=wide tasks=4").is_err());
        assert!(LogLine::parse("tenant name=bad$name weight=1").is_err());
    }

    /// Derives one canonical [`LogLine`] from two sampled integers.
    /// (The vendored proptest has no `prop_oneof`/`prop_map`, so the
    /// generator is this deterministic decoder over raw samples.)
    fn line_from(kind: u64, bits: u64) -> LogLine {
        const NAMES: [&str; 5] = ["acme", "beta-2", "gamma_x", "d", "Tenant-With-A-Long-Name"];
        let t_us = (bits >> 8) % (1 << 50);
        match kind % 6 {
            0 => LogLine::Config {
                seed: bits,
                tick_us: bits % (1 << 40) + 1,
                interval_us: (bits >> 13) % (1 << 40) + 1,
                quota: (bits % 99 + 1) as u32,
                queue_cap: ((bits >> 7) % 99 + 1) as u32,
                window: ((bits >> 14) % 63 + 1) as u32,
                tenant_window: ((bits >> 21) % 64) as u32,
            },
            1 => LogLine::Tenant {
                name: NAMES[(bits % NAMES.len() as u64) as usize].to_string(),
                weight: (bits % 999 + 1) as u32,
            },
            2 => LogLine::Submit {
                t_us,
                tenant: (bits % 8) as usize,
                job: (bits >> 3) % (1 << 32),
                shape: JobShape::ALL[(bits % 3) as usize],
                tasks: (bits >> 5) % (1 << 20) + 1,
                prio: ((bits >> 2) % 100) as u32,
            },
            3 => LogLine::Reject {
                t_us,
                tenant: if bits & 1 == 0 {
                    usize::MAX
                } else {
                    ((bits >> 1) % 8) as usize
                },
                reason: RejectReason::ALL[(bits % 4) as usize],
            },
            4 => LogLine::Cancel {
                t_us,
                job: bits % (1 << 32),
            },
            _ => LogLine::Drain {
                t_us,
                jobs: bits % (1 << 16),
            },
        }
    }

    proptest! {
        /// parse ∘ render = id over the canonical value space, and
        /// render ∘ parse = id over rendered text.
        #[test]
        fn log_grammar_round_trips(raw in prop::collection::vec((0u64..6, 0u64..u64::MAX), 0..24)) {
            let lines: Vec<LogLine> =
                raw.iter().map(|&(kind, bits)| line_from(kind, bits)).collect();
            let text = render_journal(&lines);
            let parsed = parse_journal(&text).expect("rendered journal must parse");
            prop_assert_eq!(&parsed, &lines);
            prop_assert_eq!(render_journal(&parsed), text);
        }
    }
}
