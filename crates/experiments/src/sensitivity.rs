//! Resource-parameter sensitivity analysis — the factors Table 1 defers
//! to future work (§4.3: "#GPU devices, RAM and GPU memory size, CPU-GPU
//! bus throughput, and disk throughput"), plus the §3.3 CPU
//! thread-parallelism question.
//!
//! Each sweep varies one resource around the Minotauro baseline and
//! re-runs a fixed workload, showing which paper findings are artifacts
//! of the 2013 testbed and which are structural:
//!
//! * faster CPU-GPU buses (NVLink/CXL-class) rescue `add_func`;
//! * more device memory moves the OOM walls, it does not change winners;
//! * more GPUs per node attack exactly the task-parallelism gap behind
//!   Fig. 1's stage (iii);
//! * disk throughput scales the (de)serialization wall of O2;
//! * intra-task CPU threads only pay off when tasks are scarce.

use gpuflow_algorithms::{KmeansConfig, MatmulConfig};
use gpuflow_analysis::signed_speedup;
use gpuflow_cluster::{ClusterSpec, ProcessorKind};
use gpuflow_runtime::{RunConfig, RunError, Workflow};

use crate::table::TextTable;

/// One sweep point: the varied value and the measured outcomes.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Human-readable value of the varied parameter.
    pub value: String,
    /// Measured metric (meaning depends on the sweep), `None` on OOM.
    pub metric: Option<f64>,
}

/// A one-parameter sensitivity sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Parameter name.
    pub parameter: &'static str,
    /// Metric name.
    pub metric: &'static str,
    /// The sweep points in increasing parameter order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Renders one sweep as a table section.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            &format!("Sensitivity: {} -> {}", self.parameter, self.metric),
            [self.parameter, self.metric],
        );
        for p in &self.points {
            t.push([
                p.value.clone(),
                p.metric.map_or("OOM".into(), |v| format!("{v:.3}")),
            ]);
        }
        t.render()
    }

    /// The metric values of points that completed.
    pub fn completed(&self) -> Vec<f64> {
        self.points.iter().filter_map(|p| p.metric).collect()
    }
}

fn run_metric(
    wf: &Workflow,
    cfg: &RunConfig,
    metric: impl Fn(&gpuflow_runtime::RunReport) -> f64,
) -> Option<f64> {
    match gpuflow_runtime::run(wf, cfg) {
        Ok(r) => Some(metric(&r)),
        Err(RunError::GpuOom { .. }) | Err(RunError::HostOom { .. }) => None,
        Err(e) => panic!("unexpected failure: {e}"),
    }
}

/// PCIe/NVLink bus throughput vs `add_func` user-code speedup: the
/// memory-bound task the paper shows losing on GPUs (Fig. 8) becomes
/// competitive once transfers stop dominating.
pub fn bus_bandwidth_vs_add_func() -> Sweep {
    let wf = MatmulConfig::new(gpuflow_data::paper::matmul_8gb(), 8)
        .expect("valid grid")
        .build_workflow();
    let points = [4.0e9, 12.0e9, 50.0e9, 200.0e9]
        .into_iter()
        .map(|bw| {
            let mut cluster = ClusterSpec::minotauro();
            cluster.node.pcie.bandwidth_bps = bw;
            let user = |p: ProcessorKind| {
                let cfg = RunConfig::new(cluster.clone(), p);
                run_metric(&wf, &cfg, |r| {
                    r.metrics.task_type("add_func").expect("ran").user_code
                })
            };
            let metric = match (user(ProcessorKind::Cpu), user(ProcessorKind::Gpu)) {
                (Some(c), Some(g)) => Some(signed_speedup(c, g)),
                _ => None,
            };
            SweepPoint {
                value: format!("{:.0} GB/s", bw / 1e9),
                metric,
            }
        })
        .collect();
    Sweep {
        parameter: "CPU-GPU bus bandwidth",
        metric: "add_func user-code speedup (signed)",
        points,
    }
}

/// GPU memory capacity vs the largest Matmul grid that fits: the OOM
/// wall of Figs. 7/10 moves with capacity and with nothing else.
pub fn gpu_memory_vs_oom_wall() -> Sweep {
    let ds = gpuflow_data::paper::matmul_8gb();
    let points = [6u64, 12, 24, 48]
        .into_iter()
        .map(|gib| {
            let mut cluster = ClusterSpec::minotauro();
            cluster.node.gpu.memory_bytes = gib * (1 << 30);
            cluster.node.ram_bytes = 512 * (1 << 30); // isolate the device wall
                                                      // Largest block (smallest grid) that still fits.
            let mut largest_block_mib = None;
            for grid in [16u64, 8, 4, 2, 1] {
                let cfg = MatmulConfig::new(ds.clone(), grid).expect("valid grid");
                let wf = cfg.build_workflow();
                let run_cfg = RunConfig::new(cluster.clone(), ProcessorKind::Gpu);
                if run_metric(&wf, &run_cfg, |r| r.makespan()).is_some() {
                    largest_block_mib = Some(cfg.spec.block_mib());
                }
            }
            SweepPoint {
                value: format!("{gib} GiB"),
                metric: largest_block_mib,
            }
        })
        .collect();
    Sweep {
        parameter: "GPU memory capacity",
        metric: "largest feasible Matmul block (MiB)",
        points,
    }
}

/// GPUs per node vs the Fig. 1 parallel-tasks ratio: more devices close
/// the task-parallelism gap that makes GPUs lose end-to-end.
pub fn gpus_per_node_vs_parallel_tasks() -> Sweep {
    let wf = KmeansConfig::new(gpuflow_data::paper::kmeans_10gb(), 256, 10, 1)
        .expect("valid grid")
        .build_workflow();
    let cpu_makespan = {
        let cfg = RunConfig::new(ClusterSpec::minotauro(), ProcessorKind::Cpu);
        run_metric(&wf, &cfg, |r| r.makespan()).expect("CPU fits")
    };
    let points = [2usize, 4, 8, 16]
        .into_iter()
        .map(|gpus| {
            let mut cluster = ClusterSpec::minotauro();
            cluster.node.gpus = gpus;
            let cfg = RunConfig::new(cluster, ProcessorKind::Gpu);
            let metric =
                run_metric(&wf, &cfg, |r| r.makespan()).map(|g| signed_speedup(cpu_makespan, g));
            SweepPoint {
                value: format!("{gpus}/node"),
                metric,
            }
        })
        .collect();
    Sweep {
        parameter: "GPU devices per node",
        metric: "K-means parallel-tasks speedup vs CPU (signed)",
        points,
    }
}

/// Shared-disk (GPFS) bandwidth vs per-core deserialization time — the
/// storage I/O wall behind O2.
pub fn shared_disk_bandwidth_vs_deser() -> Sweep {
    let wf = KmeansConfig::new(gpuflow_data::paper::kmeans_10gb(), 128, 10, 1)
        .expect("valid grid")
        .build_workflow();
    let points = [2.0e9, 8.0e9, 32.0e9]
        .into_iter()
        .map(|bw| {
            let mut cluster = ClusterSpec::minotauro();
            cluster.shared_disk.bandwidth_bps = bw;
            // Keep NICs from capping the sweep at the top end.
            cluster.network.nic_bps = bw;
            let cfg = RunConfig::new(cluster, ProcessorKind::Cpu);
            let metric = run_metric(&wf, &cfg, |r| r.metrics.deser_per_core);
            SweepPoint {
                value: format!("{:.0} GB/s", bw / 1e9),
                metric,
            }
        })
        .collect();
    Sweep {
        parameter: "shared file system bandwidth",
        metric: "deserialization time per core (s)",
        points,
    }
}

/// CPU threads per task under task scarcity vs abundance (§3.3): one
/// core per task wins when tasks outnumber cores; intra-task threads win
/// when they do not.
pub fn cpu_threads_vs_makespan(grid: u64) -> Sweep {
    let wf = KmeansConfig::new(gpuflow_data::paper::kmeans_10gb(), grid, 100, 1)
        .expect("valid grid")
        .build_workflow();
    let points = [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let cfg = RunConfig::new(ClusterSpec::minotauro(), ProcessorKind::Cpu)
                .with_cpu_threads(threads);
            let metric = run_metric(&wf, &cfg, |r| r.makespan());
            SweepPoint {
                value: format!("{threads} threads"),
                metric,
            }
        })
        .collect();
    Sweep {
        parameter: "CPU threads per task",
        metric: "K-means makespan (s)",
        points,
    }
}

/// Runs every sweep. The sweeps are independent and run on
/// [`auto_threads`](crate::measure::auto_threads) workers; the result
/// order (and content) is fixed regardless of thread count.
pub fn run_all() -> Vec<Sweep> {
    type Job = fn() -> Sweep;
    let jobs: [Job; 6] = [
        bus_bandwidth_vs_add_func,
        gpu_memory_vs_oom_wall,
        gpus_per_node_vs_parallel_tasks,
        shared_disk_bandwidth_vs_deser,
        || cpu_threads_vs_makespan(256),
        || cpu_threads_vs_makespan(8),
    ];
    crate::measure::par_map(crate::measure::auto_threads(), &jobs, |_, job| job())
}

/// Renders all sweeps.
pub fn render_all() -> String {
    run_all()
        .iter()
        .map(Sweep::render)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_bus_rescues_add_func() {
        let sweep = bus_bandwidth_vs_add_func();
        let v = sweep.completed();
        assert_eq!(v.len(), 4);
        assert!(v[0] < 0.0, "PCIe-era: add_func loses ({})", v[0]);
        assert!(v[3] > 0.0, "NVLink-class bus: add_func wins ({})", v[3]);
        assert!(
            v.windows(2).all(|w| w[0] <= w[1]),
            "monotone in bandwidth: {v:?}"
        );
    }

    #[test]
    fn more_device_memory_moves_the_oom_wall() {
        let sweep = gpu_memory_vs_oom_wall();
        let v = sweep.completed();
        assert!(
            v.windows(2).all(|w| w[0] <= w[1]),
            "wall moves outward: {v:?}"
        );
        // 24 GiB fits the paper's 3 x 8 GiB single-task footprint.
        assert_eq!(v[2], 8192.0);
        assert!(sweep.render().contains("GPU memory"));
    }

    #[test]
    fn more_gpus_close_the_parallel_task_gap() {
        let sweep = gpus_per_node_vs_parallel_tasks();
        let v = sweep.completed();
        assert!(v[0] < 0.0, "2 GPUs/node: GPUs lose ({})", v[0]);
        assert!(v[3] > v[0], "16 GPUs/node must improve on 2: {v:?}");
    }

    #[test]
    fn storage_bandwidth_scales_the_deser_wall() {
        let sweep = shared_disk_bandwidth_vs_deser();
        let v = sweep.completed();
        assert!(
            v.windows(2).all(|w| w[0] >= w[1]),
            "deser falls with bandwidth: {v:?}"
        );
        assert!(v[0] > 2.0 * v[2]);
    }

    #[test]
    fn cpu_threads_tradeoff_flips_with_task_abundance() {
        // 256 tasks on 128 cores: 1 thread/task wins.
        let abundant = cpu_threads_vs_makespan(256).completed();
        assert!(
            abundant[0] < abundant[2],
            "abundance favours 1 thread: {abundant:?}"
        );
        // 8 tasks on 128 cores: threads accelerate the scarce tasks.
        let scarce = cpu_threads_vs_makespan(8).completed();
        assert!(
            scarce[2] < scarce[0],
            "scarcity favours threads: {scarce:?}"
        );
    }
}
