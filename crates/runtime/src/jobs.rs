//! Multi-tenant job model: small per-job DAG templates and the
//! fair-share gate the executor applies between whole jobs.
//!
//! A *job* is one tenant's workflow submission — a scaled-down DAG
//! (wide fan-out, stencil sweep, or reduction tree) stamped into a
//! shared [`Workflow`] so thousands of concurrent jobs share one
//! cluster model. Two layers consume this module:
//!
//! * the replay frontend (`repro replay`) samples seeded [`JobSpec`]s
//!   and releases each job's roots at its arrival instant via
//!   [`crate::RunConfig::with_arrivals`];
//! * the `gpuflowd` daemon admits recorded submissions and hands the
//!   executor a [`JobSchedule`] — the fair-share + priority gate that
//!   releases whole jobs into a bounded in-flight window as capacity
//!   frees up, instead of releasing every root at its arrival time.
//!
//! The gate is *stride* fair-share over integer accounting: each
//! tenant accrues weighted consumption as its jobs are released, and
//! the next free window slot goes to the eligible job whose tenant has
//! the smallest consumption-to-weight ratio (compared exactly by
//! cross-multiplication — no floats touch the pick). Ties break by
//! priority (higher first), then submission order. Everything is a
//! pure function of the schedule, so runs are bit-identical at any
//! `--threads` count.

use gpuflow_cluster::KernelWork;

use crate::data::Direction;
use crate::task::{CostProfile, TaskId};
use crate::workflow::{Workflow, WorkflowBuilder};

/// Job DAG templates, scaled-down versions of the stress shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobShape {
    /// Independent fan-out: every task is a root.
    Wide,
    /// A short stencil sweep (rows of 16 cells).
    Stencil,
    /// A binary reduction tree.
    Tree,
}

impl JobShape {
    /// Every shape, in sampling order.
    pub const ALL: [JobShape; 3] = [JobShape::Wide, JobShape::Stencil, JobShape::Tree];

    /// Lower-case label used in the submission log and task types.
    pub fn label(self) -> &'static str {
        match self {
            JobShape::Wide => "wide",
            JobShape::Stencil => "stencil",
            JobShape::Tree => "tree",
        }
    }

    /// Parses a [`JobShape::label`] back to the shape.
    pub fn parse(s: &str) -> Option<JobShape> {
        JobShape::ALL.into_iter().find(|sh| sh.label() == s)
    }
}

/// Row width of the stencil job shape (scaled down from the stress
/// suite's 1000 so replay jobs stay small).
pub(crate) const JOB_STENCIL_WIDTH: usize = 16;

/// One job of a scenario: a tenant's submission of a DAG template.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job index (sampling key / daemon-assigned id).
    pub id: usize,
    /// Owning tenant.
    pub tenant: usize,
    /// DAG template.
    pub shape: JobShape,
    /// Requested task count (the built DAG may round by shape).
    pub tasks: usize,
    /// Submission instant, virtual seconds.
    pub arrival_secs: f64,
    /// Scheduling priority within the fair-share pick (higher first;
    /// the seeded replay frontend submits everything at 0).
    pub priority: u32,
}

/// Where one job landed in the shared workflow after [`build_jobs`].
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltJob {
    /// The job's root tasks (no predecessors), in construction order.
    pub roots: Vec<TaskId>,
    /// First task id of the job's contiguous range.
    pub task_lo: u32,
    /// Last task id of the job's contiguous range (inclusive).
    pub task_hi: u32,
}

/// Builds every job's DAG into one shared workflow (data names
/// prefixed `j<id>_`, task types `<shape>_t<tenant>`), returning each
/// job's root set and contiguous task-id range.
pub fn build_jobs(jobs: &[JobSpec]) -> (Workflow, Vec<BuiltJob>) {
    const MB: u64 = 1 << 20;
    let cost = CostProfile::fully_parallel(KernelWork::data_parallel(1e7, 1e6));
    let mut b = WorkflowBuilder::new();
    let mut built: Vec<BuiltJob> = Vec::with_capacity(jobs.len());
    let mut next_task = 0u32;
    for job in jobs {
        let p = format!("j{}_", job.id);
        let ty = format!("{}_t{}", job.shape.label(), job.tenant);
        let mut roots: Vec<TaskId> = Vec::new();
        match job.shape {
            JobShape::Wide => {
                for i in 0..job.tasks {
                    let x = b.input(format!("{p}x{i}"), MB);
                    let t = b
                        .submit(&ty, cost, &[(x, Direction::In)], false)
                        .expect("valid replay task");
                    roots.push(t);
                }
            }
            JobShape::Stencil => {
                let rows = (job.tasks / JOB_STENCIL_WIDTH).max(1);
                let mut prev: Vec<_> = (0..JOB_STENCIL_WIDTH)
                    .map(|i| b.input(format!("{p}x{i}"), MB))
                    .collect();
                for r in 0..rows {
                    let mut cur = Vec::with_capacity(JOB_STENCIL_WIDTH);
                    for i in 0..JOB_STENCIL_WIDTH {
                        let out = b.intermediate(format!("{p}c{r}_{i}"), MB);
                        let left = prev[i.saturating_sub(1)];
                        let t = b
                            .submit(
                                &ty,
                                cost,
                                &[
                                    (prev[i], Direction::In),
                                    (left, Direction::In),
                                    (out, Direction::Out),
                                ],
                                false,
                            )
                            .expect("valid replay task");
                        if r == 0 {
                            roots.push(t);
                        }
                        cur.push(out);
                    }
                    prev = cur;
                }
            }
            JobShape::Tree => {
                let leaves = job.tasks.div_ceil(2).max(1);
                let mut frontier: Vec<_> = (0..leaves)
                    .map(|i| {
                        let x = b.input(format!("{p}x{i}"), MB);
                        let o = b.intermediate(format!("{p}l{i}"), MB);
                        let t = b
                            .submit(&ty, cost, &[(x, Direction::In), (o, Direction::Out)], false)
                            .expect("valid replay task");
                        roots.push(t);
                        o
                    })
                    .collect();
                let mut lvl = 0;
                while frontier.len() > 1 {
                    let mut next = Vec::with_capacity(frontier.len().div_ceil(2));
                    for (q, pair) in frontier.chunks(2).enumerate() {
                        if let [a, bb] = pair {
                            let o = b.intermediate(format!("{p}m{lvl}_{q}"), MB);
                            b.submit(
                                &ty,
                                cost,
                                &[
                                    (*a, Direction::In),
                                    (*bb, Direction::In),
                                    (o, Direction::Out),
                                ],
                                false,
                            )
                            .expect("valid replay task");
                            next.push(o);
                        } else {
                            next.push(pair[0]);
                        }
                    }
                    frontier = next;
                    lvl += 1;
                }
            }
        }
        let wf_tasks = b.task_count() as u32;
        built.push(BuiltJob {
            roots,
            task_lo: next_task,
            task_hi: wf_tasks - 1,
        });
        next_task = wf_tasks;
    }
    (b.build(), built)
}

/// Builds the scenario workflow plus the arrival list releasing each
/// job's root tasks at its submission instant — the ungated replay
/// frontend (see [`crate::RunConfig::with_arrivals`]).
pub fn build(jobs: &[JobSpec]) -> (Workflow, Vec<(TaskId, f64)>) {
    let (wf, built) = build_jobs(jobs);
    let mut arrivals: Vec<(TaskId, f64)> = Vec::new();
    for (job, b) in jobs.iter().zip(&built) {
        for &t in &b.roots {
            arrivals.push((t, job.arrival_secs));
        }
    }
    (wf, arrivals)
}

/// One tenant of a [`JobSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (Prometheus label value).
    pub name: String,
    /// Fair-share weight (>= 1): under saturation a tenant's released
    /// work converges to `weight / sum(weights)` of the cluster.
    pub weight: u32,
}

/// One gated job of a [`JobSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobEntry {
    /// Submission id (journal key; reporting only).
    pub id: usize,
    /// Index into [`JobSchedule::tenants`].
    pub tenant: usize,
    /// Priority within the fair-share pick (higher first).
    pub priority: u32,
    /// Instant the job becomes *eligible*, virtual seconds. Actual
    /// release waits for a window slot.
    pub arrival_secs: f64,
    /// The job's root tasks.
    pub roots: Vec<TaskId>,
    /// First task id of the job's contiguous range.
    pub task_lo: u32,
    /// Last task id of the job's contiguous range (inclusive).
    pub task_hi: u32,
}

impl JobEntry {
    /// Tasks in the job.
    pub fn task_count(&self) -> u64 {
        (self.task_hi - self.task_lo + 1) as u64
    }
}

/// The executor's job gate: tenants with fair-share weights, the gated
/// jobs, and the in-flight window bounds (see the module docs for the
/// pick rule).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSchedule {
    /// The tenants, in declaration order.
    pub tenants: Vec<TenantSpec>,
    /// The gated jobs, in submission order (earlier entries win
    /// fair-share ties).
    pub jobs: Vec<JobEntry>,
    /// Jobs allowed in flight at once (>= 1).
    pub max_inflight: usize,
    /// Per-tenant cap on in-flight jobs (0 = no cap).
    pub max_inflight_per_tenant: usize,
}

impl JobSchedule {
    /// Assembles a schedule from sampled specs and their built
    /// placements (parallel slices), with every tenant at the given
    /// weights.
    pub fn assemble(
        tenants: Vec<TenantSpec>,
        specs: &[JobSpec],
        built: &[BuiltJob],
        max_inflight: usize,
    ) -> Self {
        let jobs = specs
            .iter()
            .zip(built)
            .map(|(s, b)| JobEntry {
                id: s.id,
                tenant: s.tenant,
                priority: s.priority,
                arrival_secs: s.arrival_secs,
                roots: b.roots.clone(),
                task_lo: b.task_lo,
                task_hi: b.task_hi,
            })
            .collect();
        JobSchedule {
            tenants,
            jobs,
            max_inflight,
            max_inflight_per_tenant: 0,
        }
    }

    /// The task-id ranges annotated with tenant indices, for per-tenant
    /// metrics attribution (see `MetricsRegistry::begin_epoch`).
    pub fn tenant_ranges(&self) -> Vec<(u32, u32, usize)> {
        let mut ranges: Vec<(u32, u32, usize)> = self
            .jobs
            .iter()
            .map(|j| (j.task_lo, j.task_hi, j.tenant))
            .collect();
        ranges.sort();
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: usize, tenant: usize, shape: JobShape, tasks: usize) -> JobSpec {
        JobSpec {
            id,
            tenant,
            shape,
            tasks,
            arrival_secs: 0.0,
            priority: 0,
        }
    }

    #[test]
    fn built_ranges_are_contiguous_and_cover_the_workflow() {
        let specs = vec![
            spec(0, 0, JobShape::Wide, 5),
            spec(1, 1, JobShape::Tree, 9),
            spec(2, 2, JobShape::Stencil, 32),
        ];
        let (wf, built) = build_jobs(&specs);
        assert_eq!(built.len(), 3);
        assert_eq!(built[0].task_lo, 0);
        for w in built.windows(2) {
            assert_eq!(w[1].task_lo, w[0].task_hi + 1);
        }
        assert_eq!(built.last().unwrap().task_hi as usize + 1, wf.tasks().len());
        // Every root really is a root, inside its own job's range.
        for b in &built {
            assert!(!b.roots.is_empty());
            for &r in &b.roots {
                assert!(wf.predecessors(r).is_empty());
                assert!((b.task_lo..=b.task_hi).contains(&r.0));
            }
        }
    }

    #[test]
    fn build_wrapper_releases_only_roots_at_the_job_arrival() {
        let mut specs = vec![spec(0, 0, JobShape::Tree, 8), spec(1, 1, JobShape::Wide, 4)];
        specs[0].arrival_secs = 0.5;
        specs[1].arrival_secs = 1.25;
        let (wf, arrivals) = build(&specs);
        assert!(!arrivals.is_empty());
        for (tid, at) in &arrivals {
            assert!(wf.predecessors(*tid).is_empty());
            assert!(*at == 0.5 || *at == 1.25);
        }
    }

    #[test]
    fn shape_labels_round_trip() {
        for s in JobShape::ALL {
            assert_eq!(JobShape::parse(s.label()), Some(s));
        }
        assert_eq!(JobShape::parse("ring"), None);
    }

    #[test]
    fn schedule_assembles_parallel_slices() {
        let specs = vec![spec(0, 0, JobShape::Wide, 3), spec(1, 1, JobShape::Wide, 3)];
        let (_, built) = build_jobs(&specs);
        let sched = JobSchedule::assemble(
            vec![
                TenantSpec {
                    name: "a".into(),
                    weight: 2,
                },
                TenantSpec {
                    name: "b".into(),
                    weight: 1,
                },
            ],
            &specs,
            &built,
            2,
        );
        assert_eq!(sched.jobs.len(), 2);
        assert_eq!(sched.jobs[1].tenant, 1);
        assert_eq!(sched.tenant_ranges(), vec![(0, 2, 0), (3, 5, 1)]);
    }
}
