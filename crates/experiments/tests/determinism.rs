//! Determinism gates for the measurement stack.
//!
//! Two guarantees the perf work must never erode:
//!
//! * **golden makespans** — the simulator is a deterministic function of
//!   its inputs, so canonical Matmul/K-means runs pin exact wall-clock
//!   values under every scheduling policy (any scheduler change that
//!   alters a placement or a tie-break shows up here);
//! * **thread-count independence** — sweeps produce byte-identical
//!   artifacts at any `--threads` setting;
//! * **telemetry transparency** — the event bus is a pure observer:
//!   disabled, artifacts are byte-identical to the seed; enabled, the
//!   JSONL stream is byte-identical at every thread count;
//! * **chaos transparency** — an empty fault plan is a pure observer,
//!   and a *faulted* run is itself a deterministic function of
//!   (seed, plan): byte-identical at every thread count, and a
//!   recoverable crash converges to the fault-free output fingerprint;
//! * **metrics transparency** — the live metrics hub is a pure
//!   observer, the Prometheus exposition is byte-identical at every
//!   thread count, and the live (streamed) registry matches the
//!   post-hoc (`from_log`) registry byte for byte.

use gpuflow_algorithms::{KmeansConfig, MatmulConfig};
use gpuflow_cluster::{ProcessorKind, StorageArchitecture};
use gpuflow_experiments::{fig11, measure::par_map, obs, replay, spans, stress, Context};
use gpuflow_runtime::{
    FaultPlan, MetricsHub, MetricsRegistry, RunConfig, SchedulingPolicy, SpanForest, SpanSampler,
    Workflow,
};
use gpuflow_sim::SimDuration;
use proptest::prelude::*;

fn canonical_matmul() -> Workflow {
    MatmulConfig::new(gpuflow_data::paper::matmul_128mb(), 4)
        .expect("valid grid")
        .build_workflow()
}

fn canonical_kmeans() -> Workflow {
    KmeansConfig::new(gpuflow_data::paper::kmeans_100mb(), 8, 10, 2)
        .expect("valid grid")
        .build_workflow()
}

fn makespan(ctx: &Context, wf: &Workflow, policy: SchedulingPolicy) -> f64 {
    ctx.run(
        wf,
        ProcessorKind::Cpu,
        StorageArchitecture::SharedDisk,
        policy,
    )
    .report()
    .expect("canonical workloads fit")
    .makespan()
}

/// Pinned makespans (seconds) for the canonical workloads on the default
/// Minotauro cluster, CPU + shared disk, seed 0x9E37. The values sit on
/// the simulator's nanosecond grid, so equality up to 1e-9 is exact.
#[test]
fn golden_makespans_are_pinned_for_all_policies() {
    let ctx = Context::default();
    let mm = canonical_matmul();
    let km = canonical_kmeans();
    let cases = [
        (&mm, SchedulingPolicy::GenerationOrder, 0.440342880),
        (&mm, SchedulingPolicy::DataLocality, 0.579204533),
        (&mm, SchedulingPolicy::CriticalPath, 0.458782256),
        (&km, SchedulingPolicy::GenerationOrder, 0.178916613),
        (&km, SchedulingPolicy::DataLocality, 0.209473418),
        (&km, SchedulingPolicy::CriticalPath, 0.209473418),
    ];
    for (wf, policy, expected) in cases {
        let got = makespan(&ctx, wf, policy);
        assert!(
            (got - expected).abs() < 1e-9,
            "{policy:?}: makespan {got:.9} drifted from pinned {expected:.9}"
        );
    }
}

/// Pinned makespans for the stress-DAG shapes (`repro perf`), which
/// drive the arena executor through paths the canonical workloads
/// don't: a 5000-wide ready set, halo-dependency release, and a deep
/// reduction tree. Any change to the calendar queue, the CSR release
/// walk, the dispatch pool, or the LRU that alters one placement or
/// tie-break moves one of these values.
#[test]
fn golden_makespans_are_pinned_for_stress_shapes() {
    let cfg = stress::stress_config();
    let cases = [
        (stress::Shape::Wide, 4.003555278),
        (stress::Shape::Stencil, 4.009550953),
        (stress::Shape::Tree, 4.042105718),
    ];
    for (shape, expected) in cases {
        let wf = stress::build(shape, 5000);
        let got = gpuflow_runtime::run(&wf, &cfg)
            .expect("stress shapes fit")
            .makespan();
        assert!(
            (got - expected).abs() < 1e-9,
            "{}: makespan {got:.9} drifted from pinned {expected:.9}",
            shape.label()
        );
    }
}

/// Repeated runs of the same configuration are bitwise-identical.
#[test]
fn reruns_are_bitwise_identical() {
    let ctx = Context::default();
    let wf = canonical_kmeans();
    let a = makespan(&ctx, &wf, SchedulingPolicy::DataLocality);
    let b = makespan(&ctx, &wf, SchedulingPolicy::DataLocality);
    assert_eq!(a.to_bits(), b.to_bits());
}

/// `par_map` returns results in item order at every thread count.
#[test]
fn par_map_preserves_item_order() {
    let items: Vec<u64> = (0..103).collect();
    let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
    for threads in [1, 2, 3, 8, 64] {
        assert_eq!(par_map(threads, &items, |_, &x| x * x), expected);
    }
}

/// The Fig. 11 artifact is byte-identical whether the sweep runs on one
/// worker or many — the `--threads` knob must never change results.
#[test]
fn fig11_render_is_identical_across_thread_counts() {
    let single = fig11::run_quick(&Context::default().with_threads(1)).render();
    let multi = fig11::run_quick(&Context::default().with_threads(4)).render();
    assert_eq!(single, multi);
}

/// Telemetry is an observer: enabling it must not perturb the simulated
/// schedule. With telemetry off the artifacts (makespan, trace CSV) are
/// byte-identical to a telemetry-on run of the same configuration — and
/// the off-run's telemetry log is empty.
#[test]
fn telemetry_is_a_pure_observer() {
    let ctx = Context::default();
    let wf = canonical_matmul();
    let base = RunConfig::new(ctx.cluster.clone(), ProcessorKind::Gpu).with_seed(ctx.base_seed);
    let off = gpuflow_runtime::run(&wf, &base.clone().with_trace()).expect("fits");
    let on = gpuflow_runtime::run(&wf, &base.with_trace().with_telemetry()).expect("fits");
    assert_eq!(off.makespan().to_bits(), on.makespan().to_bits());
    assert_eq!(off.trace.to_csv(), on.trace.to_csv());
    assert!(off.telemetry.is_empty(), "disabled telemetry stays empty");
    assert!(!on.telemetry.is_empty());
}

/// The telemetry JSONL stream is byte-identical at every `--threads`
/// setting, including when several runs execute concurrently under
/// `par_map` — host timing never leaks into the serialized stream.
#[test]
fn telemetry_jsonl_is_identical_across_thread_counts() {
    let single = obs::run(&Context::default().with_threads(1)).jsonl;
    for threads in [4usize, 8] {
        let multi = obs::run(&Context::default().with_threads(threads)).jsonl;
        assert_eq!(single, multi, "--threads {threads}");
    }
    let concurrent = par_map(4, &[(); 4], |_, _| obs::run(&Context::default()).jsonl);
    assert!(concurrent.iter().all(|j| *j == single));
}

/// An *empty* fault plan is a pure observer, exactly like disabled
/// telemetry: attaching it (plus the default recovery policy) changes no
/// artifact bit — makespan, trace CSV, telemetry JSONL, or fingerprint.
#[test]
fn empty_fault_plan_is_a_pure_observer() {
    let ctx = Context::default();
    let wf = canonical_matmul();
    let base = RunConfig::new(ctx.cluster.clone(), ProcessorKind::Gpu)
        .with_seed(ctx.base_seed)
        .with_trace()
        .with_telemetry();
    let off = gpuflow_runtime::run(&wf, &base.clone()).expect("fits");
    let on = gpuflow_runtime::run(
        &wf,
        &base
            .with_faults(FaultPlan::new(42))
            .with_recovery(gpuflow_runtime::RecoveryPolicy::default()),
    )
    .expect("fits");
    assert_eq!(off.makespan().to_bits(), on.makespan().to_bits());
    assert_eq!(off.trace.to_csv(), on.trace.to_csv());
    assert_eq!(off.telemetry.to_jsonl(), on.telemetry.to_jsonl());
    assert_eq!(off.output_fingerprint, on.output_fingerprint);
    assert_eq!(on.recovery, gpuflow_runtime::RecoveryStats::default());
}

/// A faulted run is a deterministic function of (seed, fault plan): the
/// telemetry JSONL — which includes every fault and recovery event — is
/// byte-identical across reruns and under concurrent execution at any
/// thread count.
#[test]
fn faulted_runs_are_identical_across_thread_counts() {
    let ctx = Context::default();
    let wf = canonical_kmeans();
    let plan = FaultPlan::new(7)
        .with_node_crash(1, 0.05, Some(0.04))
        .with_task_failures(None, 0.10);
    let run_once = || {
        let cfg = RunConfig::new(ctx.cluster.clone(), ProcessorKind::Cpu)
            .with_storage(StorageArchitecture::LocalDisk)
            .with_seed(ctx.base_seed)
            .with_telemetry()
            .with_faults(plan.clone());
        let r = gpuflow_runtime::run(&wf, &cfg).expect("recoverable");
        (r.makespan().to_bits(), r.telemetry.to_jsonl())
    };
    let single = run_once();
    assert!(
        single.1.contains("node-down"),
        "the crash must be observable"
    );
    for threads in [1usize, 4, 8] {
        let runs = par_map(threads, &[(); 8], |_, _| run_once());
        assert!(runs.iter().all(|r| *r == single), "{threads} threads");
    }
}

/// The live metrics hub is a pure observer: attaching it changes no
/// artifact bit, and the registry it streams into is byte-identical —
/// in both exposition and series rendering — to one folded post-hoc
/// from the run's telemetry log.
#[test]
fn live_metrics_hub_is_a_pure_observer_and_matches_from_log() {
    let ctx = Context::default();
    let wf = canonical_matmul();
    let base = RunConfig::new(ctx.cluster.clone(), ProcessorKind::Gpu)
        .with_seed(ctx.base_seed)
        .with_telemetry();
    let off = gpuflow_runtime::run(&wf, &base.clone()).expect("fits");
    let hub = MetricsHub::default();
    let on = gpuflow_runtime::run(&wf, &base.with_live_metrics(hub.clone())).expect("fits");
    // Pure observer: the pinned GenerationOrder makespan from
    // `golden_makespans_are_pinned_for_all_policies` (GPU run here, so
    // compare the two runs bit-for-bit rather than against the CPU pin).
    assert_eq!(off.makespan().to_bits(), on.makespan().to_bits());
    assert_eq!(off.telemetry.to_jsonl(), on.telemetry.to_jsonl());
    assert_eq!(off.output_fingerprint, on.output_fingerprint);
    // Streamed == replayed.
    let folded = MetricsRegistry::from_log(&on.telemetry, SimDuration::from_nanos(10_000_000));
    assert_eq!(hub.expose(), folded.expose());
    assert_eq!(hub.render_series(), folded.render_series());
}

/// The Prometheus exposition is byte-identical at every thread count,
/// including under concurrent runs — the metrics pipeline inherits the
/// executor's determinism end to end.
#[test]
fn metrics_exposition_is_identical_across_thread_counts() {
    let ctx = Context::default();
    let wf = canonical_kmeans();
    let expose_once = || {
        let cfg = RunConfig::new(ctx.cluster.clone(), ProcessorKind::Cpu)
            .with_storage(StorageArchitecture::SharedDisk)
            .with_seed(ctx.base_seed)
            .with_telemetry();
        let r = gpuflow_runtime::run(&wf, &cfg).expect("fits");
        MetricsRegistry::from_log(&r.telemetry, SimDuration::from_nanos(10_000_000)).expose()
    };
    let single = expose_once();
    assert!(single.contains("gpuflow_task_duration_seconds_bucket"));
    for threads in [1usize, 4, 8] {
        let runs = par_map(threads, &[(); 8], |_, _| expose_once());
        assert!(runs.iter().all(|e| *e == single), "{threads} threads");
    }
}

/// A replay scenario — arrivals, tenant mix, chaos plan and all — is
/// byte-identical at every thread count, and seed-sensitive.
#[test]
fn replay_artifact_is_identical_across_thread_counts() {
    let spec = replay::ReplaySpec {
        jobs: 6,
        chaos: true,
        ..replay::ReplaySpec::default()
    };
    let single = replay::run(&spec).render();
    for threads in [4usize, 8] {
        let runs = par_map(threads, &[(); 4], |_, _| replay::run(&spec).render());
        assert!(runs.iter().all(|r| *r == single), "{threads} threads");
    }
    let other = replay::run(&replay::ReplaySpec {
        seed: 0xBEEF,
        ..spec
    })
    .render();
    assert_ne!(single, other, "seed must matter");
}

/// The entire span-tracing surface — the OTLP-shaped span JSON, the
/// collapsed-stack flame graph, and the SLO alert firing timeline — is
/// byte-identical at every thread count, including under concurrent
/// runs: causal folding, sampling, and alert evaluation all ride the
/// integer virtual clock, never host timing.
#[test]
fn span_flame_and_alert_outputs_are_identical_across_thread_counts() {
    let spec = replay::ReplaySpec {
        jobs: 6,
        chaos: true,
        ..replay::ReplaySpec::default()
    };
    let run_once = || {
        let r = spans::run(&spec, spans::DEFAULT_RATE_PPM, spans::DEFAULT_SAMPLER_SEED);
        let timeline = r
            .metrics
            .alerts()
            .map(|eng| eng.render_timeline())
            .unwrap_or_default();
        (r.forest.to_otlp_json(), r.collapsed(), timeline, r.render())
    };
    let single = run_once();
    assert!(single.0.contains("resourceSpans"));
    assert!(single.1.starts_with("gpuflow;"));
    for threads in [1usize, 4, 8] {
        let runs = par_map(threads, &[(); 4], |_, _| run_once());
        assert!(runs.iter().all(|r| *r == single), "{threads} threads");
    }
}

/// The span forest the sampler property suite below filters: one real
/// chaos run (with retries and a critical path), folded once.
fn sampler_fixture() -> &'static SpanForest {
    static FOREST: std::sync::OnceLock<SpanForest> = std::sync::OnceLock::new();
    FOREST.get_or_init(|| {
        let spec = replay::ReplaySpec {
            jobs: 6,
            chaos: true,
            ..replay::ReplaySpec::default()
        };
        spans::run(&spec, 0, 0).forest
    })
}

proptest! {
    /// For *any* sampler seed and head rate — including rate 0, which
    /// drops everything the always-keep rules don't protect — the
    /// sampled trace retains every critical-path span: the sampler may
    /// thin the forest, never the path that determined the makespan.
    #[test]
    fn sampled_traces_retain_every_critical_path_span(
        seed in 0u64..u64::MAX,
        rate in 0u64..1_000_001,
    ) {
        let forest = sampler_fixture();
        let critical: Vec<_> = forest
            .tasks
            .iter()
            .filter(|t| t.on_critical_path)
            .map(|t| t.task)
            .collect();
        prop_assert!(!critical.is_empty(), "fixture must have a critical path");
        let (kept, stats) = SpanSampler::new(seed, rate).sample(forest);
        for id in &critical {
            prop_assert!(
                kept.tasks.iter().any(|t| t.task == *id),
                "critical task {id:?} dropped at seed={seed:#x} rate={rate}"
            );
        }
        prop_assert_eq!(stats.critical, critical.len());
        prop_assert!(stats.kept >= stats.critical);
    }
}

/// A recoverable node crash (with rejoin) on local-disk storage loses
/// blocks mid-run, yet lineage-based regeneration converges to the exact
/// fault-free output fingerprint.
#[test]
fn recoverable_crash_converges_to_the_fault_free_fingerprint() {
    let ctx = Context::default();
    let wf = canonical_kmeans();
    let base = RunConfig::new(ctx.cluster.clone(), ProcessorKind::Cpu)
        .with_storage(StorageArchitecture::LocalDisk)
        .with_seed(ctx.base_seed);
    let clean = gpuflow_runtime::run(&wf, &base.clone()).expect("fits");
    let plan = FaultPlan::new(11).with_node_crash(0, clean.makespan() * 0.4, Some(0.02));
    let faulted = gpuflow_runtime::run(&wf, &base.with_faults(plan)).expect("recoverable");
    assert_eq!(clean.output_fingerprint, faulted.output_fingerprint);
    assert!(faulted.check_invariants(&wf, &ctx.cluster).is_ok());
}
