//! Workload descriptions the advisor can tune.

use gpuflow_algorithms::{
    calibration, gemm_cost, knn_partial_cost, CholeskyConfig, FmaConfig, KmeansConfig, KnnConfig,
    MatmulConfig,
};
use gpuflow_data::{DatasetSpec, DsArraySpec, GridDim, PartitionError};
use gpuflow_runtime::{CostProfile, Workflow};

/// A tunable workload: an algorithm plus its dataset and fixed
/// algorithm-specific parameters. The advisor varies the execution
/// factors (grid, processor, storage, policy) around it.
#[derive(Debug, Clone)]
pub enum Workload {
    /// Blocked matrix multiplication (dislib style).
    Matmul {
        /// The (square) operand dataset.
        dataset: DatasetSpec,
    },
    /// Fused multiply-add matrix multiplication.
    MatmulFma {
        /// The (square) operand dataset.
        dataset: DatasetSpec,
    },
    /// Distributed K-means.
    Kmeans {
        /// The sample dataset.
        dataset: DatasetSpec,
        /// Cluster count.
        clusters: u64,
        /// Lloyd iterations.
        iterations: u32,
    },
    /// Distributed k-nearest neighbours (extension workload).
    Knn {
        /// The reference dataset.
        dataset: DatasetSpec,
        /// Query points.
        queries: u64,
        /// Neighbours per query.
        k: u64,
    },
    /// Blocked Cholesky factorization (extension workload).
    Cholesky {
        /// The (square, SPD) matrix dataset.
        dataset: DatasetSpec,
    },
}

impl Workload {
    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            Workload::Matmul { dataset } => format!("Matmul({})", dataset.name),
            Workload::MatmulFma { dataset } => format!("MatmulFMA({})", dataset.name),
            Workload::Kmeans {
                dataset,
                clusters,
                iterations,
            } => {
                format!("Kmeans({}, k={clusters}, iters={iterations})", dataset.name)
            }
            Workload::Knn {
                dataset,
                queries,
                k,
            } => {
                format!("Knn({}, q={queries}, k={k})", dataset.name)
            }
            Workload::Cholesky { dataset } => format!("Cholesky({})", dataset.name),
        }
    }

    /// The dataset under the workload.
    pub fn dataset(&self) -> &DatasetSpec {
        match self {
            Workload::Matmul { dataset }
            | Workload::MatmulFma { dataset }
            | Workload::Kmeans { dataset, .. }
            | Workload::Knn { dataset, .. }
            | Workload::Cholesky { dataset } => dataset,
        }
    }

    /// Builds the workflow for a grid extent (square grids for the matrix
    /// workloads, `grid × 1` for K-means).
    ///
    /// # Errors
    /// Propagates partitioning violations.
    pub fn build(&self, grid: u64) -> Result<Workflow, PartitionError> {
        Ok(match self {
            Workload::Matmul { dataset } => {
                MatmulConfig::new(dataset.clone(), grid)?.build_workflow()
            }
            Workload::MatmulFma { dataset } => {
                FmaConfig::new(dataset.clone(), grid)?.build_workflow()
            }
            Workload::Kmeans {
                dataset,
                clusters,
                iterations,
            } => KmeansConfig::new(dataset.clone(), grid, *clusters, *iterations)?.build_workflow(),
            Workload::Knn {
                dataset,
                queries,
                k,
            } => KnnConfig::new(dataset.clone(), grid, *queries, *k)?.build_workflow(),
            Workload::Cholesky { dataset } => {
                CholeskyConfig::new(dataset.clone(), grid)?.build_workflow()
            }
        })
    }

    /// The blocked-array descriptor for a grid extent.
    ///
    /// # Errors
    /// Propagates partitioning violations.
    pub fn array_spec(&self, grid: u64) -> Result<DsArraySpec, PartitionError> {
        let gd = match self {
            Workload::Kmeans { .. } | Workload::Knn { .. } => GridDim::row_wise(grid),
            _ => GridDim::square(grid),
        };
        DsArraySpec::partition(self.dataset().clone(), gd)
    }

    /// Cost profile of the dominant (most expensive) task type at a grid
    /// extent — the unit the pruning rules reason about.
    ///
    /// # Errors
    /// Propagates partitioning violations.
    pub fn dominant_cost(&self, grid: u64) -> Result<CostProfile, PartitionError> {
        let spec = self.array_spec(grid)?;
        Ok(match self {
            Workload::Matmul { .. } => {
                let b = spec.block.rows;
                calibration::matmul_func_cost(b, b, b)
            }
            Workload::MatmulFma { .. } => {
                let b = spec.block.rows;
                calibration::fma_func_cost(b, b, b)
            }
            Workload::Kmeans { clusters, .. } => {
                calibration::partial_sum_cost(spec.block.rows, spec.dataset.dim.cols, *clusters)
            }
            Workload::Knn { queries, k, .. } => {
                knn_partial_cost(spec.block.rows, spec.dataset.dim.cols, *queries, *k)
            }
            Workload::Cholesky { .. } => gemm_cost(spec.block.rows),
        })
    }

    /// Per-task data footprint (inputs + outputs) of the dominant task at
    /// a grid extent, in bytes.
    ///
    /// # Errors
    /// Propagates partitioning violations.
    pub fn dominant_io_bytes(&self, grid: u64) -> Result<u64, PartitionError> {
        let spec = self.array_spec(grid)?;
        Ok(match self {
            // matmul/fma: two input blocks + one output block.
            Workload::Matmul { .. } | Workload::MatmulFma { .. } => 3 * spec.block_bytes(),
            // kmeans: block + centers in, small tally out.
            Workload::Kmeans { clusters, .. } => {
                let n = spec.dataset.dim.cols;
                spec.block_bytes() + clusters * n * 8 + clusters * (n + 1) * 8
            }
            // knn: block + queries in, candidate tally out.
            Workload::Knn { queries, k, .. } => {
                let n = spec.dataset.dim.cols;
                spec.block_bytes() + queries * n * 8 + queries * k * 16
            }
            // cholesky gemm: two panel blocks in, one trailing block inout.
            Workload::Cholesky { .. } => 3 * spec.block_bytes(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn km() -> Workload {
        Workload::Kmeans {
            dataset: DatasetSpec::uniform("k", 10_000, 100, 1),
            clusters: 10,
            iterations: 2,
        }
    }

    #[test]
    fn labels_are_descriptive() {
        assert!(km().label().contains("k=10"));
        let mm = Workload::Matmul {
            dataset: DatasetSpec::uniform("m", 64, 64, 1),
        };
        assert!(mm.label().contains("Matmul"));
    }

    #[test]
    fn build_matches_grid_shape() {
        let wf = km().build(8).unwrap();
        let ps = wf
            .tasks()
            .iter()
            .filter(|t| t.task_type == "partial_sum")
            .count();
        assert_eq!(ps, 16, "8 blocks x 2 iterations");
    }

    #[test]
    fn dominant_cost_tracks_block_size() {
        let w = Workload::Matmul {
            dataset: DatasetSpec::uniform("m", 1024, 1024, 1),
        };
        let fine = w.dominant_cost(8).unwrap();
        let coarse = w.dominant_cost(2).unwrap();
        assert!(coarse.parallel.flops > fine.parallel.flops * 10.0);
    }

    #[test]
    fn extension_workloads_build_and_cost() {
        let knn = Workload::Knn {
            dataset: DatasetSpec::uniform("n", 8_000, 10, 1),
            queries: 64,
            k: 5,
        };
        assert!(knn.build(8).is_ok());
        assert!(knn.dominant_cost(8).unwrap().parallel.flops > 0.0);
        let chol = Workload::Cholesky {
            dataset: DatasetSpec::uniform("c", 1024, 1024, 1),
        };
        assert!(chol.build(4).is_ok());
        assert!(chol.label().contains("Cholesky"));
    }

    #[test]
    fn io_bytes_cover_three_blocks_for_matmul() {
        let w = Workload::Matmul {
            dataset: DatasetSpec::uniform("m", 1024, 1024, 1),
        };
        let spec = w.array_spec(4).unwrap();
        assert_eq!(w.dominant_io_bytes(4).unwrap(), 3 * spec.block_bytes());
    }
}
