//! Property suite for the fault-injection and recovery subsystem.
//!
//! Two guarantees, over *arbitrary* generated fault plans:
//!
//! * **recoverable plans converge** — any mix of transient failure
//!   probabilities (with a sufficient retry budget), crashes with
//!   rejoin, stragglers, and link degradations completes, passes the
//!   report invariants, reproduces the fault-free output fingerprint
//!   (lineage regeneration recomputes exactly the lost results), and is
//!   bitwise-reproducible run-to-run;
//! * **unrecoverable plans fail typed** — exhausted retry budgets and
//!   whole-cluster losses return a typed [`RunError`], never a panic or
//!   a silent wrong answer.

use gpuflow_cluster::{ClusterSpec, KernelWork, ProcessorKind, StorageArchitecture};
use gpuflow_runtime::{
    run, CostProfile, Direction, FaultPlan, RecoveryPolicy, RunConfig, Workflow, WorkflowBuilder,
};
use proptest::prelude::*;

const MB: u64 = 1 << 20;

fn compute_cost(flops: f64) -> CostProfile {
    CostProfile::fully_parallel(KernelWork {
        flops,
        bytes: flops / 10.0,
        parallelism: 1e9,
    })
}

/// Independent 3-block chains: x -> a -> c, `width` of them.
fn pipeline(width: usize) -> Workflow {
    let mut b = WorkflowBuilder::new();
    for i in 0..width {
        let x = b.input(format!("x{i}"), MB);
        let a = b.intermediate(format!("a{i}"), MB);
        let c = b.intermediate(format!("c{i}"), MB);
        b.submit(
            "stage0",
            compute_cost(1e9),
            &[(x, Direction::In), (a, Direction::Out)],
            false,
        )
        .unwrap();
        b.submit(
            "stage1",
            compute_cost(1e9),
            &[(a, Direction::In), (c, Direction::Out)],
            false,
        )
        .unwrap();
    }
    b.build()
}

fn base_cfg() -> RunConfig {
    let mut c = RunConfig::new(ClusterSpec::tiny(), ProcessorKind::Cpu);
    c.jitter_sigma = 0.0;
    c.storage = StorageArchitecture::LocalDisk;
    c
}

proptest! {
    /// Every recoverable plan completes, satisfies the report
    /// invariants, converges to the fault-free fingerprint, and
    /// reproduces bit-for-bit.
    #[test]
    fn recoverable_plans_converge_to_the_fault_free_output(
        seed in 0u64..1024,
        p in 0.0f64..0.45,
        crash in prop::bool::ANY,
    ) {
        let wf = pipeline(5);
        let clean = run(&wf, &base_cfg()).expect("fault-free run completes");
        let mut plan = FaultPlan::new(seed).with_task_failures(None, p);
        if crash {
            // Crash mid-run, rejoin shortly after: always recoverable.
            plan = plan.with_node_crash(
                (seed % 2) as usize,
                clean.makespan() * 0.5,
                Some(clean.makespan() * 0.1),
            );
        }
        // A generous budget makes any p < 0.45 recoverable in practice:
        // the keyed hash decides each attempt independently, so eight
        // failures in a row at p = 0.45 never occurs over this domain.
        let policy = RecoveryPolicy { max_retries: 8, ..RecoveryPolicy::default() };
        let cfg = base_cfg()
            .with_telemetry()
            .with_faults(plan.clone())
            .with_recovery(policy);
        let a = run(&wf, &cfg).expect("recoverable plan completes");
        prop_assert!(a.check_invariants(&wf, &ClusterSpec::tiny()).is_ok());
        prop_assert_eq!(a.output_fingerprint, clean.output_fingerprint);
        prop_assert!(a.makespan() >= clean.makespan());
        let b = run(&wf, &cfg).expect("deterministic rerun");
        prop_assert_eq!(a.makespan().to_bits(), b.makespan().to_bits());
        prop_assert_eq!(a.telemetry.to_jsonl(), b.telemetry.to_jsonl());
    }

    /// Straggler and link-degradation windows never change *what* is
    /// computed, only when: same fingerprint, never faster.
    #[test]
    fn slowdowns_preserve_the_answer(
        factor in 1.0f64..8.0,
        node in 0usize..2,
    ) {
        let wf = pipeline(4);
        let clean = run(&wf, &base_cfg()).expect("fault-free run completes");
        let m = clean.makespan();
        let plan = FaultPlan::new(1)
            .with_straggler(node, 0.0, m * 2.0, factor)
            .with_link_degradation(0.0, m * 2.0, factor);
        let slowed = run(&wf, &base_cfg().with_faults(plan)).expect("slowdowns are benign");
        prop_assert_eq!(slowed.output_fingerprint, clean.output_fingerprint);
        prop_assert_eq!(slowed.recovery.retries, 0);
        prop_assert!(slowed.makespan() >= m);
    }

    /// Unrecoverable plans — a zero-retry budget under certain failure,
    /// or every node lost for good — return a typed error, not a panic.
    #[test]
    fn unrecoverable_plans_fail_with_a_typed_error(
        seed in 0u64..1024,
        all_nodes_die in prop::bool::ANY,
    ) {
        let wf = pipeline(3);
        let (plan, policy) = if all_nodes_die {
            (
                FaultPlan::new(seed)
                    .with_node_crash(0, 0.001, None)
                    .with_node_crash(1, 0.001, None),
                RecoveryPolicy::default(),
            )
        } else {
            (
                FaultPlan::new(seed).with_task_failures(None, 0.999),
                RecoveryPolicy { max_retries: 0, ..RecoveryPolicy::default() },
            )
        };
        let err = run(&wf, &base_cfg().with_faults(plan).with_recovery(policy))
            .expect_err("plan is unrecoverable");
        let msg = err.to_string();
        prop_assert!(
            msg.contains("attempts") || msg.contains("unrecoverable"),
            "unexpected error: {}",
            msg
        );
    }
}

/// Regression: a task running on a *surviving* node when another node
/// crashes is not a crash victim, so no crash-time sweep chases its
/// inputs — but if the crash destroyed a block it consumes and the task
/// *later* fails transiently, its retry must first regenerate the lost
/// producer instead of silently recomputing from a stale lineage
/// (found by `recoverable_plans_converge_to_the_fault_free_output`).
#[test]
fn retry_after_crash_regenerates_lost_inputs() {
    let wf = pipeline(5);
    let clean = run(&wf, &base_cfg()).expect("fault-free run completes");
    let plan = FaultPlan::new(892)
        .with_task_failures(None, 0.01744039453081906)
        .with_node_crash(0, clean.makespan() * 0.5, Some(clean.makespan() * 0.1));
    let policy = RecoveryPolicy {
        max_retries: 8,
        ..RecoveryPolicy::default()
    };
    let cfg = base_cfg().with_faults(plan).with_recovery(policy);
    let a = run(&wf, &cfg).expect("recoverable");
    assert!(a.recovery.transient_failures >= 1, "needs the late retry");
    assert!(a.recovery.blocks_invalidated > 0, "needs the lost blocks");
    assert_eq!(a.output_fingerprint, clean.output_fingerprint);
}

/// The five overhead buckets (compute, data movement, recovery, master,
/// idle) partition the makespan *exactly* in integer nanoseconds, even
/// for a faulted run with crashes and retries — the conservation
/// guarantee the differential blame table is built on.
#[test]
fn overhead_buckets_partition_faulted_makespan_exactly() {
    use gpuflow_runtime::OverheadReport;
    let wf = pipeline(5);
    let clean = run(&wf, &base_cfg()).expect("fault-free run completes");
    let plan = FaultPlan::new(892)
        .with_task_failures(None, 0.017_440_394_530_819_06)
        .with_node_crash(0, clean.makespan() * 0.5, Some(clean.makespan() * 0.1));
    let policy = RecoveryPolicy {
        max_retries: 8,
        ..RecoveryPolicy::default()
    };
    let cfg = base_cfg()
        .with_telemetry()
        .with_faults(plan)
        .with_recovery(policy);
    let report = run(&wf, &cfg).expect("recoverable");
    assert!(report.recovery.transient_failures >= 1, "needs real faults");

    let overhead = OverheadReport::from_log(&report.telemetry, report.makespan());
    let total: u64 = overhead.buckets_ns().iter().map(|(_, ns)| ns).sum();
    assert_eq!(
        total,
        overhead.makespan_ns,
        "buckets {:?} must sum to the makespan exactly",
        overhead.buckets_ns()
    );
    let recovery = overhead
        .buckets_ns()
        .iter()
        .find(|(name, _)| *name == "recovery")
        .map(|(_, ns)| *ns)
        .unwrap();
    assert!(recovery > 0, "a faulted run must book recovery time");
}
