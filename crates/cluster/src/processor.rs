//! Processor cost models (roofline-style).
//!
//! Both models map a [`KernelWork`] — the floating-point work, memory
//! traffic, and available data parallelism of one task fraction — onto a
//! simulated duration:
//!
//! * **CPU core**: `t = max(flops / peak_flops, bytes / mem_bw)` — the
//!   core overlaps compute with memory streaming and the slower term
//!   binds. One task occupies exactly one core (the paper's
//!   no-oversubscription rule, §3.3).
//! * **GPU device**: `t = t_launch + max(flops / (eff(p) * peak),
//!   bytes / mem_bw)` with the occupancy ramp `eff(p) = p / (p + p_half)`:
//!   small workloads cannot saturate thousands of GPU threads, which is
//!   exactly why the paper's GPU speedups grow with block size (Fig. 7,
//!   Fig. 8) and why low-complexity memory-bound tasks (`add_func`) never
//!   win on the GPU once the PCIe transfer is added.

use gpuflow_sim::SimDuration;

/// The work performed by one fraction (serial or parallel) of a task's
/// user code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelWork {
    /// Floating-point operations (or equivalent scalar work).
    pub flops: f64,
    /// Bytes of memory the fraction must stream (for roofline AI).
    pub bytes: f64,
    /// Available data parallelism (independent work items); drives the
    /// GPU occupancy ramp. Ignored by the CPU model.
    pub parallelism: f64,
}

impl KernelWork {
    /// Work with the given flops and bytes and parallelism equal to flops
    /// (fully data-parallel scalar work).
    pub fn data_parallel(flops: f64, bytes: f64) -> Self {
        KernelWork {
            flops,
            bytes,
            parallelism: flops,
        }
    }

    /// Arithmetic intensity in flops/byte (∞ for pure compute).
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes <= 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }

    /// Zero work.
    pub const NONE: KernelWork = KernelWork {
        flops: 0.0,
        bytes: 0.0,
        parallelism: 0.0,
    };
}

/// A single CPU core's execution model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Peak double-precision throughput of one core, flops/s.
    pub peak_flops: f64,
    /// Sustainable memory bandwidth of one core, bytes/s.
    pub mem_bw: f64,
}

impl CpuModel {
    /// Time for one core to execute `work`: the slower of the compute and
    /// memory-streaming terms.
    pub fn time(&self, work: &KernelWork) -> SimDuration {
        if work.flops <= 0.0 && work.bytes <= 0.0 {
            return SimDuration::ZERO;
        }
        let compute = work.flops / self.peak_flops;
        let memory = work.bytes / self.mem_bw;
        SimDuration::from_secs_f64(compute.max(memory))
    }

    /// Effective execution rate for `work`, flops/s.
    pub fn rate(&self, work: &KernelWork) -> f64 {
        let t = self.time(work).as_secs_f64();
        if t <= 0.0 {
            f64::INFINITY
        } else {
            work.flops / t
        }
    }
}

/// A GPU device's execution model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Peak double-precision throughput at full occupancy, flops/s.
    pub peak_flops: f64,
    /// Device memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Parallelism at which the occupancy ramp reaches 50 % of peak.
    pub half_occupancy_parallelism: f64,
    /// Fixed kernel-launch latency.
    pub launch_latency: SimDuration,
    /// Device memory capacity in bytes (12 GB on the paper's K80s).
    pub memory_bytes: u64,
}

impl GpuModel {
    /// Occupancy efficiency in `(0, 1)` for the given data parallelism.
    pub fn occupancy(&self, parallelism: f64) -> f64 {
        if parallelism <= 0.0 {
            return 0.0;
        }
        parallelism / (parallelism + self.half_occupancy_parallelism)
    }

    /// Kernel execution time for `work` (launch latency included): the
    /// slower of the occupancy-scaled compute term and the memory term.
    pub fn time(&self, work: &KernelWork) -> SimDuration {
        if work.flops <= 0.0 && work.bytes <= 0.0 {
            return SimDuration::ZERO;
        }
        let eff = self.occupancy(work.parallelism);
        debug_assert!(eff > 0.0, "zero occupancy for non-trivial work");
        let compute = work.flops / (self.peak_flops * eff);
        let memory = work.bytes / self.mem_bw;
        self.launch_latency + SimDuration::from_secs_f64(compute.max(memory))
    }

    /// Effective execution rate for `work`, flops/s (launch excluded).
    pub fn rate(&self, work: &KernelWork) -> f64 {
        let eff = self.occupancy(work.parallelism);
        let compute = work.flops / (self.peak_flops * eff);
        let memory = work.bytes / self.mem_bw;
        let t = compute.max(memory);
        if t <= 0.0 {
            f64::INFINITY
        } else {
            work.flops / t
        }
    }

    /// Whether a task footprint fits in device memory.
    pub fn fits(&self, footprint_bytes: u64) -> bool {
        footprint_bytes <= self.memory_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> CpuModel {
        CpuModel {
            peak_flops: 10e9,
            mem_bw: 5e9,
        }
    }

    fn gpu() -> GpuModel {
        GpuModel {
            peak_flops: 400e9,
            mem_bw: 200e9,
            half_occupancy_parallelism: 1e6,
            launch_latency: SimDuration::from_micros(50),
            memory_bytes: 12 * (1 << 30),
        }
    }

    #[test]
    fn cpu_compute_bound_at_high_ai() {
        // 100 flops/byte: roofline picks peak flops.
        let w = KernelWork {
            flops: 1e10,
            bytes: 1e8,
            parallelism: 1.0,
        };
        assert!((cpu().time(&w).as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_memory_bound_at_low_ai() {
        // Memory term: 5e9 bytes / 5e9 B/s = 1 s dominates the 0.05 s of
        // compute.
        let w = KernelWork {
            flops: 5e8,
            bytes: 5e9,
            parallelism: 1.0,
        };
        assert!((cpu().time(&w).as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_occupancy_ramps_to_one() {
        let g = gpu();
        assert!(g.occupancy(0.0) == 0.0);
        assert!((g.occupancy(1e6) - 0.5).abs() < 1e-12);
        assert!(g.occupancy(1e12) > 0.999);
        // Monotone.
        assert!(g.occupancy(1e5) < g.occupancy(1e6));
    }

    #[test]
    fn gpu_speedup_grows_with_parallelism() {
        let g = gpu();
        let c = cpu();
        let small = KernelWork {
            flops: 1e9,
            bytes: 1e6,
            parallelism: 1e4,
        };
        let large = KernelWork {
            flops: 1e9,
            bytes: 1e6,
            parallelism: 1e9,
        };
        let sp_small = c.time(&small).as_secs_f64() / g.time(&small).as_secs_f64();
        let sp_large = c.time(&large).as_secs_f64() / g.time(&large).as_secs_f64();
        assert!(
            sp_large > sp_small * 10.0,
            "occupancy ramp must dominate: {sp_small} vs {sp_large}"
        );
    }

    #[test]
    fn gpu_launch_latency_floors_small_kernels() {
        let g = gpu();
        let tiny = KernelWork {
            flops: 1.0,
            bytes: 1.0,
            parallelism: 1.0,
        };
        assert!(g.time(&tiny) >= SimDuration::from_micros(50));
    }

    #[test]
    fn zero_work_costs_nothing() {
        assert_eq!(cpu().time(&KernelWork::NONE), SimDuration::ZERO);
        assert_eq!(gpu().time(&KernelWork::NONE), SimDuration::ZERO);
    }

    #[test]
    fn memory_fit_check() {
        let g = gpu();
        assert!(g.fits(12 * (1 << 30)));
        assert!(!g.fits(12 * (1 << 30) + 1));
    }

    #[test]
    fn arithmetic_intensity_of_pure_compute_is_infinite() {
        let w = KernelWork {
            flops: 10.0,
            bytes: 0.0,
            parallelism: 1.0,
        };
        assert!(w.arithmetic_intensity().is_infinite());
    }
}
