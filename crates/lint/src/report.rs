//! Findings and their two renderings: human diagnostics and `--json`.
//!
//! Both renderings are deterministic — findings are emitted in
//! (file, line, col, rule) order — so the JSON report itself satisfies
//! the workspace's byte-identical-artifact discipline and can be diffed
//! across CI runs.

use crate::rules::RuleCode;

/// One diagnostic: a rule violation at a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleCode,
    /// Repo-relative path of the file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Site-specific explanation.
    pub message: String,
}

impl Finding {
    /// Builds a finding.
    pub fn new(
        rule: RuleCode,
        file: &str,
        line: u32,
        col: u32,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            col,
            message: message.into(),
        }
    }
}

/// The result of scanning a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the tree is lint-clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering: one block per finding plus a summary
    /// line (also printed when clean, so CI logs state the verdict).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}: {} [{}]\n  --> {}:{}:{}\n  {}\n",
                f.rule,
                f.rule.summary(),
                f.rule,
                f.file,
                f.line,
                f.col,
                f.message
            ));
        }
        let mut by_rule: Vec<(RuleCode, usize)> = Vec::new();
        for f in &self.findings {
            match by_rule.iter_mut().find(|(c, _)| *c == f.rule) {
                Some((_, n)) => *n += 1,
                None => by_rule.push((f.rule, 1)),
            }
        }
        by_rule.sort();
        if self.findings.is_empty() {
            out.push_str(&format!(
                "lint: clean — 0 findings across {} files\n",
                self.files_scanned
            ));
        } else {
            let breakdown: Vec<String> = by_rule.iter().map(|(c, n)| format!("{c}: {n}")).collect();
            out.push_str(&format!(
                "lint: {} finding(s) across {} files ({})\n",
                self.findings.len(),
                self.files_scanned,
                breakdown.join(", ")
            ));
        }
        out
    }

    /// JSON rendering (stable key order, findings pre-sorted).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                f.rule,
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.message)
            ));
        }
        out.push_str(&format!(
            "],\"total\":{},\"files_scanned\":{}}}",
            self.findings.len(),
            self.files_scanned
        ));
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![Finding::new(
                RuleCode::D2,
                "src/a.rs",
                3,
                7,
                "Instant::now() reads the host clock",
            )],
            files_scanned: 2,
        }
    }

    #[test]
    fn human_rendering_has_span_and_summary() {
        let r = sample().render();
        assert!(r.contains("src/a.rs:3:7"), "{r}");
        assert!(r.contains("D2"), "{r}");
        assert!(r.contains("1 finding(s) across 2 files"), "{r}");
    }

    #[test]
    fn clean_report_says_so() {
        let r = Report {
            findings: vec![],
            files_scanned: 5,
        };
        assert!(r.clean());
        assert!(r.render().contains("clean — 0 findings across 5 files"));
    }

    #[test]
    fn json_rendering_parses_and_carries_fields() {
        let j = sample().to_json();
        let v = crate::json::parse(&j).unwrap();
        let findings = v.get("findings").and_then(|f| f.as_array()).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].get("rule").and_then(|r| r.as_str()), Some("D2"));
        assert_eq!(v.get("total").and_then(|t| t.as_u64()), Some(1));
    }

    #[test]
    fn json_escaping_handles_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
