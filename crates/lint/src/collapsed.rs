//! A zero-dep validator for the collapsed-stack flame-graph format —
//! the `folded` text `flamegraph.pl` and speedscope consume, emitted
//! by `gpuflow obs flame` and `repro spans`.
//!
//! The grammar is one stack per line: semicolon-separated frames, one
//! space, an integer weight. On top of it the checker enforces what
//! the deterministic emitter guarantees: non-empty frames, positive
//! integer weights (virtual nanoseconds), no duplicate stacks, and a
//! shared root frame — so a merge bug or a float leak fails CI without
//! any flame-graph tooling in the container.

/// Summary of a validated collapsed-stack document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Stack lines.
    pub stacks: usize,
    /// Sum of all weights (virtual nanoseconds).
    pub total_weight: u64,
}

/// Validates `text` as collapsed stacks; returns summary stats or the
/// first violation.
pub fn check(text: &str) -> Result<Stats, String> {
    let mut stats = Stats {
        stacks: 0,
        total_weight: 0,
    };
    let mut seen: Vec<&str> = Vec::new();
    let mut root: Option<&str> = None;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let err = |msg: String| format!("line {lineno}: {msg}");
        if line.is_empty() {
            continue;
        }
        let (stack, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| err(format!("no weight field: {line:?}")))?;
        let weight: u64 = weight
            .parse()
            .map_err(|_| err(format!("weight must be a non-negative integer: {weight:?}")))?;
        if weight == 0 {
            return Err(err("zero-weight stack (the emitter omits them)".into()));
        }
        if stack.is_empty() || stack.split(';').any(|f| f.is_empty() || f.contains(' ')) {
            return Err(err(format!("malformed stack {stack:?}")));
        }
        let first = stack.split(';').next().expect("non-empty stack");
        match root {
            None => root = Some(first),
            Some(r) if r != first => {
                return Err(err(format!("root frame {first:?} differs from {r:?}")));
            }
            Some(_) => {}
        }
        if seen.contains(&stack) {
            return Err(err(format!("duplicate stack {stack:?}")));
        }
        seen.push(stack);
        stats.stacks += 1;
        stats.total_weight += weight;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_collapsed_stacks() {
        let text = "\
gpuflow;wide_t0;queue-wait 120
gpuflow;wide_t0;compute 4800
gpuflow;tree_t1;compute 900
";
        let stats = check(text).expect("valid");
        assert_eq!(stats.stacks, 3);
        assert_eq!(stats.total_weight, 5820);
    }

    #[test]
    fn rejects_missing_or_non_integer_weights() {
        assert!(check("gpuflow;compute\n").is_err());
        assert!(check("gpuflow;compute 1.5\n").is_err());
        assert!(check("gpuflow;compute -3\n").is_err());
    }

    #[test]
    fn rejects_zero_weights_empty_frames_and_duplicates() {
        assert!(check("gpuflow;compute 0\n").unwrap_err().contains("zero"));
        assert!(check("gpuflow;;compute 1\n")
            .unwrap_err()
            .contains("malformed"));
        let dup = "gpuflow;compute 1\ngpuflow;compute 2\n";
        assert!(check(dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn rejects_a_forked_root_frame() {
        let text = "gpuflow;compute 1\nother;compute 2\n";
        assert!(check(text).unwrap_err().contains("root frame"));
    }
}
