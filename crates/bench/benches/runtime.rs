//! Executor benchmarks and design-choice ablations: task-count scaling,
//! scheduling policy cost, object-cache on/off, jitter on/off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpuflow_algorithms::KmeansConfig;
use gpuflow_cluster::{ClusterSpec, ProcessorKind, StorageArchitecture};
use gpuflow_data::DatasetSpec;
use gpuflow_runtime::{run, RunConfig, SchedulingPolicy, Workflow};
use std::hint::black_box;

fn kmeans_workflow(blocks: u64, iterations: u32) -> Workflow {
    KmeansConfig::new(
        DatasetSpec::uniform("bench", blocks * 4_096, 100, 7),
        blocks,
        10,
        iterations,
    )
    .expect("valid grid")
    .build_workflow()
}

fn bench_task_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_task_scaling");
    g.sample_size(10);
    for &blocks in &[32u64, 128, 512] {
        let wf = kmeans_workflow(blocks, 2);
        g.bench_with_input(BenchmarkId::new("kmeans_blocks", blocks), &wf, |b, wf| {
            let cfg = RunConfig::new(ClusterSpec::minotauro(), ProcessorKind::Cpu);
            b.iter(|| black_box(run(wf, &cfg).expect("fits")))
        });
    }
    g.finish();
}

fn bench_scheduler_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_ablation");
    g.sample_size(10);
    let wf = kmeans_workflow(128, 3);
    for policy in SchedulingPolicy::ALL {
        g.bench_with_input(BenchmarkId::new("policy", policy.label()), &wf, |b, wf| {
            let cfg = RunConfig::new(ClusterSpec::minotauro(), ProcessorKind::Cpu)
                .with_policy(policy)
                .with_storage(StorageArchitecture::SharedDisk);
            b.iter(|| black_box(run(wf, &cfg).expect("fits")))
        });
    }
    g.finish();
}

fn bench_cache_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: the per-node object cache is what couples
    // scheduling policy and storage architecture. Compare simulated
    // makespans (and harness cost) with the cache effectively disabled.
    let mut g = c.benchmark_group("cache_ablation");
    g.sample_size(10);
    let wf = kmeans_workflow(128, 3);
    for &(label, fraction) in &[("cache_on", 0.5f64), ("cache_off", 1e-9)] {
        g.bench_with_input(BenchmarkId::new("kmeans", label), &wf, |b, wf| {
            let mut cfg = RunConfig::new(ClusterSpec::minotauro(), ProcessorKind::Cpu);
            cfg.cache_fraction = fraction;
            b.iter(|| black_box(run(wf, &cfg).expect("fits")))
        });
    }
    g.finish();
}

fn bench_gpu_vs_cpu_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("processor_ablation");
    g.sample_size(10);
    let wf = kmeans_workflow(128, 2);
    for proc in ProcessorKind::ALL {
        g.bench_with_input(BenchmarkId::new("kmeans", proc.label()), &wf, |b, wf| {
            let cfg = RunConfig::new(ClusterSpec::minotauro(), proc);
            b.iter(|| black_box(run(wf, &cfg).expect("fits")))
        });
    }
    g.finish();
}

fn bench_advisor(c: &mut Criterion) {
    use gpuflow_advisor::{Advisor, SearchSpace, Workload};
    let mut g = c.benchmark_group("advisor");
    g.sample_size(10);
    let workload = Workload::Kmeans {
        dataset: DatasetSpec::uniform("bench-adv", 2_000_000, 100, 3),
        clusters: 100,
        iterations: 2,
    };
    let space = SearchSpace {
        grids: vec![64, 16, 4],
        processors: ProcessorKind::ALL.to_vec(),
        storages: vec![StorageArchitecture::SharedDisk],
        policies: vec![SchedulingPolicy::GenerationOrder],
    };
    let advisor = Advisor::new(ClusterSpec::minotauro());
    g.bench_function("kmeans_6_candidates", |b| {
        b.iter(|| black_box(advisor.advise(&workload, &space).expect("feasible")))
    });
    g.finish();
}

criterion_group!(
    runtime,
    bench_task_scaling,
    bench_scheduler_ablation,
    bench_cache_ablation,
    bench_gpu_vs_cpu_run,
    bench_advisor
);
criterion_main!(runtime);
