// D4 fixture: order-sensitive float accumulation over hash iteration.
use std::collections::HashMap;

fn mean_cost(m: &HashMap<u32, f64>) -> f64 {
    m.values().sum::<f64>() / m.len() as f64
}

fn fold_in_place(m: &HashMap<u32, f64>) -> f64 {
    let mut acc = 0.0;
    for v in m.values() {
        acc += v;
    }
    acc
}

// Integer sums commute, so this is neutral.
fn total(m: &HashMap<u32, u64>) -> u64 {
    m.values().sum()
}
