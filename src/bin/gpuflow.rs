//! `gpuflow` — command-line front end for the simulator, the advisor,
//! and the trace tooling.
//!
//! ```text
//! gpuflow run    --workload kmeans --rows 12500000 --cols 100 --grid 256 \
//!                [--clusters 10] [--iterations 3] [--processor gpu]
//!                [--storage shared|local] [--policy fifo|locality]
//!                [--threads N] [--prv out.prv] [--csv out.csv]
//! gpuflow obs    <export-chrome|decisions|overhead|profile|summary|metrics|jsonl|spans|flame>
//!                --workload matmul --rows 16384 --cols 16384 --grid 16
//!                [run options] [--out FILE] [--json] [--series]
//! gpuflow serve  --workload matmul --rows 16384 --cols 16384 --grid 16
//!                [run options] [--metrics-port P] [--metrics-interval SECS] [--requests N]
//! gpuflow submit --port P --tenant NAME --tasks N [--shape S] [--prio N]
//! gpuflow queue  --port P [--json]
//! gpuflow cancel --port P --job N
//! gpuflow ctl    <drain|health|report|metrics|alerts|log|shutdown> --port P
//! gpuflow diff   A.profile B.profile [--json] [--out FILE]
//! gpuflow doctor --workload matmul --rows 16384 --cols 16384 --grid 16
//!                [run options] [--json]   (or: --profile FILE)
//! gpuflow advise --workload matmul --rows 32768 --cols 32768
//! gpuflow dag    --workload kmeans --rows 4096 --cols 16 --grid 4 [--iterations 3]
//! gpuflow chaos  [--threads N]
//! gpuflow help
//! ```
//!
//! `run` additionally accepts a deterministic fault-injection plan
//! (`--faults SPEC`, grammar in `docs/fault_tolerance.md`) and recovery
//! tuning (`--max-retries`, `--backoff`, `--resubmit`, `--fallback`);
//! `chaos` sweeps failure rate x recovery policy for both paper
//! workloads and reports makespan and output convergence.
//!
//! Workloads: `matmul`, `fma`, `kmeans`, `knn`, `cholesky`.

use std::process::ExitCode;

use gpuflow::advisor::{Advisor, SearchSpace, Workload};
use gpuflow::analysis::{DoctorReport, WhatIf};
use gpuflow::cli::{
    daemon_request_from, faults_from, policy_from, processor_from, recovery_from, storage_from,
    workload_from, Args, CTL_ACTIONS,
};
use gpuflow::cluster::{ClusterSpec, ProcessorKind, StorageArchitecture};
use gpuflow::runtime::{
    run, to_chrome_trace, to_collapsed, to_paraver_prv, trace_analysis, MetricsHub,
    MetricsRegistry, OverheadReport, RunConfig, RunDiff, RunProfile, SchedulingPolicy, SpanForest,
    SpanSampler, Workflow,
};
use gpuflow::sim::SimDuration;

fn build_workflow(args: &Args) -> Result<(Workload, Workflow), String> {
    let workload = workload_from(args)?;
    let grid: u64 = args.required_num("grid")?;
    let workflow = workload
        .build(grid)
        .map_err(|e| format!("cannot partition: {e}"))?;
    Ok((workload, workflow))
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let (workload, workflow) = build_workflow(args)?;
    let processor = processor_from(args)?;
    let threads: usize = args.num("threads", 1)?;
    let cluster = ClusterSpec::minotauro();
    let want_trace = args.get("prv").is_some() || args.get("csv").is_some();
    let faults = faults_from(args)?;
    let mut config = RunConfig::new(cluster.clone(), processor)
        .with_storage(storage_from(args)?)
        .with_policy(policy_from(args)?)
        .with_cpu_threads(threads)
        .with_recovery(recovery_from(args)?);
    if let Some(plan) = faults.clone() {
        config = config.with_faults(plan);
    }
    if want_trace {
        config = config.with_trace();
    }

    let shape = workflow.shape();
    println!("workload:  {}", workload.label());
    println!(
        "workflow:  {} tasks, DAG width {}, height {}",
        shape.tasks, shape.max_width, shape.height
    );
    println!(
        "cluster:   {} nodes x ({} cores + {} GPUs)",
        cluster.nodes, cluster.node.cpu_cores, cluster.node.gpus
    );
    let report = run(&workflow, &config).map_err(|e| e.to_string())?;
    println!("makespan:  {:.3} s", report.makespan());
    println!(
        "cpu util:  {:.1} %   gpu kernel util: {:.1} %",
        report.metrics.cpu_utilization * 100.0,
        report.metrics.gpu_utilization * 100.0
    );
    println!(
        "cache:     {} hits / {} misses   sched overhead: {:.3} s",
        report.metrics.cache_hits, report.metrics.cache_misses, report.metrics.sched_overhead
    );
    for (name, stats) in &report.metrics.per_type {
        println!(
            "task {name:>14}: n={:<5} user {:.4}s (serial {:.4} | parallel {:.4} | comm {:.4})",
            stats.count, stats.user_code, stats.serial, stats.parallel, stats.comm
        );
    }
    if processor == ProcessorKind::Gpu {
        let wasted = trace_analysis::cpu_busy_gpu_idle_seconds(&report.records, 1);
        println!("resource wastage (CPU busy, GPUs idle): {wasted:.3} s");
    }
    if faults.is_some() {
        let r = &report.recovery;
        println!(
            "faults:    {} injected | {} transient, {} crash-induced failures",
            r.faults_injected, r.transient_failures, r.crash_failures
        );
        println!(
            "recovery:  {} retries, {} resubmissions, {} regenerated tasks, {} GPU->CPU fallbacks, {} blocks invalidated",
            r.retries, r.resubmissions, r.regenerated_tasks, r.gpu_fallbacks, r.blocks_invalidated
        );
        println!("output fingerprint: {:#018x}", report.output_fingerprint);
    }
    if let Some(path) = args.get("prv") {
        let prv = to_paraver_prv(&report.trace, cluster.nodes);
        std::fs::write(path, prv).map_err(|e| format!("writing {path}: {e}"))?;
        println!("paraver trace written to {path}");
    }
    if let Some(path) = args.get("csv") {
        std::fs::write(path, report.trace.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("csv trace written to {path}");
    }
    Ok(())
}

/// Runs a workload with full telemetry and distills the stream into a
/// [`RunProfile`] carrying the configuration factors, so `obs profile`,
/// `doctor`, and `diff` inputs all describe runs the same way.
fn profile_from_args(args: &Args) -> Result<(Workload, RunProfile), String> {
    let (workload, workflow) = build_workflow(args)?;
    let grid: u64 = args.required_num("grid")?;
    let processor = processor_from(args)?;
    let storage = storage_from(args)?;
    let policy = policy_from(args)?;
    let threads: usize = args.num("threads", 1)?;
    let mut config = RunConfig::new(ClusterSpec::minotauro(), processor)
        .with_storage(storage)
        .with_policy(policy)
        .with_cpu_threads(threads)
        .with_recovery(recovery_from(args)?)
        .with_telemetry();
    if let Some(plan) = faults_from(args)? {
        config = config.with_faults(plan);
    }
    let report = run(&workflow, &config).map_err(|e| e.to_string())?;
    let label = format!(
        "{} grid {grid} {} {} {}",
        workload.label(),
        processor.label(),
        storage.label(),
        policy.label()
    );
    let profile =
        RunProfile::from_telemetry(&label, &workflow, &report.telemetry, report.makespan())?
            .with_factor("workload", &workload.label())
            .with_factor("grid", &grid.to_string())
            .with_factor("processor", processor.label())
            .with_factor("storage", storage.label())
            .with_factor("policy", policy.label());
    Ok((workload, profile))
}

/// Prints `output`, or writes it to `--out FILE` when given.
fn emit(args: &Args, what: &str, output: &str) -> Result<(), String> {
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, output).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("{what} written to {path}");
        }
        None => print!("{output}"),
    }
    Ok(())
}

/// `gpuflow obs <view>`: run a workload with full telemetry and render
/// one view of the event stream.
fn cmd_obs(sub: &str, args: &Args) -> Result<(), String> {
    if sub == "profile" {
        let (_, profile) = profile_from_args(args)?;
        return emit(args, sub, &profile.render());
    }
    let (workload, workflow) = build_workflow(args)?;
    let processor = processor_from(args)?;
    let threads: usize = args.num("threads", 1)?;
    let cluster = ClusterSpec::minotauro();
    let mut config = RunConfig::new(cluster, processor)
        .with_storage(storage_from(args)?)
        .with_policy(policy_from(args)?)
        .with_cpu_threads(threads)
        .with_recovery(recovery_from(args)?)
        .with_telemetry();
    if let Some(plan) = faults_from(args)? {
        config = config.with_faults(plan);
    }
    let report = run(&workflow, &config).map_err(|e| e.to_string())?;
    let log = &report.telemetry;
    let output = match sub {
        "export-chrome" => to_chrome_trace(log),
        "decisions" => log.render_decisions(),
        "overhead" => OverheadReport::from_log(log, report.makespan()).render(),
        "jsonl" => log.to_jsonl(),
        "spans" => {
            let forest = SpanForest::from_telemetry(&workflow, log);
            match span_sampler_from(args)? {
                Some(sampler) => sampler.sample(&forest).0.to_otlp_json(),
                None => forest.to_otlp_json(),
            }
        }
        "flame" => {
            let forest = SpanForest::from_telemetry(&workflow, log);
            match span_sampler_from(args)? {
                Some(sampler) => to_collapsed(&sampler.sample(&forest).0),
                None => to_collapsed(&forest),
            }
        }
        "metrics" => {
            let registry = MetricsRegistry::from_log(log, metrics_interval(args)?);
            if args.flag("series") {
                registry.render_series()
            } else {
                registry.expose()
            }
        }
        "summary" if args.flag("json") => {
            // Schema documented in docs/observability.md.
            let registry = MetricsRegistry::from_log(log, metrics_interval(args)?);
            let forest = SpanForest::from_telemetry(&workflow, log);
            format!(
                "{{\"workload\":\"{}\",\"makespan_ns\":{},\"telemetry\":{},\"metrics\":{},\"spans\":{}}}\n",
                workload.label().replace('"', "\\\""),
                SimDuration::from_secs_f64(report.makespan()).as_nanos(),
                log.summary_json(),
                registry.summary_json(),
                forest.summary_json()
            )
        }
        "summary" => {
            let mut s = String::new();
            s.push_str(&format!("workload:  {}\n", workload.label()));
            s.push_str(&format!("makespan:  {:.6} s\n", report.makespan()));
            s.push_str(&log.summary());
            s
        }
        other => {
            return Err(format!(
                "unknown obs view '{other}' (export-chrome, decisions, overhead, profile, summary, metrics, jsonl, spans, flame)"
            ))
        }
    };
    emit(args, sub, &output)
}

/// The optional span sampler from `--sample-rate PPM` (parts per
/// million of tasks head-sampled; critical-path and per-type tail
/// spans are always kept) and `--span-seed N`.
fn span_sampler_from(args: &Args) -> Result<Option<SpanSampler>, String> {
    let rate: i64 = args.num("sample-rate", -1)?;
    if rate < 0 {
        return Ok(None);
    }
    let seed: u64 = args.num("span-seed", 0x5EED_u64)?;
    Ok(Some(SpanSampler::new(seed, rate as u64)))
}

/// The metrics sampling interval from `--metrics-interval SECS`
/// (default 10 ms of virtual time).
fn metrics_interval(args: &Args) -> Result<SimDuration, String> {
    let secs: f64 = args.num("metrics-interval", 0.01)?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!(
            "--metrics-interval must be finite and non-negative, got {secs}"
        ));
    }
    Ok(SimDuration::from_secs_f64(secs))
}

/// `gpuflow serve`: run a workload on a worker thread while a zero-dep
/// HTTP endpoint serves live Prometheus snapshots of its metrics.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let (workload, workflow) = build_workflow(args)?;
    let processor = processor_from(args)?;
    let threads: usize = args.num("threads", 1)?;
    let port: u16 = args.num("metrics-port", 0)?;
    let max_requests: u64 = args.num("requests", 0)?;
    let hub = MetricsHub::new(metrics_interval(args)?);
    let mut config = RunConfig::new(ClusterSpec::minotauro(), processor)
        .with_storage(storage_from(args)?)
        .with_policy(policy_from(args)?)
        .with_cpu_threads(threads)
        .with_recovery(recovery_from(args)?)
        .with_live_metrics(hub.clone());
    if let Some(plan) = faults_from(args)? {
        config = config.with_faults(plan);
    }
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("binding 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!("serving metrics on http://{addr}/metrics");
    // The run is the payload; the listener is a read-only shell over its
    // live metrics hub. The simulation stays virtual-time and
    // deterministic — this thread only changes when its results become
    // observable, never what they are.
    // lint: allow(D3, serve is a real-time shell outside the simulation; the run itself is unaffected by scrape timing)
    let worker = std::thread::spawn(move || run(&workflow, &config).map_err(|e| e.to_string()));
    let max = if max_requests == 0 {
        None
    } else {
        Some(max_requests)
    };
    gpuflow::serve::serve_until(&listener, &hub, max);
    if max.is_none() {
        return Ok(()); // unreachable in practice: serve_until loops forever
    }
    let report = worker
        .join()
        .map_err(|_| String::from("simulation thread panicked"))??;
    eprintln!("workload {} done", workload.label());
    println!("makespan:  {:.6} s", report.makespan());
    Ok(())
}

/// `gpuflow submit|queue|cancel|ctl` — client verbs for a running
/// `gpuflowd`. Builds the protocol line, sends it over one TCP
/// request, prints the reply; an `err ...` reply becomes a nonzero
/// exit so scripts can branch on rejects.
fn cmd_daemon(verb: &str, args: &Args) -> Result<(), String> {
    let port: u16 = args.required_num("port")?;
    let line = daemon_request_from(verb, args)?;
    let reply = gpuflow::daemon::client::request(port, &line)
        .map_err(|e| format!("gpuflowd on 127.0.0.1:{port}: {e}"))?;
    print!("{reply}");
    if reply.starts_with("err") {
        Err(String::from("daemon refused the request"))
    } else {
        Ok(())
    }
}

/// Reads and parses a profile file written by `gpuflow obs profile` or
/// `repro gate`.
fn read_profile(path: &str) -> Result<RunProfile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    RunProfile::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// `gpuflow diff <runA> <runB>`: compare two profile files.
fn cmd_diff(a_path: &str, b_path: &str, args: &Args) -> Result<(), String> {
    let a = read_profile(a_path)?;
    let b = read_profile(b_path)?;
    let diff = RunDiff::compare(&a, &b);
    let output = if args.flag("json") {
        let mut s = diff.to_json();
        s.push('\n');
        s
    } else {
        diff.render()
    };
    emit(args, "diff", &output)
}

/// `gpuflow lint`: the workspace determinism & integer-time static
/// analysis pass (rule catalog in docs/static_analysis.md). Exits
/// nonzero when unsuppressed findings remain.
fn cmd_lint(args: &Args) -> Result<(), String> {
    let root = match args.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            gpuflow_lint::workspace::find_root(&cwd)
                .ok_or_else(|| String::from("no enclosing cargo workspace; pass --root DIR"))?
        }
    };
    let report =
        gpuflow_lint::run(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let output = if args.flag("sarif") {
        report.to_sarif()
    } else if args.flag("json") {
        report.to_json()
    } else {
        report.render()
    };
    emit(args, "lint", &output)?;
    if report.clean() {
        Ok(())
    } else {
        Err(format!(
            "{} unsuppressed lint finding(s); see docs/static_analysis.md for the rule catalog",
            report.findings.len()
        ))
    }
}

/// Simulation-backed counterfactuals for the doctor: rerun the workload
/// under one factor change at a time (the advisor's evaluation idea,
/// specialized to the observed configuration's neighborhood).
fn doctor_whatifs(args: &Args, baseline: f64) -> Result<Vec<WhatIf>, String> {
    let workload = workload_from(args)?;
    let grid: u64 = args.required_num("grid")?;
    let processor = processor_from(args)?;
    let storage = storage_from(args)?;
    let policy = policy_from(args)?;
    let threads: usize = args.num("threads", 1)?;
    let recovery = recovery_from(args)?;
    let faults = faults_from(args)?;
    let cluster = ClusterSpec::minotauro();
    let mut out = Vec::new();
    let mut try_change = |change: String,
                          grid2: u64,
                          proc2: ProcessorKind,
                          stor2: StorageArchitecture,
                          pol2: SchedulingPolicy| {
        let Ok(wf) = workload.build(grid2) else {
            return;
        };
        let mut config = RunConfig::new(cluster.clone(), proc2)
            .with_storage(stor2)
            .with_policy(pol2)
            .with_cpu_threads(threads)
            .with_recovery(recovery);
        if let Some(plan) = faults.clone() {
            config = config.with_faults(plan);
        }
        if let Ok(report) = run(&wf, &config) {
            out.push(WhatIf {
                change,
                baseline_makespan: baseline,
                predicted_makespan: report.makespan(),
            });
        }
    };
    if grid >= 2 {
        let g = grid / 2;
        try_change(format!("grid {grid} -> {g}"), g, processor, storage, policy);
    }
    let g = grid * 2;
    try_change(format!("grid {grid} -> {g}"), g, processor, storage, policy);
    let flip_proc = match processor {
        ProcessorKind::Cpu => ProcessorKind::Gpu,
        ProcessorKind::Gpu => ProcessorKind::Cpu,
    };
    try_change(
        format!("processor {} -> {}", processor.label(), flip_proc.label()),
        grid,
        flip_proc,
        storage,
        policy,
    );
    let flip_stor = match storage {
        StorageArchitecture::SharedDisk => StorageArchitecture::LocalDisk,
        StorageArchitecture::LocalDisk => StorageArchitecture::SharedDisk,
    };
    try_change(
        format!("storage {} -> {}", storage.label(), flip_stor.label()),
        grid,
        processor,
        flip_stor,
        policy,
    );
    let flip_pol = match policy {
        SchedulingPolicy::DataLocality => SchedulingPolicy::GenerationOrder,
        _ => SchedulingPolicy::DataLocality,
    };
    try_change(
        format!("policy {} -> {}", policy.label(), flip_pol.label()),
        grid,
        processor,
        storage,
        flip_pol,
    );
    Ok(out)
}

/// `gpuflow doctor`: Jain-style bottleneck findings for one run, either
/// re-simulated from run flags (with what-if predictions) or read from
/// a profile file (`--profile FILE`, findings only).
fn cmd_doctor(args: &Args) -> Result<(), String> {
    let report = match args.get("profile") {
        Some(path) => DoctorReport::diagnose(&read_profile(path)?),
        None => {
            let (_, profile) = profile_from_args(args)?;
            let whatifs = doctor_whatifs(args, profile.makespan_ns as f64 / 1e9)?;
            DoctorReport::diagnose(&profile).with_whatifs(whatifs)
        }
    };
    let output = if args.flag("json") {
        let mut s = report.to_json();
        s.push('\n');
        s
    } else {
        report.render()
    };
    emit(args, "doctor report", &output)
}

fn cmd_advise(args: &Args) -> Result<(), String> {
    let workload = workload_from(args)?;
    let advisor = Advisor::new(ClusterSpec::minotauro());
    let space = SearchSpace::paper_defaults(&workload);
    let rec = advisor
        .advise(&workload, &space)
        .map_err(|e| e.to_string())?;
    for line in &rec.rationale {
        println!("{line}");
    }
    println!("predicted makespan: {:.3} s", rec.makespan);
    println!("ranking (top 5 of {} candidates):", space.size());
    for (candidate, makespan) in rec.ranking().into_iter().take(5) {
        println!("  {makespan:>9.3} s  {}", candidate.label());
    }
    Ok(())
}

fn cmd_dag(args: &Args) -> Result<(), String> {
    let (workload, workflow) = build_workflow(args)?;
    let shape = workflow.shape();
    eprintln!(
        "{}: {} tasks, width {}, height {}",
        workload.label(),
        shape.tasks,
        shape.max_width,
        shape.height
    );
    println!("{}", workflow.to_dot(&workload.label()));
    Ok(())
}

/// `gpuflow chaos`: the fault-injection sensitivity sweep (also the
/// `chaos` target of the `repro` binary).
fn cmd_chaos(args: &Args) -> Result<(), String> {
    let threads: usize = args.num("threads", 0)?;
    let ctx = gpuflow::experiments::Context::default().with_threads(threads);
    let study = gpuflow::experiments::fault_sensitivity::run(&ctx);
    print!("{}", study.render());
    println!(
        "{} of {} completed scenarios converged to the fault-free output",
        study.converged(),
        study.points.len()
    );
    Ok(())
}

fn help() {
    println!(
        "gpuflow — distributed GPU-accelerated task-based workflows, simulated\n\
         \n\
         USAGE:\n\
         \u{20} gpuflow run    --workload <w> --rows N --cols N --grid G [options]\n\
         \u{20} gpuflow obs    <view> --workload <w> --rows N --cols N --grid G [options] [--out FILE]\n\
         \u{20} gpuflow serve  --workload <w> --rows N --cols N --grid G [options]\n\
         \u{20}                [--metrics-port P] [--metrics-interval SECS] [--requests N]\n\
         \u{20}                live Prometheus /metrics endpoint while the run executes\n\
         \u{20} gpuflow submit --port P --tenant NAME --tasks N [--shape wide|stencil|tree] [--prio N]\n\
         \u{20} gpuflow queue  --port P [--json]        queue state of a running gpuflowd\n\
         \u{20} gpuflow cancel --port P --job N\n\
         \u{20} gpuflow ctl    <drain|health|report|metrics|alerts|log|shutdown> --port P\n\
         \u{20}                client verbs for the gpuflowd scheduler daemon (see docs/daemon.md)\n\
         \u{20} gpuflow diff   A.profile B.profile [--json] [--out FILE]\n\
         \u{20} gpuflow lint   [--root DIR] [--json | --sarif] [--out FILE]  determinism & time lints\n\
         \u{20} gpuflow doctor --workload <w> --rows N --cols N --grid G [options] [--json]\n\
         \u{20} gpuflow doctor --profile FILE [--json]   (findings only, no what-ifs)\n\
         \u{20} gpuflow advise --workload <w> --rows N --cols N\n\
         \u{20} gpuflow dag    --workload <w> --rows N --cols N --grid G\n\
         \u{20} gpuflow chaos  [--threads N]   fault-injection sensitivity sweep\n\
         \n\
         OBS VIEWS: export-chrome (Perfetto/chrome://tracing JSON) | decisions\n\
         \u{20}           (scheduler decision log) | overhead (makespan decomposition) |\n\
         \u{20}           profile (parseable run digest for diff/doctor) |\n\
         \u{20}           summary (event counts; --json for machine-readable) |\n\
         \u{20}           metrics (Prometheus text exposition; --series for the\n\
         \u{20}           virtual-time table, --metrics-interval SECS to sample) |\n\
         \u{20}           jsonl (raw event stream) |\n\
         \u{20}           spans (OTLP-shaped causal span JSON) |\n\
         \u{20}           flame (collapsed stacks, flamegraph.pl-compatible;\n\
         \u{20}           both take --sample-rate PPM and --span-seed N)\n\
         \n\
         WORKLOADS: matmul | fma | kmeans | knn | cholesky\n\
         \n\
         RUN OPTIONS:\n\
         \u{20} --processor cpu|gpu      (default cpu)\n\
         \u{20} --storage shared|local   (default shared)\n\
         \u{20} --policy fifo|locality   (default fifo)\n\
         \u{20} --threads N              CPU threads per task (default 1)\n\
         \u{20} --clusters K --iterations I   (kmeans)\n\
         \u{20} --queries Q --k K        (knn)\n\
         \u{20} --seed S                 jitter/dataset seed\n\
         \u{20} --prv FILE --csv FILE    trace exports\n\
         \u{20} --faults SPEC            deterministic fault plan, e.g.\n\
         \u{20}                          'seed:42;crash:node=1,at=0.2,rejoin=0.1;taskfail:p=0.05'\n\
         \u{20} --max-retries N --backoff SECS --resubmit alt|same --fallback on|off\n\
         \n\
         Regenerate the paper's figures with the `repro` binary:\n\
         \u{20} cargo run --release -p gpuflow-experiments --bin repro -- all"
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        help();
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "run" => Args::parse(rest).and_then(|a| cmd_run(&a)),
        "obs" => match rest.split_first() {
            Some((sub, rest)) if !sub.starts_with("--") => {
                Args::parse_with(rest, &["json", "series"]).and_then(|a| cmd_obs(sub, &a))
            }
            _ => Err(String::from(
                "obs needs a view: export-chrome, decisions, overhead, profile, summary, metrics, jsonl, spans, flame",
            )),
        },
        "serve" => Args::parse(rest).and_then(|a| cmd_serve(&a)),
        "submit" | "cancel" => Args::parse(rest).and_then(|a| cmd_daemon(cmd, &a)),
        "queue" => Args::parse_with(rest, &["json"]).and_then(|a| cmd_daemon(cmd, &a)),
        "ctl" => match rest.split_first() {
            Some((action, rest)) if CTL_ACTIONS.contains(&action.as_str()) => {
                Args::parse(rest).and_then(|a| cmd_daemon(action, &a))
            }
            _ => Err(format!(
                "ctl needs an action: gpuflow ctl <{}> --port P",
                CTL_ACTIONS.join("|")
            )),
        },
        "diff" => match rest {
            [a, b, flags @ ..] if !a.starts_with("--") && !b.starts_with("--") => {
                Args::parse_with(flags, &["json"]).and_then(|ar| cmd_diff(a, b, &ar))
            }
            _ => Err(String::from(
                "diff needs two profile files: gpuflow diff A.profile B.profile [--json] [--out FILE]",
            )),
        },
        "lint" => Args::parse_with(rest, &["json", "sarif"]).and_then(|a| cmd_lint(&a)),
        "doctor" => Args::parse_with(rest, &["json"]).and_then(|a| cmd_doctor(&a)),
        "advise" => Args::parse(rest).and_then(|a| cmd_advise(&a)),
        "dag" => Args::parse(rest).and_then(|a| cmd_dag(&a)),
        "chaos" => Args::parse(rest).and_then(|a| cmd_chaos(&a)),
        "help" | "--help" | "-h" => {
            help();
            Ok(())
        }
        other => Err(format!(
            "unknown command '{other}' (run, obs, serve, submit, queue, cancel, ctl, diff, lint, \
             doctor, advise, dag, chaos, help)"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
