//! Golden-diagnostic tests: every fixture under `tests/fixtures/` is
//! scanned and its findings (rule, line, col) are compared against the
//! checked-in `.expected` file next to it. Regenerate expectations
//! with `UPDATE_GOLDEN=1 cargo test -p gpuflow-lint --test golden`,
//! then review the diff — the expectations are the spec.

use std::path::{Path, PathBuf};

use gpuflow_lint::scan::analyze;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Each fixture is analyzed as a one-file workspace, so both the
/// per-function rules and the interprocedural passes (D5/T2/L1/A2)
/// apply — self-contained fixtures carry their own source and sink.
fn render_findings(name: &str, src: &str) -> String {
    analyze(&[(name.to_string(), src.to_string())])
        .iter()
        .map(|f| format!("{} {}:{}\n", f.rule, f.line, f.col))
        .collect()
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("read fixtures dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 11,
        "expected one fixture per rule family, found {}",
        fixtures.len()
    );
    for path in fixtures {
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        let src = std::fs::read_to_string(&path).expect("read fixture");
        let got = render_findings(&name, &src);
        let expected_path = path.with_extension("expected");
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&expected_path, &got).expect("write expected file");
            continue;
        }
        let expected = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", expected_path.display()));
        assert_eq!(
            got, expected,
            "fixture {name} diverged from its .expected file \
             (UPDATE_GOLDEN=1 regenerates after a deliberate rule change)"
        );
    }
}

/// Each fixture is named for the rule family it exercises; its
/// expectations must actually mention that code, so a rule silently
/// going blind fails here rather than shipping an empty golden file.
#[test]
fn every_rule_code_has_a_firing_fixture() {
    for (fixture, code) in [
        ("d1.expected", "D1"),
        ("d2.expected", "D2"),
        ("d3.expected", "D3"),
        ("d4.expected", "D4"),
        ("t1.expected", "T1"),
        ("r1_fault.expected", "R1"),
        ("a0.expected", "A0"),
        ("a1.expected", "A1"),
        ("d5.expected", "D5"),
        ("t2.expected", "T2"),
        ("l1.expected", "L1"),
        ("a2.expected", "A2"),
    ] {
        let path = fixtures_dir().join(fixture);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
        assert!(
            text.lines().any(|l| l.starts_with(code)),
            "{fixture} does not record a {code} finding:\n{text}"
        );
    }
}

/// The acceptance scenario from the issue: a deliberate D2 and T1
/// violation in a scratch file must be reported with the right code
/// and span.
#[test]
fn deliberate_violations_are_caught_with_spans() {
    let src = "fn probe() -> u64 {\n    let t = std::time::Instant::now();\n    \
               let span_ns: u128 = 1;\n    span_ns as u64\n}\n";
    let findings = analyze(&[("scratch.rs".to_string(), src.to_string())]);
    let d2 = findings
        .iter()
        .find(|f| f.rule.as_str() == "D2")
        .expect("D2 reported");
    assert_eq!((d2.line, d2.col), (2, 24));
    let t1 = findings
        .iter()
        .find(|f| f.rule.as_str() == "T1")
        .expect("T1 reported");
    assert_eq!(t1.line, 4);
}
