//! Workflow construction and DAG analysis (§3.1 of the paper).
//!
//! The builder mirrors how PyCOMPSs turns an application into a DAG: the
//! application submits tasks with directional parameters, and edges are
//! derived automatically from data versions — read-after-write,
//! write-after-write, and write-after-read. The resulting DAG's *width*
//! is the degree of task parallelism and its *height* the degree of task
//! dependency (Fig. 6).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::data::{DataId, DataRegistry, Direction};
use crate::task::{CostProfile, Param, TaskId, TaskSpec, TaskType};

/// A fully built workflow: tasks, dependencies, registry, and DAG shape.
#[derive(Debug, Clone)]
pub struct Workflow {
    tasks: Vec<TaskSpec>,
    registry: DataRegistry,
    /// Successor lists, indexed by task.
    succs: Vec<Vec<TaskId>>,
    /// Predecessor lists, indexed by task.
    preds: Vec<Vec<TaskId>>,
    /// Longest-path level of each task (0-based).
    levels: Vec<u32>,
}

/// Shape statistics of a DAG (Table 1 parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagShape {
    /// Number of tasks.
    pub tasks: usize,
    /// Maximum number of tasks on one level — the degree of task
    /// parallelism.
    pub max_width: usize,
    /// Number of levels — the degree of task dependency.
    pub height: usize,
}

impl Workflow {
    /// All tasks in generation order.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// One task.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn task(&self, id: TaskId) -> &TaskSpec {
        &self.tasks[id.0 as usize]
    }

    /// The data registry (sizes, names).
    pub fn registry(&self) -> &DataRegistry {
        &self.registry
    }

    /// Direct successors of `id`.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id.0 as usize]
    }

    /// Direct predecessors of `id`.
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.preds[id.0 as usize]
    }

    /// Longest-path level of `id` (0 for source tasks).
    pub fn level(&self, id: TaskId) -> u32 {
        self.levels[id.0 as usize]
    }

    /// DAG shape statistics.
    pub fn shape(&self) -> DagShape {
        let height = self
            .levels
            .iter()
            .map(|&l| l as usize + 1)
            .max()
            .unwrap_or(0);
        let mut per_level = vec![0usize; height];
        for &l in &self.levels {
            per_level[l as usize] += 1;
        }
        DagShape {
            tasks: self.tasks.len(),
            max_width: per_level.iter().copied().max().unwrap_or(0),
            height,
        }
    }

    /// Renders the DAG in Graphviz DOT, with `dNvM` edge labels like the
    /// PyCOMPSs dumps in Fig. 6.
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=TB;");
        for t in &self.tasks {
            let _ = writeln!(
                out,
                "  t{} [label=\"{} #{}\" shape=ellipse];",
                t.id.0, t.task_type, t.id.0
            );
        }
        for (from_idx, succs) in self.succs.iter().enumerate() {
            for to in succs {
                let _ = writeln!(out, "  t{from_idx} -> t{};", to.0);
            }
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Lower bound on any schedule's makespan: the longest chain of
    /// estimated task costs (user code on `cpu`), ignoring all resource
    /// limits and data movement. The advisor reports it beside simulated
    /// makespans.
    pub fn critical_path_seconds(&self, cpu: &gpuflow_cluster::CpuModel) -> f64 {
        let mut longest = vec![0.0f64; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let est =
                cpu.time(&t.cost.serial).as_secs_f64() + cpu.time(&t.cost.parallel).as_secs_f64();
            let pred_max = self.preds[i]
                .iter()
                .map(|p| longest[p.0 as usize])
                .fold(0.0, f64::max);
            longest[i] = pred_max + est;
        }
        longest.into_iter().fold(0.0, f64::max)
    }

    /// Verifies structural invariants (used by tests): edges point
    /// forward in generation order (acyclicity by construction), levels
    /// are consistent with predecessors.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, succs) in self.succs.iter().enumerate() {
            for s in succs {
                if s.0 as usize <= i {
                    return Err(format!("edge t{} -> t{} is not forward", i, s.0));
                }
            }
        }
        for (i, preds) in self.preds.iter().enumerate() {
            let expected = preds
                .iter()
                .map(|p| self.levels[p.0 as usize] + 1)
                .max()
                .unwrap_or(0);
            if self.levels[i] != expected {
                return Err(format!(
                    "task t{i} has level {} but predecessors imply {expected}",
                    self.levels[i]
                ));
            }
        }
        Ok(())
    }
}

/// Builds a [`Workflow`] by registering data and submitting tasks.
///
/// ```
/// use gpuflow_cluster::KernelWork;
/// use gpuflow_runtime::{CostProfile, Direction, WorkflowBuilder};
///
/// let mut b = WorkflowBuilder::new();
/// let x = b.input("x", 1 << 20);
/// let y = b.intermediate("y", 1 << 20);
/// let cost = CostProfile::fully_parallel(KernelWork::data_parallel(1e9, 1e6));
/// let producer = b
///     .submit("produce", cost, &[(x, Direction::In), (y, Direction::Out)], false)
///     .unwrap();
/// let consumer = b.submit("consume", cost, &[(y, Direction::In)], false).unwrap();
/// let wf = b.build();
/// // The read-after-write dependency was derived automatically.
/// assert_eq!(wf.predecessors(consumer), &[producer]);
/// ```
#[derive(Debug, Default)]
pub struct WorkflowBuilder {
    registry: DataRegistry,
    tasks: Vec<TaskSpec>,
    succs: Vec<Vec<TaskId>>,
    preds: Vec<Vec<TaskId>>,
    /// Interned task types; workflows have a handful, so a linear scan
    /// beats a hash map.
    type_pool: Vec<TaskType>,
}

impl WorkflowBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a dataset block (exists on storage before the run).
    pub fn input(&mut self, name: impl Into<String>, bytes: u64) -> DataId {
        self.registry.register_input(name, bytes)
    }

    /// Registers an intermediate object (must be written before read).
    pub fn intermediate(&mut self, name: impl Into<String>, bytes: u64) -> DataId {
        self.registry.register_intermediate(name, bytes)
    }

    /// Submits a task; dependencies are derived from the parameter
    /// directions and the current data versions.
    ///
    /// # Errors
    /// Fails on read-before-write.
    pub fn submit(
        &mut self,
        task_type: impl AsRef<str>,
        cost: CostProfile,
        accesses: &[(DataId, Direction)],
        cpu_only: bool,
    ) -> Result<TaskId, String> {
        let task_type = self.intern_type(task_type.as_ref());
        let id = TaskId(self.tasks.len() as u32);
        let mut deps: BTreeSet<TaskId> = BTreeSet::new();
        let mut params = Vec::with_capacity(accesses.len());
        for &(data, dir) in accesses {
            let mut version = 0;
            if dir.reads() {
                let (v, raw) = self.registry.note_read(data, id)?;
                version = v;
                deps.extend(raw);
            }
            if dir.writes() {
                let (v, waw, war) = self.registry.note_write(data, id);
                version = v;
                deps.extend(waw);
                deps.extend(war.into_iter().filter(|&t| t != id));
            }
            params.push(Param { data, dir, version });
        }
        self.tasks.push(TaskSpec {
            id,
            task_type,
            params,
            cost,
            cpu_only,
        });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        for dep in deps {
            self.succs[dep.0 as usize].push(id);
            self.preds[id.0 as usize].push(dep);
        }
        Ok(id)
    }

    /// Returns the interned [`TaskType`] for `name`, creating it on
    /// first sight.
    fn intern_type(&mut self, name: &str) -> TaskType {
        if let Some(t) = self.type_pool.iter().find(|t| t.as_str() == name) {
            return t.clone();
        }
        let t = TaskType::from(name);
        self.type_pool.push(t.clone());
        t
    }

    /// Inserts an explicit synchronisation barrier, as PyCOMPSs
    /// applications do between algorithm phases (the `barrier` nodes in
    /// the paper's Fig. 6b): a zero-cost bookkeeping task that reads the
    /// current version of every object written so far, so every task
    /// submitted afterwards with a write on any of them orders behind it.
    ///
    /// Returns the barrier task id, or `None` when there is nothing to
    /// wait on.
    pub fn barrier(&mut self) -> Option<TaskId> {
        use gpuflow_cluster::KernelWork;
        let written: Vec<(DataId, Direction)> = self
            .registry
            .iter()
            .filter(|o| o.last_writer.is_some())
            .map(|o| (o.id, Direction::In))
            .collect();
        if written.is_empty() {
            return None;
        }
        Some(
            self.submit(
                "barrier",
                CostProfile::serial_only(KernelWork::NONE),
                &written,
                true,
            )
            .expect("barrier reads only written data"),
        )
    }

    /// Finalises the workflow, computing DAG levels.
    pub fn build(self) -> Workflow {
        let mut levels = vec![0u32; self.tasks.len()];
        // Tasks are in topological order by construction (edges forward).
        for i in 0..self.tasks.len() {
            levels[i] = self.preds[i]
                .iter()
                .map(|p| levels[p.0 as usize] + 1)
                .max()
                .unwrap_or(0);
        }
        Workflow {
            tasks: self.tasks,
            registry: self.registry,
            succs: self.succs,
            preds: self.preds,
            levels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpuflow_cluster::KernelWork;

    fn cost() -> CostProfile {
        CostProfile::fully_parallel(KernelWork::data_parallel(1e6, 1e6))
    }

    /// A diamond: t0 writes x; t1 and t2 read x, write y1/y2; t3 reads both.
    fn diamond() -> Workflow {
        let mut b = WorkflowBuilder::new();
        let x = b.intermediate("x", 8);
        let y1 = b.intermediate("y1", 8);
        let y2 = b.intermediate("y2", 8);
        let t0 = b
            .submit("produce", cost(), &[(x, Direction::Out)], false)
            .unwrap();
        let t1 = b
            .submit(
                "branch",
                cost(),
                &[(x, Direction::In), (y1, Direction::Out)],
                false,
            )
            .unwrap();
        let t2 = b
            .submit(
                "branch",
                cost(),
                &[(x, Direction::In), (y2, Direction::Out)],
                false,
            )
            .unwrap();
        let t3 = b
            .submit(
                "join",
                cost(),
                &[(y1, Direction::In), (y2, Direction::In)],
                false,
            )
            .unwrap();
        assert_eq!((t0.0, t1.0, t2.0, t3.0), (0, 1, 2, 3));
        b.build()
    }

    #[test]
    fn diamond_has_expected_edges_and_levels() {
        let wf = diamond();
        assert_eq!(wf.successors(TaskId(0)), &[TaskId(1), TaskId(2)]);
        assert_eq!(wf.predecessors(TaskId(3)), &[TaskId(1), TaskId(2)]);
        assert_eq!(wf.level(TaskId(0)), 0);
        assert_eq!(wf.level(TaskId(1)), 1);
        assert_eq!(wf.level(TaskId(2)), 1);
        assert_eq!(wf.level(TaskId(3)), 2);
        wf.check_invariants().unwrap();
    }

    #[test]
    fn diamond_shape() {
        let shape = diamond().shape();
        assert_eq!(
            shape,
            DagShape {
                tasks: 4,
                max_width: 2,
                height: 3
            }
        );
    }

    #[test]
    fn war_edge_orders_reader_before_overwriter() {
        let mut b = WorkflowBuilder::new();
        let x = b.input("x", 8);
        let y = b.intermediate("y", 8);
        let reader = b
            .submit(
                "read",
                cost(),
                &[(x, Direction::In), (y, Direction::Out)],
                false,
            )
            .unwrap();
        let writer = b
            .submit("overwrite", cost(), &[(x, Direction::Out)], false)
            .unwrap();
        let wf = b.build();
        assert_eq!(wf.predecessors(writer), &[reader]);
    }

    #[test]
    fn waw_edge_orders_writers() {
        let mut b = WorkflowBuilder::new();
        let x = b.intermediate("x", 8);
        let w1 = b
            .submit("w1", cost(), &[(x, Direction::Out)], false)
            .unwrap();
        let w2 = b
            .submit("w2", cost(), &[(x, Direction::Out)], false)
            .unwrap();
        let wf = b.build();
        assert_eq!(wf.predecessors(w2), &[w1]);
    }

    #[test]
    fn inout_chains_serialise() {
        // The Matmul-FMA accumulation pattern: C += A·B per k, in a chain.
        let mut b = WorkflowBuilder::new();
        let a = b.input("a", 8);
        let c = b.intermediate("c", 8);
        let init = b
            .submit("init", cost(), &[(c, Direction::Out)], false)
            .unwrap();
        let f1 = b
            .submit(
                "fma",
                cost(),
                &[(a, Direction::In), (c, Direction::InOut)],
                false,
            )
            .unwrap();
        let f2 = b
            .submit(
                "fma",
                cost(),
                &[(a, Direction::In), (c, Direction::InOut)],
                false,
            )
            .unwrap();
        let wf = b.build();
        assert_eq!(wf.predecessors(f1), &[init]);
        assert_eq!(wf.predecessors(f2), &[f1]);
        assert_eq!(wf.shape().height, 3);
        wf.check_invariants().unwrap();
    }

    #[test]
    fn independent_tasks_have_no_edges() {
        let mut b = WorkflowBuilder::new();
        let xs: Vec<_> = (0..8).map(|i| b.input(format!("x{i}"), 8)).collect();
        for x in &xs {
            b.submit("map", cost(), &[(*x, Direction::In)], false)
                .unwrap();
        }
        let wf = b.build();
        let shape = wf.shape();
        assert_eq!(
            shape,
            DagShape {
                tasks: 8,
                max_width: 8,
                height: 1
            }
        );
    }

    #[test]
    fn read_before_write_propagates_error() {
        let mut b = WorkflowBuilder::new();
        let x = b.intermediate("x", 8);
        let err = b
            .submit("bad", cost(), &[(x, Direction::In)], false)
            .unwrap_err();
        assert!(err.contains("before any task wrote it"));
    }

    #[test]
    fn dot_export_mentions_tasks_and_edges() {
        let dot = diamond().to_dot("diamond");
        assert!(dot.contains("digraph \"diamond\""));
        assert!(dot.contains("t0 -> t1;"));
        assert!(dot.contains("join #3"));
    }

    #[test]
    fn critical_path_estimate_tracks_chain_length() {
        use gpuflow_cluster::{ClusterSpec, KernelWork};
        let cpu = ClusterSpec::minotauro().node.cpu;
        let chain_cost = CostProfile::fully_parallel(KernelWork {
            flops: 15e9, // exactly one second on the Minotauro core
            bytes: 1.0,
            parallelism: 1.0,
        });
        let mut b = WorkflowBuilder::new();
        let mut prev = b.input("x", 8);
        for i in 0..3 {
            let out = b.intermediate(format!("c{i}"), 8);
            b.submit(
                "step",
                chain_cost,
                &[(prev, Direction::In), (out, Direction::Out)],
                false,
            )
            .unwrap();
            prev = out;
        }
        // A parallel sibling does not extend the path.
        let y = b.input("y", 8);
        b.submit("side", chain_cost, &[(y, Direction::In)], false)
            .unwrap();
        let wf = b.build();
        let cp = wf.critical_path_seconds(&cpu);
        assert!((cp - 3.0).abs() < 1e-6, "three-second chain, got {cp}");
    }

    #[test]
    fn barrier_orders_phases() {
        let mut b = WorkflowBuilder::new();
        let xs: Vec<_> = (0..4).map(|i| b.intermediate(format!("x{i}"), 8)).collect();
        for x in &xs {
            b.submit("phase1", cost(), &[(*x, Direction::Out)], false)
                .unwrap();
        }
        let barrier = b.barrier().expect("four writes to wait on");
        // Phase 2 overwrites one object; it must order behind the barrier
        // (write-after-read), not just behind its own producer.
        let t = b
            .submit("phase2", cost(), &[(xs[0], Direction::Out)], false)
            .unwrap();
        let wf = b.build();
        assert_eq!(wf.predecessors(barrier).len(), 4);
        assert!(wf.predecessors(t).contains(&barrier));
        assert_eq!(wf.task(barrier).task_type, "barrier");
        wf.check_invariants().unwrap();
    }

    #[test]
    fn barrier_on_pristine_workflow_is_none() {
        let mut b = WorkflowBuilder::new();
        b.input("untouched", 8);
        assert!(b.barrier().is_none());
    }

    #[test]
    fn reads_see_version_written_by_dependency() {
        let wf = diamond();
        // t1 reads x at version 1 (written by t0).
        let reads: Vec<_> = wf.task(TaskId(1)).reads().collect();
        assert_eq!(reads[0].1, 1);
    }
}
