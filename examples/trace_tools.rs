//! Trace tooling walkthrough: run a GPU K-means, then slice the trace
//! the way the paper's Paraver analysis does (§4.4.3) — state breakdown,
//! per-node utilization, resource wastage, critical path — and export
//! Paraver `.prv`/`.pcf` files.
//!
//! ```sh
//! cargo run --release --example trace_tools
//! ```

use gpuflow::algorithms::KmeansConfig;
use gpuflow::cluster::{ClusterSpec, ProcessorKind};
use gpuflow::runtime::{paraver_pcf, run, to_paraver_prv, trace_analysis as ta, RunConfig};

fn main() {
    let workflow = KmeansConfig::new(gpuflow::data::paper::kmeans_10gb(), 64, 100, 3)
        .expect("valid partitioning")
        .build_workflow();
    let cluster = ClusterSpec::minotauro();
    let config = RunConfig::new(cluster.clone(), ProcessorKind::Gpu).with_trace();
    let report = run(&workflow, &config).expect("fits the cluster");

    println!("K-means 10 GB, 64 blocks, 100 clusters, 3 iterations, GPU run");
    println!(
        "makespan: {:.2} s, trace records: {}\n",
        report.makespan(),
        report.trace.len()
    );

    // Where did the time go, cluster-wide? (the Fig. 7 stacked story)
    let breakdown = ta::state_breakdown(&report.trace);
    println!(
        "state breakdown ({:.1} core-seconds traced):",
        breakdown.total()
    );
    for (state, share) in breakdown.shares() {
        let bar = "#".repeat((share * 50.0).round() as usize);
        println!("  {:>8}: {:>5.1}% {}", state.label(), share * 100.0, bar);
    }

    // Node utilization profile.
    println!("\nper-node busy fraction:");
    for (node, util) in ta::node_utilization(&report.records, report.makespan()) {
        println!("  node {node}: {:>5.1}%", util * 100.0);
    }

    // The paper's motivating resource-wastage measure (§1).
    let wasted = ta::cpu_busy_gpu_idle_seconds(&report.records, 1);
    println!(
        "\nresource wastage (some CPU busy while all GPUs idle): {:.2} s ({:.0}% of makespan)",
        wasted,
        wasted / report.makespan() * 100.0
    );

    // What chain of tasks bounds the makespan?
    let path = ta::critical_path(&workflow, &report.records);
    println!(
        "\ncritical path: {} tasks, ending at {}",
        path.len(),
        path.last().unwrap().end
    );

    // Paraver export.
    let prv = to_paraver_prv(&report.trace, cluster.nodes);
    let out_dir = std::env::temp_dir();
    let prv_path = out_dir.join("gpuflow_kmeans.prv");
    let pcf_path = out_dir.join("gpuflow_kmeans.pcf");
    std::fs::write(&prv_path, prv).expect("write .prv");
    std::fs::write(&pcf_path, paraver_pcf()).expect("write .pcf");
    println!(
        "\nParaver trace written to {} (+ {})",
        prv_path.display(),
        pcf_path.display()
    );
}
