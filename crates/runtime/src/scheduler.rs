//! Task scheduling policies (§3.2, §4.4.2).
//!
//! PyCOMPSs offers several schedulers; the paper compares two:
//!
//! * **task generation order** — dispatch ready tasks FIFO to whichever
//!   node has the most free slots; cheap decisions;
//! * **data locality** — dispatch ready tasks FIFO, but place each on the
//!   node caching the most input bytes; each decision costs more because
//!   candidate nodes are scored.
//!
//! The decision *cost* (master-side overhead per task) comes from
//! [`ClusterSpec`](gpuflow_cluster::ClusterSpec); the policy here decides
//! placement.

use gpuflow_sim::SimDuration;

use crate::task::TaskId;

/// The scheduling policy factor of Table 1, plus an extension policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulingPolicy {
    /// Dispatch in task generation order; placement ignores data.
    GenerationOrder,
    /// Placement prefers nodes already caching the task's inputs.
    DataLocality,
    /// Extension: HEFT-style dispatch by upward rank (critical-path
    /// length to the sink), with locality-aware placement. Not part of
    /// the paper's comparison; used by the scheduler-ablation study.
    CriticalPath,
}

impl SchedulingPolicy {
    /// The paper's two policies, in its presentation order (the
    /// extension policy is deliberately excluded: Figs. 10-11 compare
    /// exactly these two).
    pub const ALL: [SchedulingPolicy; 2] = [
        SchedulingPolicy::GenerationOrder,
        SchedulingPolicy::DataLocality,
    ];

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            SchedulingPolicy::GenerationOrder => "task gen. order",
            SchedulingPolicy::DataLocality => "data locality",
            SchedulingPolicy::CriticalPath => "critical path",
        }
    }
}

/// A candidate node as seen by the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct NodeAvail {
    /// Node index.
    pub node: usize,
    /// Free execution slots (cores, or GPU+core pairs in a GPU run).
    pub free_slots: usize,
    /// Bytes of the candidate task's inputs cached on this node.
    pub cached_bytes: u64,
}

/// Chooses the node for one task from an availability snapshot, or
/// `None` when no node has a free slot.
///
/// `rotation` is the caller's running decision counter. The
/// generation-order policy is location-oblivious: it hands the task to
/// the next free node in round-robin order, so the block-to-node mapping
/// drifts between algorithm iterations (and cached inputs are *not*
/// deliberately revisited — exactly the behaviour the data-locality
/// policy exists to fix).
pub fn place(policy: SchedulingPolicy, nodes: &[NodeAvail], rotation: usize) -> Option<usize> {
    match policy {
        SchedulingPolicy::GenerationOrder => {
            let n = nodes.len();
            (0..n)
                .map(|i| &nodes[(i + rotation) % n.max(1)])
                .find(|nd| nd.free_slots > 0)
                .map(|nd| nd.node)
        }
        SchedulingPolicy::DataLocality | SchedulingPolicy::CriticalPath => nodes
            .iter()
            .filter(|n| n.free_slots > 0)
            .max_by(|a, b| {
                a.cached_bytes
                    .cmp(&b.cached_bytes)
                    .then(a.free_slots.cmp(&b.free_slots))
                    .then(b.node.cmp(&a.node))
            })
            .map(|n| n.node),
    }
}

/// Picks a `(task, node)` assignment, or `None` when nothing can run.
///
/// `ready` is in generation order — both PyCOMPSs policies honour it for
/// *which* task runs next and differ only in *where* — but a head task
/// with no placeable node does not block later ready tasks whose resource
/// kind is available.
pub fn pick(
    policy: SchedulingPolicy,
    ready: &[TaskId],
    nodes_for: impl Fn(TaskId) -> Vec<NodeAvail>,
) -> Option<(TaskId, usize)> {
    ready
        .iter()
        .find_map(|&task| place(policy, &nodes_for(task), 0).map(|node| (task, node)))
}

/// Master-side cost of one scheduling decision for `policy`.
pub fn decision_overhead(
    policy: SchedulingPolicy,
    fifo: SimDuration,
    locality: SimDuration,
) -> SimDuration {
    match policy {
        SchedulingPolicy::GenerationOrder => fifo,
        // Both informed policies score candidate nodes per decision.
        SchedulingPolicy::DataLocality | SchedulingPolicy::CriticalPath => locality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avail(specs: &[(usize, usize, u64)]) -> Vec<NodeAvail> {
        specs
            .iter()
            .map(|&(node, free_slots, cached_bytes)| NodeAvail {
                node,
                free_slots,
                cached_bytes,
            })
            .collect()
    }

    #[test]
    fn returns_none_when_no_ready_tasks() {
        assert_eq!(
            pick(SchedulingPolicy::GenerationOrder, &[], |_| avail(&[(
                0, 4, 0
            )])),
            None
        );
    }

    #[test]
    fn returns_none_when_no_free_slots() {
        let got = pick(SchedulingPolicy::GenerationOrder, &[TaskId(0)], |_| {
            avail(&[(0, 0, 0), (1, 0, 0)])
        });
        assert_eq!(got, None);
    }

    #[test]
    fn generation_order_picks_first_ready_task() {
        let got = pick(
            SchedulingPolicy::GenerationOrder,
            &[TaskId(3), TaskId(7)],
            |_| avail(&[(0, 1, 0)]),
        );
        assert_eq!(got, Some((TaskId(3), 0)));
    }

    #[test]
    fn generation_order_round_robins_over_free_nodes() {
        let nodes = avail(&[(0, 1, 999), (1, 3, 0), (2, 2, 0)]);
        assert_eq!(place(SchedulingPolicy::GenerationOrder, &nodes, 0), Some(0));
        assert_eq!(place(SchedulingPolicy::GenerationOrder, &nodes, 1), Some(1));
        assert_eq!(place(SchedulingPolicy::GenerationOrder, &nodes, 2), Some(2));
        assert_eq!(place(SchedulingPolicy::GenerationOrder, &nodes, 3), Some(0));
    }

    #[test]
    fn generation_order_skips_full_nodes_in_rotation() {
        let nodes = avail(&[(0, 0, 0), (1, 1, 0), (2, 0, 0)]);
        for rot in 0..6 {
            assert_eq!(
                place(SchedulingPolicy::GenerationOrder, &nodes, rot),
                Some(1)
            );
        }
    }

    #[test]
    fn locality_prefers_cached_bytes() {
        let got = pick(SchedulingPolicy::DataLocality, &[TaskId(0)], |_| {
            avail(&[(0, 3, 10), (1, 1, 500), (2, 2, 10)])
        });
        assert_eq!(got, Some((TaskId(0), 1)));
    }

    #[test]
    fn locality_falls_back_to_free_slots_on_tie() {
        let got = pick(SchedulingPolicy::DataLocality, &[TaskId(0)], |_| {
            avail(&[(0, 1, 0), (1, 4, 0)])
        });
        assert_eq!(got, Some((TaskId(0), 1)));
    }

    #[test]
    fn locality_skips_full_nodes_even_if_cached() {
        let got = pick(SchedulingPolicy::DataLocality, &[TaskId(0)], |_| {
            avail(&[(0, 0, 10_000), (1, 1, 0)])
        });
        assert_eq!(got, Some((TaskId(0), 1)));
    }

    #[test]
    fn pick_uses_rotation_zero() {
        let got = pick(SchedulingPolicy::GenerationOrder, &[TaskId(0)], |_| {
            avail(&[(2, 2, 0), (0, 2, 0), (1, 2, 0)])
        });
        assert_eq!(got, Some((TaskId(0), 2)), "first slice entry at rotation 0");
    }

    #[test]
    fn overheads_follow_policy() {
        let f = SimDuration::from_micros(800);
        let l = SimDuration::from_micros(3500);
        assert_eq!(
            decision_overhead(SchedulingPolicy::GenerationOrder, f, l),
            f
        );
        assert_eq!(decision_overhead(SchedulingPolicy::DataLocality, f, l), l);
        assert_eq!(decision_overhead(SchedulingPolicy::CriticalPath, f, l), l);
    }

    #[test]
    fn critical_path_places_like_locality() {
        let nodes = avail(&[(0, 3, 10), (1, 1, 500), (2, 2, 10)]);
        assert_eq!(place(SchedulingPolicy::CriticalPath, &nodes, 0), Some(1));
    }
}
