//! Figure 11: Spearman correlation matrix of the execution factors.
//!
//! Rebuilds the paper's 192-sample study: every combination of algorithm,
//! dataset (including the supplementary 128 MB Matmul and 100 MB K-means
//! sets), grid dimension, processor type, and — for the Fig. 10 subsets —
//! storage architecture and scheduling policy. Each completed run yields
//! one sample of 15 features; OOM combinations drop out, exactly as they
//! could not be measured on the real cluster.

use gpuflow_algorithms::{calibration, KmeansConfig, MatmulConfig};
use gpuflow_analysis::{one_hot, CorrMatrix, FeatureTable};
use gpuflow_cluster::{ProcessorKind, StorageArchitecture};
use gpuflow_data::DsArraySpec;
use gpuflow_runtime::{SchedulingPolicy, Workflow};

use crate::measure::Context;

/// Feature (column) names, in the paper's Fig. 11 order.
pub const FEATURES: [&str; 15] = [
    "parallel task exec. time",
    "block size",
    "grid dimension",
    "parallel fraction",
    "algorithm-specific param.",
    "computational complexity",
    "DAG maximum width",
    "DAG maximum height",
    "dataset size",
    "CPU",
    "GPU",
    "shared disk storage",
    "local disk storage",
    "task gen. order scheduling",
    "data locality scheduling",
];

/// The Figure 11 result: the samples and their correlation matrix.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// The raw feature table (one row per completed run).
    pub table: FeatureTable,
    /// Spearman correlation matrix over all features.
    pub matrix: CorrMatrix,
    /// Combinations that hit an OOM and were dropped.
    pub dropped_oom: usize,
}

struct SampleSpec {
    workflow: Workflow,
    array: DsArraySpec,
    algo_param: f64,
    complexity: f64,
}

fn matmul_sample(dataset: &gpuflow_data::DatasetSpec, grid: u64) -> SampleSpec {
    let cfg = MatmulConfig::new(dataset.clone(), grid).expect("valid grid");
    let order = cfg.spec.block.rows;
    SampleSpec {
        workflow: cfg.build_workflow(),
        array: cfg.spec.clone(),
        // Matmul has no algorithm-specific parameter; NaN drops these
        // samples from correlations involving the feature (pairwise-
        // complete observations, as in the paper's pandas pipeline).
        algo_param: f64::NAN,
        complexity: calibration::matmul_nominal_complexity(order),
    }
}

fn kmeans_sample(
    dataset: &gpuflow_data::DatasetSpec,
    grid: u64,
    clusters: u64,
    iterations: u32,
) -> SampleSpec {
    let cfg = KmeansConfig::new(dataset.clone(), grid, clusters, iterations).expect("valid grid");
    let spec = cfg.spec.clone();
    SampleSpec {
        workflow: cfg.build_workflow(),
        array: spec.clone(),
        algo_param: clusters as f64,
        complexity: calibration::kmeans_nominal_complexity(
            spec.block.rows,
            spec.dataset.dim.cols,
            clusters,
        ),
    }
}

/// Collects one sample row, or `None` on OOM.
fn collect(
    ctx: &Context,
    sample: &SampleSpec,
    processor: ProcessorKind,
    storage: StorageArchitecture,
    policy: SchedulingPolicy,
) -> Option<Vec<f64>> {
    let report = ctx
        .run(&sample.workflow, processor, storage, policy)
        .report()?
        .clone();
    let shape = sample.workflow.shape();
    // Parallel fraction as *measured* on the executing processor: the
    // share of user-code time spent in the parallel part. On GPU runs the
    // parallel part shrinks, which is exactly the paper's finding (d) —
    // a negative correlation between the GPU column and this feature.
    let user = report.metrics.mean_user_code();
    let pf = if user > 0.0 {
        report.metrics.mean_parallel() / user
    } else {
        0.0
    };
    let mut row = vec![
        report.metrics.parallel_task_time,
        sample.array.block_bytes() as f64,
        sample.array.blocks() as f64,
        pf,
        sample.algo_param,
        sample.complexity,
        shape.max_width as f64,
        shape.height as f64,
        sample.array.dataset.bytes() as f64,
    ];
    row.extend(one_hot(&["CPU", "GPU"], processor.label()));
    row.extend(one_hot(&["shared disk", "local disk"], storage.label()));
    row.extend(one_hot(
        &["task gen. order", "data locality"],
        policy.label(),
    ));
    Some(row)
}

/// Runs the full correlation study with the paper's sample inventory.
pub fn run(ctx: &Context) -> Fig11 {
    use gpuflow_data::paper;
    let mut samples: Vec<(
        SampleSpec,
        ProcessorKind,
        StorageArchitecture,
        SchedulingPolicy,
    )> = Vec::new();
    let shared = StorageArchitecture::SharedDisk;
    let fifo = SchedulingPolicy::GenerationOrder;

    // End-to-end sweeps (Fig. 7 settings) + the supplementary datasets.
    for ds in [
        paper::matmul_8gb(),
        paper::matmul_32gb(),
        paper::matmul_128mb(),
    ] {
        for grid in crate::fig7::MATMUL_GRIDS {
            for proc in ProcessorKind::ALL {
                samples.push((matmul_sample(&ds, grid), proc, shared, fifo));
            }
        }
    }
    for ds in [
        paper::kmeans_10gb(),
        paper::kmeans_100gb(),
        paper::kmeans_100mb(),
    ] {
        for grid in crate::fig7::KMEANS_GRIDS {
            for proc in ProcessorKind::ALL {
                samples.push((kmeans_sample(&ds, grid, 10, 1), proc, shared, fifo));
            }
        }
    }
    // Algorithm-specific-parameter sweeps (Fig. 9a settings): the higher
    // cluster counts vary the parameter, its complexity, and the
    // parallel fraction within the K-means family.
    for clusters in [100u64, 1000] {
        for grid in crate::fig7::KMEANS_GRIDS {
            for proc in ProcessorKind::ALL {
                samples.push((
                    kmeans_sample(&paper::kmeans_10gb(), grid, clusters, 1),
                    proc,
                    shared,
                    fifo,
                ));
            }
        }
    }
    // Storage x scheduling sweeps (Fig. 10 settings).
    for combo in crate::fig10::COMBOS {
        for grid in crate::fig7::MATMUL_GRIDS {
            for proc in ProcessorKind::ALL {
                samples.push((
                    matmul_sample(&paper::matmul_8gb(), grid),
                    proc,
                    combo.storage,
                    combo.policy,
                ));
            }
        }
        for grid in crate::fig7::KMEANS_GRIDS {
            for proc in ProcessorKind::ALL {
                samples.push((
                    kmeans_sample(
                        &paper::kmeans_10gb(),
                        grid,
                        10,
                        crate::fig10::KMEANS_ITERATIONS,
                    ),
                    proc,
                    combo.storage,
                    combo.policy,
                ));
            }
        }
    }
    build(ctx, samples)
}

/// Runs a reduced sample set (for tests and quick benches).
pub fn run_quick(ctx: &Context) -> Fig11 {
    use gpuflow_data::paper;
    let shared = StorageArchitecture::SharedDisk;
    let fifo = SchedulingPolicy::GenerationOrder;
    let mut samples = Vec::new();
    for grid in [4u64, 16] {
        for proc in ProcessorKind::ALL {
            for combo in crate::fig10::COMBOS {
                samples.push((
                    matmul_sample(&paper::matmul_128mb(), grid),
                    proc,
                    combo.storage,
                    combo.policy,
                ));
                samples.push((
                    kmeans_sample(&paper::kmeans_100mb(), grid * 4, 10, 2),
                    proc,
                    combo.storage,
                    combo.policy,
                ));
            }
        }
    }
    // A second dataset size per algorithm, swept over a wide grid range,
    // so both the dataset-size and block-size features vary within each
    // family (finding (a) of §5.4.2).
    for grid in [2u64, 4, 8, 16] {
        for proc in ProcessorKind::ALL {
            samples.push((
                matmul_sample(&paper::matmul_2gb_skewed(0.0), grid),
                proc,
                shared,
                fifo,
            ));
            samples.push((
                kmeans_sample(&paper::kmeans_10gb(), grid * 16, 10, 2),
                proc,
                shared,
                fifo,
            ));
        }
    }
    build(ctx, samples)
}

fn build(
    ctx: &Context,
    samples: Vec<(
        SampleSpec,
        ProcessorKind,
        StorageArchitecture,
        SchedulingPolicy,
    )>,
) -> Fig11 {
    let mut table = FeatureTable::new(FEATURES);
    let mut dropped = 0;
    // Samples are independent runs; rows are re-assembled in sample
    // order, so the table is identical at any thread count.
    let rows = ctx.par_map(&samples, |_, (sample, proc, storage, policy)| {
        collect(ctx, sample, *proc, *storage, *policy)
    });
    for row in rows {
        match row {
            Some(row) => table.push_row(&row),
            None => dropped += 1,
        }
    }
    let matrix = table.correlation_matrix();
    Fig11 {
        table,
        matrix,
        dropped_oom: dropped,
    }
}

impl Fig11 {
    /// Renders the correlation matrix (Fig. 11 layout).
    pub fn render(&self) -> String {
        format!(
            "== Figure 11: Spearman correlation of key features ({} samples, {} OOM dropped) ==\n{}",
            self.table.rows(),
            self.dropped_oom,
            self.matrix.render(26)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_reproduces_key_signs() {
        let fig = run_quick(&Context::default());
        assert!(fig.table.rows() >= 30);
        fig.matrix.check_invariants().unwrap();
        let g = |a: &str, b: &str| fig.matrix.get(a, b).unwrap();
        // One-hot complements are exactly inverse (the Fig. 11 ±1 bands).
        assert!((g("CPU", "GPU") + 1.0).abs() < 1e-12);
        assert!((g("shared disk storage", "local disk storage") + 1.0).abs() < 1e-12);
        // Block size against grid dimension: the Eq. 2 trade-off (the
        // mixed dataset sizes of the quick set soften the coefficient).
        assert!(g("block size", "grid dimension") < -0.3);
        // Grid dimension tracks DAG width (finding (b) of §5.4.2).
        assert!(g("grid dimension", "DAG maximum width") > 0.5);
        // Shared disk correlates positively with execution time (O5/O6).
        assert!(g("parallel task exec. time", "shared disk storage") > 0.0);
        assert!(g("parallel task exec. time", "local disk storage") < 0.0);
    }
}
