//! Chrome `trace_event` / Perfetto export.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) accepted
//! by Perfetto and `chrome://tracing`:
//!
//! * one *process* per cluster node plus one for the master scheduler;
//! * one *thread* (track) per host core, and one per GPU device
//!   (`tid = 1000 + gpu`);
//! * complete (`"X"`) events for every processing-stage interval and
//!   every scheduler decision;
//! * async (`"b"`/`"e"`) spans covering each task dispatch→completion;
//! * counter (`"C"`) tracks for ready-queue depth, cluster-wide busy
//!   cores/GPUs, and per-node working-set RAM, sampled at every
//!   sim-time occupancy change.
//!
//! Timestamps are microseconds with nanosecond precision (`ts`/`dur`
//! are fractional), directly comparable across exports of the same run.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::task::TaskId;
use crate::trace::TraceState;

use super::event::{json_escape, TelemetryEvent};
use super::sink::{MemorySink, TelemetrySink};
use super::TelemetryLog;

/// Thread-track id of GPU device `g` within its node's process.
fn gpu_tid(g: u16) -> u32 {
    1000 + g as u32
}

fn push_meta(out: &mut String, pid: usize, tid: Option<u32>, kind: &str, name: &str) {
    match tid {
        Some(tid) => {
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{kind}\",\"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            );
        }
        None => {
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"{kind}\",\"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            );
        }
    }
}

/// Microseconds with nanosecond precision, rendered deterministically.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Exports a telemetry log as a Chrome `trace_event` JSON document.
pub fn to_chrome_trace(log: &TelemetryLog) -> String {
    // Pass 1: discover tracks and task names.
    let mut cores: BTreeMap<usize, Vec<u16>> = BTreeMap::new(); // node -> sorted cores
    let mut gpus: BTreeMap<usize, Vec<u16>> = BTreeMap::new();
    let mut task_names: BTreeMap<TaskId, String> = BTreeMap::new();
    let mut max_node = 0usize;
    for ev in log.events() {
        match ev {
            TelemetryEvent::Stage {
                node, core, gpu, ..
            } => {
                max_node = max_node.max(*node);
                cores.entry(*node).or_default().push(*core);
                if let Some(g) = gpu {
                    gpus.entry(*node).or_default().push(*g);
                }
            }
            TelemetryEvent::TaskDispatched {
                task,
                task_type,
                node,
                ..
            } => {
                max_node = max_node.max(*node);
                task_names.insert(*task, format!("{task_type} t{}", task.0));
            }
            TelemetryEvent::NodeGauge { node, .. } => max_node = max_node.max(*node),
            TelemetryEvent::FaultInjected {
                node: Some(node), ..
            }
            | TelemetryEvent::TaskFailed { node, .. }
            | TelemetryEvent::NodeDown { node, .. }
            | TelemetryEvent::NodeUp { node, .. }
            | TelemetryEvent::BlocksInvalidated { node, .. } => max_node = max_node.max(*node),
            _ => {}
        }
    }
    for v in cores.values_mut().chain(gpus.values_mut()) {
        v.sort();
        v.dedup();
    }
    let master_pid = max_node + 1;

    let mut evs: Vec<String> = Vec::with_capacity(log.len() + 16);
    // Metadata: processes and named tracks.
    for node in 0..=max_node {
        let mut m = String::new();
        push_meta(&mut m, node, None, "process_name", &format!("node {node}"));
        evs.push(m);
        for c in cores.get(&node).map(Vec::as_slice).unwrap_or(&[]) {
            let mut m = String::new();
            push_meta(
                &mut m,
                node,
                Some(*c as u32),
                "thread_name",
                &format!("core {c}"),
            );
            evs.push(m);
        }
        for g in gpus.get(&node).map(Vec::as_slice).unwrap_or(&[]) {
            let mut m = String::new();
            push_meta(
                &mut m,
                node,
                Some(gpu_tid(*g)),
                "thread_name",
                &format!("gpu {g}"),
            );
            evs.push(m);
        }
    }
    {
        let mut m = String::new();
        push_meta(&mut m, master_pid, None, "process_name", "master scheduler");
        evs.push(m);
        let mut m = String::new();
        push_meta(&mut m, master_pid, Some(0), "thread_name", "decisions");
        evs.push(m);
    }

    // Pass 2: spans and counters. Cluster-wide busy counters are the
    // running sum of the latest per-node gauges.
    let mut node_busy_cores: BTreeMap<usize, usize> = BTreeMap::new();
    let mut node_busy_gpus: BTreeMap<usize, usize> = BTreeMap::new();
    for ev in log.events() {
        match ev {
            TelemetryEvent::Stage {
                task,
                node,
                core,
                gpu,
                state,
                t0,
                t1,
            } => {
                let tid = match (gpu, state) {
                    (Some(g), TraceState::ParallelFraction | TraceState::CpuGpuComm) => gpu_tid(*g),
                    _ => *core as u32,
                };
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"task\":{}}}}}",
                    state.label(),
                    node,
                    tid,
                    us(t0.as_nanos()),
                    us(t1.duration_since(*t0).as_nanos()),
                    task.0
                );
                evs.push(s);
            }
            TelemetryEvent::Decision(d) => {
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"place t{}\",\"cat\":\"decision\",\"ph\":\"X\",\"pid\":{},\"tid\":0,\"ts\":{},\"dur\":{},\"args\":{{\"chosen\":{},\"queue_depth\":{},\"candidates\":{}}}}}",
                    d.task.0,
                    master_pid,
                    us(d.at.as_nanos()),
                    us(d.sim_overhead.as_nanos()),
                    d.chosen,
                    d.queue_depth,
                    d.candidates.len()
                );
                evs.push(s);
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"queue_depth\",\"ph\":\"C\",\"pid\":{},\"tid\":0,\"ts\":{},\"args\":{{\"ready\":{}}}}}",
                    master_pid,
                    us(d.at.as_nanos()),
                    d.queue_depth
                );
                evs.push(s);
            }
            TelemetryEvent::TaskDispatched { at, task, node, .. } => {
                let name = task_names
                    .get(task)
                    .cloned()
                    .unwrap_or_else(|| format!("t{}", task.0));
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"{}\",\"cat\":\"task\",\"ph\":\"b\",\"id\":{},\"pid\":{},\"tid\":0,\"ts\":{}}}",
                    json_escape(&name),
                    task.0,
                    node,
                    us(at.as_nanos())
                );
                evs.push(s);
            }
            TelemetryEvent::TaskCompleted { at, task, node } => {
                let name = task_names
                    .get(task)
                    .cloned()
                    .unwrap_or_else(|| format!("t{}", task.0));
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"{}\",\"cat\":\"task\",\"ph\":\"e\",\"id\":{},\"pid\":{},\"tid\":0,\"ts\":{}}}",
                    json_escape(&name),
                    task.0,
                    node,
                    us(at.as_nanos())
                );
                evs.push(s);
            }
            TelemetryEvent::NodeGauge {
                at,
                node,
                ram_used,
                busy_cores,
                busy_gpus,
            } => {
                node_busy_cores.insert(*node, *busy_cores);
                node_busy_gpus.insert(*node, *busy_gpus);
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"ram_bytes\",\"ph\":\"C\",\"pid\":{},\"tid\":0,\"ts\":{},\"args\":{{\"bytes\":{}}}}}",
                    node,
                    us(at.as_nanos()),
                    ram_used
                );
                evs.push(s);
                let total_cores: usize = node_busy_cores.values().sum();
                let total_gpus: usize = node_busy_gpus.values().sum();
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"cluster_busy\",\"ph\":\"C\",\"pid\":{},\"tid\":0,\"ts\":{},\"args\":{{\"cores\":{},\"gpus\":{}}}}}",
                    master_pid,
                    us(at.as_nanos()),
                    total_cores,
                    total_gpus
                );
                evs.push(s);
            }
            TelemetryEvent::FaultInjected { at, node, what } => {
                let pid = node.unwrap_or(master_pid);
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"fault: {what}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\"pid\":{},\"tid\":0,\"ts\":{}}}",
                    pid,
                    us(at.as_nanos())
                );
                evs.push(s);
            }
            TelemetryEvent::TaskFailed {
                at,
                task,
                node,
                attempt,
                reason,
                ..
            } => {
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"failed t{} ({reason})\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\"pid\":{},\"tid\":0,\"ts\":{},\"args\":{{\"attempt\":{}}}}}",
                    task.0,
                    node,
                    us(at.as_nanos()),
                    attempt
                );
                evs.push(s);
            }
            TelemetryEvent::TaskRetry {
                at,
                task,
                attempt,
                until,
            } => {
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"backoff t{}\",\"cat\":\"recovery\",\"ph\":\"X\",\"pid\":{},\"tid\":0,\"ts\":{},\"dur\":{},\"args\":{{\"attempt\":{}}}}}",
                    task.0,
                    master_pid,
                    us(at.as_nanos()),
                    us(until.duration_since(*at).as_nanos()),
                    attempt
                );
                evs.push(s);
            }
            TelemetryEvent::TaskResubmitted {
                at,
                task,
                from_node,
            } => {
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"resubmit t{}\",\"cat\":\"recovery\",\"ph\":\"i\",\"s\":\"p\",\"pid\":{},\"tid\":0,\"ts\":{},\"args\":{{\"from_node\":{}}}}}",
                    task.0,
                    master_pid,
                    us(at.as_nanos()),
                    from_node
                );
                evs.push(s);
            }
            TelemetryEvent::NodeDown { at, node } => {
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"node down\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\"pid\":{},\"tid\":0,\"ts\":{}}}",
                    node,
                    us(at.as_nanos())
                );
                evs.push(s);
            }
            TelemetryEvent::NodeUp { at, node } => {
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"node up\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\"pid\":{},\"tid\":0,\"ts\":{}}}",
                    node,
                    us(at.as_nanos())
                );
                evs.push(s);
            }
            TelemetryEvent::BlocksInvalidated {
                at,
                node,
                count,
                lost_versions,
            } => {
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"blocks invalidated\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\"pid\":{},\"tid\":0,\"ts\":{},\"args\":{{\"count\":{},\"lost_versions\":{}}}}}",
                    node,
                    us(at.as_nanos()),
                    count,
                    lost_versions
                );
                evs.push(s);
            }
            _ => {}
        }
    }

    let mut out = String::with_capacity(evs.iter().map(|e| e.len() + 6).sum::<usize>() + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in evs.iter().enumerate() {
        out.push_str(e);
        if i + 1 < evs.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// A [`TelemetrySink`] assembling a Chrome trace on [`finish`].
///
/// [`finish`]: TelemetrySink::finish
#[derive(Debug, Clone, Default)]
pub struct ChromeTraceSink {
    buffer: MemorySink,
    output: String,
}

impl ChromeTraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The assembled trace JSON (empty before [`TelemetrySink::finish`]).
    pub fn as_str(&self) -> &str {
        &self.output
    }

    /// Consumes the sink, returning the trace JSON.
    pub fn into_string(self) -> String {
        self.output
    }
}

impl TelemetrySink for ChromeTraceSink {
    fn on_event(&mut self, ev: &TelemetryEvent) {
        self.buffer.on_event(ev);
    }

    fn finish(&mut self) {
        let log = TelemetryLog::from_events(std::mem::take(&mut self.buffer.events));
        self.output = to_chrome_trace(&log);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskType;
    use gpuflow_sim::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample_log() -> TelemetryLog {
        TelemetryLog::from_events(vec![
            TelemetryEvent::TaskDispatched {
                at: t(0),
                task: TaskId(0),
                task_type: TaskType::new("map"),
                node: 0,
                core: 1,
                cores: 1,
                gpu: Some(0),
            },
            TelemetryEvent::Stage {
                task: TaskId(0),
                node: 0,
                core: 1,
                gpu: Some(0),
                state: TraceState::ParallelFraction,
                t0: t(1_500),
                t1: t(2_500),
            },
            TelemetryEvent::NodeGauge {
                at: t(0),
                node: 0,
                ram_used: 42,
                busy_cores: 1,
                busy_gpus: 1,
            },
            TelemetryEvent::TaskCompleted {
                at: t(3_000),
                task: TaskId(0),
                node: 0,
            },
        ])
    }

    #[test]
    fn trace_has_envelope_and_tracks() {
        let json = to_chrome_trace(&sample_log());
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("gpu 0"));
        assert!(json.contains("\"ph\":\"C\""), "counter tracks required");
        assert!(json.contains("\"ph\":\"b\"") && json.contains("\"ph\":\"e\""));
    }

    #[test]
    fn kernel_stages_land_on_the_gpu_track() {
        let json = to_chrome_trace(&sample_log());
        assert!(json.contains("\"tid\":1000"), "gpu track tid: {json}");
    }

    #[test]
    fn timestamps_are_fractional_microseconds() {
        let json = to_chrome_trace(&sample_log());
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":1.000"));
    }

    #[test]
    fn sink_assembles_on_finish() {
        let mut sink = ChromeTraceSink::new();
        for ev in sample_log().events() {
            sink.on_event(ev);
        }
        assert!(sink.as_str().is_empty());
        sink.finish();
        assert!(sink.as_str().contains("traceEvents"));
    }

    #[test]
    fn empty_log_is_still_valid() {
        let json = to_chrome_trace(&TelemetryLog::default());
        assert!(json.contains("traceEvents"));
    }

    #[test]
    fn fault_events_render_as_instants_and_spans() {
        let log = TelemetryLog::from_events(vec![
            TelemetryEvent::NodeDown {
                at: t(1_000),
                node: 2,
            },
            TelemetryEvent::TaskFailed {
                at: t(2_000),
                task: TaskId(7),
                node: 2,
                attempt: 0,
                started: t(500),
                reason: "node-crash",
            },
            TelemetryEvent::TaskRetry {
                at: t(2_000),
                task: TaskId(7),
                attempt: 1,
                until: t(4_000),
            },
            TelemetryEvent::NodeUp {
                at: t(9_000),
                node: 2,
            },
        ]);
        let json = to_chrome_trace(&log);
        assert!(json.contains("\"name\":\"node down\""), "{json}");
        assert!(json.contains("\"name\":\"failed t7 (node-crash)\""));
        assert!(json.contains("\"name\":\"backoff t7\""));
        assert!(json.contains("\"ph\":\"i\""), "instant markers required");
        // The crashed node's process exists even with no stage events.
        assert!(json.contains("node 2"), "{json}");
    }
}
