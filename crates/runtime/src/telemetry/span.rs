//! Causal span trees folded from the telemetry stream.
//!
//! A [`SpanForest`] turns the flat [`TelemetryEvent`] stream into a
//! per-task-instance span tree: every task owns a root span spanning
//! ready→completion, with child phase spans for queue-wait,
//! input-fetch, deserialize, compute, serialize and writeback, plus
//! retry/resubmit spans whenever the chaos layer re-ran the task.
//! Causal parent edges point at the data-dependency producer that
//! finished last — the same latest-finishing-predecessor rule (ties on
//! the higher [`TaskId`]) as
//! [`critical_path_from_telemetry`](crate::trace_analysis::critical_path_from_telemetry),
//! so a walk along causal parents from the last task reproduces the
//! critical path hop for hop.
//!
//! Everything is folded in integer virtual-time nanoseconds from the
//! deterministic event stream, so the exports ([`SpanForest::to_otlp_json`]
//! and the collapsed-stack form in [`super::flame`]) are byte-identical
//! at any `--threads` setting.

use std::collections::HashMap;
use std::fmt::Write as _;

use gpuflow_chaos::mix64;

use crate::task::TaskId;
use crate::trace::TraceState;
use crate::trace_analysis::critical_path_from_telemetry;
use crate::workflow::Workflow;

use super::event::{json_escape, LinkKind, TelemetryEvent};
use super::TelemetryLog;

/// Seed folded into every deterministic span/trace identifier.
const SPAN_ID_SEED: u64 = 0x5A5A_D00D_5EED_0001;

/// The lifecycle phase a span covers, in canonical pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanPhase {
    /// Ready-to-dispatch interval (scheduler queue residency).
    QueueWait,
    /// Input transfers toward the executing node (`read` / `h2d`).
    InputFetch,
    /// Input deserialization on the worker.
    Deserialize,
    /// Kernel execution (serial + parallel fractions and CPU↔GPU
    /// coordination are aggregated under one compute span).
    Compute,
    /// Output serialization on the worker.
    Serialize,
    /// Output transfers away from the node (`write` / `d2h`).
    Writeback,
    /// Backoff window between a failed attempt and its retry.
    RetryBackoff,
    /// Zero-length marker: the task was resubmitted after a node loss.
    Resubmit,
}

impl SpanPhase {
    /// Every phase in canonical pipeline order.
    pub const ALL: [SpanPhase; 8] = [
        SpanPhase::QueueWait,
        SpanPhase::InputFetch,
        SpanPhase::Deserialize,
        SpanPhase::Compute,
        SpanPhase::Serialize,
        SpanPhase::Writeback,
        SpanPhase::RetryBackoff,
        SpanPhase::Resubmit,
    ];

    /// Stable label used in exports and flame-graph frames.
    pub fn label(self) -> &'static str {
        match self {
            SpanPhase::QueueWait => "queue-wait",
            SpanPhase::InputFetch => "input-fetch",
            SpanPhase::Deserialize => "deserialize",
            SpanPhase::Compute => "compute",
            SpanPhase::Serialize => "serialize",
            SpanPhase::Writeback => "writeback",
            SpanPhase::RetryBackoff => "retry",
            SpanPhase::Resubmit => "resubmit",
        }
    }

    /// Canonical index (position in [`SpanPhase::ALL`]).
    pub fn index(self) -> usize {
        SpanPhase::ALL.iter().position(|p| *p == self).unwrap_or(0)
    }
}

/// One phase interval inside a task instance, in virtual-time ns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Which lifecycle phase this span covers.
    pub phase: SpanPhase,
    /// Inclusive start, virtual ns.
    pub t0_ns: u64,
    /// Exclusive end, virtual ns (`t0_ns` for zero-length markers).
    pub t1_ns: u64,
    /// Execution attempt the span belongs to (0 = first run).
    pub attempt: u32,
}

impl PhaseSpan {
    /// Span width in virtual ns.
    pub fn duration_ns(&self) -> u64 {
        self.t1_ns.saturating_sub(self.t0_ns)
    }
}

/// The span tree of one task instance.
#[derive(Debug, Clone)]
pub struct TaskSpans {
    /// The task this tree describes.
    pub task: TaskId,
    /// Task-type name (flame-graph grouping key).
    pub task_type: String,
    /// Node the final (successful) attempt ran on.
    pub node: usize,
    /// Child phase spans, sorted by `(t0_ns, phase order, t1_ns)`.
    pub phases: Vec<PhaseSpan>,
    /// Root-span start: first observable moment of the task, virtual ns.
    pub start_ns: u64,
    /// Root-span end: completion time, virtual ns.
    pub end_ns: u64,
    /// Causal parent: the latest-finishing data-dependency producer
    /// (ties to the higher task id), if the task has predecessors.
    pub causal_parent: Option<TaskId>,
    /// Whether the task lies on the run's critical path.
    pub on_critical_path: bool,
}

impl TaskSpans {
    /// Total virtual ns attributed to `phase` across all attempts.
    pub fn phase_total_ns(&self, phase: SpanPhase) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.phase == phase)
            .map(PhaseSpan::duration_ns)
            .sum()
    }

    /// End-to-end latency of the root span in virtual ns.
    pub fn latency_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Highest attempt index seen in any phase span.
    pub fn attempts(&self) -> u32 {
        self.phases.iter().map(|p| p.attempt).max().unwrap_or(0)
    }
}

/// The complete causal span forest of one run.
#[derive(Debug, Clone, Default)]
pub struct SpanForest {
    /// Per-task span trees, ordered by ascending task id.
    pub tasks: Vec<TaskSpans>,
}

impl SpanForest {
    /// Folds the forest from a workflow and its telemetry log.
    ///
    /// Single pass over the event stream; completion times, phase
    /// intervals and retry attempts are accumulated per task, then
    /// causal parents and the critical-path marking are derived from
    /// the workflow's dependency structure. Tasks that never completed
    /// (e.g. the run was truncated) are dropped — a span tree without
    /// an end is not a span tree.
    pub fn from_telemetry(workflow: &Workflow, log: &TelemetryLog) -> SpanForest {
        let n = workflow.tasks().len();
        let mut ready_at: HashMap<TaskId, u64> = HashMap::new();
        let mut attempt: HashMap<TaskId, u32> = HashMap::new();
        let mut phase_map: HashMap<TaskId, Vec<PhaseSpan>> = HashMap::new();
        let mut start_of: HashMap<TaskId, u64> = HashMap::new();
        let mut end_of: HashMap<TaskId, (u64, usize)> = HashMap::new();

        let note_start = |start_of: &mut HashMap<TaskId, u64>, task: TaskId, at: u64| {
            let e = start_of.entry(task).or_insert(at);
            if at < *e {
                *e = at;
            }
        };

        for ev in log.events() {
            match ev {
                TelemetryEvent::TaskReady { at, task } => {
                    ready_at.insert(*task, at.as_nanos());
                    note_start(&mut start_of, *task, at.as_nanos());
                }
                TelemetryEvent::TaskDispatched { at, task, .. } => {
                    let a = *attempt.get(task).unwrap_or(&0);
                    if let Some(t0) = ready_at.remove(task) {
                        phase_map.entry(*task).or_default().push(PhaseSpan {
                            phase: SpanPhase::QueueWait,
                            t0_ns: t0,
                            t1_ns: at.as_nanos(),
                            attempt: a,
                        });
                    }
                }
                TelemetryEvent::Stage {
                    task,
                    state,
                    t0,
                    t1,
                    ..
                } => {
                    let phase = match state {
                        TraceState::Deserialize => SpanPhase::Deserialize,
                        TraceState::Serialize => SpanPhase::Serialize,
                        _ => SpanPhase::Compute,
                    };
                    let a = *attempt.get(task).unwrap_or(&0);
                    note_start(&mut start_of, *task, t0.as_nanos());
                    phase_map.entry(*task).or_default().push(PhaseSpan {
                        phase,
                        t0_ns: t0.as_nanos(),
                        t1_ns: t1.as_nanos(),
                        attempt: a,
                    });
                }
                TelemetryEvent::Transfer {
                    task, link, t0, t1, ..
                } => {
                    let phase = match link {
                        LinkKind::StorageRead | LinkKind::HostToDevice => SpanPhase::InputFetch,
                        LinkKind::StorageWrite | LinkKind::DeviceToHost => SpanPhase::Writeback,
                    };
                    let a = *attempt.get(task).unwrap_or(&0);
                    note_start(&mut start_of, *task, t0.as_nanos());
                    phase_map.entry(*task).or_default().push(PhaseSpan {
                        phase,
                        t0_ns: t0.as_nanos(),
                        t1_ns: t1.as_nanos(),
                        attempt: a,
                    });
                }
                TelemetryEvent::TaskFailed {
                    task, attempt: a, ..
                } => {
                    attempt.insert(*task, a + 1);
                }
                TelemetryEvent::TaskRetry {
                    at,
                    task,
                    attempt: a,
                    until,
                } => {
                    phase_map.entry(*task).or_default().push(PhaseSpan {
                        phase: SpanPhase::RetryBackoff,
                        t0_ns: at.as_nanos(),
                        t1_ns: until.as_nanos(),
                        attempt: *a,
                    });
                }
                TelemetryEvent::TaskResubmitted { at, task, .. } => {
                    let a = *attempt.get(task).unwrap_or(&0);
                    phase_map.entry(*task).or_default().push(PhaseSpan {
                        phase: SpanPhase::Resubmit,
                        t0_ns: at.as_nanos(),
                        t1_ns: at.as_nanos(),
                        attempt: a,
                    });
                }
                TelemetryEvent::TaskCompleted { at, task, node } => {
                    end_of.insert(*task, (at.as_nanos(), *node));
                }
                _ => {}
            }
        }

        let critical: Vec<bool> = {
            let mut on = vec![false; n];
            for hop in critical_path_from_telemetry(workflow, log) {
                if (hop.task.0 as usize) < n {
                    on[hop.task.0 as usize] = true;
                }
            }
            on
        };

        let types = workflow.task_types();
        let mut tasks: Vec<TaskSpans> = Vec::with_capacity(end_of.len());
        for id in 0..n as u32 {
            let task = TaskId(id);
            let Some(&(end_ns, node)) = end_of.get(&task) else {
                continue;
            };
            let mut ph = phase_map.remove(&task).unwrap_or_default();
            ph.sort_by_key(|p| (p.t0_ns, p.phase.index(), p.t1_ns, p.attempt));
            let start_ns = *start_of.get(&task).unwrap_or(&end_ns);
            // Latest-finishing completed predecessor, ties to the higher
            // id — must match `critical_path_walk_back` exactly so the
            // causal chain from the last task IS the critical path.
            let causal_parent = workflow
                .predecessors(task)
                .iter()
                .filter_map(|p| end_of.get(p).map(|(e, _)| (*e, *p)))
                .max_by_key(|(e, t)| (*e, *t))
                .map(|(_, t)| t);
            tasks.push(TaskSpans {
                task,
                task_type: types[workflow.type_id(task) as usize].to_string(),
                node,
                phases: ph,
                start_ns,
                end_ns,
                causal_parent,
                on_critical_path: critical[id as usize],
            });
        }
        SpanForest { tasks }
    }

    /// Number of task span trees in the forest.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the forest holds no spans.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total span count (roots + phase children).
    pub fn span_count(&self) -> usize {
        self.tasks.len() + self.tasks.iter().map(|t| t.phases.len()).sum::<usize>()
    }

    /// Deterministic 64-bit root-span id of `task`.
    pub fn root_span_id(task: TaskId) -> u64 {
        mix64(SPAN_ID_SEED ^ ((task.0 as u64) << 1) ^ 1)
    }

    /// The OTLP/JSON-shaped export: one resource, one scope, every span
    /// flattened with stringified integer virtual-ns timestamps and
    /// deterministic hex ids. Parent edges encode the causal structure:
    /// phase spans point at their task root, task roots point at the
    /// root of their causal-parent task.
    pub fn to_otlp_json(&self) -> String {
        let trace_id = {
            let a = mix64(SPAN_ID_SEED);
            let b = mix64(SPAN_ID_SEED ^ 0xFF);
            format!("{a:016x}{b:016x}")
        };
        let mut spans = String::new();
        let mut first = true;
        let push_span = |buf: &mut String,
                         first: &mut bool,
                         id: u64,
                         parent: Option<u64>,
                         name: &str,
                         t0: u64,
                         t1: u64,
                         attrs: &[(&str, String)]| {
            if !*first {
                buf.push(',');
            }
            *first = false;
            let parent_field = match parent {
                Some(p) => format!("\"parentSpanId\":\"{p:016x}\","),
                None => String::new(),
            };
            let mut attr_items = String::new();
            for (i, (k, v)) in attrs.iter().enumerate() {
                if i > 0 {
                    attr_items.push(',');
                }
                let _ = write!(
                    attr_items,
                    "{{\"key\":\"{}\",\"value\":{{\"stringValue\":\"{}\"}}}}",
                    k,
                    json_escape(v)
                );
            }
            let _ = write!(
                buf,
                "{{\"traceId\":\"{trace_id}\",\"spanId\":\"{id:016x}\",{parent_field}\
                 \"name\":\"{}\",\"kind\":1,\
                 \"startTimeUnixNano\":\"{t0}\",\"endTimeUnixNano\":\"{t1}\",\
                 \"attributes\":[{attr_items}]}}",
                json_escape(name)
            );
        };

        for t in &self.tasks {
            let root = Self::root_span_id(t.task);
            let parent = t.causal_parent.map(Self::root_span_id);
            push_span(
                &mut spans,
                &mut first,
                root,
                parent,
                &format!("task/{}", t.task_type),
                t.start_ns,
                t.end_ns,
                &[
                    ("gpuflow.task", t.task.0.to_string()),
                    ("gpuflow.node", t.node.to_string()),
                    ("gpuflow.attempts", (t.attempts() + 1).to_string()),
                    (
                        "gpuflow.critical_path",
                        if t.on_critical_path { "true" } else { "false" }.to_string(),
                    ),
                ],
            );
            for (i, p) in t.phases.iter().enumerate() {
                let id = mix64(root ^ (i as u64 + 1));
                push_span(
                    &mut spans,
                    &mut first,
                    id,
                    Some(root),
                    p.phase.label(),
                    p.t0_ns,
                    p.t1_ns,
                    &[("gpuflow.attempt", p.attempt.to_string())],
                );
            }
        }

        format!(
            "{{\"resourceSpans\":[{{\"resource\":{{\"attributes\":[{{\"key\":\"service.name\",\
             \"value\":{{\"stringValue\":\"gpuflow\"}}}}]}},\"scopeSpans\":[{{\"scope\":\
             {{\"name\":\"gpuflow.telemetry.span\"}},\"spans\":[{spans}]}}]}}]}}\n"
        )
    }

    /// Fixed-shape integer summary for `obs summary --json`: task and
    /// span counts, critical-path size, retries, and total virtual ns
    /// per phase (every phase key always present, zero when unused).
    pub fn summary_json(&self) -> String {
        let critical = self.tasks.iter().filter(|t| t.on_critical_path).count();
        let retries: u64 = self.tasks.iter().map(|t| t.attempts() as u64).sum();
        let mut o = String::from("{");
        let _ = write!(
            o,
            "\"tasks\":{},\"spans\":{},\"critical_path_tasks\":{critical},\"retries\":{retries}",
            self.tasks.len(),
            self.span_count()
        );
        o.push_str(",\"phase_ns\":{");
        for (i, phase) in SpanPhase::ALL.iter().enumerate() {
            let total: u64 = self.tasks.iter().map(|t| t.phase_total_ns(*phase)).sum();
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "\"{}\":{total}", phase.label());
        }
        o.push_str("}}");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Direction;
    use crate::task::CostProfile;
    use crate::workflow::WorkflowBuilder;
    use gpuflow_cluster::KernelWork;
    use gpuflow_sim::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn diamond() -> Workflow {
        // 0 -> {1, 2} -> 3
        let mut b = WorkflowBuilder::new();
        let x = b.intermediate("x", 64);
        let y1 = b.intermediate("y1", 64);
        let y2 = b.intermediate("y2", 64);
        let c = CostProfile::serial_only(KernelWork::NONE);
        b.submit("src", c, &[(x, Direction::Out)], true).unwrap();
        b.submit("map", c, &[(x, Direction::In), (y1, Direction::Out)], true)
            .unwrap();
        b.submit("map", c, &[(x, Direction::In), (y2, Direction::Out)], true)
            .unwrap();
        b.submit(
            "reduce",
            c,
            &[(y1, Direction::In), (y2, Direction::In)],
            true,
        )
        .unwrap();
        b.build()
    }

    fn log_for_diamond() -> TelemetryLog {
        let ev = |v: TelemetryEvent| v;
        TelemetryLog::from_events(vec![
            ev(TelemetryEvent::TaskReady {
                at: t(0),
                task: TaskId(0),
            }),
            ev(TelemetryEvent::TaskDispatched {
                at: t(10),
                task: TaskId(0),
                task_type: "src".into(),
                node: 0,
                core: 0,
                cores: 1,
                gpu: None,
            }),
            ev(TelemetryEvent::Stage {
                task: TaskId(0),
                node: 0,
                core: 0,
                gpu: None,
                state: TraceState::ParallelFraction,
                t0: t(10),
                t1: t(100),
            }),
            ev(TelemetryEvent::TaskCompleted {
                at: t(100),
                task: TaskId(0),
                node: 0,
            }),
            ev(TelemetryEvent::TaskReady {
                at: t(100),
                task: TaskId(1),
            }),
            ev(TelemetryEvent::TaskReady {
                at: t(100),
                task: TaskId(2),
            }),
            ev(TelemetryEvent::TaskDispatched {
                at: t(110),
                task: TaskId(1),
                task_type: "map".into(),
                node: 0,
                core: 0,
                cores: 1,
                gpu: None,
            }),
            ev(TelemetryEvent::Transfer {
                task: TaskId(1),
                node: 0,
                link: LinkKind::StorageRead,
                bytes: 64,
                t0: t(110),
                t1: t(120),
            }),
            ev(TelemetryEvent::TaskCompleted {
                at: t(200),
                task: TaskId(1),
                node: 0,
            }),
            ev(TelemetryEvent::TaskDispatched {
                at: t(110),
                task: TaskId(2),
                task_type: "map".into(),
                node: 1,
                core: 0,
                cores: 1,
                gpu: None,
            }),
            ev(TelemetryEvent::TaskCompleted {
                at: t(300),
                task: TaskId(2),
                node: 1,
            }),
            ev(TelemetryEvent::TaskReady {
                at: t(300),
                task: TaskId(3),
            }),
            ev(TelemetryEvent::TaskDispatched {
                at: t(320),
                task: TaskId(3),
                task_type: "reduce".into(),
                node: 1,
                core: 0,
                cores: 1,
                gpu: None,
            }),
            ev(TelemetryEvent::TaskCompleted {
                at: t(400),
                task: TaskId(3),
                node: 1,
            }),
        ])
    }

    #[test]
    fn folds_queue_wait_and_phase_spans() {
        let wf = diamond();
        let forest = SpanForest::from_telemetry(&wf, &log_for_diamond());
        assert_eq!(forest.len(), 4);
        let t0 = &forest.tasks[0];
        assert_eq!(t0.phase_total_ns(SpanPhase::QueueWait), 10);
        assert_eq!(t0.phase_total_ns(SpanPhase::Compute), 90);
        let t1 = &forest.tasks[1];
        assert_eq!(t1.phase_total_ns(SpanPhase::InputFetch), 10);
    }

    #[test]
    fn causal_parent_is_latest_finishing_predecessor() {
        let wf = diamond();
        let forest = SpanForest::from_telemetry(&wf, &log_for_diamond());
        // Task 3's predecessors finish at 200 (task 1) and 300 (task 2).
        assert_eq!(forest.tasks[3].causal_parent, Some(TaskId(2)));
        assert_eq!(forest.tasks[0].causal_parent, None);
    }

    #[test]
    fn critical_path_marking_matches_walk_back() {
        let wf = diamond();
        let forest = SpanForest::from_telemetry(&wf, &log_for_diamond());
        let on: Vec<u32> = forest
            .tasks
            .iter()
            .filter(|t| t.on_critical_path)
            .map(|t| t.task.0)
            .collect();
        assert_eq!(on, vec![0, 2, 3]);
    }

    #[test]
    fn otlp_export_is_wellformed_and_deterministic() {
        let wf = diamond();
        let forest = SpanForest::from_telemetry(&wf, &log_for_diamond());
        let a = forest.to_otlp_json();
        let b = SpanForest::from_telemetry(&wf, &log_for_diamond()).to_otlp_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"resourceSpans\":["));
        assert!(a.contains("\"parentSpanId\""));
        assert!(a.contains("\"name\":\"queue-wait\""));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn summary_json_has_every_phase_key() {
        let wf = diamond();
        let forest = SpanForest::from_telemetry(&wf, &log_for_diamond());
        let s = forest.summary_json();
        for phase in SpanPhase::ALL {
            assert!(s.contains(phase.label()), "missing {}: {s}", phase.label());
        }
        assert!(s.contains("\"critical_path_tasks\":3"));
    }

    #[test]
    fn retry_spans_carry_attempt_numbers() {
        let wf = {
            let mut b = WorkflowBuilder::new();
            let x = b.intermediate("x", 8);
            b.submit(
                "solo",
                CostProfile::serial_only(KernelWork::NONE),
                &[(x, Direction::Out)],
                true,
            )
            .unwrap();
            b.build()
        };
        let log = TelemetryLog::from_events(vec![
            TelemetryEvent::TaskReady {
                at: t(0),
                task: TaskId(0),
            },
            TelemetryEvent::TaskDispatched {
                at: t(5),
                task: TaskId(0),
                task_type: "solo".into(),
                node: 0,
                core: 0,
                cores: 1,
                gpu: None,
            },
            TelemetryEvent::TaskFailed {
                at: t(50),
                task: TaskId(0),
                node: 0,
                attempt: 0,
                started: t(5),
                reason: "transient",
            },
            TelemetryEvent::TaskRetry {
                at: t(50),
                task: TaskId(0),
                attempt: 0,
                until: t(80),
            },
            TelemetryEvent::TaskReady {
                at: t(80),
                task: TaskId(0),
            },
            TelemetryEvent::TaskDispatched {
                at: t(90),
                task: TaskId(0),
                task_type: "solo".into(),
                node: 0,
                core: 0,
                cores: 1,
                gpu: None,
            },
            TelemetryEvent::TaskCompleted {
                at: t(140),
                task: TaskId(0),
                node: 0,
            },
        ]);
        let forest = SpanForest::from_telemetry(&wf, &log);
        let t0 = &forest.tasks[0];
        assert_eq!(t0.phase_total_ns(SpanPhase::RetryBackoff), 30);
        assert_eq!(t0.attempts(), 1);
        let second_wait: Vec<_> = t0
            .phases
            .iter()
            .filter(|p| p.phase == SpanPhase::QueueWait && p.attempt == 1)
            .collect();
        assert_eq!(second_wait.len(), 1);
        assert_eq!(second_wait[0].duration_ns(), 10);
    }
}
