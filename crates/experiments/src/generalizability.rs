//! Generalizability extension (§5.5.1): populate the gap between the
//! paper's two extreme algorithm families.
//!
//! The paper proposes "devising a method to decide when it is worth
//! exploiting GPUs based on the ratio of parallel / serial code in an
//! algorithm" and says more algorithms between the extremes would enable
//! it. This experiment lines up five task types across the
//! parallel-fraction spectrum — `add_func` (parallel but trivially
//! cheap), low-K K-means, KNN, high-K K-means, `matmul_func` — and shows
//! that measured GPU user-code speedup tracks the combination of parallel
//! fraction and computational density, exactly the decision surface the
//! advisor crate searches.

use gpuflow_algorithms::{knn_partial_cost, KmeansConfig, KnnConfig, MatmulConfig};
use gpuflow_analysis::signed_speedup;
use gpuflow_cluster::{ClusterSpec, ProcessorKind};
use gpuflow_runtime::{CostProfile, Workflow};

use crate::measure::Context;
use crate::table::TextTable;

/// One workload's position on the parallel-fraction spectrum.
#[derive(Debug, Clone)]
pub struct SpectrumPoint {
    /// Task type measured.
    pub task_type: &'static str,
    /// Nominal parallel fraction of the dominant task (CPU model).
    pub parallel_fraction: f64,
    /// Measured GPU-over-CPU user-code speedup (signed).
    pub user_speedup: f64,
}

/// The generalizability study result.
#[derive(Debug, Clone)]
pub struct Generalizability {
    /// Points ordered by parallel fraction, ascending.
    pub points: Vec<SpectrumPoint>,
}

fn measure(
    ctx: &Context,
    wf: &Workflow,
    task_type: &'static str,
    cost: CostProfile,
) -> SpectrumPoint {
    let user = |p: ProcessorKind| {
        ctx.run_default(wf, p)
            .report()
            .expect("workload fits")
            .metrics
            .task_type(task_type)
            .expect("task ran")
            .user_code
    };
    let cpu_model = ClusterSpec::minotauro().node.cpu;
    SpectrumPoint {
        task_type,
        parallel_fraction: cost.parallel_fraction(&cpu_model),
        user_speedup: signed_speedup(user(ProcessorKind::Cpu), user(ProcessorKind::Gpu)),
    }
}

/// Runs the spectrum study.
pub fn run(ctx: &Context) -> Generalizability {
    use gpuflow_algorithms::calibration;
    let mut points = Vec::new();

    // add_func from the Matmul 8 GB / 8x8 workflow (fully parallel but
    // memory-bound: the degenerate end of the spectrum).
    let mm = MatmulConfig::new(gpuflow_data::paper::matmul_8gb(), 8).expect("valid grid");
    let order = mm.spec.block.rows;
    let mm_wf = mm.build_workflow();
    points.push(measure(
        ctx,
        &mm_wf,
        "add_func",
        calibration::add_func_cost(order, order),
    ));

    // Low-K K-means: serial-fraction-dominated.
    let km10 = KmeansConfig::new(gpuflow_data::paper::kmeans_10gb(), 64, 10, 1).expect("valid");
    let m = km10.spec.block.rows;
    let km10_wf = km10.build_workflow();
    points.push(measure(
        ctx,
        &km10_wf,
        "partial_sum",
        calibration::partial_sum_cost(m, 100, 10),
    ));

    // KNN: the intermediate point.
    let knn = KnnConfig::new(gpuflow_data::paper::kmeans_10gb(), 64, 512, 10).expect("valid");
    let knn_wf = knn.build_workflow();
    points.push(measure(
        ctx,
        &knn_wf,
        "knn_partial",
        knn_partial_cost(m, 100, 512, 10),
    ));

    // High-K K-means: the parallel fraction swings toward 1.
    let km1000 = KmeansConfig::new(gpuflow_data::paper::kmeans_10gb(), 64, 1000, 1).expect("valid");
    let km1000_wf = km1000.build_workflow();
    points.push(measure(
        ctx,
        &km1000_wf,
        "partial_sum",
        calibration::partial_sum_cost(m, 100, 1000),
    ));

    // matmul_func: fully parallel and compute-dense.
    points.push(measure(
        ctx,
        &mm_wf,
        "matmul_func",
        calibration::matmul_func_cost(order, order, order),
    ));

    points.sort_by(|a, b| {
        a.parallel_fraction
            .partial_cmp(&b.parallel_fraction)
            .expect("finite fractions")
    });
    Generalizability { points }
}

impl Generalizability {
    /// Renders the spectrum table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Generalizability: parallel-fraction spectrum (extension of Fig. 12)",
            ["task", "parallel fraction", "GPU user-code speedup"],
        );
        for p in &self.points {
            t.push([
                p.task_type.to_string(),
                format!("{:.3}", p.parallel_fraction),
                format!("{:+.2}x", p.user_speedup),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_tracks_the_spectrum_where_compute_is_dense() {
        let g = run(&Context::default());
        assert_eq!(g.points.len(), 5);
        let by_name = |n: &str| {
            g.points
                .iter()
                .find(|p| p.task_type == n)
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        let add = by_name("add_func");
        let knn = by_name("knn_partial");
        let mm = by_name("matmul_func");
        // Compute-dense tasks order by parallel fraction...
        assert!(
            knn.user_speedup > 1.0,
            "knn should win on GPU: {}",
            knn.user_speedup
        );
        assert!(mm.user_speedup > knn.user_speedup);
        // ...while add_func shows a high fraction is NOT sufficient — its
        // arithmetic intensity is too low (the O3 caveat the advisor's
        // upper-bound rule captures).
        assert!(add.parallel_fraction > 0.9);
        assert!(add.user_speedup < 0.0);
        assert!(g.render().contains("knn_partial"));
    }

    #[test]
    fn kmeans_fraction_grows_with_clusters_in_the_spectrum() {
        let g = run(&Context::default());
        let fracs: Vec<f64> = g
            .points
            .iter()
            .filter(|p| p.task_type == "partial_sum")
            .map(|p| p.parallel_fraction)
            .collect();
        assert_eq!(fracs.len(), 2);
        assert!(fracs[0] < fracs[1], "sorted ascending: {fracs:?}");
    }
}
