//! Interprocedural nondeterminism taint (rule `D5`).
//!
//! The per-function determinism rules (D1–D4) see a hash iteration or a
//! wall clock only at the function that contains it. But a
//! nondeterministic value can *escape*: a helper returns
//! `map.keys().collect::<Vec<_>>()`, a wrapper returns `host_nanos()`,
//! and the value only reaches artifact bytes three calls later. This
//! pass closes that hole:
//!
//! * **sources** — token patterns inside one function body that produce
//!   nondeterministic values: unordered hash iteration (non-neutral
//!   chains, reusing the D1 chain walk), wall clocks, thread ids,
//!   pointer→integer casts, unstable sorts, and RNG state;
//! * **propagation** — a function is tainted when its body contains a
//!   source or when it calls a tainted function (its return value and
//!   side effects may carry the callee's value). The closure is a
//!   monotone fixpoint over the call graph — adding a call edge can
//!   only *add* findings, a property the proptest suite pins via
//!   [`sink_source_pairs`];
//! * **sinks** — functions whose name marks them as shaping
//!   deterministic output: artifact/report rendering, fingerprints,
//!   metrics exposition, journal/log rendering, telemetry emission.
//!
//! A `D5` fires for each (sink, source-function) pair reachable through
//! at least one call edge — a source *inside* a sink body is D1/D2's
//! job — and the diagnostic carries the full call chain, sink first.
//! Suppress at the sink-side call site the finding anchors to.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};
use crate::report::{ChainHop, Finding};
use crate::rules::RuleCode;
use crate::symbols::SymbolGraph;

/// Name fragments that mark a function as a deterministic-output sink.
pub const SINK_FRAGMENTS: [&str; 7] = [
    "render",
    "expose",
    "to_json",
    "fingerprint",
    "emit",
    "export",
    "exposition",
];

/// One local taint source inside a function body.
#[derive(Debug, Clone)]
pub struct Source {
    /// What kind of nondeterminism (used in the diagnostic).
    pub kind: &'static str,
    /// 1-based line of the source token.
    pub line: u32,
}

/// Scans one function body's tokens for local taint sources.
/// `hash_names` are the file's hash-container bindings (from the D1
/// pre-pass).
pub fn local_sources(body: &[Tok], hash_names: &[String]) -> Vec<Source> {
    let mut out = Vec::new();
    for i in 0..body.len() {
        let t = &body[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |k: usize, s: &str| matches!(body.get(i + k), Some(n) if n.is_punct(s));
        let ident_at = |k: usize, s: &str| matches!(body.get(i + k), Some(n) if n.is_ident(s));
        // Wall clocks.
        if (t.is_ident("Instant") && next_is(1, "::") && ident_at(2, "now"))
            || (t.is_ident("SystemTime") && next_is(1, "::"))
        {
            out.push(Source {
                kind: "wall clock",
                line: t.line,
            });
            continue;
        }
        // Thread identity.
        if t.is_ident("thread") && next_is(1, "::") && ident_at(2, "current") {
            out.push(Source {
                kind: "thread id",
                line: t.line,
            });
            continue;
        }
        // RNG state.
        if t.is_ident("thread_rng") || t.is_ident("RandomState") || t.is_ident("from_entropy") {
            out.push(Source {
                kind: "RNG state",
                line: t.line,
            });
            continue;
        }
        // Unstable sort: deterministic for total keys, but the linter
        // cannot prove totality of the comparison key.
        if t.text.starts_with("sort_unstable") && i > 0 && body[i - 1].is_punct(".") {
            out.push(Source {
                kind: "unstable sort",
                line: t.line,
            });
            continue;
        }
        // Pointer→integer cast: `as *const T ... as usize` or
        // `.as_ptr() as usize` — address-space values differ per run.
        if t.is_ident("as_ptr") && i > 0 && body[i - 1].is_punct(".") && next_is(1, "(") {
            let after = i + 3; // `as_ptr ( )` → token after the close
            if matches!(body.get(after), Some(n) if n.is_ident("as")) {
                out.push(Source {
                    kind: "pointer-to-int cast",
                    line: t.line,
                });
                continue;
            }
        }
        if t.is_ident("as")
            && next_is(1, "*")
            && (ident_at(2, "const") || ident_at(2, "mut"))
            && body.iter().skip(i + 3).take(6).any(|n| n.is_ident("as"))
        {
            out.push(Source {
                kind: "pointer-to-int cast",
                line: t.line,
            });
            continue;
        }
        // Unordered hash iteration whose chain is not order-neutral.
        if hash_names.contains(&t.text)
            && next_is(1, ".")
            && matches!(body.get(i + 2), Some(n) if crate::scan::is_iter_family(&n.text))
            && next_is(3, "(")
            && !crate::scan::chain_is_neutral(body, i + 2)
        {
            out.push(Source {
                kind: "hash-order iteration",
                line: t.line,
            });
        }
    }
    out
}

/// Whether a function name marks a deterministic-output sink.
pub fn is_sink_name(name: &str) -> bool {
    SINK_FRAGMENTS.iter().any(|f| name.contains(f))
}

/// Pure reachability core, exposed for the monotonicity proptest.
///
/// `edges` are (caller, callee) pairs over `n` functions; `sources` and
/// `sinks` are function indices. Returns, for each sink, every source
/// function reachable through **at least one** call edge, with the
/// shortest call path (ties broken toward smaller function indices).
/// Output is sorted by (sink, source).
pub fn sink_source_pairs(
    n: usize,
    edges: &[(usize, usize)],
    sources: &[usize],
    sinks: &[usize],
) -> Vec<(usize, usize, Vec<usize>)> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        if a < n && b < n {
            adj[a].push(b);
        }
    }
    for nbrs in &mut adj {
        nbrs.sort();
        nbrs.dedup();
    }
    let is_source = {
        let mut v = vec![false; n];
        for &s in sources {
            if s < n {
                v[s] = true;
            }
        }
        v
    };
    let mut out = Vec::new();
    let mut sorted_sinks: Vec<usize> = sinks.iter().copied().filter(|&s| s < n).collect();
    sorted_sinks.sort();
    sorted_sinks.dedup();
    for &sink in &sorted_sinks {
        // BFS from the sink along call edges; parent pointers rebuild
        // the shortest chain. Visiting in index order makes ties
        // deterministic.
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[sink] = true;
        queue.push_back(sink);
        let mut found: Vec<(usize, Vec<usize>)> = Vec::new();
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some(u);
                    if is_source[v] {
                        let mut chain = vec![v];
                        let mut w = v;
                        while let Some(p) = parent[w] {
                            chain.push(p);
                            w = p;
                        }
                        chain.reverse(); // sink ... source
                        found.push((v, chain));
                    }
                    queue.push_back(v);
                }
            }
        }
        found.sort_by_key(|a| a.0);
        for (src, chain) in found {
            out.push((sink, src, chain));
        }
    }
    out
}

/// Runs the D5 pass over the symbol graph. `fn_sources` holds each
/// function's local sources (parallel to `graph.fns`).
pub fn check(graph: &SymbolGraph, fn_sources: &[Vec<Source>]) -> Vec<Finding> {
    let n = graph.fns.len();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // (caller, callee) → first call site, for anchoring diagnostics.
    let mut site: BTreeMap<(usize, usize), (u32, u32)> = BTreeMap::new();
    for c in &graph.calls {
        for &callee in &c.callees {
            edges.push((c.caller, callee));
            site.entry((c.caller, callee)).or_insert((c.line, c.col));
        }
    }
    let sources: Vec<usize> = (0..n).filter(|&i| !fn_sources[i].is_empty()).collect();
    let sinks: Vec<usize> = (0..n)
        .filter(|&i| is_sink_name(&graph.fns[i].name))
        .collect();
    let mut out = Vec::new();
    for (sink, src, chain) in sink_source_pairs(n, &edges, &sources, &sinks) {
        let first = &fn_sources[src][0];
        // Anchor at the first call edge out of the sink.
        let (line, col) = site
            .get(&(chain[0], chain[1]))
            .copied()
            .unwrap_or((graph.fns[sink].line, 1));
        let hops: Vec<ChainHop> = chain
            .iter()
            .map(|&f| ChainHop {
                func: graph.label(f),
                file: graph.files[graph.fns[f].file].clone(),
                line: graph.fns[f].line,
            })
            .collect();
        let chain_text: Vec<String> = hops.iter().map(|h| h.func.clone()).collect();
        out.push(
            Finding::new(
                RuleCode::D5,
                &graph.files[graph.fns[sink].file],
                line,
                col,
                format!(
                    "{} in `{}` ({}:{}) reaches sink `{}` via {}",
                    first.kind,
                    graph.label(src),
                    graph.files[graph.fns[src].file],
                    first.line,
                    graph.label(sink),
                    chain_text.join(" -> "),
                ),
            )
            .with_chain(hops),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_require_at_least_one_edge() {
        // Sink 0 is itself a source: no pair (local rules own that).
        let pairs = sink_source_pairs(2, &[], &[0], &[0]);
        assert!(pairs.is_empty());
        // One edge sink→source: one pair with the 2-hop chain.
        let pairs = sink_source_pairs(2, &[(0, 1)], &[1], &[0]);
        assert_eq!(pairs, vec![(0, 1, vec![0, 1])]);
    }

    #[test]
    fn shortest_chain_wins() {
        // 0→1→2 and 0→2: the direct edge is the reported chain.
        let pairs = sink_source_pairs(3, &[(0, 1), (1, 2), (0, 2)], &[2], &[0]);
        assert_eq!(pairs, vec![(0, 2, vec![0, 2])]);
    }

    #[test]
    fn cycles_terminate() {
        let pairs = sink_source_pairs(3, &[(0, 1), (1, 0), (1, 2)], &[2], &[0]);
        assert_eq!(pairs, vec![(0, 2, vec![0, 1, 2])]);
    }

    #[test]
    fn wall_clock_and_thread_sources_detected() {
        let lexed = crate::lexer::lex("let a = Instant::now(); let b = thread::current().id();");
        let srcs = local_sources(&lexed.tokens, &[]);
        let kinds: Vec<&str> = srcs.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec!["wall clock", "thread id"]);
    }

    #[test]
    fn unstable_sort_and_ptr_casts_detected() {
        let lexed =
            crate::lexer::lex("v.sort_unstable_by_key(|x| x.0); let p = b.as_ptr() as usize;");
        let srcs = local_sources(&lexed.tokens, &[]);
        let kinds: Vec<&str> = srcs.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec!["unstable sort", "pointer-to-int cast"]);
    }

    #[test]
    fn neutral_hash_chains_are_not_sources() {
        let lexed =
            crate::lexer::lex("let n = m.iter().count(); let v: Vec<_> = m.keys().collect();");
        let names = vec!["m".to_string()];
        let srcs = local_sources(&lexed.tokens, &names);
        // `.count()` neutral; bare `.collect()` escapes → one source.
        assert_eq!(srcs.len(), 1);
        assert_eq!(srcs[0].kind, "hash-order iteration");
    }
}
