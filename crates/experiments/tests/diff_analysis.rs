//! Differential-analysis acceptance tests over real artifact runs:
//! the record- and telemetry-fed critical paths must agree, diff blame
//! tables must conserve the makespan delta on real run pairs, and
//! profiles/diffs must be byte-identical at every thread count.

use gpuflow_algorithms::{KmeansConfig, MatmulConfig};
use gpuflow_cluster::{ProcessorKind, StorageArchitecture};
use gpuflow_experiments::{gate, Context};
use gpuflow_runtime::trace_analysis::{critical_path, critical_path_from_telemetry};
use gpuflow_runtime::{RunConfig, RunDiff, RunProfile, RunReport, SchedulingPolicy, Workflow};

/// The artifact-run configurations the tests sweep: both workloads,
/// both processors, both storage architectures, both policies.
fn artifact_runs() -> Vec<(&'static str, Workflow, RunConfig)> {
    let ctx = Context::default();
    let matmul = || {
        MatmulConfig::new(gpuflow_data::paper::matmul_128mb(), 4)
            .unwrap()
            .build_workflow()
    };
    let kmeans = || {
        KmeansConfig::new(gpuflow_data::paper::kmeans_100mb(), 8, 10, 2)
            .unwrap()
            .build_workflow()
    };
    let cfg = |proc, storage, policy| {
        RunConfig::new(ctx.cluster.clone(), proc)
            .with_storage(storage)
            .with_policy(policy)
            .with_seed(ctx.base_seed)
            .with_telemetry()
    };
    vec![
        (
            "matmul cpu shared fifo",
            matmul(),
            cfg(
                ProcessorKind::Cpu,
                StorageArchitecture::SharedDisk,
                SchedulingPolicy::GenerationOrder,
            ),
        ),
        (
            "matmul gpu shared fifo",
            matmul(),
            cfg(
                ProcessorKind::Gpu,
                StorageArchitecture::SharedDisk,
                SchedulingPolicy::GenerationOrder,
            ),
        ),
        (
            "kmeans cpu shared fifo",
            kmeans(),
            cfg(
                ProcessorKind::Cpu,
                StorageArchitecture::SharedDisk,
                SchedulingPolicy::GenerationOrder,
            ),
        ),
        (
            "kmeans gpu local locality",
            kmeans(),
            cfg(
                ProcessorKind::Gpu,
                StorageArchitecture::LocalDisk,
                SchedulingPolicy::DataLocality,
            ),
        ),
    ]
}

fn profile(label: &str, workflow: &Workflow, report: &RunReport) -> RunProfile {
    RunProfile::from_telemetry(label, workflow, &report.telemetry, report.makespan()).unwrap()
}

#[test]
fn critical_paths_agree_between_records_and_telemetry() {
    for (label, workflow, cfg) in artifact_runs() {
        let report = gpuflow_runtime::run(&workflow, &cfg).unwrap();
        let from_records = critical_path(&workflow, &report.records);
        let from_telemetry = critical_path_from_telemetry(&workflow, &report.telemetry);
        assert!(!from_records.is_empty(), "{label}: empty critical path");
        assert_eq!(
            from_records, from_telemetry,
            "{label}: record- and telemetry-fed critical paths diverge"
        );
    }
}

#[test]
fn blame_table_conserves_makespan_delta_on_artifact_pairs() {
    let runs = artifact_runs();
    let profiles: Vec<RunProfile> = runs
        .iter()
        .map(|(label, workflow, cfg)| {
            let report = gpuflow_runtime::run(workflow, cfg).unwrap();
            profile(label, workflow, &report)
        })
        .collect();
    // Two same-workload pairs (CPU vs GPU matmul; fifo/shared vs
    // locality/local kmeans) plus a cross-workload pair.
    let pairs = [(0usize, 1usize), (2, 3), (0, 2)];
    for (a, b) in pairs {
        let diff = RunDiff::compare(&profiles[a], &profiles[b]);
        assert!(
            diff.is_conservative(),
            "{} vs {}: attributed {} ns != makespan delta {} ns",
            profiles[a].label,
            profiles[b].label,
            diff.attributed_delta_ns(),
            diff.makespan_delta_ns()
        );
        assert_ne!(
            diff.makespan_delta_ns(),
            0,
            "pair should differ: {} vs {}",
            profiles[a].label,
            profiles[b].label
        );
    }
}

#[test]
fn profiles_and_diffs_are_byte_identical_across_thread_counts() {
    let render_all = |threads: usize| {
        let ctx = Context::default().with_threads(threads);
        let profiles = gate::suite_profiles(&ctx);
        let mut out = String::new();
        for (_, p) in &profiles {
            out.push_str(&p.render());
        }
        // Diff every adjacent pair, in both text and JSON form.
        for pair in profiles.windows(2) {
            let diff = RunDiff::compare(&pair[0].1, &pair[1].1);
            out.push_str(&diff.render());
            out.push_str(&diff.to_json());
        }
        out
    };
    let one = render_all(1);
    assert_eq!(one, render_all(4), "threads 1 vs 4 differ");
    assert_eq!(one, render_all(8), "threads 1 vs 8 differ");
}

#[test]
fn profile_render_parse_is_a_fixed_point_on_real_runs() {
    for (label, workflow, cfg) in artifact_runs() {
        let report = gpuflow_runtime::run(&workflow, &cfg).unwrap();
        let p = profile(label, &workflow, &report);
        let text = p.render();
        let reparsed = RunProfile::parse(&text).unwrap();
        assert_eq!(p, reparsed, "{label}: parse(render) != id");
        assert_eq!(text, reparsed.render(), "{label}: render not a fixed point");
    }
}
