//! Distributed k-nearest-neighbour query — an *additional* workload
//! beyond the paper's two.
//!
//! §5.5.1 argues that algorithms between the two studied extremes (fully
//! parallelizable Matmul vs. serial-heavy K-means) would "give more data
//! points ... to devise a method to decide when it is worth exploiting
//! GPUs based on the ratio of parallel / serial code". KNN is exactly
//! such a point: its distance computation is massively parallel, but the
//! per-query top-k selection is serial bookkeeping with a bigger share
//! than Matmul's zero and a smaller one than low-K K-means.
//!
//! Structure (mirroring dislib's `KNeighborsClassifier`): one
//! `knn_partial` task per row-block computes block-local top-k candidates
//! for every query; CPU-side `knn_merge` tasks fold the candidate sets.

use gpuflow_cluster::KernelWork;
use gpuflow_data::{
    squared_distance, BlockCoord, DatasetSpec, DsArray, DsArraySpec, GridDim, Matrix,
    PartitionError,
};
use gpuflow_runtime::{CostProfile, DataId, Direction, Workflow, WorkflowBuilder};

/// Serial-selection work coefficient (equivalent flops per candidate).
const KNN_SELECT_COEFF: f64 = 40.0;

/// Cost of one `knn_partial` task: `m` block rows × `n` features against
/// `q` queries, keeping the top `k`.
pub fn knn_partial_cost(m: u64, n: u64, q: u64, k: u64) -> CostProfile {
    let (mf, nf, qf, kf) = (m as f64, n as f64, q as f64, k as f64);
    // Distance computation: fully data-parallel.
    let parallel = KernelWork {
        flops: 2.0 * mf * nf * qf,
        bytes: 4.0 * mf * nf * qf.min(64.0), // tiled query passes
        parallelism: mf * qf,
    };
    // Top-k selection per query: a serial scan with a small heap.
    let serial = KernelWork {
        flops: KNN_SELECT_COEFF * mf * qf.max(1.0) * (1.0 + kf.log2().max(0.0)),
        bytes: mf * qf * 8.0,
        parallelism: 1.0,
    };
    let dist_matrix = m * q * 8;
    CostProfile::partially_parallel(serial, parallel)
        .with_gpu_extra(dist_matrix)
        .with_host_extra((dist_matrix as f64 * 1.5) as u64)
}

/// Cost of merging `arity` candidate sets of `q × k` entries.
pub fn knn_merge_cost(q: u64, k: u64, arity: usize) -> CostProfile {
    let work = (q * k) as f64 * arity as f64;
    CostProfile::serial_only(KernelWork {
        flops: 25.0 * work,
        bytes: work * 16.0,
        parallelism: 1.0,
    })
}

/// Configuration of one distributed KNN-query workflow.
#[derive(Debug, Clone)]
pub struct KnnConfig {
    /// The row-wise partitioned reference dataset.
    pub spec: DsArraySpec,
    /// Number of query points.
    pub queries: u64,
    /// Neighbours per query.
    pub k: u64,
    /// Fan-in of the candidate-merge tree.
    pub merge_arity: usize,
}

impl KnnConfig {
    /// Partitions `dataset` into `grid_rows × 1` row-wise blocks.
    ///
    /// # Errors
    /// Propagates partitioning violations.
    pub fn new(
        dataset: DatasetSpec,
        grid_rows: u64,
        queries: u64,
        k: u64,
    ) -> Result<Self, PartitionError> {
        let spec = DsArraySpec::partition(dataset, GridDim::row_wise(grid_rows))?;
        Ok(KnnConfig {
            spec,
            queries,
            k,
            merge_arity: 4,
        })
    }

    /// Bytes of one candidate set: `q × k` (distance, index) pairs.
    fn candidates_bytes(&self) -> u64 {
        self.queries * self.k * 16
    }

    /// Builds the dependency DAG.
    pub fn build_workflow(&self) -> Workflow {
        let mut b = WorkflowBuilder::new();
        let n = self.spec.dataset.dim.cols;
        let queries = b.input("queries", self.queries * n * 8);
        let mut candidates: Vec<DataId> = self
            .spec
            .coords()
            .map(|c| {
                let dim = self.spec.block_dim_at(c);
                let block = b.input(
                    format!("X[{}]", c.row),
                    dim.bytes(self.spec.dataset.elem_bytes),
                );
                let out = b.intermediate(format!("cand[{}]", c.row), self.candidates_bytes());
                b.submit(
                    "knn_partial",
                    knn_partial_cost(dim.rows, n, self.queries, self.k),
                    &[
                        (block, Direction::In),
                        (queries, Direction::In),
                        (out, Direction::Out),
                    ],
                    false,
                )
                .expect("valid knn task");
                out
            })
            .collect();
        let mut round = 0;
        while candidates.len() > 1 {
            let mut next = Vec::with_capacity(candidates.len().div_ceil(self.merge_arity));
            for group in candidates.chunks(self.merge_arity) {
                if group.len() == 1 {
                    next.push(group[0]);
                    continue;
                }
                let merged = b.intermediate(
                    format!("kmerge[{round},{}]", next.len()),
                    self.candidates_bytes(),
                );
                let mut accesses: Vec<(DataId, Direction)> =
                    group.iter().map(|&p| (p, Direction::In)).collect();
                accesses.push((merged, Direction::Out));
                b.submit(
                    "knn_merge",
                    knn_merge_cost(self.queries, self.k, group.len()),
                    &accesses,
                    true,
                )
                .expect("valid merge task");
                next.push(merged);
            }
            candidates = next;
            round += 1;
        }
        b.build()
    }
}

/// Block-local top-k candidates for every query: `(distance², global row
/// index)` pairs, ascending by distance.
pub fn knn_partial(
    block: &Matrix,
    row_offset: usize,
    queries: &Matrix,
    k: usize,
) -> Vec<Vec<(f64, usize)>> {
    assert_eq!(block.cols(), queries.cols(), "feature count mismatch");
    (0..queries.rows())
        .map(|qi| {
            let q = queries.row(qi);
            let mut cands: Vec<(f64, usize)> = (0..block.rows())
                .map(|ri| (squared_distance(block.row(ri), q), row_offset + ri))
                .collect();
            cands.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
            cands.truncate(k);
            cands
        })
        .collect()
}

/// Merges per-block candidate sets into global top-k per query.
pub fn knn_merge(partials: &[Vec<Vec<(f64, usize)>>], k: usize) -> Vec<Vec<(f64, usize)>> {
    assert!(!partials.is_empty());
    let queries = partials[0].len();
    (0..queries)
        .map(|qi| {
            let mut all: Vec<(f64, usize)> = partials
                .iter()
                .flat_map(|p| p[qi].iter().copied())
                .collect();
            all.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
            all.truncate(k);
            all
        })
        .collect()
}

/// Functional reference: blocked KNN over a [`DsArray`], mirroring the
/// workflow's partial/merge structure.
pub fn reference_knn(data: &DsArray, queries: &Matrix, k: usize) -> Vec<Vec<(f64, usize)>> {
    let spec = data.spec();
    let mut offset = 0usize;
    let partials: Vec<_> = (0..spec.grid.rows)
        .map(|row| {
            let block = data.block(BlockCoord { row, col: 0 });
            let p = knn_partial(block, offset, queries, k);
            offset += block.rows();
            p
        })
        .collect();
    knn_merge(&partials, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpuflow_cluster::ClusterSpec;

    #[test]
    fn partial_finds_nearest_within_block() {
        let block = Matrix::from_vec(3, 1, vec![0.0, 5.0, 10.0]);
        let queries = Matrix::from_vec(1, 1, vec![4.0]);
        let got = knn_partial(&block, 100, &queries, 2);
        assert_eq!(got[0].len(), 2);
        assert_eq!(got[0][0].1, 101, "5.0 is nearest to 4.0");
        assert_eq!(got[0][1].1, 100);
    }

    #[test]
    fn blocked_knn_matches_single_block() {
        let ds = DatasetSpec::uniform("knn", 400, 6, 17);
        let m = ds.materialize().unwrap();
        let queries = DatasetSpec::uniform("q", 5, 6, 21).materialize().unwrap();
        let single = DsArray::from_matrix(ds.clone(), &m, GridDim::row_wise(1)).unwrap();
        let blocked = DsArray::from_matrix(ds, &m, GridDim::row_wise(8)).unwrap();
        let a = reference_knn(&single, &queries, 7);
        let b = reference_knn(&blocked, &queries, 7);
        assert_eq!(a, b, "chunking must not change neighbours");
    }

    #[test]
    fn reference_agrees_with_brute_force() {
        let ds = DatasetSpec::uniform("knn", 200, 4, 3);
        let m = ds.materialize().unwrap();
        let queries = DatasetSpec::uniform("q", 3, 4, 4).materialize().unwrap();
        let arr = DsArray::from_matrix(ds, &m, GridDim::row_wise(5)).unwrap();
        let got = reference_knn(&arr, &queries, 4);
        for (qi, cands) in got.iter().enumerate() {
            // Brute force over the whole matrix.
            let mut brute: Vec<(f64, usize)> = (0..m.rows())
                .map(|ri| (squared_distance(m.row(ri), queries.row(qi)), ri))
                .collect();
            brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
            brute.truncate(4);
            assert_eq!(*cands, brute, "query {qi}");
        }
    }

    #[test]
    fn workflow_has_one_partial_per_block() {
        let cfg = KnnConfig::new(DatasetSpec::uniform("knn", 8_000, 10, 1), 8, 100, 5).unwrap();
        let wf = cfg.build_workflow();
        let partials = wf
            .tasks()
            .iter()
            .filter(|t| t.task_type == "knn_partial")
            .count();
        let merges = wf
            .tasks()
            .iter()
            .filter(|t| t.task_type == "knn_merge")
            .count();
        assert_eq!(partials, 8);
        assert_eq!(merges, 3); // 8 -> 2 -> 1 with arity 4
        wf.check_invariants().unwrap();
    }

    #[test]
    fn parallel_fraction_sits_between_the_extremes() {
        // §5.5.1: KNN is a data point between low-K K-means and Matmul.
        let cpu = ClusterSpec::minotauro().node.cpu;
        let kmeans = crate::calibration::partial_sum_cost(48_828, 100, 10).parallel_fraction(&cpu);
        let knn = knn_partial_cost(48_828, 100, 512, 10).parallel_fraction(&cpu);
        let matmul = crate::calibration::matmul_func_cost(2048, 2048, 2048).parallel_fraction(&cpu);
        assert!(
            kmeans < knn && knn < matmul,
            "expected ordering: kmeans {kmeans:.2} < knn {knn:.2} < matmul {matmul:.2}"
        );
    }
}
