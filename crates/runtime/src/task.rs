//! Task specifications: what a task accesses, what it costs, where it may
//! run.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use gpuflow_cluster::{CpuModel, KernelWork};

use crate::data::{DataId, Direction};

/// Identifier of a task within one workflow, in generation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Interned task-type name. All tasks of one type share a single
/// allocation, so cloning a type into per-task records and metric keys
/// is a reference-count bump rather than a string copy.
///
/// Orders, hashes, and compares exactly like the underlying string, and
/// borrows as `str`, so `BTreeMap<TaskType, _>` lookups work with plain
/// `&str` keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskType(Arc<str>);

impl TaskType {
    /// Interns `name` as a task type.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        TaskType(name.into())
    }

    /// The type name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for TaskType {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for TaskType {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for TaskType {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TaskType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TaskType {
    fn from(name: &str) -> Self {
        TaskType(name.into())
    }
}

impl From<String> for TaskType {
    fn from(name: String) -> Self {
        TaskType(name.into())
    }
}

impl From<&String> for TaskType {
    fn from(name: &String) -> Self {
        TaskType(name.as_str().into())
    }
}

impl PartialEq<str> for TaskType {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for TaskType {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for TaskType {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<TaskType> for &str {
    fn eq(&self, other: &TaskType) -> bool {
        *self == other.as_str()
    }
}

/// One parameter access of a task, with the version resolved by the
/// workflow builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Param {
    /// The accessed object.
    pub data: DataId,
    /// Access direction.
    pub dir: Direction,
    /// For reads: the version consumed. For writes: the version produced.
    /// For `InOut`, the version produced (the consumed one is
    /// `version - 1`).
    pub version: u32,
}

/// The cost model of one task's user code (Fig. 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProfile {
    /// Serial fraction: always executed on the host CPU core.
    pub serial: KernelWork,
    /// Parallel fraction: executed on the CPU core or offloaded to a GPU.
    pub parallel: KernelWork,
    /// Device-side intermediates beyond inputs+outputs (e.g. the K-means
    /// pairwise-distance matrix) for the GPU OOM check, bytes.
    pub gpu_extra_bytes: u64,
    /// Host-side intermediates for the host OOM check, bytes.
    pub host_extra_bytes: u64,
}

impl CostProfile {
    /// A profile with only a parallel fraction (the paper's fully
    /// parallel tasks: `matmul_func`, `add_func`).
    pub fn fully_parallel(parallel: KernelWork) -> Self {
        CostProfile {
            serial: KernelWork::NONE,
            parallel,
            gpu_extra_bytes: 0,
            host_extra_bytes: 0,
        }
    }

    /// A profile with serial and parallel fractions (partially parallel
    /// tasks: K-means `partial_sum`).
    pub fn partially_parallel(serial: KernelWork, parallel: KernelWork) -> Self {
        CostProfile {
            serial,
            parallel,
            gpu_extra_bytes: 0,
            host_extra_bytes: 0,
        }
    }

    /// A serial-only profile (reduction/merge bookkeeping tasks).
    pub fn serial_only(serial: KernelWork) -> Self {
        CostProfile {
            serial,
            parallel: KernelWork::NONE,
            gpu_extra_bytes: 0,
            host_extra_bytes: 0,
        }
    }

    /// Sets the device-side intermediate footprint.
    pub fn with_gpu_extra(mut self, bytes: u64) -> Self {
        self.gpu_extra_bytes = bytes;
        self
    }

    /// Sets the host-side intermediate footprint.
    pub fn with_host_extra(mut self, bytes: u64) -> Self {
        self.host_extra_bytes = bytes;
        self
    }

    /// The task's parallel fraction as measured on a CPU: the share of
    /// user-code time spent in the parallelizable part. This is the
    /// "parallel fraction" factor of Table 1 and Fig. 11.
    pub fn parallel_fraction(&self, cpu: &CpuModel) -> f64 {
        let ts = cpu.time(&self.serial).as_secs_f64();
        let tp = cpu.time(&self.parallel).as_secs_f64();
        if ts + tp <= 0.0 {
            0.0
        } else {
            tp / (ts + tp)
        }
    }
}

/// A task as submitted to the runtime.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Identifier (generation order).
    pub id: TaskId,
    /// Task type name — tasks sharing a name aggregate together in the
    /// paper's user-code metrics (e.g. `"matmul_func"`).
    pub task_type: TaskType,
    /// Parameter accesses with resolved versions.
    pub params: Vec<Param>,
    /// Cost model.
    pub cost: CostProfile,
    /// Force host execution even in a GPU run (reduction bookkeeping that
    /// dislib keeps on the CPU).
    pub cpu_only: bool,
}

impl TaskSpec {
    /// Parameters read by this task (with the version each one consumes).
    pub fn reads(&self) -> impl Iterator<Item = (DataId, u32)> + '_ {
        self.params.iter().filter(|p| p.dir.reads()).map(|p| {
            let version = match p.dir {
                Direction::InOut => p.version - 1,
                _ => p.version,
            };
            (p.data, version)
        })
    }

    /// Parameters written by this task (with the version produced).
    pub fn writes(&self) -> impl Iterator<Item = (DataId, u32)> + '_ {
        self.params
            .iter()
            .filter(|p| p.dir.writes())
            .map(|p| (p.data, p.version))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(flops: f64) -> KernelWork {
        KernelWork {
            flops,
            bytes: flops,
            parallelism: flops,
        }
    }

    #[test]
    fn parallel_fraction_of_fully_parallel_task_is_one() {
        let cpu = CpuModel {
            peak_flops: 1e9,
            mem_bw: 1e9,
        };
        let p = CostProfile::fully_parallel(work(1e6));
        assert_eq!(p.parallel_fraction(&cpu), 1.0);
    }

    #[test]
    fn parallel_fraction_of_serial_task_is_zero() {
        let cpu = CpuModel {
            peak_flops: 1e9,
            mem_bw: 1e9,
        };
        let p = CostProfile::serial_only(work(1e6));
        assert_eq!(p.parallel_fraction(&cpu), 0.0);
    }

    #[test]
    fn parallel_fraction_weighs_cpu_times() {
        let cpu = CpuModel {
            peak_flops: 1e9,
            mem_bw: 1e9,
        };
        // Serial 1e6 flops, parallel 3e6 flops: fraction 0.75.
        let p = CostProfile::partially_parallel(work(1e6), work(3e6));
        assert!((p.parallel_fraction(&cpu) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn reads_resolve_inout_to_previous_version() {
        let spec = TaskSpec {
            id: TaskId(0),
            task_type: "t".into(),
            params: vec![
                Param {
                    data: DataId(0),
                    dir: Direction::In,
                    version: 2,
                },
                Param {
                    data: DataId(1),
                    dir: Direction::InOut,
                    version: 5,
                },
                Param {
                    data: DataId(2),
                    dir: Direction::Out,
                    version: 1,
                },
            ],
            cost: CostProfile::serial_only(KernelWork::NONE),
            cpu_only: false,
        };
        let reads: Vec<_> = spec.reads().collect();
        assert_eq!(reads, vec![(DataId(0), 2), (DataId(1), 4)]);
        let writes: Vec<_> = spec.writes().collect();
        assert_eq!(writes, vec![(DataId(1), 5), (DataId(2), 1)]);
    }
}
