//! Cross-crate integration: functional correctness of the blocked
//! algorithms, executor bookkeeping invariants, determinism, failure
//! modes, and trace export — all through the public `gpuflow` API.

use gpuflow::algorithms::{
    initial_centers, reference_blocked_matmul, reference_fma_matmul, reference_kmeans,
    KmeansConfig, MatmulConfig,
};
use gpuflow::cluster::{ClusterSpec, ProcessorKind};
use gpuflow::data::{DatasetSpec, DsArray, GridDim};
use gpuflow::runtime::{run, RunConfig, RunError};

#[test]
fn blocked_and_fma_matmul_agree_with_dense_at_test_scale() {
    let da = DatasetSpec::uniform("a", 48, 48, 11);
    let db = DatasetSpec::uniform("b", 48, 48, 12);
    let (ma, mb) = (da.materialize().unwrap(), db.materialize().unwrap());
    let dense = ma.matmul(&mb);
    for g in [1u64, 2, 4, 6] {
        let aa = DsArray::from_matrix(da.clone(), &ma, GridDim::square(g)).unwrap();
        let bb = DsArray::from_matrix(db.clone(), &mb, GridDim::square(g)).unwrap();
        assert!(reference_blocked_matmul(&aa, &bb).max_abs_diff(&dense) < 1e-9);
        assert!(reference_fma_matmul(&aa, &bb).max_abs_diff(&dense) < 1e-9);
    }
}

#[test]
fn kmeans_chunking_invariance_and_workflow_structure_agree() {
    // The functional result must be chunking-invariant, and the workflow
    // built for the same configuration must have one partial_sum per
    // block per iteration.
    let ds = DatasetSpec::uniform("km", 4_000, 8, 5);
    let m = ds.materialize().unwrap();
    let init = initial_centers(3, 8, 1);
    let single = DsArray::from_matrix(ds.clone(), &m, GridDim::row_wise(1)).unwrap();
    let blocked = DsArray::from_matrix(ds.clone(), &m, GridDim::row_wise(10)).unwrap();
    let a = reference_kmeans(&single, &init, 3);
    let b = reference_kmeans(&blocked, &init, 3);
    assert!(a.max_abs_diff(&b) < 1e-9);

    let wf = KmeansConfig::new(ds, 10, 3, 3).unwrap().build_workflow();
    let partial_sums = wf
        .tasks()
        .iter()
        .filter(|t| t.task_type == "partial_sum")
        .count();
    assert_eq!(partial_sums, 30);
    wf.check_invariants().unwrap();
}

#[test]
fn executor_bookkeeping_is_consistent() {
    let wf = KmeansConfig::new(DatasetSpec::uniform("t", 64_000, 100, 3), 16, 10, 2)
        .unwrap()
        .build_workflow();
    let cluster = ClusterSpec::minotauro();
    let cfg = RunConfig::new(cluster.clone(), ProcessorKind::Gpu).with_trace();
    let report = run(&wf, &cfg).unwrap();

    // The full bookkeeping audit plus spot checks below.
    report.check_invariants(&wf, &cluster).unwrap();
    assert_eq!(report.records.len(), wf.tasks().len());
    // User code decomposes into its fractions.
    for r in &report.records {
        let sum = r.serial + r.parallel + r.comm;
        assert_eq!(r.user_code(), sum, "task {}", r.task);
        assert!(r.end >= r.start);
    }
    // The makespan covers every record.
    let last_end = report.records.iter().map(|r| r.end).max().unwrap();
    assert!((report.makespan() - last_end.as_secs_f64()).abs() < 1e-9);
    // Level spans never exceed the makespan.
    for lvl in &report.metrics.levels {
        assert!(lvl.span <= report.makespan() + 1e-9);
    }
    // cpu_only merge tasks must not run on the GPU even in a GPU run.
    for r in &report.records {
        if r.task_type == "merge" || r.task_type == "update_centers" {
            assert_eq!(r.processor, ProcessorKind::Cpu);
        } else {
            assert_eq!(r.processor, ProcessorKind::Gpu);
        }
    }
    // Trace CSV round-trips structurally.
    let csv = report.trace.to_csv();
    assert!(csv.lines().count() > wf.tasks().len());
    for line in csv.lines().skip(1) {
        assert_eq!(line.split(',').count(), 6, "bad trace row: {line}");
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let wf = MatmulConfig::new(DatasetSpec::uniform("m", 4_096, 4_096, 2), 4)
        .unwrap()
        .build_workflow();
    let cfg = RunConfig::new(ClusterSpec::minotauro(), ProcessorKind::Gpu);
    let a = run(&wf, &cfg).unwrap();
    let b = run(&wf, &cfg).unwrap();
    assert_eq!(a.makespan().to_bits(), b.makespan().to_bits());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.start, rb.start);
        assert_eq!(ra.end, rb.end);
        assert_eq!(ra.node, rb.node);
    }
    let c = run(&wf, &cfg.clone().with_seed(1234)).unwrap();
    assert_ne!(a.makespan().to_bits(), c.makespan().to_bits());
}

#[test]
fn oom_failures_surface_as_typed_errors() {
    // Matmul 1x1 on the 8 GB dataset: 3 x 8 GiB on a 12 GiB device.
    let wf = MatmulConfig::new(gpuflow::data::paper::matmul_8gb(), 1)
        .unwrap()
        .build_workflow();
    let gpu = run(
        &wf,
        &RunConfig::new(ClusterSpec::minotauro(), ProcessorKind::Gpu),
    );
    assert!(matches!(gpu, Err(RunError::GpuOom { .. })));
    // The same workflow fits host RAM (24 GiB of 128 GiB).
    let cpu = run(
        &wf,
        &RunConfig::new(ClusterSpec::minotauro(), ProcessorKind::Cpu),
    );
    assert!(cpu.is_ok());
    // K-means with a giant distance matrix overflows the host too.
    let wf = KmeansConfig::new(gpuflow::data::paper::kmeans_10gb(), 1, 1000, 1)
        .unwrap()
        .build_workflow();
    let host = run(
        &wf,
        &RunConfig::new(ClusterSpec::minotauro(), ProcessorKind::Cpu),
    );
    assert!(matches!(host, Err(RunError::HostOom { .. })));
}

#[test]
fn task_parallelism_is_bounded_by_device_counts() {
    // 128 independent K-means blocks: the CPU run can use all 128 cores,
    // the GPU run at most 32 devices, so per-level spans differ by the
    // wave count even though GPU tasks are individually faster.
    let wf = KmeansConfig::new(gpuflow::data::paper::kmeans_10gb(), 128, 100, 1)
        .unwrap()
        .build_workflow();
    let cluster = ClusterSpec::minotauro();
    let cpu = run(&wf, &RunConfig::new(cluster.clone(), ProcessorKind::Cpu)).unwrap();
    let gpu = run(&wf, &RunConfig::new(cluster, ProcessorKind::Gpu)).unwrap();

    // Maximum concurrency observed in the records.
    let max_concurrency = |r: &gpuflow::runtime::RunReport, ty: &str| {
        let mut events: Vec<(u64, i32)> = Vec::new();
        for rec in r.records.iter().filter(|x| x.task_type == ty) {
            events.push((rec.start.as_nanos(), 1));
            events.push((rec.end.as_nanos(), -1));
        }
        events.sort();
        let (mut cur, mut peak) = (0, 0);
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak
    };
    assert!(max_concurrency(&cpu, "partial_sum") > 32);
    assert!(max_concurrency(&gpu, "partial_sum") <= 32);
}
