//! The linter's own workspace must stay lint-clean: every violation is
//! either fixed or carries a reasoned `// lint: allow(...)`.

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let report = gpuflow_lint::run(&root).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {} files",
        report.files_scanned
    );
    assert!(
        report.clean(),
        "workspace is not lint-clean:\n{}",
        report.render()
    );
}
